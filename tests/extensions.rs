//! Integration tests for the extension layers built on top of the paper's
//! core: wavelet-domain algebra, approximate/progressive queries,
//! arbitrary-box updates, the sparse transform, the scaling-filling
//! z-order transform and the non-standard hypercube chain.

use proptest::prelude::*;
use shiftsplit::array::{DyadicRange, MultiIndexIter, NdArray, Shape};
use shiftsplit::core::tiling::{NonStandardTiling, StandardTiling};
use shiftsplit::core::{algebra, standard};
use shiftsplit::storage::{wstore::mem_store, IoStats, MemBlockStore};
use shiftsplit::transform::{
    transform_nonstandard_zorder_scalings, update_box_standard, ArraySource, NsChainStore,
};

#[test]
fn scaling_filled_transform_serves_fast_queries_immediately() {
    let a = NdArray::from_fn(Shape::cube(2, 32), |idx| {
        ((idx[0] * 3 + idx[1] * 7) % 11) as f64
    });
    let src = ArraySource::new(&a, &[2, 2]);
    let stats = IoStats::new();
    let mut cs = mem_store(NonStandardTiling::new(2, 5, 2), 256, stats.clone());
    transform_nonstandard_zorder_scalings(&src, &mut cs);
    // No materialisation pass — fast-path queries are correct right away
    // and cost one block each.
    for idx in MultiIndexIter::new(&[32, 32]).step_by(13) {
        cs.clear_cache();
        stats.reset();
        let got = shiftsplit::query::point_nonstandard_fast(&mut cs, 5, &idx);
        assert!((got - a.get(&idx)).abs() < 1e-9, "{idx:?}");
        assert_eq!(stats.snapshot().block_reads, 1, "{idx:?}");
    }
}

#[test]
fn chain_and_standard_appender_agree_on_history() {
    // Same daily data maintained two ways; every cell must agree.
    let days = 12usize;
    let grids: Vec<NdArray<f64>> = (0..days)
        .map(|d| {
            NdArray::from_fn(Shape::cube(2, 8), |idx| {
                ((idx[0] + idx[1] * 2 + d * 5) % 9) as f64
            })
        })
        .collect();

    // Standard appender over 8x8x4 day-batches.
    let stats = IoStats::new();
    let s2 = stats.clone();
    let mut app = shiftsplit::transform::Appender::new(
        &[3, 3, 2],
        &[1, 1, 1],
        2,
        move |cap, blocks| MemBlockStore::new(cap, blocks, s2.clone()),
        1 << 10,
        stats,
    );
    for batch in grids.chunks(4) {
        let mut chunk = NdArray::<f64>::zeros(Shape::new(&[8, 8, 4]));
        for (d, g) in batch.iter().enumerate() {
            for idx in MultiIndexIter::new(&[8, 8]) {
                chunk.set(&[idx[0], idx[1], d], g.get(&idx));
            }
        }
        app.append(&chunk);
    }

    // Non-standard chain, one cube per day.
    let cstats = IoStats::new();
    let c2 = cstats.clone();
    let mut chain = NsChainStore::new(
        2,
        3,
        1,
        move |cap, blocks| MemBlockStore::new(cap, blocks, c2.clone()),
        64,
        cstats,
    );
    for g in &grids {
        chain.append(g);
    }

    let n = app.levels().to_vec();
    let cs = app.store();
    for (day, g) in grids.iter().enumerate() {
        for idx in MultiIndexIter::new(&[8, 8]).step_by(5) {
            let via_std = shiftsplit::query::point_standard(cs, &n, &[idx[0], idx[1], day]);
            let via_chain = chain.point(day, &idx);
            assert!((via_std - g.get(&idx)).abs() < 1e-9);
            assert!((via_chain - g.get(&idx)).abs() < 1e-9);
        }
    }
    // Aggregates agree too.
    let total_std = shiftsplit::query::range_sum_standard(cs, &n, &[0, 0, 0], &[7, 7, 11]);
    let total_chain = chain.time_range_total(0, 11);
    assert!((total_std - total_chain).abs() < 1e-6);
}

#[test]
fn chain_region_matches_appender_region() {
    let g = NdArray::from_fn(Shape::cube(2, 16), |idx| (idx[0] * 16 + idx[1]) as f64);
    let stats = IoStats::new();
    let s2 = stats.clone();
    let mut chain = NsChainStore::new(
        2,
        4,
        2,
        move |cap, blocks| MemBlockStore::new(cap, blocks, s2.clone()),
        64,
        stats,
    );
    chain.append(&g);
    let range = DyadicRange::cube(3, &[1, 0]);
    let got = chain.reconstruct_region(0, &range);
    let want = g.extract(&range.origin(), &range.extents());
    assert!(got.max_abs_diff(&want) < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn algebra_pipeline_random_cubes(seed in any::<u64>()) {
        let a = NdArray::from_fn(Shape::new(&[8, 4, 16]), |idx| {
            let x = seed
                .wrapping_mul((idx[0] * 64 + idx[1] * 16 + idx[2]) as u64 + 3)
                .wrapping_mul(0x9E3779B97F4A7C15);
            (x >> 40) as f64 * 1e-4
        });
        let t = standard::forward_to(&a);
        // project_sum(axis 1) then slice_at(axis 0, 5): equals direct.
        let marg = algebra::project_sum(&t, 1);
        let sliced = algebra::slice_at(&marg, 0, 5);
        let direct = NdArray::from_fn(Shape::new(&[16]), |r| {
            (0..4).map(|alt| a.get(&[5, alt, r[0]])).sum::<f64>()
        });
        let want = standard::forward_to(&direct);
        prop_assert!(sliced.max_abs_diff(&want) < 1e-6);
    }

    #[test]
    fn update_box_random_geometry(
        seed in any::<u64>(),
        o0 in 0usize..28, o1 in 0usize..28,
        e0 in 1usize..16, e1 in 1usize..16,
    ) {
        let e0 = e0.min(32 - o0);
        let e1 = e1.min(32 - o1);
        let mut data = NdArray::from_fn(Shape::cube(2, 32), |idx| {
            (seed.wrapping_mul((idx[0] * 32 + idx[1]) as u64 + 1) >> 48) as f64
        });
        let t = standard::forward_to(&data);
        let mut cs = mem_store(StandardTiling::new(&[5, 5], &[2, 2]), 512, IoStats::new());
        for idx in MultiIndexIter::new(&[32, 32]) {
            cs.write(&idx, t.get(&idx));
        }
        let delta = NdArray::from_fn(Shape::new(&[e0, e1]), |idx| {
            (idx[0] + idx[1]) as f64 - 3.0
        });
        update_box_standard(&mut cs, &[5, 5], &[o0, o1], &delta);
        for rel in MultiIndexIter::new(&[e0, e1]) {
            let idx = [o0 + rel[0], o1 + rel[1]];
            data.set(&idx, data.get(&idx) + delta.get(&rel));
        }
        let want = standard::forward_to(&data);
        for idx in MultiIndexIter::new(&[32, 32]) {
            prop_assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-8, "{:?}", idx);
        }
    }

    #[test]
    fn synopsis_error_never_exceeds_dropped_energy(seed in any::<u64>(), k in 1usize..64) {
        // Parseval: point-reconstruction SSE from a K-term synopsis equals
        // the energy of the dropped coefficients.
        let a = NdArray::from_fn(Shape::cube(2, 16), |idx| {
            (seed.wrapping_mul((idx[0] * 16 + idx[1]) as u64 + 9) >> 44) as f64 * 1e-3
        });
        let t = standard::forward_to(&a);
        let mut cs = mem_store(StandardTiling::new(&[4, 4], &[2, 2]), 512, IoStats::new());
        for idx in MultiIndexIter::new(&[16, 16]) {
            cs.write(&idx, t.get(&idx));
        }
        let syn = shiftsplit::query::StoredSynopsis::build(&mut cs, &[4, 4], k);
        let mut sse = 0.0;
        for idx in MultiIndexIter::new(&[16, 16]) {
            sse += (syn.point(&idx) - a.get(&idx)).powi(2);
        }
        // Dropped energy from the energy ratio.
        let ratio = syn.energy_ratio(&mut cs);
        let total_energy: f64 = {
            let shape = Shape::cube(2, 16);
            MultiIndexIter::new(&[16, 16])
                .map(|idx| {
                    (t.get(&idx) * standard::orthonormal_scale(&shape, &idx)).powi(2)
                })
                .sum()
        };
        let dropped = (1.0 - ratio) * total_energy;
        prop_assert!((sse - dropped).abs() < 1e-4 * total_energy.max(1.0),
            "sse {} vs dropped {}", sse, dropped);
    }
}
