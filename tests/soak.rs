//! A "year of operations" soak test: one store driven through ingest,
//! repeated appends, scattered updates and every query flavour, validated
//! cell-for-cell against a mirror array after each phase — plus property
//! tests pinning the fast query paths to the plain plans under random
//! geometry.

use proptest::prelude::*;
use shiftsplit::array::{MultiIndexIter, NdArray, Shape};
use shiftsplit::core::tiling::StandardTiling;
use shiftsplit::datagen::{precipitation_month, SplitMix64};
use shiftsplit::query;
use shiftsplit::storage::{wstore::mem_store, IoStats, MemBlockStore};
use shiftsplit::transform::Appender;

#[test]
fn a_year_of_operations() {
    let mut rng = SplitMix64::new(424242);
    // Mirror of ground truth, grown alongside the store.
    let mut mirror = NdArray::<f64>::zeros(Shape::new(&[8, 8, 512]));
    let stats = IoStats::new();
    let s2 = stats.clone();
    let mut app = Appender::new(
        &[3, 3, 5],
        &[2, 2, 2],
        2,
        move |cap, blocks| MemBlockStore::new(cap, blocks, s2.clone()),
        1 << 12,
        stats,
    );

    for month in 0..12usize {
        // 1. Append the month.
        let chunk = precipitation_month(8, 8, 32, month, 99);
        mirror.insert(&[0, 0, month * 32], &chunk);
        app.append(&chunk);

        // 2. A data correction lands on an arbitrary past box.
        if month > 0 {
            let t0 = rng.below(month * 32);
            let dt = 1 + rng.below(16.min(month * 32 - t0));
            let lat0 = rng.below(6);
            let lon0 = rng.below(6);
            let delta =
                NdArray::from_fn(Shape::new(&[2, 2, dt]), |idx| (idx[2] as f64 - 0.5) * 0.25);
            let n = app.levels().to_vec();
            shiftsplit::transform::update_box_standard(app.store(), &n, &[lat0, lon0, t0], &delta);
            for rel in MultiIndexIter::new(&[2, 2, dt]) {
                let idx = [lat0 + rel[0], lon0 + rel[1], t0 + rel[2]];
                mirror.set(&idx, mirror.get(&idx) + delta.get(&rel));
            }
        }

        // 3. Queries after every month.
        let n = app.levels().to_vec();
        let filled = app.filled();
        let cs = app.store();
        for _ in 0..5 {
            let p = [rng.below(8), rng.below(8), rng.below(filled)];
            let got = query::point_standard(cs, &n, &p);
            assert!(
                (got - mirror.get(&p)).abs() < 1e-8,
                "month {month}: point {p:?}"
            );
        }
        let lo = [0, 0, rng.below(filled / 2)];
        let hi = [7, 7, lo[2] + rng.below(filled - lo[2])];
        let got = query::range_sum_standard(cs, &n, &lo, &hi);
        let want = mirror.region_sum(&lo, &hi);
        assert!(
            (got - want).abs() < 1e-5 * want.abs().max(1.0),
            "month {month}: sum [{lo:?},{hi:?}]"
        );
    }
    assert_eq!(app.filled(), 384);
    // Final full extraction equals the mirror.
    let n = app.levels().to_vec();
    let region = query::reconstruct_box_standard(app.store(), &n, &[0, 0, 0], &[7, 7, 383]);
    let want = mirror.extract(&[0, 0, 0], &[8, 8, 384]);
    assert!(region.max_abs_diff(&want) < 1e-8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fast_paths_agree_with_plain_plans(
        seed in any::<u64>(),
        qx in 0usize..64, qy in 0usize..64,
        lo0 in 0usize..60, lo1 in 0usize..60,
        len0 in 1usize..32, len1 in 1usize..32,
    ) {
        let hi0 = (lo0 + len0 - 1).min(63);
        let hi1 = (lo1 + len1 - 1).min(63);
        let a = NdArray::from_fn(Shape::cube(2, 64), |idx| {
            let x = seed
                .wrapping_mul((idx[0] * 64 + idx[1]) as u64 + 17)
                .wrapping_mul(0x9E3779B97F4A7C15);
            (x >> 42) as f64 * 1e-3 - 2.0
        });
        let t = shiftsplit::core::standard::forward_to(&a);
        let mut cs = mem_store(StandardTiling::new(&[6, 6], &[2, 2]), 1 << 12, IoStats::new());
        for idx in MultiIndexIter::new(&[64, 64]) {
            cs.write(&idx, t.get(&idx));
        }
        query::materialize_standard_scalings(&mut cs, &[6, 6]);
        // Point: fast == plain == truth.
        let plain = query::point_standard(&mut cs, &[6, 6], &[qx, qy]);
        let fast = query::point_standard_fast(&mut cs, &[qx, qy]);
        prop_assert!((plain - a.get(&[qx, qy])).abs() < 1e-8);
        prop_assert!((fast - plain).abs() < 1e-8);
        // Range sum: fast == plain == truth.
        let plain = query::range_sum_standard(&mut cs, &[6, 6], &[lo0, lo1], &[hi0, hi1]);
        let fast = query::range_sum_standard_fast(&mut cs, &[lo0, lo1], &[hi0, hi1]);
        let want = a.region_sum(&[lo0, lo1], &[hi0, hi1]);
        prop_assert!((plain - want).abs() < 1e-6 * want.abs().max(1.0));
        prop_assert!((fast - plain).abs() < 1e-6 * plain.abs().max(1.0));
    }

    #[test]
    fn batched_queries_agree_with_singles(seed in any::<u64>()) {
        let a = NdArray::from_fn(Shape::cube(2, 32), |idx| {
            (seed.wrapping_mul((idx[0] * 32 + idx[1]) as u64 + 5) >> 47) as f64
        });
        let t = shiftsplit::core::standard::forward_to(&a);
        let mut cs = mem_store(StandardTiling::new(&[5, 5], &[2, 2]), 1 << 10, IoStats::new());
        for idx in MultiIndexIter::new(&[32, 32]) {
            cs.write(&idx, t.get(&idx));
        }
        let positions: Vec<Vec<usize>> = (0..20)
            .map(|i| vec![(seed as usize + i * 7) % 32, (i * 13) % 32])
            .collect();
        let batch = query::batch_points(&mut cs, &[5, 5], &positions);
        for (pos, b) in positions.iter().zip(&batch) {
            prop_assert!((b - a.get(pos)).abs() < 1e-8);
        }
    }
}
