//! Integration tests pinning the paper's I/O-complexity claims to measured
//! counter values (the analytic results R1–R6 as executable assertions).

use shiftsplit::array::{DyadicRange, MultiIndexIter, NdArray, Shape};
use shiftsplit::core::tiling::{NonStandardTiling, StandardTiling};
use shiftsplit::query;
use shiftsplit::storage::{wstore::mem_store, IoStats};
use shiftsplit::transform::{
    transform_nonstandard_zorder, transform_standard, vitter_transform_standard, ArraySource,
};

fn checkerboard(side: usize) -> NdArray<f64> {
    NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] * 29 + idx[1] * 13) % 31) as f64 - 11.0
    })
}

#[test]
fn result_2_nonstandard_zorder_is_scan_bound() {
    // Result 2: O(N^d/B^d) blocks. Measured cost must stay within a small
    // constant of the scan bound at several sizes (i.e. truly linear).
    for n in [6u32, 7, 8] {
        let side = 1usize << n;
        let data = checkerboard(side);
        let src = ArraySource::new(&data, &[2, 2]);
        let stats = IoStats::new();
        let mut cs = mem_store(NonStandardTiling::new(2, n, 2), 4, stats.clone());
        transform_nonstandard_zorder(&src, &mut cs);
        let blocks = stats.snapshot().blocks();
        let scan = (side * side / 16) as u64; // N^d / B^d
        assert!(
            blocks <= 4 * scan,
            "n={n}: {blocks} blocks > 4x scan bound {scan}"
        );
        assert!(blocks >= scan, "n={n}: below the scan floor?");
    }
}

#[test]
fn result_1_standard_cost_tracks_formula_ratio() {
    // Result 1's block cost divided by the formula value must stay bounded
    // as N grows (same order), with chunk and block fixed.
    let (m, b) = (3u32, 2u32);
    let mut ratios = Vec::new();
    for n in [6u32, 7, 8] {
        let side = 1usize << n;
        let data = checkerboard(side);
        let src = ArraySource::new(&data, &[m; 2]);
        let stats = IoStats::new();
        let mut cs = mem_store(StandardTiling::new(&[n; 2], &[b; 2]), 16, stats.clone());
        transform_standard(&src, &mut cs, false);
        // Per-chunk tiles: (s + p)^2 with s = (M-1)/(B-1), p = ceil((n-m)/b);
        // chunks = (N/M)^2; plus the input scan N^2/B^2.
        let s = ((1usize << m) - 1).div_ceil((1usize << b) - 1);
        let p = (n - m).div_ceil(b) as usize;
        let chunks = 1usize << (2 * (n - m));
        let formula = (chunks * (s + p).pow(2) + side * side / 16) as f64;
        ratios.push(stats.snapshot().blocks() as f64 / formula);
    }
    for r in &ratios {
        assert!(*r > 0.3 && *r < 3.0, "ratio out of band: {ratios:?}");
    }
}

#[test]
fn vitter_io_degrades_when_memory_shrinks_but_shift_split_does_not() {
    let side = 128usize;
    let data = checkerboard(side);
    let measure = |mem: usize| -> (u64, u64) {
        let src = ArraySource::new(&data, &[3, 3]);
        let stats_v = IoStats::new();
        let _ = vitter_transform_standard(&src, mem, 16, stats_v.clone());
        let stats_z = IoStats::new();
        let mut cz = mem_store(
            NonStandardTiling::new(2, 7, 2),
            (mem / 16).max(1),
            stats_z.clone(),
        );
        transform_nonstandard_zorder(&src, &mut cz);
        (stats_v.snapshot().blocks(), stats_z.snapshot().blocks())
    };
    let (v_small, z_small) = measure(64);
    let (v_big, z_big) = measure(4096);
    // Vitter suffers badly at small memory; the z-order non-standard
    // transform is memory-oblivious.
    assert!(v_small > 2 * v_big, "vitter {v_small} vs {v_big}");
    assert!(z_small <= 2 * z_big, "shift-split {z_small} vs {z_big}");
    assert!(z_small < v_small);
    assert!(z_big < v_big);
}

#[test]
fn result_3_per_item_cost_scaling() {
    // work(buffered B) / N  ≈ 1 + (log2(N) - b + 1)/B, decreasing in B.
    let n_levels = 14u32;
    let n = 1usize << n_levels;
    let data = shiftsplit::datagen::sensor_stream(n, 3);
    let mut prev = f64::INFINITY;
    for b in [1u32, 3, 5, 7, 9] {
        let mut s = shiftsplit::stream::BufferedStream::new(16, b, n_levels);
        for &x in &data {
            s.push(x);
        }
        let per_item = s.work() as f64 / n as f64;
        let formula = 1.0 + 1.0 + (n_levels - b) as f64 / (1usize << b) as f64;
        assert!(per_item < prev, "not decreasing at b={b}");
        assert!(
            (per_item - formula).abs() < 1.0,
            "b={b}: per-item {per_item:.2} vs formula {formula:.2}"
        );
        prev = per_item;
    }
}

#[test]
fn result_6_access_counts_exact() {
    // Assembling an M^d dyadic range reads exactly (M + n - m)^d
    // coefficients in the standard form.
    let n = 6u32;
    let side = 1usize << n;
    let data = checkerboard(side);
    let t = shiftsplit::core::standard::forward_to(&data);
    for m in 0..=n {
        let range = DyadicRange::cube(m, &[0, 0]);
        let mut reads = 0usize;
        let _ = shiftsplit::core::reconstruct::standard_range_transform(&[n; 2], &range, |idx| {
            reads += 1;
            t.get(idx)
        });
        let expect = ((1usize << m) + (n - m) as usize).pow(2);
        assert_eq!(reads, expect, "m={m}");
    }
}

#[test]
fn lemma_bounds_hold_at_scale() {
    // Lemma 1: n+1 coefficients per point; Lemma 2: ≤ 2n+1 per range.
    let layout = shiftsplit::core::Layout1d::new(16);
    for pos in [0usize, 1, 65535, 32768, 12345] {
        assert_eq!(layout.point_contributions(pos).len(), 17);
    }
    for (lo, hi) in [(0usize, 65535usize), (1, 65534), (12345, 54321), (7, 7)] {
        assert!(layout.range_sum_contributions(lo, hi).len() <= 33);
    }
}

#[test]
fn fast_path_point_queries_read_one_block_everywhere() {
    let side = 64usize;
    let data = checkerboard(side);
    let t = shiftsplit::core::standard::forward_to(&data);
    let stats = IoStats::new();
    let mut cs = mem_store(StandardTiling::new(&[6, 6], &[2, 2]), 2048, stats.clone());
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }
    query::materialize_standard_scalings(&mut cs, &[6, 6]);
    for idx in MultiIndexIter::new(&[side, side]).step_by(11) {
        cs.clear_cache();
        stats.reset();
        let got = query::point_standard_fast(&mut cs, &idx);
        assert!((got - data.get(&idx)).abs() < 1e-9);
        assert_eq!(stats.snapshot().block_reads, 1, "{idx:?}");
    }
}

#[test]
fn expansion_cost_is_linear_in_stored_coefficients() {
    // Section 5.2: expansion is O(N^d) — measure coefficient reads of one
    // expansion at two sizes and check linear scaling.
    let cost_at = |time_levels: u32| -> u64 {
        let stats = IoStats::new();
        let s2 = stats.clone();
        let mut app = shiftsplit::transform::Appender::new(
            &[2, 2, time_levels],
            &[1, 1, 2],
            2,
            move |cap, blocks| shiftsplit::storage::MemBlockStore::new(cap, blocks, s2.clone()),
            1 << 10,
            stats.clone(),
        );
        // Fill the initial domain, then trigger exactly one expansion.
        let fill = NdArray::from_fn(Shape::new(&[4, 4, 1usize << time_levels]), |idx| {
            (idx[0] + idx[1] + idx[2]) as f64
        });
        app.append(&fill);
        let before = stats.snapshot();
        let next = NdArray::from_fn(Shape::new(&[4, 4, 1usize << time_levels]), |idx| {
            (idx[0] * idx[1] + idx[2]) as f64
        });
        app.append(&next);
        assert_eq!(app.expansions(), 1);
        stats.snapshot().since(&before).coeff_reads
    };
    let small = cost_at(4);
    let big = cost_at(6);
    let ratio = big as f64 / small as f64;
    assert!(
        (2.0..8.0).contains(&ratio),
        "expansion cost should scale ~4x for a 4x domain: {small} -> {big}"
    );
}
