//! Property-based tests of the core invariants, with `proptest`.
//!
//! Every identity SHIFT-SPLIT relies on is exercised under randomised
//! inputs: transform bijectivity, chunked-equals-direct, the SHIFT-SPLIT
//! embedding, expansion, range sums, partial reconstruction, tiling
//! injectivity and streaming/offline synopsis equivalence.

use proptest::prelude::*;
use shiftsplit::array::{decompose_interval, MultiIndexIter, NdArray, Shape};
use shiftsplit::core::tiling::{NonStandardTiling, StandardTiling, Tiling1d, TilingMap};
use shiftsplit::core::{append, haar1d, nonstandard, split, standard, Layout1d};

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dwt_roundtrip(levels in 0u32..10, seed in any::<u64>()) {
        let len = 1usize << levels;
        let data: Vec<f64> = (0..len)
            .map(|i| {
                let x = seed.wrapping_mul(i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                (x >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
            })
            .collect();
        let rt = haar1d::inverse_to_vec(&haar1d::forward_to_vec(&data));
        for (a, b) in data.iter().zip(&rt) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn embedded_chunk_transform_matches_direct(
        data in vec_strategy(16),
        n in 5u32..9,
        block_seed in any::<usize>(),
    ) {
        // SHIFT-SPLIT of a 16-value chunk into a zero 2^n vector equals the
        // direct transform of the zero-padded vector.
        let m = 4u32;
        let block = block_seed % (1usize << (n - m));
        let mut via_ss = vec![0.0f64; 1 << n];
        split::apply_chunk_1d(&mut via_ss, &haar1d::forward_to_vec(&data), block);
        let mut padded = vec![0.0f64; 1 << n];
        padded[block << m..(block + 1) << m].copy_from_slice(&data);
        let direct = haar1d::forward_to_vec(&padded);
        for i in 0..(1usize << n) {
            prop_assert!((via_ss[i] - direct[i]).abs() < 1e-8, "coeff {}", i);
        }
    }

    #[test]
    fn chunked_equals_direct_1d(data in vec_strategy(64), m in 0u32..7) {
        let mut acc = vec![0.0f64; 64];
        let chunk = 1usize << m;
        for block in 0..(64 / chunk) {
            let t = haar1d::forward_to_vec(&data[block * chunk..(block + 1) * chunk]);
            split::apply_chunk_1d(&mut acc, &t, block);
        }
        let direct = haar1d::forward_to_vec(&data);
        for i in 0..64 {
            prop_assert!((acc[i] - direct[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn standard_2d_chunked_equals_direct(data in vec_strategy(256), m0 in 0u32..5, m1 in 0u32..5) {
        let a = NdArray::from_vec(Shape::new(&[16, 16]), data);
        let n = [4u32, 4];
        let mut acc = NdArray::<f64>::zeros(Shape::new(&[16, 16]));
        let (c0, c1) = (1usize << m0, 1usize << m1);
        for b0 in 0..(16 / c0) {
            for b1 in 0..(16 / c1) {
                let chunk = a.extract(&[b0 * c0, b1 * c1], &[c0, c1]);
                let t = standard::forward_to(&chunk);
                split::standard_deltas(&t, &n, &[b0, b1], |idx, d| {
                    let v = acc.get(idx);
                    acc.set(idx, v + d);
                });
            }
        }
        let direct = standard::forward_to(&a);
        prop_assert!(acc.max_abs_diff(&direct) < 1e-8);
    }

    #[test]
    fn nonstandard_2d_chunked_equals_direct(data in vec_strategy(256), m in 0u32..5) {
        let a = NdArray::from_vec(Shape::new(&[16, 16]), data);
        let mut acc = NdArray::<f64>::zeros(Shape::new(&[16, 16]));
        let c = 1usize << m;
        for b0 in 0..(16 / c) {
            for b1 in 0..(16 / c) {
                let chunk = a.extract(&[b0 * c, b1 * c], &[c, c]);
                let t = nonstandard::forward_to(&chunk);
                split::nonstandard_deltas(&t, 4, &[b0, b1], |idx, d| {
                    let v = acc.get(idx);
                    acc.set(idx, v + d);
                });
            }
        }
        let direct = nonstandard::forward_to(&a);
        prop_assert!(acc.max_abs_diff(&direct) < 1e-8);
    }

    #[test]
    fn expansion_matches_padded_transform(data in vec_strategy(32)) {
        let expanded = append::expand_1d(&haar1d::forward_to_vec(&data));
        let mut padded = data.clone();
        padded.resize(64, 0.0);
        let want = haar1d::forward_to_vec(&padded);
        for i in 0..64 {
            prop_assert!((expanded[i] - want[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn range_sum_matches_naive(data in vec_strategy(128), lo in 0usize..128, len in 1usize..128) {
        let hi = (lo + len - 1).min(127);
        let coeffs = haar1d::forward_to_vec(&data);
        let layout = Layout1d::for_len(128);
        let contribs = layout.range_sum_contributions(lo, hi);
        prop_assert!(contribs.len() <= 2 * 7 + 1);
        let got: f64 = contribs.iter().map(|&(i, w)| w * coeffs[i]).sum();
        let want: f64 = data[lo..=hi].iter().sum();
        prop_assert!((got - want).abs() < 1e-7, "{} vs {}", got, want);
    }

    #[test]
    fn point_reconstruction_matches(data in vec_strategy(64), pos in 0usize..64) {
        let coeffs = haar1d::forward_to_vec(&data);
        let layout = Layout1d::for_len(64);
        let got: f64 = layout
            .point_contributions(pos)
            .iter()
            .map(|&(i, w)| w * coeffs[i])
            .sum();
        prop_assert!((got - data[pos]).abs() < 1e-8);
    }

    #[test]
    fn dyadic_decomposition_covers(lo in 0usize..1000, len in 1usize..1000) {
        let hi = lo + len - 1;
        let parts = decompose_interval(lo, hi);
        let mut pos = lo;
        for p in &parts {
            prop_assert_eq!(p.start(), pos);
            pos = p.end() + 1;
        }
        prop_assert_eq!(pos, hi + 1);
        // Logarithmic piece count.
        prop_assert!(parts.len() <= 2 * (usize::BITS - len.leading_zeros()) as usize + 2);
    }

    #[test]
    fn tiling_1d_injective(n in 1u32..10, b in 1u32..4) {
        let map = Tiling1d::new(n, b);
        let mut seen = std::collections::HashSet::new();
        for i in 0..(1usize << n) {
            let loc = map.locate(&[i]);
            prop_assert!(loc.tile < map.num_tiles());
            prop_assert!(loc.slot < map.block_capacity());
            prop_assert!(seen.insert((loc.tile, loc.slot)));
        }
    }

    #[test]
    fn nonstandard_tiling_injective(n in 1u32..6, b in 1u32..3) {
        let map = NonStandardTiling::new(2, n, b);
        let mut seen = std::collections::HashSet::new();
        for idx in MultiIndexIter::new(&[1usize << n, 1usize << n]) {
            let loc = map.locate(&idx);
            prop_assert!(loc.tile < map.num_tiles());
            prop_assert!(loc.slot < map.block_capacity());
            prop_assert!(seen.insert((loc.tile, loc.slot)));
        }
    }

    #[test]
    fn standard_tiling_injective_rectangular(n0 in 1u32..6, n1 in 1u32..6, b0 in 1u32..3, b1 in 1u32..3) {
        let map = StandardTiling::new(&[n0, n1], &[b0, b1]);
        let mut seen = std::collections::HashSet::new();
        for idx in MultiIndexIter::new(&[1usize << n0, 1usize << n1]) {
            let loc = map.locate(&idx);
            prop_assert!(loc.tile < map.num_tiles());
            prop_assert!(loc.slot < map.block_capacity());
            prop_assert!(seen.insert((loc.tile, loc.slot)));
        }
    }

    #[test]
    fn streaming_synopses_agree_with_offline(seed in any::<u64>(), k in 1usize..32, buf in 1u32..6) {
        let n_levels = 8u32;
        let n = 1usize << n_levels;
        let data = shiftsplit::datagen::sensor_stream(n, seed);
        let mut per_item = shiftsplit::stream::PerItemStream::new(k, n_levels);
        let mut buffered = shiftsplit::stream::BufferedStream::new(k, buf, n_levels);
        for &x in &data {
            per_item.push(x);
            buffered.push(x);
        }
        // Equivalent quality: SSE equals the offline best-K floor.
        let floor = shiftsplit::stream::offline_best_k_sse(&data, k);
        let a = shiftsplit::stream::stream1d::reconstruct_from_entries(
            per_item.average(), &per_item.entries(), n);
        let b = shiftsplit::stream::stream1d::reconstruct_from_entries(
            buffered.average(), &buffered.entries(), n);
        prop_assert!((shiftsplit::stream::sse(&data, &a) - floor).abs() < 1e-6);
        prop_assert!((shiftsplit::stream::sse(&data, &b) - floor).abs() < 1e-6);
    }

    #[test]
    fn any_single_bit_flip_is_detected_by_verify(
        seed in any::<u64>(),
        byte_pick in any::<u64>(),
        bit in 0u32..8,
        in_sidecar in any::<bool>(),
    ) {
        // CRC-32 detects every single-bit error, so `WsFile::verify` must
        // flag a v2 store after one flipped bit — in the blocks file or in
        // the checksum sidecar itself (a rotted checksum is corruption
        // too: the pair no longer vouches for the data).
        use shiftsplit::storage::{Meta, WsFile};
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ss_prop_bitflip_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.ws");
        {
            let mut ws = WsFile::create(&path, Meta::new(vec![3, 3], vec![1, 1], 8, 1)).unwrap();
            for idx in MultiIndexIter::new(&[8, 8]) {
                let x = seed
                    .wrapping_mul((idx[0] * 8 + idx[1]) as u64 + 3)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                ws.store.write(&idx, (x >> 40) as f64 * 0.01);
            }
            ws.sync().unwrap();
            prop_assert!(ws.verify().unwrap().is_clean());
        }
        let target = if in_sidecar {
            shiftsplit::storage::file::sidecar_path(&path)
        } else {
            path.clone()
        };
        let mut bytes = std::fs::read(&target).unwrap();
        // Skip the sidecar's 8-byte magic: damaging it is a different
        // (also detected) failure — open() refuses the file outright.
        let lo = if in_sidecar { 8 } else { 0 };
        let pos = lo + (byte_pick as usize) % (bytes.len() - lo);
        bytes[pos] ^= 1u8 << bit;
        std::fs::write(&target, &bytes).unwrap();
        let mut ws = WsFile::open(&path).unwrap();
        let report = ws.verify().unwrap();
        prop_assert!(!report.is_clean(), "flip at {target:?}:{pos} bit {bit} went undetected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_reconstruction_random_boxes(
        seed in any::<u64>(),
        lo0 in 0usize..32, lo1 in 0usize..32,
        len0 in 1usize..32, len1 in 1usize..32,
    ) {
        let hi0 = (lo0 + len0 - 1).min(31);
        let hi1 = (lo1 + len1 - 1).min(31);
        let data = NdArray::from_fn(Shape::cube(2, 32), |idx| {
            let x = seed
                .wrapping_mul((idx[0] * 32 + idx[1]) as u64 + 7)
                .wrapping_mul(0x9E3779B97F4A7C15);
            (x >> 40) as f64 * 0.001
        });
        let t = standard::forward_to(&data);
        let mut cs = shiftsplit::storage::wstore::mem_store(
            StandardTiling::new(&[5, 5], &[2, 2]),
            512,
            shiftsplit::storage::IoStats::new(),
        );
        for idx in MultiIndexIter::new(&[32, 32]) {
            cs.write(&idx, t.get(&idx));
        }
        let got = shiftsplit::query::reconstruct_box_standard(
            &mut cs, &[5, 5], &[lo0, lo1], &[hi0, hi1]);
        let want = data.extract(&[lo0, lo1], &[hi0 - lo0 + 1, hi1 - lo1 + 1]);
        prop_assert!(got.max_abs_diff(&want) < 1e-8);
    }
}
