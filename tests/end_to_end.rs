//! End-to-end integration tests spanning every crate: generate data,
//! transform it out-of-core onto real disk blocks, maintain it, query it.

use shiftsplit::array::{MultiIndexIter, NdArray, Shape};
use shiftsplit::core::tiling::{NonStandardTiling, StandardTiling};
use shiftsplit::core::TilingMap;
use shiftsplit::core::{split, standard};
use shiftsplit::datagen::{precipitation_month, temperature_cube};
use shiftsplit::query;
use shiftsplit::storage::{wstore::mem_store, CoeffStore, FileBlockStore, IoStats};
use shiftsplit::transform::{
    transform_nonstandard_zorder, transform_standard, Appender, ArraySource,
};

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ss_e2e_{name}_{}", std::process::id()))
}

#[test]
fn climate_pipeline_on_real_disk_blocks() {
    // 4-d cube -> out-of-core standard transform -> file-backed tiles ->
    // queries agree with the raw data.
    let cube = temperature_cube(&[8, 8, 4, 16], 123);
    let src = ArraySource::new(&cube, &[2, 2, 1, 2]);
    let n = [3u32, 3, 2, 4];
    let map = StandardTiling::new(&n, &[1, 1, 1, 2]);
    let path = tmp_path("climate");
    let stats = IoStats::new();
    let store = FileBlockStore::create(&path, map.block_capacity(), map.num_tiles(), stats.clone())
        .expect("create block file");
    let mut cs = CoeffStore::new(map, store, 64, stats.clone());
    transform_standard(&src, &mut cs, false);

    // Point queries across the cube.
    for idx in [[0usize, 0, 0, 0], [7, 3, 2, 9], [4, 4, 3, 15]] {
        let got = query::point_standard(&mut cs, &n, &idx);
        assert!((got - cube.get(&idx)).abs() < 1e-9, "{idx:?}");
    }
    // Range sums.
    let lo = [1usize, 0, 0, 4];
    let hi = [6usize, 7, 3, 11];
    let got = query::range_sum_standard(&mut cs, &n, &lo, &hi);
    assert!((got - cube.region_sum(&lo, &hi)).abs() < 1e-6);
    // Partial reconstruction.
    let region = query::reconstruct_box_standard(&mut cs, &n, &[2, 2, 0, 8], &[5, 5, 3, 11]);
    let want = cube.extract(&[2, 2, 0, 8], &[4, 4, 4, 4]);
    assert!(region.max_abs_diff(&want) < 1e-9);

    std::fs::remove_file(&path).ok();
}

#[test]
fn nonstandard_pipeline_with_fast_queries() {
    let side = 32usize;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] * 3 + idx[1] * 11) % 17) as f64 - 4.0
    });
    let src = ArraySource::new(&data, &[2, 2]);
    let stats = IoStats::new();
    let mut cs = mem_store(NonStandardTiling::new(2, 5, 2), 256, stats.clone());
    transform_nonstandard_zorder(&src, &mut cs);
    query::materialize_nonstandard_scalings(&mut cs, 5);

    for idx in MultiIndexIter::new(&[side, side]).step_by(37) {
        let plain = query::point_nonstandard(&mut cs, 5, &idx);
        let fast = query::point_nonstandard_fast(&mut cs, 5, &idx);
        assert!((plain - data.get(&idx)).abs() < 1e-9);
        assert!((fast - data.get(&idx)).abs() < 1e-9);
    }
    // Fast path reads exactly one block from a cold cache.
    cs.clear_cache();
    stats.reset();
    let _ = query::point_nonstandard_fast(&mut cs, 5, &[19, 7]);
    assert_eq!(stats.snapshot().block_reads, 1);
}

#[test]
fn monthly_append_then_query_pipeline() {
    let stats = IoStats::new();
    let s2 = stats.clone();
    let mut app = Appender::new(
        &[3, 3, 5],
        &[2, 2, 2],
        2,
        move |cap, blocks| shiftsplit::storage::MemBlockStore::new(cap, blocks, s2.clone()),
        1 << 10,
        stats,
    );
    let months = 6usize;
    let mut history = NdArray::<f64>::zeros(Shape::new(&[8, 8, 256]));
    for m in 0..months {
        let chunk = precipitation_month(8, 8, 32, m, 77);
        history.insert(&[0, 0, m * 32], &chunk);
        app.append(&chunk);
    }
    let n = app.levels().to_vec();
    assert_eq!(&n, &[3, 3, 8]);
    let cs = app.store();
    // Total rainfall of month 3 via a range-sum on the transform.
    let got = query::range_sum_standard(cs, &n, &[0, 0, 96], &[7, 7, 127]);
    let want = history.region_sum(&[0, 0, 96], &[7, 7, 127]);
    assert!((got - want).abs() < 1e-6);
    // Reconstruct a single day's grid.
    let day = query::reconstruct_box_standard(cs, &n, &[0, 0, 100], &[7, 7, 100]);
    let want_day = history.extract(&[0, 0, 100], &[8, 8, 1]);
    assert!(day.max_abs_diff(&want_day) < 1e-9);
}

#[test]
fn wavelet_domain_updates_compose_with_queries() {
    // Transform, then apply two overlapping dyadic batch updates in the
    // wavelet domain, then query.
    let side = 64usize;
    let base = NdArray::from_fn(Shape::cube(2, side), |idx| (idx[0] + idx[1]) as f64);
    let mut cs = mem_store(StandardTiling::new(&[6, 6], &[2, 2]), 512, IoStats::new());
    let t = standard::forward_to(&base);
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }
    // Update 1: +5 over the 32x32 block at (0,0); update 2: x pattern over
    // the 16x16 block at (16,48).
    let u1 = NdArray::from_fn(Shape::cube(2, 32), |_| 5.0);
    split::standard_deltas(&standard::forward_to(&u1), &[6, 6], &[0, 0], |idx, d| {
        cs.add(idx, d)
    });
    let u2 = NdArray::from_fn(Shape::cube(2, 16), |idx| (idx[0] as f64) - (idx[1] as f64));
    split::standard_deltas(&standard::forward_to(&u2), &[6, 6], &[1, 3], |idx, d| {
        cs.add(idx, d)
    });
    // Reference data.
    let mut reference = base.clone();
    for i in 0..32 {
        for j in 0..32 {
            reference.set(&[i, j], reference.get(&[i, j]) + 5.0);
        }
    }
    for i in 0..16 {
        for j in 0..16 {
            let v = reference.get(&[16 + i, 48 + j]);
            reference.set(&[16 + i, 48 + j], v + i as f64 - j as f64);
        }
    }
    for idx in [
        [0usize, 0],
        [31, 31],
        [16, 48],
        [20, 50],
        [63, 63],
        [15, 32],
    ] {
        let got = query::point_standard(&mut cs, &[6, 6], &idx);
        assert!(
            (got - reference.get(&idx)).abs() < 1e-9,
            "{idx:?}: {got} vs {}",
            reference.get(&idx)
        );
    }
    let got = query::range_sum_standard(&mut cs, &[6, 6], &[0, 0], &[63, 63]);
    assert!((got - reference.total()).abs() < 1e-6);
}

#[test]
fn vitter_and_shift_split_agree_on_coefficients() {
    let data = temperature_cube(&[4, 4, 4, 8], 9);
    let src = ArraySource::new(&data, &[1, 1, 1, 2]);
    let n = [2u32, 2, 2, 3];
    let mut vit = shiftsplit::transform::vitter_transform_standard(&src, 256, 16, IoStats::new());
    let mut ss = mem_store(StandardTiling::new(&n, &[1, 1, 1, 1]), 256, IoStats::new());
    transform_standard(&src, &mut ss, false);
    for idx in MultiIndexIter::new(&[4, 4, 4, 8]) {
        assert!(
            (vit.read(&idx) - ss.read(&idx)).abs() < 1e-9,
            "{idx:?}: {} vs {}",
            vit.read(&idx),
            ss.read(&idx)
        );
    }
}
