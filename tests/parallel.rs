//! Worker-count invariance of the parallel transform drivers, and
//! concurrency smoke tests for the sharded buffer pool.
//!
//! The SHIFT-SPLIT delta streams commute under addition, so the parallel
//! drivers must produce *the same store* as the serial ones for every
//! worker count — including worker counts that don't divide the chunk
//! grid, and chunk grids that aren't powers of the worker count.

use shiftsplit::array::{MultiIndexIter, NdArray, Shape};
use shiftsplit::core::tiling::{NonStandardTiling, StandardTiling};
use shiftsplit::datagen::SplitMix64;
use shiftsplit::storage::{
    mem_shared_store, wstore::mem_store, IoStats, MemBlockStore, ShardedBufferPool,
};
use shiftsplit::transform::{
    transform_nonstandard_parallel, transform_nonstandard_zorder, transform_standard,
    transform_standard_parallel, ArraySource,
};

fn noisy(dims: &[usize], seed: u64) -> NdArray<f64> {
    let mut rng = SplitMix64::new(seed);
    NdArray::from_fn(Shape::new(dims), |_| rng.next_f64() * 200.0 - 100.0)
}

#[test]
fn standard_parallel_invariant_across_worker_counts() {
    let data = noisy(&[64, 64], 11);
    let src = ArraySource::new(&data, &[3, 3]); // 8x8 chunk grid
    let mut serial = mem_store(StandardTiling::new(&[6, 6], &[2, 2]), 512, IoStats::new());
    transform_standard(&src, &mut serial, false);
    for workers in [1usize, 2, 8] {
        let shared = mem_shared_store(
            StandardTiling::new(&[6, 6], &[2, 2]),
            512,
            4,
            IoStats::new(),
        );
        transform_standard_parallel(&src, &shared, workers);
        for idx in MultiIndexIter::new(&[64, 64]) {
            assert!(
                (shared.read(&idx) - serial.read(&idx)).abs() <= 1e-9,
                "workers={workers} idx={idx:?}"
            );
        }
    }
}

#[test]
fn standard_parallel_non_pow2_chunk_grid() {
    // 3 chunk levels on one axis, 2 on the other: a 2x8 grid of 16 chunks
    // sliced across worker counts that don't divide it evenly.
    let data = noisy(&[16, 64], 23);
    let src = ArraySource::new(&data, &[3, 3]); // grid 2x8
    let mut serial = mem_store(StandardTiling::new(&[4, 6], &[2, 2]), 256, IoStats::new());
    transform_standard(&src, &mut serial, false);
    for workers in [1usize, 2, 3, 5, 8] {
        let shared = mem_shared_store(
            StandardTiling::new(&[4, 6], &[2, 2]),
            256,
            3, // non-pow2 shard count too
            IoStats::new(),
        );
        transform_standard_parallel(&src, &shared, workers);
        for idx in MultiIndexIter::new(&[16, 64]) {
            assert!(
                (shared.read(&idx) - serial.read(&idx)).abs() <= 1e-9,
                "workers={workers} idx={idx:?}"
            );
        }
    }
}

#[test]
fn nonstandard_parallel_invariant_across_worker_counts() {
    let data = noisy(&[32, 32], 37);
    let src = ArraySource::new(&data, &[2, 2]); // 8x8 z-order grid
    let stats = IoStats::new();
    let mut serial = mem_store(NonStandardTiling::new(2, 5, 2), 512, stats);
    transform_nonstandard_zorder(&src, &mut serial);
    for workers in [1usize, 2, 8] {
        let shared = mem_shared_store(NonStandardTiling::new(2, 5, 2), 512, 4, IoStats::new());
        let report = transform_nonstandard_parallel(&src, &shared, workers);
        assert_eq!(report.chunks, 64);
        // Per-worker crest caches stay within the serial bound
        // (2^d − 1)·(n − m) + 1 even at range boundaries.
        assert!(
            report.peak_crest_cache <= 3 * 3 + 1,
            "workers={workers} peak {}",
            report.peak_crest_cache
        );
        for idx in MultiIndexIter::new(&[32, 32]) {
            assert!(
                (shared.read(&idx) - serial.read(&idx)).abs() <= 1e-9,
                "workers={workers} idx={idx:?}"
            );
        }
    }
}

#[test]
fn nonstandard_parallel_workers_straddling_subtrees() {
    // 3 workers over a 64-chunk z-order walk puts both range boundaries
    // strictly inside level-2 subtrees (ranks 21 and 42): every crest
    // partial-sum path is exercised.
    let data = noisy(&[32, 32], 41);
    let src = ArraySource::new(&data, &[2, 2]);
    let want = {
        let mut a = data.clone();
        shiftsplit::core::nonstandard::forward(&mut a);
        a
    };
    for workers in [3usize, 5, 7] {
        let shared = mem_shared_store(NonStandardTiling::new(2, 5, 2), 512, 4, IoStats::new());
        transform_nonstandard_parallel(&src, &shared, workers);
        for idx in MultiIndexIter::new(&[32, 32]) {
            assert!(
                (shared.read(&idx) - want.get(&idx)).abs() <= 1e-9,
                "workers={workers} idx={idx:?}"
            );
        }
    }
}

#[test]
fn concurrent_readers_match_serial_bit_for_bit() {
    // N reader threads run randomized point / range-sum / batch queries
    // against one SharedCoeffStore (through the `&SharedCoeffStore`
    // CoeffRead impl) while a serial CoeffStore with identical contents
    // answers the same queries single-threaded. Every answer must agree
    // bit for bit: the query plans fix the summation order, so thread
    // interleaving may only change *when* tiles are fetched, never what a
    // query returns.
    const THREADS: usize = 6;
    const QUERIES: usize = 40;
    let data = noisy(&[32, 32], 53);
    let t = shiftsplit::core::standard::forward_to(&data);
    let levels = [5u32, 5];
    let mut serial = mem_store(
        StandardTiling::new(&levels, &[2, 2]),
        1 << 10,
        IoStats::new(),
    );
    // A pool budget far below the 256-tile footprint, so concurrent
    // readers evict and refetch constantly.
    let shared = mem_shared_store(StandardTiling::new(&levels, &[2, 2]), 64, 4, IoStats::new());
    for idx in MultiIndexIter::new(&[32, 32]) {
        serial.write(&idx, t.get(&idx));
        shared.write(&idx, t.get(&idx));
    }

    // Each thread's query mix is a pure function of its seed, so the
    // serial pass can replay it exactly.
    let plan_queries = |seed: u64| {
        let mut rng = SplitMix64::new(seed);
        let mut points = Vec::new();
        let mut ranges = Vec::new();
        for _ in 0..QUERIES {
            points.push(vec![rng.below(32), rng.below(32)]);
            let (a, b) = (rng.below(32), rng.below(32));
            let (c, d) = (rng.below(32), rng.below(32));
            ranges.push((vec![a.min(b), c.min(d)], vec![a.max(b), c.max(d)]));
        }
        (points, ranges)
    };
    let serial_answers: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = (0..THREADS)
        .map(|t| {
            let (points, ranges) = plan_queries(0xABCD + t as u64);
            let p: Vec<f64> = points
                .iter()
                .map(|pos| shiftsplit::query::point_standard(&mut serial, &levels, pos))
                .collect();
            let r: Vec<f64> = ranges
                .iter()
                .map(|(lo, hi)| shiftsplit::query::range_sum_standard(&mut serial, &levels, lo, hi))
                .collect();
            let b = shiftsplit::query::batch_points(&mut serial, &levels, &points);
            (p, r, b)
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = &shared;
            let serial_answers = &serial_answers;
            scope.spawn(move || {
                let (points, ranges) = plan_queries(0xABCD + t as u64);
                let mut handle = shared; // CoeffRead for &SharedCoeffStore
                let (want_p, want_r, want_b) = &serial_answers[t];
                for (k, pos) in points.iter().enumerate() {
                    let got = shiftsplit::query::point_standard(&mut handle, &levels, pos);
                    assert_eq!(
                        got.to_bits(),
                        want_p[k].to_bits(),
                        "thread {t} point {pos:?}: {got} vs {}",
                        want_p[k]
                    );
                }
                for (k, (lo, hi)) in ranges.iter().enumerate() {
                    let got = shiftsplit::query::range_sum_standard(&mut handle, &levels, lo, hi);
                    assert_eq!(
                        got.to_bits(),
                        want_r[k].to_bits(),
                        "thread {t} range {lo:?}..{hi:?}: {got} vs {}",
                        want_r[k]
                    );
                }
                let got_b = shiftsplit::query::batch_points(&mut handle, &levels, &points);
                for (k, (got, want)) in got_b.iter().zip(want_b).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "thread {t} batch point {k}: {got} vs {want}"
                    );
                }
            });
        }
    });
}

#[test]
fn sharded_pool_hammer_reconciles_counters() {
    // 8 threads hammer a 32-block store through a sharded pool small
    // enough to evict constantly; afterwards the shard-local counters,
    // the global IoStats, and the MemBlockStore contents must all agree.
    const THREADS: usize = 8;
    const ROUNDS: usize = 200;
    const BLOCKS: usize = 32;
    let stats = IoStats::new();
    let store = MemBlockStore::new(8, BLOCKS, stats.clone());
    let pool = ShardedBufferPool::new(store, 8, 4, stats.clone());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pool = &pool;
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xC0FFEE + t as u64);
                for _ in 0..ROUNDS {
                    let id = rng.below(BLOCKS);
                    let slot = rng.below(8);
                    pool.add(id, slot, 1.0);
                }
            });
        }
    });
    pool.flush();

    // Shard-local counters reconcile exactly with the shared snapshot.
    let per_shard = pool.shard_counters();
    let snap = stats.snapshot();
    assert_eq!(
        per_shard.iter().map(|c| c.hits).sum::<u64>(),
        snap.pool_hits
    );
    assert_eq!(
        per_shard.iter().map(|c| c.misses).sum::<u64>(),
        snap.pool_misses
    );
    assert_eq!(
        per_shard.iter().map(|c| c.evictions).sum::<u64>(),
        snap.pool_evictions
    );
    assert_eq!(
        per_shard.iter().map(|c| c.writebacks).sum::<u64>(),
        snap.pool_writebacks
    );
    // Every access is either a hit or a miss; every miss read a block.
    assert_eq!(snap.pool_accesses(), (THREADS * ROUNDS) as u64);
    assert_eq!(snap.block_reads, snap.pool_misses);
    // Write-back, not write-through: the store saw exactly the write-backs.
    assert_eq!(snap.block_writes, snap.pool_writebacks);

    // No increment was lost: the store holds THREADS*ROUNDS ones in total.
    let mut store = pool.into_store();
    let mut total = 0.0;
    let mut buf = vec![0.0; 8];
    for id in 0..BLOCKS {
        shiftsplit::storage::BlockStore::read_block(&mut store, id, &mut buf);
        total += buf.iter().sum::<f64>();
    }
    assert_eq!(total, (THREADS * ROUNDS) as f64);
}
