//! Worker-count invariance of the parallel transform drivers, and
//! concurrency smoke tests for the sharded buffer pool.
//!
//! The SHIFT-SPLIT delta streams commute under addition, so the parallel
//! drivers must produce *the same store* as the serial ones for every
//! worker count — including worker counts that don't divide the chunk
//! grid, and chunk grids that aren't powers of the worker count.

use shiftsplit::array::{MultiIndexIter, NdArray, Shape};
use shiftsplit::core::tiling::{NonStandardTiling, StandardTiling};
use shiftsplit::datagen::SplitMix64;
use shiftsplit::storage::{
    mem_shared_store, wstore::mem_store, IoStats, MemBlockStore, ShardedBufferPool,
};
use shiftsplit::transform::{
    transform_nonstandard_parallel, transform_nonstandard_zorder, transform_standard,
    transform_standard_parallel, ArraySource,
};

fn noisy(dims: &[usize], seed: u64) -> NdArray<f64> {
    let mut rng = SplitMix64::new(seed);
    NdArray::from_fn(Shape::new(dims), |_| rng.next_f64() * 200.0 - 100.0)
}

#[test]
fn standard_parallel_invariant_across_worker_counts() {
    let data = noisy(&[64, 64], 11);
    let src = ArraySource::new(&data, &[3, 3]); // 8x8 chunk grid
    let mut serial = mem_store(StandardTiling::new(&[6, 6], &[2, 2]), 512, IoStats::new());
    transform_standard(&src, &mut serial, false);
    for workers in [1usize, 2, 8] {
        let shared = mem_shared_store(
            StandardTiling::new(&[6, 6], &[2, 2]),
            512,
            4,
            IoStats::new(),
        );
        transform_standard_parallel(&src, &shared, workers);
        for idx in MultiIndexIter::new(&[64, 64]) {
            assert!(
                (shared.read(&idx) - serial.read(&idx)).abs() <= 1e-9,
                "workers={workers} idx={idx:?}"
            );
        }
    }
}

#[test]
fn standard_parallel_non_pow2_chunk_grid() {
    // 3 chunk levels on one axis, 2 on the other: a 2x8 grid of 16 chunks
    // sliced across worker counts that don't divide it evenly.
    let data = noisy(&[16, 64], 23);
    let src = ArraySource::new(&data, &[3, 3]); // grid 2x8
    let mut serial = mem_store(StandardTiling::new(&[4, 6], &[2, 2]), 256, IoStats::new());
    transform_standard(&src, &mut serial, false);
    for workers in [1usize, 2, 3, 5, 8] {
        let shared = mem_shared_store(
            StandardTiling::new(&[4, 6], &[2, 2]),
            256,
            3, // non-pow2 shard count too
            IoStats::new(),
        );
        transform_standard_parallel(&src, &shared, workers);
        for idx in MultiIndexIter::new(&[16, 64]) {
            assert!(
                (shared.read(&idx) - serial.read(&idx)).abs() <= 1e-9,
                "workers={workers} idx={idx:?}"
            );
        }
    }
}

#[test]
fn nonstandard_parallel_invariant_across_worker_counts() {
    let data = noisy(&[32, 32], 37);
    let src = ArraySource::new(&data, &[2, 2]); // 8x8 z-order grid
    let stats = IoStats::new();
    let mut serial = mem_store(NonStandardTiling::new(2, 5, 2), 512, stats);
    transform_nonstandard_zorder(&src, &mut serial);
    for workers in [1usize, 2, 8] {
        let shared = mem_shared_store(NonStandardTiling::new(2, 5, 2), 512, 4, IoStats::new());
        let report = transform_nonstandard_parallel(&src, &shared, workers);
        assert_eq!(report.chunks, 64);
        // Per-worker crest caches stay within the serial bound
        // (2^d − 1)·(n − m) + 1 even at range boundaries.
        assert!(
            report.peak_crest_cache <= 3 * 3 + 1,
            "workers={workers} peak {}",
            report.peak_crest_cache
        );
        for idx in MultiIndexIter::new(&[32, 32]) {
            assert!(
                (shared.read(&idx) - serial.read(&idx)).abs() <= 1e-9,
                "workers={workers} idx={idx:?}"
            );
        }
    }
}

#[test]
fn nonstandard_parallel_workers_straddling_subtrees() {
    // 3 workers over a 64-chunk z-order walk puts both range boundaries
    // strictly inside level-2 subtrees (ranks 21 and 42): every crest
    // partial-sum path is exercised.
    let data = noisy(&[32, 32], 41);
    let src = ArraySource::new(&data, &[2, 2]);
    let want = {
        let mut a = data.clone();
        shiftsplit::core::nonstandard::forward(&mut a);
        a
    };
    for workers in [3usize, 5, 7] {
        let shared = mem_shared_store(NonStandardTiling::new(2, 5, 2), 512, 4, IoStats::new());
        transform_nonstandard_parallel(&src, &shared, workers);
        for idx in MultiIndexIter::new(&[32, 32]) {
            assert!(
                (shared.read(&idx) - want.get(&idx)).abs() <= 1e-9,
                "workers={workers} idx={idx:?}"
            );
        }
    }
}

#[test]
fn sharded_pool_hammer_reconciles_counters() {
    // 8 threads hammer a 32-block store through a sharded pool small
    // enough to evict constantly; afterwards the shard-local counters,
    // the global IoStats, and the MemBlockStore contents must all agree.
    const THREADS: usize = 8;
    const ROUNDS: usize = 200;
    const BLOCKS: usize = 32;
    let stats = IoStats::new();
    let store = MemBlockStore::new(8, BLOCKS, stats.clone());
    let pool = ShardedBufferPool::new(store, 8, 4, stats.clone());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pool = &pool;
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xC0FFEE + t as u64);
                for _ in 0..ROUNDS {
                    let id = rng.below(BLOCKS);
                    let slot = rng.below(8);
                    pool.add(id, slot, 1.0);
                }
            });
        }
    });
    pool.flush();

    // Shard-local counters reconcile exactly with the shared snapshot.
    let per_shard = pool.shard_counters();
    let snap = stats.snapshot();
    assert_eq!(
        per_shard.iter().map(|c| c.hits).sum::<u64>(),
        snap.pool_hits
    );
    assert_eq!(
        per_shard.iter().map(|c| c.misses).sum::<u64>(),
        snap.pool_misses
    );
    assert_eq!(
        per_shard.iter().map(|c| c.evictions).sum::<u64>(),
        snap.pool_evictions
    );
    assert_eq!(
        per_shard.iter().map(|c| c.writebacks).sum::<u64>(),
        snap.pool_writebacks
    );
    // Every access is either a hit or a miss; every miss read a block.
    assert_eq!(snap.pool_accesses(), (THREADS * ROUNDS) as u64);
    assert_eq!(snap.block_reads, snap.pool_misses);
    // Write-back, not write-through: the store saw exactly the write-backs.
    assert_eq!(snap.block_writes, snap.pool_writebacks);

    // No increment was lost: the store holds THREADS*ROUNDS ones in total.
    let mut store = pool.into_store();
    let mut total = 0.0;
    let mut buf = vec![0.0; 8];
    for id in 0..BLOCKS {
        shiftsplit::storage::BlockStore::read_block(&mut store, id, &mut buf);
        total += buf.iter().sum::<f64>();
    }
    assert_eq!(total, (THREADS * ROUNDS) as f64);
}
