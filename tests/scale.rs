//! Opt-in scale tests (`cargo test -- --ignored`): larger shapes that take
//! seconds-to-minutes, exercising the same invariants as the fast suite at
//! sizes where indexing or accumulation bugs would actually surface.

use shiftsplit::array::{MultiIndexIter, NdArray, Shape};
use shiftsplit::core::tiling::{NonStandardTiling, StandardTiling};
use shiftsplit::storage::{mem_shared_store, wstore::mem_store, IoStats};
use shiftsplit::transform::{
    transform_nonstandard_zorder, transform_standard_parallel, ArraySource,
};

#[test]
#[ignore = "scale test: ~1M-cell transforms"]
fn megacell_standard_transform_roundtrip() {
    let side = 1024usize;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0].wrapping_mul(2654435761) ^ idx[1].wrapping_mul(40503)) % 1000) as f64 - 500.0
    });
    let src = ArraySource::new(&data, &[5, 5]);
    let shared = mem_shared_store(
        StandardTiling::new(&[10, 10], &[3, 3]),
        1 << 12,
        8,
        IoStats::new(),
    );
    transform_standard_parallel(&src, &shared, 0);
    let (map, store) = shared.into_parts();
    let mut cs = shiftsplit::storage::CoeffStore::new(map, store, 1 << 12, IoStats::new());
    // Spot-check 1k points through the query path.
    for i in 0..1000usize {
        let p = [(i * 97) % side, (i * 61) % side];
        let got = shiftsplit::query::point_standard(&mut cs, &[10, 10], &p);
        assert!((got - data.get(&p)).abs() < 1e-6, "{p:?}");
    }
}

#[test]
#[ignore = "scale test: ~1M-cell non-standard transform"]
fn megacell_nonstandard_zorder() {
    let side = 1024usize;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] * 31 + idx[1] * 17) % 251) as f64
    });
    let src = ArraySource::new(&data, &[4, 4]);
    let stats = IoStats::new();
    let mut cs = mem_store(NonStandardTiling::new(2, 10, 3), 64, stats.clone());
    let report = transform_nonstandard_zorder(&src, &mut cs);
    assert!(report.peak_crest_cache <= 3 * 6 + 1);
    // Scan bound with a tiny pool.
    let scan = (side * side / 64) as u64;
    assert!(stats.snapshot().blocks() <= 4 * scan);
    // Value spot-checks.
    let want = {
        let mut a = data.clone();
        shiftsplit::core::nonstandard::forward(&mut a);
        a
    };
    for idx in MultiIndexIter::new(&[side, side]).step_by(7919) {
        assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-6);
    }
}

#[test]
#[ignore = "scale test: 2^22-item stream"]
fn four_million_item_stream() {
    let n_levels = 22u32;
    let n = 1usize << n_levels;
    let mut per_item_free = shiftsplit::stream::BufferedStream::new(32, 10, n_levels);
    let mut sum = 0.0f64;
    for (i, x) in shiftsplit::datagen::SensorStream::new(8)
        .take(n)
        .enumerate()
    {
        per_item_free.push(x);
        sum += x;
        let _ = i;
    }
    // The running average is exact.
    assert!((per_item_free.average() - sum / n as f64).abs() < 1e-6);
    // Amortised cost ≈ 2 ops/item at B=1024.
    let per_item = per_item_free.work() as f64 / n as f64;
    assert!(per_item < 2.5, "per-item {per_item}");
}
