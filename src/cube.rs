//! A batteries-included facade over the workspace: one type that owns a
//! tiled, disk-block-resident, standard-form wavelet cube and exposes the
//! operations a downstream application actually calls.
//!
//! ```
//! use shiftsplit::WaveletCube;
//! use shiftsplit::array::{NdArray, Shape};
//!
//! let data = NdArray::from_fn(Shape::cube(2, 64), |i| (i[0] + i[1]) as f64);
//! let mut cube = WaveletCube::builder()
//!     .dims(&[64, 64])
//!     .tile_bytes(2048)
//!     .in_memory();
//! cube.ingest(&data);
//! assert!((cube.point(&[17, 42]) - 59.0).abs() < 1e-9);
//! assert!((cube.sum(&[0, 0], &[63, 63]) - data.total()).abs() < 1e-6);
//! ```

use ss_array::NdArray;
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use ss_storage::{
    BlockStore, CoeffStore, FileBlockStore, IoStats, MemBlockStore, SharedCoeffStore,
};
use ss_transform::ArraySource;

/// Builder for [`WaveletCube`].
#[derive(Clone, Debug)]
pub struct WaveletCubeBuilder {
    dims: Vec<usize>,
    tile_bytes: usize,
    pool_blocks: usize,
}

impl Default for WaveletCubeBuilder {
    fn default() -> Self {
        WaveletCubeBuilder {
            dims: Vec::new(),
            tile_bytes: 2048,
            pool_blocks: 1024,
        }
    }
}

impl WaveletCubeBuilder {
    /// Per-axis domain sizes (each a power of two).
    pub fn dims(mut self, dims: &[usize]) -> Self {
        self.dims = dims.to_vec();
        self
    }

    /// Disk-block size in bytes (power of two ≥ 16; default 2 KB). The
    /// per-axis tile sides are derived to fill the block.
    pub fn tile_bytes(mut self, bytes: usize) -> Self {
        self.tile_bytes = bytes;
        self
    }

    /// Buffer-pool budget in blocks (default 1024).
    pub fn pool_blocks(mut self, blocks: usize) -> Self {
        self.pool_blocks = blocks;
        self
    }

    fn geometry(&self) -> (Vec<u32>, Vec<u32>) {
        assert!(!self.dims.is_empty(), "dims not set");
        let levels: Vec<u32> = self.dims.iter().map(|&d| ss_array::log2_exact(d)).collect();
        assert!(
            ss_array::is_pow2(self.tile_bytes) && self.tile_bytes >= 16,
            "tile_bytes must be a power of two ≥ 16"
        );
        // Distribute log2(block coefficients) across axes round-robin,
        // never exceeding an axis's own levels.
        let mut budget = ss_array::log2_exact(self.tile_bytes / 8);
        let mut tiles = vec![0u32; levels.len()];
        while budget > 0 {
            let mut progressed = false;
            for (t, &n) in levels.iter().enumerate() {
                if budget == 0 {
                    break;
                }
                if tiles[t] < n {
                    tiles[t] += 1;
                    budget -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // tiny domain: block bigger than the whole cube
            }
        }
        // Every axis needs at least one tile level for the map to be
        // meaningful when the axis has any levels at all.
        for (t, &n) in levels.iter().enumerate() {
            if n > 0 && tiles[t] == 0 {
                tiles[t] = 1;
            }
        }
        (levels, tiles)
    }

    /// Builds an in-memory cube.
    pub fn in_memory(self) -> WaveletCube<MemBlockStore> {
        let (levels, tiles) = self.geometry();
        let map = StandardTiling::new(&levels, &tiles);
        let stats = IoStats::new();
        let store = MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
        WaveletCube::from_parts(levels, map, store, self.pool_blocks, stats)
    }

    /// Builds a cube backed by a file of real disk blocks (with a CRC-32
    /// checksum sidecar; see `docs/FORMAT.md`).
    pub fn on_disk(
        self,
        path: &std::path::Path,
    ) -> Result<WaveletCube<FileBlockStore>, ss_storage::StorageError> {
        let (levels, tiles) = self.geometry();
        let map = StandardTiling::new(&levels, &tiles);
        let stats = IoStats::new();
        let store =
            FileBlockStore::create(path, map.block_capacity(), map.num_tiles(), stats.clone())?;
        Ok(WaveletCube::from_parts(
            levels,
            map,
            store,
            self.pool_blocks,
            stats,
        ))
    }
}

/// A standard-form wavelet-transformed data cube on tiled block storage.
pub struct WaveletCube<S: BlockStore = MemBlockStore> {
    levels: Vec<u32>,
    // `Option` only so `ingest_parallel` can move the store through a
    // `SharedCoeffStore` and back; always `Some` between method calls.
    cs: Option<CoeffStore<StandardTiling, S>>,
    pool_blocks: usize,
    stats: IoStats,
    fast_point_ready: bool,
}

impl WaveletCube<MemBlockStore> {
    /// Starts configuring a cube.
    pub fn builder() -> WaveletCubeBuilder {
        WaveletCubeBuilder::default()
    }
}

impl<S: BlockStore> WaveletCube<S> {
    fn from_parts(
        levels: Vec<u32>,
        map: StandardTiling,
        store: S,
        pool_blocks: usize,
        stats: IoStats,
    ) -> Self {
        WaveletCube {
            cs: Some(CoeffStore::new(map, store, pool_blocks, stats.clone())),
            pool_blocks,
            levels,
            stats,
            fast_point_ready: false,
        }
    }

    fn cs(&mut self) -> &mut CoeffStore<StandardTiling, S> {
        self.cs.as_mut().expect("coefficient store present")
    }

    /// Per-axis domain sizes.
    pub fn dims(&self) -> Vec<usize> {
        self.levels.iter().map(|&n| 1usize << n).collect()
    }

    /// Shared I/O counters (block and coefficient granularity).
    pub fn io_stats(&self) -> &IoStats {
        &self.stats
    }

    /// Transforms `data` into the cube, out-of-core by chunks.
    ///
    /// # Panics
    ///
    /// Panics when `data`'s shape differs from the cube's.
    pub fn ingest(&mut self, data: &NdArray<f64>) {
        assert_eq!(
            data.shape().dims(),
            self.dims().as_slice(),
            "shape mismatch"
        );
        let chunk_levels: Vec<u32> = self.levels.iter().map(|&n| n.min(3)).collect();
        let src = ArraySource::new(data, &chunk_levels);
        ss_transform::transform_standard(&src, self.cs(), false);
        self.fast_point_ready = false;
    }

    /// Parallel variant of [`WaveletCube::ingest`] (`0` workers = auto):
    /// the coefficient store is rehoused in a sharded, thread-safe buffer
    /// pool for the duration of the transform, with one shard per worker.
    pub fn ingest_parallel(&mut self, data: &NdArray<f64>, workers: usize)
    where
        S: Send + Sync,
    {
        assert_eq!(data.shape().dims(), self.dims().as_slice());
        let chunk_levels: Vec<u32> = self.levels.iter().map(|&n| n.min(3)).collect();
        let src = ArraySource::new(data, &chunk_levels);
        let workers = ss_transform::resolve_workers(workers);
        let (map, store) = self
            .cs
            .take()
            .expect("coefficient store present")
            .into_parts();
        let shared =
            SharedCoeffStore::new(map, store, self.pool_blocks, workers, self.stats.clone());
        ss_transform::transform_standard_parallel(&src, &shared, workers);
        let (map, store) = shared.into_parts();
        self.cs = Some(CoeffStore::new(
            map,
            store,
            self.pool_blocks,
            self.stats.clone(),
        ));
        self.fast_point_ready = false;
    }

    /// The value of one cell.
    pub fn point(&mut self, pos: &[usize]) -> f64 {
        let cs = self.cs.as_mut().expect("coefficient store present");
        ss_query::point_standard(cs, &self.levels, pos)
    }

    /// Single-block point query; materialises the tile scaling slots on
    /// first use (and again after any mutation).
    pub fn fast_point(&mut self, pos: &[usize]) -> f64 {
        if !self.fast_point_ready {
            let cs = self.cs.as_mut().expect("coefficient store present");
            ss_query::materialize_standard_scalings(cs, &self.levels);
            self.fast_point_ready = true;
        }
        ss_query::point_standard_fast(self.cs(), pos)
    }

    /// Sum over the inclusive box `[lo, hi]`.
    pub fn sum(&mut self, lo: &[usize], hi: &[usize]) -> f64 {
        let cs = self.cs.as_mut().expect("coefficient store present");
        ss_query::range_sum_standard(cs, &self.levels, lo, hi)
    }

    /// Mean over the inclusive box `[lo, hi]`.
    pub fn avg(&mut self, lo: &[usize], hi: &[usize]) -> f64 {
        let cells: usize = lo.iter().zip(hi).map(|(&l, &h)| h - l + 1).product();
        self.sum(lo, hi) / cells as f64
    }

    /// Reconstructs the inclusive box `[lo, hi]`.
    pub fn extract(&mut self, lo: &[usize], hi: &[usize]) -> NdArray<f64> {
        let cs = self.cs.as_mut().expect("coefficient store present");
        ss_query::reconstruct_box_standard(cs, &self.levels, lo, hi)
    }

    /// Adds a delta box anchored at `origin`, entirely in the wavelet
    /// domain; returns the number of dyadic pieces applied.
    pub fn update(&mut self, origin: &[usize], delta: &NdArray<f64>) -> usize {
        self.fast_point_ready = false;
        let cs = self.cs.as_mut().expect("coefficient store present");
        ss_transform::update_box_standard(cs, &self.levels, origin, delta).pieces
    }

    /// Builds a K-term synopsis for approximate querying.
    pub fn synopsis(&mut self, k: usize) -> ss_query::StoredSynopsis {
        let cs = self.cs.as_mut().expect("coefficient store present");
        ss_query::StoredSynopsis::build(cs, &self.levels, k)
    }

    /// Direct access to the underlying coefficient store.
    pub fn store(&mut self) -> &mut CoeffStore<StandardTiling, S> {
        self.cs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::Shape;

    fn sample(side: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 7 + idx[1] * 3) % 17) as f64 - 4.0
        })
    }

    #[test]
    fn lifecycle_in_memory() {
        let data = sample(32);
        let mut cube = WaveletCube::builder().dims(&[32, 32]).in_memory();
        cube.ingest(&data);
        assert_eq!(cube.dims(), vec![32, 32]);
        assert!((cube.point(&[9, 21]) - data.get(&[9, 21])).abs() < 1e-9);
        assert!((cube.sum(&[3, 4], &[20, 30]) - data.region_sum(&[3, 4], &[20, 30])).abs() < 1e-6);
        assert!((cube.avg(&[0, 0], &[31, 31]) - data.total() / 1024.0).abs() < 1e-9);
        let region = cube.extract(&[8, 8], &[11, 13]);
        assert!(region.max_abs_diff(&data.extract(&[8, 8], &[4, 6])) < 1e-9);
    }

    #[test]
    fn fast_point_and_invalidation() {
        let data = sample(16);
        let mut cube = WaveletCube::builder()
            .dims(&[16, 16])
            .tile_bytes(128)
            .in_memory();
        cube.ingest(&data);
        assert!((cube.fast_point(&[5, 5]) - data.get(&[5, 5])).abs() < 1e-9);
        // Mutate: fast path must be re-materialised transparently.
        let delta = NdArray::from_fn(Shape::cube(2, 4), |_| 2.0);
        cube.update(&[4, 4], &delta);
        assert!((cube.fast_point(&[5, 5]) - (data.get(&[5, 5]) + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn parallel_ingest_equivalent() {
        let data = sample(32);
        let mut a = WaveletCube::builder().dims(&[32, 32]).in_memory();
        a.ingest(&data);
        let mut b = WaveletCube::builder().dims(&[32, 32]).in_memory();
        b.ingest_parallel(&data, 4);
        for idx in ss_array::MultiIndexIter::new(&[32, 32]).step_by(17) {
            assert!((a.point(&idx) - b.point(&idx)).abs() < 1e-9);
        }
    }

    #[test]
    fn on_disk_cube() {
        let path = std::env::temp_dir().join(format!("ss_cube_{}.ws", std::process::id()));
        let data = sample(16);
        {
            let mut cube = WaveletCube::builder()
                .dims(&[16, 16])
                .tile_bytes(512)
                .on_disk(&path)
                .unwrap();
            cube.ingest(&data);
            assert!((cube.point(&[3, 14]) - data.get(&[3, 14])).abs() < 1e-9);
            cube.store().flush();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synopsis_from_cube() {
        let data = NdArray::from_fn(Shape::cube(2, 32), |idx| {
            (idx[0] as f64 / 5.0).sin() * 10.0 + idx[1] as f64 * 0.1
        });
        let mut cube = WaveletCube::builder().dims(&[32, 32]).in_memory();
        cube.ingest(&data);
        let syn = cube.synopsis(64);
        let exact = data.region_sum(&[2, 2], &[29, 29]);
        let approx = syn.range_sum(&[2, 2], &[29, 29]);
        assert!((approx - exact).abs() / exact.abs().max(1.0) < 0.1);
    }

    #[test]
    fn tile_geometry_heuristic() {
        // 2 KB = 256 coefficients = 2^8 split across axes.
        let b = WaveletCubeBuilder::default()
            .dims(&[256, 256])
            .tile_bytes(2048);
        let (levels, tiles) = b.geometry();
        assert_eq!(levels, vec![8, 8]);
        assert_eq!(tiles.iter().sum::<u32>(), 8);
        // Tiny domain: the block cannot exceed the cube.
        let b = WaveletCubeBuilder::default().dims(&[4, 4]).tile_bytes(4096);
        let (_, tiles) = b.geometry();
        assert!(tiles.iter().all(|&t| t <= 2));
    }

    #[test]
    #[should_panic]
    fn rejects_non_pow2_dims() {
        let _ = WaveletCube::builder().dims(&[10, 16]).in_memory();
    }
}
