//! **shiftsplit** — a reproduction of *"SHIFT-SPLIT: I/O Efficient
//! Maintenance of Wavelet-Transformed Multidimensional Data"*
//! (Jahangiri, Sacharidis, Shahabi — SIGMOD 2005).
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! * [`array`](mod@array) — dense multidimensional arrays and dyadic index math,
//! * [`core`] — Haar transforms, wavelet trees, SHIFT/SPLIT, tiling maps,
//! * [`storage`] — block stores with I/O accounting and tiled coefficient
//!   storage,
//! * [`query`] — point / range-sum / partial-reconstruction queries,
//! * [`transform`] — out-of-core chunked transforms and wavelet-domain
//!   appending,
//! * [`maintain`] — tile-major delta buffering and group-committed
//!   (optionally parallel) batch updates,
//! * [`stream`] — K-term synopses of data streams,
//! * [`datagen`] — synthetic stand-ins for the paper's datasets.
//!
//! For most applications the [`WaveletCube`] facade is the entry point: it
//! owns a tiled block store and exposes ingest/query/update/synopsis in a
//! handful of calls.
//!
//! See the repository's `README.md` for a guided tour, `DESIGN.md` for the
//! system inventory, and `examples/` for runnable end-to-end scenarios.

pub mod cube;

pub use cube::{WaveletCube, WaveletCubeBuilder};
pub use ss_array as array;
pub use ss_core as core;
pub use ss_datagen as datagen;
pub use ss_maintain as maintain;
pub use ss_query as query;
pub use ss_storage as storage;
pub use ss_stream as stream;
pub use ss_transform as transform;
