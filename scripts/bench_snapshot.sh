#!/usr/bin/env bash
# Regenerates the committed wall-clock baselines: BENCH_ingest.json for
# the ingest path (parallel transform drivers + in-domain maintenance),
# BENCH_serve.json for the concurrent query server (the exp_serve
# workers × clients sweep, as ss-exp-v1 JSONL rows), BENCH_update.json
# for the coalesced maintenance engine (the exp_update batch × box-size ×
# form sweep, same row format), BENCH_rw.json for the live read/write
# server (the exp_rw readers × writers sweep over the MVCC snapshot
# store, same row format), BENCH_trace.json for the tracing layer
# (the exp_trace off/ring/export overhead sweep, same row format) and
# BENCH_sparse.json for the sparse v3 storage layout (the exp_sparse
# retention-policy sweep: bytes on disk and query behaviour versus
# reconstruction error, same row format), BENCH_simd.json for the
# hot-kernel layer (the exp_simd kernel-vs-naive sweep run under both
# the scalar and, when a nightly toolchain is present, SIMD builds) and
# BENCH_shard.json for the scatter-gather router (the exp_shard shards ×
# replicas × clients sweep against real shard servers, same row format).
#
# The criterion-shim prints one `group/name   <ns> ns/iter` line per
# benchmark; this script captures those into a small JSON document.
# Numbers are host-dependent single measurements: treat the committed
# baselines as an order-of-magnitude reference when reading experiment
# results, not as a CI regression gate.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_ingest.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

cargo bench -p ss-bench --bench par --bench maintenance | tee "$log"

python3 - "$log" "$out" <<'PY'
import json
import sys

log, out = sys.argv[1], sys.argv[2]
benches = {}
with open(log) as f:
    for line in f:
        parts = line.split()
        if len(parts) >= 3 and parts[2].startswith("ns/iter"):
            benches[parts[0]] = {"ns_per_iter": float(parts[1])}
if not benches:
    sys.exit("no benchmark lines found in the cargo bench output")
with open(out, "w") as f:
    json.dump({"schema": "ss-bench-v1", "benches": benches}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out} ({len(benches)} benches)")
PY

serve_out="${2:-BENCH_serve.json}"
rm -f "$serve_out.tmp"
SS_EXP_JSON="$serve_out.tmp" cargo run --release -q -p ss-bench --bin exp_serve
./scripts/check_metrics_schema rows "$serve_out.tmp"
mv "$serve_out.tmp" "$serve_out"
echo "wrote $serve_out"

update_out="${3:-BENCH_update.json}"
rm -f "$update_out.tmp"
SS_EXP_JSON="$update_out.tmp" cargo run --release -q -p ss-bench --bin exp_update
./scripts/check_metrics_schema rows "$update_out.tmp"
mv "$update_out.tmp" "$update_out"
echo "wrote $update_out"

rw_out="${4:-BENCH_rw.json}"
rm -f "$rw_out.tmp"
SS_EXP_JSON="$rw_out.tmp" cargo run --release -q -p ss-bench --bin exp_rw
./scripts/check_metrics_schema rows "$rw_out.tmp"
mv "$rw_out.tmp" "$rw_out"
echo "wrote $rw_out"

trace_out="${5:-BENCH_trace.json}"
rm -f "$trace_out.tmp"
SS_EXP_JSON="$trace_out.tmp" cargo run --release -q -p ss-bench --bin exp_trace
./scripts/check_metrics_schema rows "$trace_out.tmp"
mv "$trace_out.tmp" "$trace_out"
echo "wrote $trace_out"

sparse_out="${6:-BENCH_sparse.json}"
rm -f "$sparse_out.tmp"
SS_EXP_JSON="$sparse_out.tmp" cargo run --release -q -p ss-bench --bin exp_sparse
./scripts/check_metrics_schema rows "$sparse_out.tmp"
mv "$sparse_out.tmp" "$sparse_out"
echo "wrote $sparse_out"

# BENCH_simd.json needs both kernel builds appended to one file: the
# scalar rows from the stable toolchain, the vector rows from nightly
# (portable_simd). If no nightly toolchain is installed, the scalar rows
# alone are still a valid (if boring) dataset — warn and keep them.
simd_out="${7:-BENCH_simd.json}"
rm -f "$simd_out.tmp"
SS_EXP_JSON="$simd_out.tmp" cargo run --release -q -p ss-bench --bin exp_simd
if cargo +nightly --version >/dev/null 2>&1; then
    SS_EXP_JSON="$simd_out.tmp" cargo +nightly run --release -q -p ss-bench \
        --bin exp_simd --features simd
else
    echo "warning: no nightly toolchain; $simd_out has scalar rows only" >&2
fi
./scripts/check_metrics_schema rows "$simd_out.tmp"
mv "$simd_out.tmp" "$simd_out"
echo "wrote $simd_out"

shard_out="${8:-BENCH_shard.json}"
rm -f "$shard_out.tmp"
SS_EXP_JSON="$shard_out.tmp" cargo run --release -q -p ss-bench --bin exp_shard
./scripts/check_metrics_schema rows "$shard_out.tmp"
mv "$shard_out.tmp" "$shard_out"
echo "wrote $shard_out"
