#!/usr/bin/env bash
# Regenerates every table and figure of the paper (see DESIGN.md §4).
# Outputs land in results/, one markdown file per experiment.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

EXPERIMENTS=(exp_table1 exp_table2 exp_fig11 exp_fig12 exp_fig13 exp_fig14 exp_recon exp_tiling exp_ablation exp_approx exp_streams_md)
# Post-paper extensions (DESIGN.md §7/§9/§10/§11/§12/§14):
# parallel-driver, durability, query-serving, coalesced-maintenance,
# live read/write-serving and sparse-storage sweeps.
EXPERIMENTS+=(exp_par exp_fault exp_serve exp_update exp_rw exp_sparse)
# Kernel-layer sweep (DESIGN.md §15): scalar build here; run again with
# `cargo +nightly ... --features simd` for the vector rows.
EXPERIMENTS+=(exp_simd)
# Scatter-gather router scale-out sweep (DESIGN.md §16).
EXPERIMENTS+=(exp_shard)

cargo build --release -p ss-bench --bins

for exp in "${EXPERIMENTS[@]}"; do
    echo "== $exp =="
    ./target/release/"$exp" | tee "results/$exp.md"
done

echo
echo "All experiment outputs written to results/."
