//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no access to crates.io, so the real harness
//! cannot be vendored. This shim keeps the workspace's `harness = false`
//! bench targets compiling and running unchanged: it implements the API
//! surface they use (`Criterion`, benchmark groups, `Bencher::iter`,
//! `Throughput`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros) over a simple calibrated timing loop.
//!
//! Compared to real criterion there is no statistical analysis, no HTML
//! report and no saved baselines — each benchmark prints one line:
//!
//! ```text
//! group/name           123.4 ns/iter   (8.1 Melem/s)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-compatible opaque-value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration work, used to derive a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels a benchmark as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement_time: Duration::from_millis(300),
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim sizes its measurement by time,
    /// not by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Target measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.ns_per_iter);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            ns_per_iter: 0.0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.ns_per_iter);
        self
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, ns_per_iter: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(
                    "   ({})",
                    fmt_rate(n as f64 / (ns_per_iter * 1e-9), "elem/s")
                )
            }
            Some(Throughput::Bytes(n)) => {
                format!("   ({})", fmt_rate(n as f64 / (ns_per_iter * 1e-9), "B/s"))
            }
            None => String::new(),
        };
        println!(
            "{:<50} {:>12} ns/iter{rate}",
            format!("{}/{id}", self.name),
            format!("{ns_per_iter:.1}"),
        );
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.2} {unit}")
    }
}

/// Passed to each benchmark closure; [`iter`](Bencher::iter) measures the
/// routine.
pub struct Bencher {
    measurement_time: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`: one warm-up call calibrates an iteration count that
    /// fills the measurement window, then the timed loop runs it.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters =
            (self.measurement_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Bundles benchmark functions into a named runner, mirroring criterion's
/// macro of the same name (the `Criterion::default()` config form is not
/// supported — the workspace does not use it).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran > 0, "routine never executed");
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("fwd", 128).to_string(), "fwd/128");
    }
}
