//! Criterion micro-benchmarks: stream synopsis maintenance throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ss_stream::{BufferedStream, PerItemStream};

const N_LEVELS: u32 = 16;
const K: usize = 32;

fn bench_stream(c: &mut Criterion) {
    let n = 1usize << N_LEVELS;
    let data = ss_datagen::sensor_stream(n, 5);
    let mut group = c.benchmark_group("stream_synopsis");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    group.bench_function("per_item", |b| {
        b.iter(|| {
            let mut s = PerItemStream::new(K, N_LEVELS);
            for &x in &data {
                s.push(x);
            }
            s.work()
        })
    });
    for buf in [4u32, 8] {
        group.bench_with_input(
            BenchmarkId::new("buffered", 1usize << buf),
            &buf,
            |b, &buf| {
                b.iter(|| {
                    let mut s = BufferedStream::new(K, buf, N_LEVELS);
                    for &x in &data {
                        s.push(x);
                    }
                    s.work()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
