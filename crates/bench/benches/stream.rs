//! Criterion micro-benchmarks: stream synopsis maintenance throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ss_array::{NdArray, Shape};
use ss_stream::{BufferedStream, NonStandardStreamSynopsis, PerItemStream};

const N_LEVELS: u32 = 16;
const K: usize = 32;

fn bench_stream(c: &mut Criterion) {
    let n = 1usize << N_LEVELS;
    let data = ss_datagen::sensor_stream(n, 5);
    let mut group = c.benchmark_group("stream_synopsis");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    group.bench_function("per_item", |b| {
        b.iter(|| {
            let mut s = PerItemStream::new(K, N_LEVELS);
            for &x in &data {
                s.push(x);
            }
            s.work()
        })
    });
    for buf in [4u32, 8] {
        group.bench_with_input(
            BenchmarkId::new("buffered", 1usize << buf),
            &buf,
            |b, &buf| {
                b.iter(|| {
                    let mut s = BufferedStream::new(K, buf, N_LEVELS);
                    for &x in &data {
                        s.push(x);
                    }
                    s.work()
                })
            },
        );
    }
    group.finish();
}

/// Result 5 hot path: z-ordered sub-chunks through the indexed cube
/// crest (formerly a tuple-keyed hash map — this bench guards the
/// allocation-free rewrite).
fn bench_multidim_stream(c: &mut Criterion) {
    let (d, n, m, t_levels) = (2usize, 4u32, 1u32, 4u32);
    let subs_per_cube = 1usize << (d as u32 * (n - m));
    let cubes = 1usize << t_levels;
    let mut rng = ss_datagen::SplitMix64::new(17);
    let subchunks: Vec<NdArray<f64>> = (0..cubes * subs_per_cube)
        .map(|_| NdArray::from_fn(Shape::new(&[2, 2]), |_| rng.range(-8.0, 8.0)))
        .collect();
    let mut group = c.benchmark_group("stream_synopsis");
    group.throughput(Throughput::Elements(subchunks.len() as u64));
    group.sample_size(20);
    group.bench_function("nonstandard_multidim_push", |b| {
        b.iter(|| {
            let mut s = NonStandardStreamSynopsis::new(K, d, n, m, t_levels);
            for sub in &subchunks {
                s.push_subchunk(sub);
            }
            s.finish()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream, bench_multidim_stream);
criterion_main!(benches);
