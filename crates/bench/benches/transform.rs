//! Criterion micro-benchmarks: out-of-core transform drivers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ss_array::{NdArray, Shape};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_storage::{wstore::mem_store, IoStats};
use ss_transform::{
    transform_nonstandard_zorder, transform_standard, vitter_transform_standard, ArraySource,
};

const N: u32 = 7; // 128 x 128
const M: u32 = 4; // 16 x 16 chunks
const B: u32 = 2; // 4 x 4 tiles

fn bench_transforms(c: &mut Criterion) {
    let side = 1usize << N;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] * 31 + idx[1] * 17) % 23) as f64
    });
    let mut group = c.benchmark_group("out_of_core_transform_128x128");
    group.throughput(Throughput::Elements((side * side) as u64));
    group.sample_size(20);
    group.bench_function("shift_split_standard", |b| {
        b.iter(|| {
            let src = ArraySource::new(&data, &[M; 2]);
            let mut cs = mem_store(StandardTiling::new(&[N; 2], &[B; 2]), 64, IoStats::new());
            transform_standard(&src, &mut cs, false)
        })
    });
    group.bench_function("shift_split_nonstandard_zorder", |b| {
        b.iter(|| {
            let src = ArraySource::new(&data, &[M; 2]);
            let mut cs = mem_store(NonStandardTiling::new(2, N, B), 64, IoStats::new());
            transform_nonstandard_zorder(&src, &mut cs)
        })
    });
    group.bench_function("vitter_baseline", |b| {
        b.iter(|| {
            let src = ArraySource::new(&data, &[M; 2]);
            vitter_transform_standard(&src, 1 << (2 * M), 1 << (2 * B), IoStats::new())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
