//! Criterion micro-benchmarks: queries over tiled stores.

use criterion::{criterion_group, criterion_main, Criterion};
use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_core::tiling::StandardTiling;
use ss_storage::{wstore::mem_store, CoeffStore, IoStats, MemBlockStore};

const N: u32 = 8; // 256 x 256

fn build() -> CoeffStore<StandardTiling, MemBlockStore> {
    let side = 1usize << N;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] * 13 + idx[1] * 7) % 29) as f64
    });
    let t = ss_core::standard::forward_to(&data);
    let mut cs = mem_store(
        StandardTiling::new(&[N; 2], &[2; 2]),
        1 << 14,
        IoStats::new(),
    );
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }
    ss_query::materialize_standard_scalings(&mut cs, &[N; 2]);
    cs
}

fn bench_queries(c: &mut Criterion) {
    let mut cs = build();
    let mut group = c.benchmark_group("queries_256x256");
    group.bench_function("point_plain", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 97 + 31) % (256 * 256);
            ss_query::point_standard(&mut cs, &[N; 2], &[i / 256, i % 256])
        })
    });
    group.bench_function("point_fast_path", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 97 + 31) % (256 * 256);
            ss_query::point_standard_fast(&mut cs, &[i / 256, i % 256])
        })
    });
    group.bench_function("range_sum_32x32", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 53 + 17) % 224;
            ss_query::range_sum_standard(&mut cs, &[N; 2], &[i, i], &[i + 31, i + 31])
        })
    });
    group.bench_function("reconstruct_16x16", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 53 + 17) % 224;
            ss_query::reconstruct_box_standard(&mut cs, &[N; 2], &[i, i], &[i + 15, i + 15])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
