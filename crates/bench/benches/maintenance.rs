//! Criterion micro-benchmarks: wavelet-domain maintenance operations
//! (batch updates, appends, domain expansion).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ss_array::{NdArray, Shape};
use ss_core::tiling::StandardTiling;
use ss_storage::{wstore::mem_store, IoStats, MemBlockStore};
use ss_transform::{update_box_standard, Appender};

fn bench_updates(c: &mut Criterion) {
    let side = 256usize;
    let n = [8u32, 8];
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| (idx[0] + idx[1]) as f64);
    let t = ss_core::standard::forward_to(&data);
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(20);

    let delta = NdArray::from_fn(Shape::new(&[30, 50]), |idx| (idx[0] * idx[1]) as f64 * 0.01);
    group.throughput(Throughput::Elements(delta.len() as u64));
    group.bench_function("update_box_30x50_in_256x256", |b| {
        let mut cs = mem_store(StandardTiling::new(&n, &[2; 2]), 1 << 12, IoStats::new());
        for idx in ss_array::MultiIndexIter::new(&[side, side]) {
            cs.write(&idx, t.get(&idx));
        }
        b.iter(|| update_box_standard(&mut cs, &n, &[13, 77], &delta))
    });

    group.bench_function("append_month_8x8x32", |b| {
        let chunk = NdArray::from_fn(Shape::new(&[8, 8, 32]), |idx| {
            (idx[0] + idx[1] + idx[2]) as f64
        });
        b.iter(|| {
            let stats = IoStats::new();
            let s2 = stats.clone();
            let mut app = Appender::new(
                &[3, 3, 5],
                &[2, 2, 2],
                2,
                move |cap, blocks| MemBlockStore::new(cap, blocks, s2.clone()),
                1 << 10,
                stats,
            );
            for _ in 0..4 {
                app.append(&chunk);
            }
            app.expansions()
        })
    });

    group.bench_function("expand_64x1024_domain", |b| {
        // One forced expansion of a filled 64x1024 store.
        let chunk = NdArray::from_fn(Shape::new(&[64, 1024]), |idx| (idx[0] ^ idx[1]) as f64);
        b.iter(|| {
            let stats = IoStats::new();
            let s2 = stats.clone();
            let mut app = Appender::new(
                &[6, 10],
                &[2, 3],
                1,
                move |cap, blocks| MemBlockStore::new(cap, blocks, s2.clone()),
                1 << 10,
                stats,
            );
            app.append(&chunk);
            app.append(&chunk); // doubles the domain
            app.expansions()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
