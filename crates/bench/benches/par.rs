//! Criterion micro-benchmarks: parallel vs serial out-of-core drivers.
//!
//! Wall-clock speedups require real cores; on a single-CPU host the
//! parallel entries measure the sharding/locking overhead instead (see
//! `exp_par` for the worker sweep with I/O counters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ss_array::{NdArray, Shape};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_storage::{mem_shared_store, wstore::mem_store, IoStats};
use ss_transform::{
    transform_nonstandard_parallel, transform_nonstandard_zorder, transform_standard,
    transform_standard_parallel, ArraySource,
};

const N: u32 = 7; // 128 x 128
const M: u32 = 4; // 16 x 16 chunks
const B: u32 = 2; // 4 x 4 tiles
const POOL: usize = 64;

fn bench_parallel(c: &mut Criterion) {
    let side = 1usize << N;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] * 31 + idx[1] * 17) % 23) as f64
    });
    let mut group = c.benchmark_group("parallel_transform_128x128");
    group.throughput(Throughput::Elements((side * side) as u64));
    group.sample_size(20);
    group.bench_function("standard_serial", |b| {
        b.iter(|| {
            let src = ArraySource::new(&data, &[M; 2]);
            let mut cs = mem_store(StandardTiling::new(&[N; 2], &[B; 2]), POOL, IoStats::new());
            transform_standard(&src, &mut cs, false)
        })
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("standard_parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let src = ArraySource::new(&data, &[M; 2]);
                    let cs = mem_shared_store(
                        StandardTiling::new(&[N; 2], &[B; 2]),
                        POOL,
                        workers.max(2),
                        IoStats::new(),
                    );
                    transform_standard_parallel(&src, &cs, workers)
                })
            },
        );
    }
    group.bench_function("nonstandard_zorder_serial", |b| {
        b.iter(|| {
            let src = ArraySource::new(&data, &[M; 2]);
            let mut cs = mem_store(NonStandardTiling::new(2, N, B), POOL, IoStats::new());
            transform_nonstandard_zorder(&src, &mut cs)
        })
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("nonstandard_parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let src = ArraySource::new(&data, &[M; 2]);
                    let cs = mem_shared_store(
                        NonStandardTiling::new(2, N, B),
                        POOL,
                        workers.max(2),
                        IoStats::new(),
                    );
                    transform_nonstandard_parallel(&src, &cs, workers)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
