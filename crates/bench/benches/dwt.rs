//! Criterion micro-benchmarks: Haar codecs (1-d, standard, non-standard).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ss_array::{NdArray, Shape};

fn bench_haar1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar1d");
    for n in [10u32, 14, 18] {
        let len = 1usize << n;
        let data: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("forward", len), &data, |b, data| {
            b.iter(|| {
                let mut v = data.clone();
                ss_core::haar1d::forward(&mut v);
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("inverse", len), &data, |b, data| {
            let coeffs = ss_core::haar1d::forward_to_vec(data);
            b.iter(|| {
                let mut v = coeffs.clone();
                ss_core::haar1d::inverse(&mut v);
                v
            })
        });
    }
    group.finish();
}

fn bench_multidim(c: &mut Criterion) {
    let mut group = c.benchmark_group("multidim");
    for side in [64usize, 256] {
        let a = NdArray::from_fn(Shape::cube(2, side), |idx| {
            (idx[0] as f64 * 0.11).sin() + idx[1] as f64 * 0.01
        });
        group.throughput(Throughput::Elements((side * side) as u64));
        group.bench_with_input(BenchmarkId::new("standard_2d", side), &a, |b, a| {
            b.iter(|| ss_core::standard::forward_to(a))
        });
        group.bench_with_input(BenchmarkId::new("nonstandard_2d", side), &a, |b, a| {
            b.iter(|| ss_core::nonstandard::forward_to(a))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_haar1d, bench_multidim);
criterion_main!(benches);
