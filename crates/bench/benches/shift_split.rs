//! Criterion micro-benchmarks: the SHIFT and SPLIT primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ss_array::{NdArray, Shape};

fn bench_shift_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("shift");
    // Re-indexing throughput: the cost of SHIFT is pure index arithmetic.
    let (n, m, block) = (20u32, 10u32, 517usize);
    group.throughput(Throughput::Elements((1 << m) - 1));
    group.bench_function("shift_index_1d_full_chunk", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for local in 1..(1usize << m) {
                acc ^= ss_core::shift::shift_index_1d(n, m, block, local);
            }
            acc
        })
    });
    group.finish();
}

fn bench_split_targets(c: &mut Criterion) {
    let mut group = c.benchmark_group("split");
    for n in [16u32, 24, 32] {
        group.bench_with_input(BenchmarkId::new("split_targets_1d", n), &n, |b, &n| {
            b.iter(|| ss_core::split::split_targets_1d(n, 4, 1234 % (1usize << (n - 4))))
        });
    }
    group.finish();
}

fn bench_chunk_deltas(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_deltas");
    // The full delta stream of one transformed chunk, both forms, d=2.
    let (n, m) = (12u32, 5u32);
    let chunk = {
        let mut a = NdArray::from_fn(Shape::cube(2, 1 << m), |idx| {
            ((idx[0] * 7 + idx[1] * 3) % 11) as f64
        });
        ss_core::standard::forward(&mut a);
        a
    };
    group.throughput(Throughput::Elements(chunk.len() as u64));
    group.bench_function("standard_deltas_32x32_into_4096x4096", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            ss_core::split::standard_deltas(&chunk, &[n, n], &[3, 5], |_, delta| acc += delta);
            acc
        })
    });
    let ns_chunk = {
        let mut a = NdArray::from_fn(Shape::cube(2, 1 << m), |idx| {
            ((idx[0] * 7 + idx[1] * 3) % 11) as f64
        });
        ss_core::nonstandard::forward(&mut a);
        a
    };
    group.bench_function("nonstandard_deltas_32x32_into_4096x4096", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            ss_core::split::nonstandard_deltas(&ns_chunk, n, &[3, 5], |_, delta| acc += delta);
            acc
        })
    });
    group.finish();
}

fn bench_forward_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dwt");
    // Many small chunk transforms — the shape of the maintenance hot path,
    // where the per-line scratch reuse in haar1d/standard matters most.
    let chunks: Vec<NdArray<f64>> = (0..64)
        .map(|s| {
            NdArray::from_fn(Shape::cube(2, 8), |idx| {
                ((idx[0] * 7 + idx[1] * 3 + s) % 11) as f64
            })
        })
        .collect();
    group.throughput(Throughput::Elements(
        (chunks.len() * chunks[0].len()) as u64,
    ));
    group.bench_function("standard_forward_64x_8x8_chunks", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for c in &chunks {
                let mut t = c.clone();
                ss_core::standard::forward(&mut t);
                acc += t.get(&[0, 0]);
            }
            acc
        })
    });
    let big = NdArray::from_fn(Shape::cube(2, 256), |idx| {
        ((idx[0] * 31 + idx[1] * 17) % 23) as f64 - 7.0
    });
    group.throughput(Throughput::Elements(big.len() as u64));
    group.bench_function("standard_forward_256x256", |b| {
        b.iter(|| {
            let mut t = big.clone();
            ss_core::standard::forward(&mut t);
            t.get(&[0, 0])
        })
    });
    let line: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin()).collect();
    group.throughput(Throughput::Elements(line.len() as u64));
    group.bench_function("haar1d_forward_4096", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let mut v = line.clone();
            ss_core::haar1d::forward_with(&mut v, &mut scratch);
            v[0]
        })
    });
    group.finish();
}

fn bench_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("expand");
    let coeffs: Vec<f64> = (0..(1 << 16)).map(|i| (i as f64 * 0.01).cos()).collect();
    group.throughput(Throughput::Elements(coeffs.len() as u64));
    group.bench_function("expand_1d_64k", |b| {
        b.iter(|| ss_core::append::expand_1d(&coeffs))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shift_index,
    bench_split_targets,
    bench_chunk_deltas,
    bench_forward_kernels,
    bench_expand
);
criterion_main!(benches);
