//! Shared infrastructure for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for recorded
//! results). The binaries print markdown tables to stdout; run them all
//! with `scripts/run_experiments.sh`.
//!
//! The paper's absolute numbers came from a 2005 testbed and 16 GB inputs;
//! the harnesses default to laptop-scale shapes that preserve every *ratio*
//! the paper argues about (who wins, by what factor, where the crossovers
//! sit). Scale knobs are compiled in as constants at the top of each
//! binary.

// Axis-indexed loops over parallel arrays are the clearest idiom here.
#![allow(clippy::needless_range_loop)]

use std::fmt::Display;

/// Accumulates rows and prints a markdown table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringifying each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Pretty-prints a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// `x` rounded to `digits` decimal places, as a string.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&[&1, &"xyz"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a |"), "{md}");
        assert!(md.contains("xyz"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    #[should_panic]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(&["a"]);
        t.row(&[&1, &2]);
    }

    #[test]
    fn fmt_count_groups() {
        assert_eq!(fmt_count(1), "1");
        assert_eq!(fmt_count(1234), "1,234");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }
}
