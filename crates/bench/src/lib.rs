//! Shared infrastructure for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for recorded
//! results). The binaries print markdown tables to stdout; run them all
//! with `scripts/run_experiments.sh`.
//!
//! The paper's absolute numbers came from a 2005 testbed and 16 GB inputs;
//! the harnesses default to laptop-scale shapes that preserve every *ratio*
//! the paper argues about (who wins, by what factor, where the crossovers
//! sit). Scale knobs are compiled in as constants at the top of each
//! binary.

// Axis-indexed loops over parallel arrays are the clearest idiom here.
#![allow(clippy::needless_range_loop)]

use ss_obs::json::Value;
use std::fmt::Display;

/// Accumulates rows and prints a markdown table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringifying each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Pretty-prints a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// `x` rounded to `digits` decimal places, as a string.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Times `f`, returning its result and the elapsed wall milliseconds.
///
/// One [`ss_obs::Stopwatch`] behind one helper — the harnesses used to
/// hand-roll `Instant` arithmetic with per-binary ms conversions, which is
/// exactly how unit slips creep into reported tables.
pub fn timed_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let sw = ss_obs::Stopwatch::start();
    let r = f();
    let ms = sw.elapsed_ms();
    (r, ms)
}

/// Emits one machine-readable result row as a single-line JSON object
/// tagged `"schema": "ss-exp-v1"` and `"exp": <name>`.
///
/// When the `SS_EXP_JSON` environment variable names a file, rows append
/// to it (JSONL, one object per line) so a sweep of binaries accumulates
/// a dataset; otherwise the row prints to stdout prefixed `JSON: `,
/// coexisting with the human-readable markdown tables.
pub fn emit_json_row(exp: &str, fields: &[(&str, Value)]) {
    let mut pairs = vec![
        ("schema".to_string(), Value::from("ss-exp-v1")),
        ("exp".to_string(), Value::from(exp)),
    ];
    for (key, value) in fields {
        pairs.push((key.to_string(), value.clone()));
    }
    let line = Value::Object(pairs).to_string();
    match std::env::var_os("SS_EXP_JSON") {
        Some(path) => {
            use std::io::Write;
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{line}"));
            if let Err(e) = appended {
                eprintln!("SS_EXP_JSON: cannot append to {path:?}: {e}");
            }
        }
        None => println!("JSON: {line}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&[&1, &"xyz"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a |"), "{md}");
        assert!(md.contains("xyz"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    #[should_panic]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(&["a"]);
        t.row(&[&1, &2]);
    }

    #[test]
    fn fmt_count_groups() {
        assert_eq!(fmt_count(1), "1");
        assert_eq!(fmt_count(1234), "1,234");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn timed_ms_returns_result_and_wall_clock() {
        let (value, ms) = timed_ms(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(value, 42);
        assert!(ms >= 2.0, "{ms}");
    }

    #[test]
    fn json_rows_append_to_the_env_named_file() {
        let path = std::env::temp_dir().join(format!("ss_exp_rows_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        std::env::set_var("SS_EXP_JSON", &path);
        emit_json_row(
            "par",
            &[
                ("workers", Value::from(4u64)),
                ("wall_ms", Value::from(1.5)),
            ],
        );
        emit_json_row("par", &[("workers", Value::from(8u64))]);
        std::env::remove_var("SS_EXP_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        let rows: Vec<Value> = text
            .lines()
            .map(|l| ss_obs::json::parse(l).unwrap())
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("schema").unwrap().as_str(), Some("ss-exp-v1"));
        assert_eq!(rows[0].get("exp").unwrap().as_str(), Some("par"));
        assert_eq!(rows[0].get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(rows[0].get("wall_ms").unwrap().as_f64(), Some(1.5));
        assert_eq!(rows[1].get("workers").unwrap().as_u64(), Some(8));
        std::fs::remove_file(&path).ok();
    }
}
