//! **E-UPDATE** — batch size × box size × form sweep of the coalesced
//! maintenance engine.
//!
//! Not a paper experiment: the paper analyses a *single* box update
//! (Example 2); this harness measures what changes when a workload of many
//! boxes is group-committed through the tile-major delta buffer instead
//! of applied one read-modify-write cycle at a time. A 64×64 store sits
//! behind a [`ThrottledBlockStore`] emulating a device with symmetric
//! 150 µs per-block latency, so saved block I/O shows up as saved wall
//! time rather than vanishing into memcpy noise.
//!
//! Three paths per configuration, all producing the same coefficients
//! (bit-identical for `serial`/`group`/`parallel` — the group flush
//! replays deltas in arrival order):
//!
//! * **serial** — `update_box_standard` per box: each box pays a flush,
//!   re-writing the split-path tiles near the root once *per box*;
//! * **group** — one `DeltaBuffer` group-commit for the whole batch:
//!   exactly one read-modify-write per dirty tile;
//! * **parallel** — the same flush sharded over 4 workers of the sharded
//!   pool.
//!
//! The interesting columns: `blk W` (block writes — the group paths write
//! exactly the dirty-tile count), `coalesce` (per-box tile touches per
//! tile actually written; grows with batch size as boxes overlap on the
//! split paths) and `speedup` (serial wall time over this path's).

use ss_array::{NdArray, Shape};
use ss_bench::{emit_json_row, fmt_f, timed_ms, Table};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_core::TilingMap;
use ss_datagen::SplitMix64;
use ss_maintain::FlushMode;
use ss_obs::json::Value;
use ss_storage::{CoeffStore, IoStats, MemBlockStore, SharedCoeffStore, ThrottledBlockStore};
use std::time::Duration;

const N: u32 = 6; // 64 x 64 domain
const B: u32 = 2; // 4x4-coefficient tiles
const POOL: usize = 8; // pool far smaller than the touched tile set
const SHARDS: usize = 4;
const WORKERS: usize = 4;
const LAT_US: u64 = 150;
const BATCHES: [usize; 4] = [1, 4, 16, 64];
const BOX_SIDES: [usize; 2] = [4, 8];

type Throttled = ThrottledBlockStore<MemBlockStore>;

fn throttled(map: &impl TilingMap, stats: IoStats) -> Throttled {
    let mem = MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats);
    ThrottledBlockStore::new(
        mem,
        Duration::from_micros(LAT_US),
        Duration::from_micros(LAT_US),
    )
}

/// `count` random `side`-sided boxes, clustered in one hot quadrant of
/// the `2^N`-sided square domain (update workloads are typically skewed;
/// clustering also exercises the cross-box tile overlap the buffer is
/// built to coalesce). Deterministic per configuration.
fn random_boxes(count: usize, side: usize, seed: u64) -> Vec<(Vec<usize>, NdArray<f64>)> {
    let hot = (1usize << N) / 2;
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let origin: Vec<usize> = (0..2).map(|_| rng.below(hot - side + 1)).collect();
            let delta = NdArray::from_fn(Shape::cube(2, side), |_| rng.range(-1.0, 1.0));
            (origin, delta)
        })
        .collect()
}

struct PathResult {
    wall_ms: f64,
    block_writes: u64,
    tiles_written: u64,
    tile_touches: u64,
}

fn run_serial<M: TilingMap>(
    map: M,
    form: &str,
    boxes: &[(Vec<usize>, NdArray<f64>)],
) -> PathResult {
    let stats = IoStats::new();
    let store = throttled(&map, stats.clone());
    let mut cs = CoeffStore::new(map, store, POOL, stats.clone());
    let (_, wall_ms) = timed_ms(|| {
        for (origin, delta) in boxes {
            if form == "standard" {
                ss_transform::update_box_standard(&mut cs, &[N; 2], origin, delta);
            } else {
                ss_transform::update_box_nonstandard(&mut cs, N, origin, delta);
            }
        }
    });
    PathResult {
        wall_ms,
        block_writes: stats.snapshot().block_writes,
        tiles_written: 0,
        tile_touches: 0,
    }
}

fn run_group<M: TilingMap>(map: M, form: &str, boxes: &[(Vec<usize>, NdArray<f64>)]) -> PathResult {
    let stats = IoStats::new();
    let store = throttled(&map, stats.clone());
    let mut cs = CoeffStore::new(map, store, POOL, stats.clone());
    let (report, wall_ms) = timed_ms(|| {
        if form == "standard" {
            ss_maintain::update_boxes_standard(&mut cs, &[N; 2], boxes, FlushMode::Exact)
        } else {
            ss_maintain::update_boxes_nonstandard(&mut cs, N, boxes, FlushMode::Exact)
        }
    });
    PathResult {
        wall_ms,
        block_writes: stats.snapshot().block_writes,
        tiles_written: report.flush.tiles_written,
        tile_touches: report.flush.tile_touches,
    }
}

fn run_parallel<M: TilingMap>(
    map: M,
    form: &str,
    boxes: &[(Vec<usize>, NdArray<f64>)],
) -> PathResult {
    let stats = IoStats::new();
    let store = throttled(&map, stats.clone());
    let cs = SharedCoeffStore::new(map, store, POOL, SHARDS, stats.clone());
    let (report, wall_ms) = timed_ms(|| {
        if form == "standard" {
            ss_maintain::update_boxes_standard_parallel(
                &cs,
                &[N; 2],
                boxes,
                FlushMode::Exact,
                WORKERS,
            )
        } else {
            ss_maintain::update_boxes_nonstandard_parallel(&cs, N, boxes, FlushMode::Exact, WORKERS)
        }
    });
    PathResult {
        wall_ms,
        block_writes: stats.snapshot().block_writes,
        tiles_written: report.flush.tiles_written,
        tile_touches: report.flush.tile_touches,
    }
}

fn main() {
    println!("# E-UPDATE — coalesced box-update maintenance sweep\n");
    println!(
        "64x64 domain, 4x4-coefficient tiles, {POOL}-block pool, {LAT_US} µs \
         symmetric emulated block latency; group/parallel paths flush one \
         arrival-ordered group commit (bit-identical to serial); parallel \
         shards the flush over {WORKERS} workers\n"
    );
    let mut table = Table::new(&[
        "form", "boxes", "side", "path", "wall ms", "boxes/s", "blk W", "tiles", "coalesce",
        "speedup",
    ]);
    for form in ["standard", "nonstandard"] {
        for &side in &BOX_SIDES {
            for &batch in &BATCHES {
                let seed = 0xE0_0000 | ((side as u64) << 8) | batch as u64;
                let boxes = random_boxes(batch, side, seed);
                let serial = if form == "standard" {
                    run_serial(StandardTiling::cube(2, N, B), form, &boxes)
                } else {
                    run_serial(NonStandardTiling::new(2, N, B), form, &boxes)
                };
                let group = if form == "standard" {
                    run_group(StandardTiling::cube(2, N, B), form, &boxes)
                } else {
                    run_group(NonStandardTiling::new(2, N, B), form, &boxes)
                };
                let par = if form == "standard" {
                    run_parallel(StandardTiling::cube(2, N, B), form, &boxes)
                } else {
                    run_parallel(NonStandardTiling::new(2, N, B), form, &boxes)
                };
                for (path, r) in [("serial", &serial), ("group", &group), ("parallel", &par)] {
                    let ratio = if r.tiles_written == 0 {
                        1.0
                    } else {
                        r.tile_touches as f64 / r.tiles_written as f64
                    };
                    let speedup = serial.wall_ms / r.wall_ms;
                    table.row(&[
                        &form,
                        &batch,
                        &side,
                        &path,
                        &fmt_f(r.wall_ms, 1),
                        &fmt_f(batch as f64 / (r.wall_ms / 1000.0), 1),
                        &r.block_writes,
                        &r.tiles_written,
                        &fmt_f(ratio, 2),
                        &fmt_f(speedup, 2),
                    ]);
                    emit_json_row(
                        "update",
                        &[
                            ("form", Value::from(form)),
                            ("batch", Value::from(batch)),
                            ("box_side", Value::from(side)),
                            ("path", Value::from(path)),
                            ("wall_ms", Value::from(r.wall_ms)),
                            (
                                "boxes_per_s",
                                Value::from(batch as f64 / (r.wall_ms / 1000.0)),
                            ),
                            ("block_writes", Value::from(r.block_writes)),
                            ("tiles_written", Value::from(r.tiles_written)),
                            ("tile_touches", Value::from(r.tile_touches)),
                            ("coalescing_ratio", Value::from(ratio)),
                            ("speedup_vs_serial", Value::from(speedup)),
                        ],
                    );
                }
            }
        }
    }
    println!();
    table.print();
}
