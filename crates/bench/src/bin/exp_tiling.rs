//! **E8 / Section 3 ablation** — the value of the tiled block allocation.
//!
//! Compares per-query *block reads* on the same transformed data under
//! three layouts/plans:
//!
//! 1. row-major (naive) allocation, Lemma 1/2 plans,
//! 2. subtree tiling, Lemma 1/2 plans (root paths cluster into
//!    `≈ ceil(n/b)` tiles),
//! 3. subtree tiling + materialised scaling slots, single-tile fast path.
//!
//! This isolates the claim that tiling "minimises the number of disk I/Os
//! needed to perform any operation in the wavelet domain", and quantifies
//! the extra win from the redundant per-tile scaling coefficient.

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_bench::{fmt_f, Table};
use ss_core::tiling::{NaiveMap, StandardTiling};
use ss_core::TilingMap;
use ss_datagen::SplitMix64;
use ss_query::{point_standard, point_standard_fast, range_sum_standard};
use ss_storage::{wstore::mem_store, CoeffStore, IoStats, MemBlockStore};

const N_LEVELS: u32 = 8; // 256 x 256
const B_LEVELS: u32 = 2; // 16-coefficient tiles (4x4)
const QUERIES: usize = 500;

fn fill<M: TilingMap>(map: M, t: &NdArray<f64>, stats: IoStats) -> CoeffStore<M, MemBlockStore> {
    let mut cs = mem_store(map, 1 << 14, stats);
    for idx in MultiIndexIter::new(t.shape().dims()) {
        cs.write(&idx, t.get(&idx));
    }
    cs.flush();
    cs
}

fn main() {
    let side = 1usize << N_LEVELS;
    println!("# E8 — block reads per query: naive vs tiled vs tiled+fast-path\n");
    println!("dataset {side} x {side}, 4 x 4 tiles, {QUERIES} random queries each\n");
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] * 13 + idx[1] * 7) % 29) as f64
    });
    let t = ss_core::standard::forward_to(&data);

    let stats_n = IoStats::new();
    let mut naive = fill(
        NaiveMap::new(Shape::cube(2, side), 1 << (2 * B_LEVELS as usize)),
        &t,
        stats_n.clone(),
    );
    let stats_t = IoStats::new();
    let mut tiled = fill(
        StandardTiling::new(&[N_LEVELS; 2], &[B_LEVELS; 2]),
        &t,
        stats_t.clone(),
    );
    ss_query::materialize_standard_scalings(&mut tiled, &[N_LEVELS; 2]);

    let mut rng = SplitMix64::new(99);
    let points: Vec<[usize; 2]> = (0..QUERIES)
        .map(|_| [rng.below(side), rng.below(side)])
        .collect();
    let ranges: Vec<([usize; 2], [usize; 2])> = (0..QUERIES)
        .map(|_| {
            let lo = [rng.below(side - 16), rng.below(side - 16)];
            let hi = [lo[0] + 1 + rng.below(15), lo[1] + 1 + rng.below(15)];
            (lo, hi)
        })
        .collect();

    let mut table = Table::new(&["query", "layout/plan", "avg block reads", "avg coeff reads"]);

    // Point queries.
    let run_points =
        |label: &str, stats: &IoStats, f: &mut dyn FnMut(&[usize; 2]) -> f64| -> (f64, f64) {
            let mut blocks = 0u64;
            let mut coeffs = 0u64;
            for p in &points {
                stats.reset();
                let got = f(p);
                let want = data.get(p);
                assert!((got - want).abs() < 1e-9, "{label}: wrong answer at {p:?}");
                let used = stats.take();
                blocks += used.block_reads;
                coeffs += used.coeff_reads;
            }
            (
                blocks as f64 / QUERIES as f64,
                coeffs as f64 / QUERIES as f64,
            )
        };

    naive.clear_cache();
    let (b, c) = run_points("naive", &stats_n, &mut |p| {
        naive.clear_cache();
        point_standard(&mut naive, &[N_LEVELS; 2], p)
    });
    table.row(&[&"point", &"naive row-major", &fmt_f(b, 2), &fmt_f(c, 1)]);

    let (b, c) = run_points("tiled", &stats_t, &mut |p| {
        tiled.clear_cache();
        point_standard(&mut tiled, &[N_LEVELS; 2], p)
    });
    table.row(&[&"point", &"subtree tiles", &fmt_f(b, 2), &fmt_f(c, 1)]);

    let (b, c) = run_points("fast", &stats_t, &mut |p| {
        tiled.clear_cache();
        point_standard_fast(&mut tiled, p)
    });
    table.row(&[&"point", &"tiles + fast path", &fmt_f(b, 2), &fmt_f(c, 1)]);

    // Range sums.
    let run_ranges =
        |stats: &IoStats, f: &mut dyn FnMut(&[usize; 2], &[usize; 2]) -> f64| -> (f64, f64) {
            let mut blocks = 0u64;
            let mut coeffs = 0u64;
            for (lo, hi) in &ranges {
                stats.reset();
                let got = f(lo, hi);
                let want = data.region_sum(lo, hi);
                assert!((got - want).abs() < 1e-6, "wrong range sum");
                let used = stats.take();
                blocks += used.block_reads;
                coeffs += used.coeff_reads;
            }
            (
                blocks as f64 / QUERIES as f64,
                coeffs as f64 / QUERIES as f64,
            )
        };

    let (b, c) = run_ranges(&stats_n, &mut |lo, hi| {
        naive.clear_cache();
        range_sum_standard(&mut naive, &[N_LEVELS; 2], lo, hi)
    });
    table.row(&[&"range-sum", &"naive row-major", &fmt_f(b, 2), &fmt_f(c, 1)]);

    let (b, c) = run_ranges(&stats_t, &mut |lo, hi| {
        tiled.clear_cache();
        range_sum_standard(&mut tiled, &[N_LEVELS; 2], lo, hi)
    });
    table.row(&[&"range-sum", &"subtree tiles", &fmt_f(b, 2), &fmt_f(c, 1)]);

    let (b, c) = run_ranges(&stats_t, &mut |lo, hi| {
        tiled.clear_cache();
        ss_query::range_sum_standard_fast(&mut tiled, lo, hi)
    });
    table.row(&[
        &"range-sum",
        &"tiles + fast path (1 block/piece)",
        &fmt_f(b, 2),
        &fmt_f(c, 1),
    ]);

    table.print();
    println!("Expected shape: tiling cuts point-query block reads from ≈ (n+1)^2-ish to");
    println!("≈ ceil(n/b)^2, and the in-tile scaling slots cut them to exactly 1.");
}
