//! **E-SHARD** — shards × replicas × clients sweep of the scatter-gather
//! query router.
//!
//! E-SERVE established the single-store ceiling: with the 200 µs
//! emulated read latency and a pool far smaller than the tile count, one
//! server tops out near 1.2 kqps no matter how many workers or clients
//! are added — every miss serialises on the one device. This harness
//! measures the way past that ceiling: partition the Morton tile space
//! into contiguous ranges ([`ShardMap`]), give every shard its own
//! store + pool + emulated device, and put the scatter-gather router in
//! front. Each routed cell starts `shards × replicas` real TCP shard
//! servers plus the router, runs closed-loop clients against the router
//! with the same 70/30 point/range-sum mix as E-SERVE, and reports
//! aggregate throughput. Direct (router-less) rows at the same client
//! counts anchor the comparison.
//!
//! Two honest negatives are part of the story:
//!
//! * **routing is not free** — at 1 shard × 1 replica the router adds a
//!   full network hop and a merge pass over every answer, so that routed
//!   row sits *below* the direct baseline. Sharding pays when it buys
//!   device parallelism, not before;
//! * **replica returns diminish** — every replica is a whole extra store
//!   copy, and once the shard fleet already covers the offered client
//!   load, doubling the copies buys little (compare 4×2 against 4×1 at
//!   the high client count). Replicas are for availability first; the
//!   read capacity they add only matters while shards are saturated.
//!
//! Answers stay bit-identical throughout — the router re-folds per-tile
//! partials in ascending tile order (DESIGN.md §16); this sweep measures
//! cost, the proptests in `ss-query` and `ss-serve` pin exactness.

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_bench::{emit_json_row, fmt_f, timed_ms, Table};
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use ss_datagen::SplitMix64;
use ss_maintain::FlushMode;
use ss_obs::json::Value;
use ss_serve::{Client, QueryServer, RouterTopology, ServeConfig};
use ss_storage::{
    CoeffStore, IoStats, MemBlockStore, ShardMap, SharedCoeffStore, ThrottledBlockStore,
};
use std::time::Duration;

const N: u32 = 6; // 64 x 64 domain
const B: u32 = 2; // 4x4-coefficient tiles -> 16x16 = 256 tiles
const POOL: usize = 48; // blocks cached per store: misses dominate
const POOL_SHARDS: usize = 8;
const READ_LAT_US: u64 = 200;
const REQS_PER_CLIENT: usize = 150;
const WORKERS: usize = 4; // per server (shard servers and the router)
const BATCH_MAX: usize = 8;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const REPLICAS: [usize; 2] = [1, 2];
const CLIENTS: [usize; 2] = [4, 16];

type ServedStore = SharedCoeffStore<StandardTiling, ThrottledBlockStore<MemBlockStore>>;

/// One full copy of the transformed store behind its own emulated
/// device — every shard replica gets an independent one, which is the
/// whole point: misses on different shards no longer share a queue.
fn build_store(stats: IoStats) -> ServedStore {
    let side = 1usize << N;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0].wrapping_mul(2654435761) ^ idx[1].wrapping_mul(40503)) % 1000) as f64 - 500.0
    });
    let t = ss_core::standard::forward_to(&data);
    let map = StandardTiling::new(&[N; 2], &[B; 2]);
    let mem = MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
    let mut cs = CoeffStore::new(map, mem, 1 << 10, stats.clone());
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }
    cs.flush();
    let (map, mem) = cs.into_parts();
    let throttled =
        ThrottledBlockStore::new(mem, Duration::from_micros(READ_LAT_US), Duration::ZERO);
    SharedCoeffStore::new(map, throttled, POOL, POOL_SHARDS, stats)
}

fn config() -> ServeConfig {
    ServeConfig {
        workers: WORKERS,
        batch_max: BATCH_MAX,
        max_requests: None,
        slow_ns: None,
    }
}

/// One closed-loop client: the next request leaves only after the answer.
fn run_client(addr: std::net::SocketAddr, seed: u64) {
    let side = 1usize << N;
    let mut client = Client::connect(addr).expect("connect");
    let mut rng = SplitMix64::new(seed);
    for _ in 0..REQS_PER_CLIENT {
        if rng.below(10) < 7 {
            let pos = [rng.below(side), rng.below(side)];
            client.point(&pos).expect("point");
        } else {
            let (a, b) = (rng.below(side), rng.below(side));
            let (c, d) = (rng.below(side), rng.below(side));
            client
                .range_sum(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)])
                .expect("range_sum");
        }
    }
}

/// Runs `clients` closed-loop clients against `addr`, returns wall ms.
fn drive(addr: std::net::SocketAddr, clients: usize) -> f64 {
    let (_, wall_ms) = timed_ms(|| {
        std::thread::scope(|scope| {
            for c in 0..clients {
                scope.spawn(move || run_client(addr, 0x54A4D + c as u64));
            }
        });
    });
    wall_ms
}

fn main() {
    let side = 1usize << N;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# E-SHARD — scatter-gather router shards × replicas × clients sweep\n");
    println!(
        "domain {side}x{side}, {tiles} tiles, pool {POOL} blocks per store, \
         {READ_LAT_US} µs emulated read latency per device, {REQS_PER_CLIENT} \
         requests per client (70% point / 30% range-sum), {WORKERS} workers / \
         batch_max {BATCH_MAX} on every server; host has {cores} core(s)\n",
        tiles = 1usize << (2 * (N - B)),
    );
    let map = StandardTiling::new(&[N; 2], &[B; 2]);
    let num_tiles = map.num_tiles();
    let mut table = Table::new(&[
        "mode", "shards", "replicas", "clients", "requests", "wall ms", "qps",
    ]);
    let mut qps_at: Vec<((String, usize, usize, usize), f64)> = Vec::new();
    let mut record = |table: &mut Table,
                      mode: &str,
                      shards: usize,
                      replicas: usize,
                      clients: usize,
                      wall_ms: f64| {
        let requests = (clients * REQS_PER_CLIENT) as u64;
        let qps = requests as f64 / (wall_ms / 1000.0);
        table.row(&[
            &mode,
            &shards,
            &replicas,
            &clients,
            &requests,
            &fmt_f(wall_ms, 1),
            &fmt_f(qps, 0),
        ]);
        emit_json_row(
            "shard",
            &[
                ("mode", Value::from(mode)),
                ("shards", Value::from(shards as u64)),
                ("replicas", Value::from(replicas as u64)),
                ("clients", Value::from(clients as u64)),
                ("requests", Value::from(requests)),
                ("wall_ms", Value::from(wall_ms)),
                ("qps", Value::from(qps)),
                ("read_latency_us", Value::from(READ_LAT_US)),
            ],
        );
        qps_at.push(((mode.to_string(), shards, replicas, clients), qps));
    };

    // Direct rows: one store, no router — the ceiling to beat.
    for &clients in &CLIENTS {
        let server = QueryServer::bind(
            "127.0.0.1:0",
            build_store(IoStats::new()),
            vec![N; 2],
            config(),
        )
        .expect("bind");
        let wall_ms = drive(server.local_addr(), clients);
        let answered = server.shutdown();
        assert_eq!(answered, (clients * REQS_PER_CLIENT) as u64);
        record(&mut table, "direct", 1, 1, clients, wall_ms);
    }

    // Routed rows: shards × replicas real shard servers behind the router.
    for &shards in &SHARD_COUNTS {
        for &replicas in &REPLICAS {
            let mut shard_servers = Vec::new();
            let mut addrs = Vec::new();
            for _ in 0..shards {
                let mut replica_addrs = Vec::new();
                for _ in 0..replicas {
                    let server = QueryServer::bind(
                        "127.0.0.1:0",
                        build_store(IoStats::new()),
                        vec![N; 2],
                        config(),
                    )
                    .expect("bind shard");
                    replica_addrs.push(server.local_addr());
                    shard_servers.push(server);
                }
                addrs.push(replica_addrs);
            }
            let topo = RouterTopology::new(
                ShardMap::even(num_tiles, shards, replicas).expect("shard map"),
                addrs,
            )
            .expect("topology");
            for &clients in &CLIENTS {
                let router = QueryServer::bind_router(
                    "127.0.0.1:0",
                    StandardTiling::new(&[N; 2], &[B; 2]),
                    vec![N; 2],
                    topo.clone(),
                    FlushMode::Exact,
                    config(),
                )
                .expect("bind router");
                let wall_ms = drive(router.local_addr(), clients);
                let answered = router.shutdown();
                assert_eq!(answered, (clients * REQS_PER_CLIENT) as u64);
                record(&mut table, "routed", shards, replicas, clients, wall_ms);
            }
            for server in shard_servers {
                server.shutdown();
            }
        }
    }
    table.print();

    let at = |mode: &str, s: usize, r: usize, c: usize| {
        qps_at
            .iter()
            .find(|((m, qs, qr, qc), _)| m == mode && (*qs, *qr, *qc) == (s, r, c))
            .map(|(_, q)| *q)
            .expect("swept configuration")
    };
    let ceiling = at("direct", 1, 1, 16);
    println!(
        "\nscale-out at 16 clients: direct {} qps, routed x4 shards {} qps \
         ({}x the single-store ceiling)",
        fmt_f(ceiling, 0),
        fmt_f(at("routed", 4, 1, 16), 0),
        fmt_f(at("routed", 4, 1, 16) / ceiling, 2)
    );
    println!(
        "router toll at 1 shard / 16 clients: {}x the direct rate (a pure \
         extra hop — sharding pays via device parallelism, not routing)",
        fmt_f(at("routed", 1, 1, 16) / ceiling, 2)
    );
    println!(
        "replica dividend at 4 shards / 16 clients: x1 {} qps vs x2 {} qps — \
         doubling the store copies buys {}x once shards cover the load",
        fmt_f(at("routed", 4, 1, 16), 0),
        fmt_f(at("routed", 4, 2, 16), 0),
        fmt_f(at("routed", 4, 2, 16) / at("routed", 4, 1, 16), 2)
    );
}
