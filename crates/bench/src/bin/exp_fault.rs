//! **E-FAULT** — fault-rate × retry-budget sweep of the durability stack.
//!
//! Not a paper experiment: the paper assumes a reliable device. This
//! harness measures what the durability layer (PR: checksums + fault
//! injection + retries) costs and tolerates. For every combination of
//! injected read-fault rate and retry budget it ingests a 256×256 array
//! through the full wrapped stack
//! (`BufferPool → RetryingBlockStore → FaultInjectingBlockStore → MemBlockStore`),
//! then scans every block, reporting:
//!
//! * ingest throughput (Mcoeff/s) and whether the run survived,
//! * p50/p99 of the per-block read latency during the scan,
//! * retries spent, budgets exhausted, faults injected (global-counter
//!   deltas, so each cell is attributable to its own configuration).
//!
//! Backoffs are µs-scale so the sweep finishes quickly; the *shape* of
//! the tradeoff (rate × budget → survival, throughput, tail latency) is
//! what matters, not the absolute sleep constants. Faults are seeded —
//! identical numbers on every run and host modulo wall-clock noise.
//!
//! A zero retry budget under any nonzero fault rate is expected to die
//! with a typed `RetriesExhausted` error: that row prints `FAILED`, which
//! is the experiment's point — the budget, not luck, is what turns a
//! faulty device into a working store.

use ss_array::{NdArray, Shape};
use ss_bench::{emit_json_row, timed_ms, Table};
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use ss_obs::json::Value;
use ss_storage::{
    BlockStore, CoeffStore, FaultConfig, FaultInjectingBlockStore, IoStats, MemBlockStore,
    RetryPolicy, RetryingBlockStore,
};
use ss_transform::{try_transform_standard, ArraySource};
use std::time::Duration;

const N: u32 = 8; // 256 x 256
const M: u32 = 4; // 16 x 16 chunks
const B: u32 = 3; // 8 x 8 tiles
const POOL: usize = 64;
const SEED: u64 = 0xFA_175;
const RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];
const BUDGETS: [u32; 4] = [0, 1, 3, 8];

fn main() {
    // FAILED rows are produced by catching a typed StorageError unwind;
    // keep the default panic trace for anything else, silence the
    // expected ones so the table stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info
            .payload()
            .downcast_ref::<ss_storage::StorageError>()
            .is_none()
        {
            default_hook(info);
        }
    }));
    let side = 1usize << N;
    println!("# E-FAULT — injected-fault rate × retry budget\n");
    println!(
        "domain {side}x{side}, chunks {c}x{c}, tiles {t}x{t}, pool {POOL} blocks, \
         seeded read faults, µs-scale backoffs\n",
        c = 1usize << M,
        t = 1usize << B,
    );
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0].wrapping_mul(2654435761) ^ idx[1].wrapping_mul(40503)) % 1000) as f64 - 500.0
    });
    let src = ArraySource::new(&data, &[M; 2]);

    let mut table = Table::new(&[
        "fault rate",
        "retries",
        "outcome",
        "Mcoeff/s",
        "read p50 µs",
        "read p99 µs",
        "retries spent",
        "exhausted",
        "faults",
    ]);
    let registry = ss_obs::global();
    let (retries_ctr, exhausted_ctr, faults_ctr) = (
        registry.counter("storage.retries"),
        registry.counter("storage.retries_exhausted"),
        registry.counter("storage.faults_injected_read"),
    );

    for &rate in &RATES {
        for &budget in &BUDGETS {
            let before = (retries_ctr.get(), exhausted_ctr.get(), faults_ctr.get());
            let map = StandardTiling::new(&[N; 2], &[B; 2]);
            let stats = IoStats::new();
            let inner = MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
            let wrapped = RetryingBlockStore::new(
                FaultInjectingBlockStore::new(inner, FaultConfig::read_errors(rate, SEED)),
                RetryPolicy {
                    max_retries: budget,
                    base_backoff: Duration::from_micros(20),
                    max_backoff: Duration::from_micros(500),
                },
            );
            let mut cs = CoeffStore::new(map, wrapped, POOL, stats);
            let (result, wall_ms) = timed_ms(|| try_transform_standard(&src, &mut cs, false));
            let survived = result.is_ok();
            let coeffs = (side * side) as f64;
            let throughput = if survived {
                coeffs / wall_ms / 1_000.0 // ms × 1e3 = Mcoeff/s
            } else {
                0.0
            };

            // Tail latency of plain block reads through the same stack. A
            // read can still exhaust its budget mid-scan (e.g. budget 1 at
            // rate 0.05); those count as scan failures, not a crash.
            let (p50_us, p99_us, scan_failures) = if survived {
                let (_, mut store) = cs.into_parts();
                let mut buf = vec![0.0; store.block_capacity()];
                let mut lat_ns: Vec<u64> = Vec::with_capacity(store.num_blocks());
                let mut failures = 0u64;
                for id in 0..store.num_blocks() {
                    let sw = ss_obs::Stopwatch::start();
                    match store.try_read_block(id, &mut buf) {
                        Ok(()) => lat_ns.push(sw.elapsed_ns()),
                        Err(_) => failures += 1,
                    }
                }
                lat_ns.sort_unstable();
                let q = |f: f64| match lat_ns.len() {
                    0 => f64::NAN,
                    n => lat_ns[((n - 1) as f64 * f) as usize] as f64 / 1_000.0,
                };
                (q(0.50), q(0.99), failures)
            } else {
                (f64::NAN, f64::NAN, 0)
            };

            let spent = retries_ctr.get() - before.0;
            let exhausted = exhausted_ctr.get() - before.1;
            let faults = faults_ctr.get() - before.2;
            let outcome = if survived { "ok" } else { "FAILED" };
            table.row(&[
                &format!("{rate}"),
                &budget,
                &outcome,
                &format!("{throughput:.1}"),
                &format!("{p50_us:.1}"),
                &format!("{p99_us:.1}"),
                &spent,
                &exhausted,
                &faults,
            ]);
            emit_json_row(
                "fault",
                &[
                    ("fault_rate", Value::from(rate)),
                    ("retry_budget", Value::from(budget as u64)),
                    ("survived", Value::from(if survived { 1u64 } else { 0 })),
                    ("wall_ms", Value::from(wall_ms)),
                    ("mcoeff_per_s", Value::from(throughput)),
                    ("read_p50_us", Value::from(p50_us)),
                    ("read_p99_us", Value::from(p99_us)),
                    ("retries", Value::from(spent)),
                    ("retries_exhausted", Value::from(exhausted)),
                    ("faults_injected", Value::from(faults)),
                    ("scan_failures", Value::from(scan_failures)),
                ],
            );
        }
    }
    table.print();
    println!(
        "\nreading the table: rate 0 rows price the wrappers themselves \
         (checksum-free in-memory base); under faults, survival requires a \
         nonzero budget, and the p99 column shows the backoff tail the \
         budget buys."
    );
}
