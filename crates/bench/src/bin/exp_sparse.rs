//! **E-SPARSE** — sparse v3 storage: bytes on disk, query latency and
//! pool behaviour versus reconstruction error.
//!
//! Not a paper experiment: the paper stores every coefficient; this
//! harness measures what the bucketed sparse format (`docs/FORMAT.md`
//! §8) buys on a workload whose transform is genuinely sparse, and what
//! the lossy retention policies (`docs/ERROR_MODEL.md`) trade for
//! further shrinkage.
//!
//! A 256×256 sparse cube (200 non-zeros) is ingested into a dense v2
//! store on disk, then converted to v3 under a sweep of retention
//! policies: lossless (`ε = 0`), thresholds `ε ∈ {1e-12, 1e-3, 1e-2,
//! 1e-1}` and best-K with `K ∈ {16, 4}` per tile. For each store we
//! report bytes on disk (blocks file + CRC sidecar), the achieved L2
//! error from the retention report, a measured root-mean-square point
//! error against the raw data, and the latency and pool hit rate of a
//! 2 000-point query workload against a cold default-budget pool.
//!
//! Expected shape: the lossless v3 store alone beats dense by well over
//! 2× on this workload (the acceptance bar), thresholds shrink it
//! further at bounded error, and query latency stays flat — point reads
//! still touch one block per query whatever the layout.

use ss_array::MultiIndexIter;
use ss_bench::{emit_json_row, fmt_f, Table};
use ss_core::sparse::RetentionPolicy;
use ss_datagen::{sparse::sparse_cube, SplitMix64};
use ss_obs::json::Value;
use ss_storage::file::sidecar_path;
use ss_storage::wsfile::{convert_to_v3, Meta, WsFile};
use std::path::{Path, PathBuf};
use std::time::Instant;

const N: u32 = 8; // 256 x 256 domain
const B: u32 = 4; // 16x16-coefficient tiles
const NONZEROS: usize = 200;
const SEED: u64 = 0x5eed_ba5e;
const QUERIES: usize = 2_000;

struct Policy {
    name: &'static str,
    policy: RetentionPolicy,
}

fn policies() -> Vec<Policy> {
    vec![
        Policy {
            name: "v3 eps=0",
            policy: RetentionPolicy::Threshold(0.0),
        },
        Policy {
            name: "v3 eps=1e-12",
            policy: RetentionPolicy::Threshold(1e-12),
        },
        Policy {
            name: "v3 eps=1e-3",
            policy: RetentionPolicy::Threshold(1e-3),
        },
        Policy {
            name: "v3 eps=1e-2",
            policy: RetentionPolicy::Threshold(1e-2),
        },
        Policy {
            name: "v3 eps=1e-1",
            policy: RetentionPolicy::Threshold(1e-1),
        },
        Policy {
            name: "v3 topk=16",
            policy: RetentionPolicy::TopK(16),
        },
        Policy {
            name: "v3 topk=4",
            policy: RetentionPolicy::TopK(4),
        },
    ]
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ss_exp_sparse_{tag}_{}.ws", std::process::id()))
}

/// Blocks file plus CRC sidecar — what the format actually costs on disk
/// (the text meta header is a constant few dozen bytes).
fn disk_bytes(path: &Path) -> u64 {
    let f = |p: &Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    f(path) + f(&sidecar_path(path))
}

fn remove_store(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(sidecar_path(path));
    let mut meta = path.as_os_str().to_owned();
    meta.push(".meta");
    let _ = std::fs::remove_file(PathBuf::from(meta));
}

fn copy_store(src: &Path, dst: &Path) {
    remove_store(dst);
    std::fs::copy(src, dst).expect("copy blocks");
    std::fs::copy(sidecar_path(src), sidecar_path(dst)).expect("copy sidecar");
    let (mut sm, mut dm) = (src.as_os_str().to_owned(), dst.as_os_str().to_owned());
    sm.push(".meta");
    dm.push(".meta");
    std::fs::copy(PathBuf::from(sm), PathBuf::from(dm)).expect("copy meta");
}

/// Cold-pool query workload: `QUERIES` uniform point queries, returning
/// (mean latency in µs, pool hit rate, RMS error against `data`).
fn query_workload(path: &Path, data: &ss_array::NdArray<f64>) -> (f64, f64, f64) {
    let side = 1usize << N;
    let mut ws = WsFile::open(path).expect("open store");
    ws.stats.reset();
    let mut rng = SplitMix64::new(SEED ^ 0xabcd);
    let mut err_sq = 0.0;
    let start = Instant::now();
    for _ in 0..QUERIES {
        let pos = [rng.below(side), rng.below(side)];
        let got = ss_query::point_standard(&mut ws.store, &ws.meta.levels, &pos);
        let want = data.get(&pos);
        err_sq += (got - want) * (got - want);
    }
    let elapsed = start.elapsed();
    let snap = ws.stats.snapshot();
    let hit_rate = if snap.pool_hits + snap.pool_misses > 0 {
        snap.pool_hits as f64 / (snap.pool_hits + snap.pool_misses) as f64
    } else {
        0.0
    };
    (
        elapsed.as_secs_f64() * 1e6 / QUERIES as f64,
        hit_rate,
        (err_sq / QUERIES as f64).sqrt(),
    )
}

fn main() {
    let side = 1usize << N;
    println!("# E-SPARSE — sparse v3 bytes-on-disk vs reconstruction error ({side} x {side})\n");
    let data = sparse_cube(&[side, side], NONZEROS, SEED);

    // Dense v2 baseline on disk.
    let dense_path = scratch("dense");
    remove_store(&dense_path);
    {
        let meta = Meta::new(vec![N; 2], vec![B; 2], side * side, 0);
        let mut ws = WsFile::create(&dense_path, meta).expect("create dense store");
        let t = ss_core::standard::forward_to(&data);
        for idx in MultiIndexIter::new(&[side, side]) {
            ws.store.write(&idx, t.get(&idx));
        }
        ws.store.flush();
        ws.sync().expect("sync dense store");
    }
    let dense_disk = disk_bytes(&dense_path);
    let (dense_lat, dense_hit, dense_rms) = query_workload(&dense_path, &data);

    let mut table = Table::new(&[
        "store",
        "disk bytes",
        "vs dense",
        "kept",
        "dropped",
        "achieved L2",
        "point RMS",
        "query us",
        "pool hit%",
    ]);
    table.row(&[
        &"v2 dense",
        &dense_disk,
        &"1.00x",
        &((side * side) as u64),
        &0u64,
        &"0",
        &fmt_f(dense_rms, 9),
        &fmt_f(dense_lat, 1),
        &fmt_f(dense_hit * 100.0, 1),
    ]);
    emit_json_row(
        "sparse",
        &[
            ("store", Value::from("v2-dense")),
            ("policy", Value::from("none")),
            ("disk_bytes", Value::from(dense_disk)),
            ("bytes_ratio", Value::from(1.0)),
            ("kept", Value::from((side * side) as u64)),
            ("dropped", Value::from(0u64)),
            ("achieved_l2", Value::from(0.0)),
            ("point_rms", Value::from(dense_rms)),
            ("query_us", Value::from(dense_lat)),
            ("pool_hit_rate", Value::from(dense_hit)),
        ],
    );

    let mut lossless_ratio = None;
    for p in policies() {
        let path = scratch(&p.name.replace(['=', ' ', '.', '-'], "_"));
        copy_store(&dense_path, &path);
        let report = convert_to_v3(&path, p.policy).expect("convert to v3");
        let sparse_disk = disk_bytes(&path);
        let ratio = dense_disk as f64 / sparse_disk as f64;
        let (lat, hit, rms) = query_workload(&path, &data);
        if p.policy.lossless() {
            lossless_ratio.get_or_insert(ratio);
            assert!(
                rms < 1e-9,
                "lossless v3 must reproduce the dense answers ({rms})"
            );
        }
        table.row(&[
            &p.name,
            &sparse_disk,
            &format!("{ratio:.2}x"),
            &report.retention.kept,
            &report.retention.dropped,
            &fmt_f(report.retention.l2_error(), 6),
            &fmt_f(rms, 9),
            &fmt_f(lat, 1),
            &fmt_f(hit * 100.0, 1),
        ]);
        emit_json_row(
            "sparse",
            &[
                ("store", Value::from(p.name)),
                (
                    "policy",
                    Value::from(match p.policy {
                        RetentionPolicy::Keep => "keep".to_string(),
                        RetentionPolicy::Threshold(e) => format!("threshold:{e}"),
                        RetentionPolicy::TopK(k) => format!("topk:{k}"),
                    }),
                ),
                ("disk_bytes", Value::from(sparse_disk)),
                ("bytes_ratio", Value::from(ratio)),
                ("kept", Value::from(report.retention.kept)),
                ("dropped", Value::from(report.retention.dropped)),
                ("achieved_l2", Value::from(report.retention.l2_error())),
                ("max_dropped", Value::from(report.retention.max_dropped)),
                ("point_rms", Value::from(rms)),
                ("query_us", Value::from(lat)),
                ("pool_hit_rate", Value::from(hit)),
            ],
        );
        remove_store(&path);
    }
    table.print();

    let ratio = lossless_ratio.expect("lossless policy in sweep");
    println!("Lossless v3 is {ratio:.2}x smaller than dense on this workload (bar: >= 2x).");
    assert!(
        ratio >= 2.0,
        "acceptance: lossless v3 must shrink this workload at least 2x (got {ratio:.2}x)"
    );
    println!("Thresholds trade reported L2 error for further shrinkage; best-K bounds");
    println!("per-tile footprint instead of error. Query latency and pool behaviour are");
    println!("layout-independent: one block per point query either way.");
    remove_store(&dense_path);
}
