//! **Ablations** — the design choices DESIGN.md §5 calls out, isolated:
//!
//! 1. z-order vs row-major chunk schedule for the non-standard transform
//!    (the hinge of Result 2's optimality);
//! 2. warm vs cold buffer pool across chunks for the standard transform
//!    (how much cross-chunk tile reuse buys);
//! 3. sparse-aware vs dense chunk scanning on mostly-empty data
//!    (the paper's `z` non-zero values discussion).

use ss_array::{NdArray, Shape};
use ss_bench::{fmt_count, Table};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_datagen::sparse_cube;
use ss_storage::{wstore::mem_store, IoStats};
use ss_transform::{
    transform_nonstandard, transform_nonstandard_zorder, transform_standard,
    transform_standard_sparse, ArraySource,
};

fn main() {
    println!("# Ablations — schedule, cache policy, sparsity\n");
    zorder_vs_rowmajor();
    warm_vs_cold();
    sparse_vs_dense();
}

fn zorder_vs_rowmajor() {
    println!("## 1. Non-standard chunk schedule: z-order + crest cache vs row-major\n");
    let mut table = Table::new(&[
        "N^2",
        "row-major blocks",
        "z-order blocks",
        "saving",
        "crest peak (coeffs)",
    ]);
    for n in [7u32, 8, 9] {
        let side = 1usize << n;
        let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 31 + idx[1] * 7) % 19) as f64
        });
        let src = ArraySource::new(&data, &[2, 2]);
        let stats_r = IoStats::new();
        let mut cr = mem_store(NonStandardTiling::new(2, n, 2), 4, stats_r.clone());
        transform_nonstandard(&src, &mut cr, false);
        let stats_z = IoStats::new();
        let mut cz = mem_store(NonStandardTiling::new(2, n, 2), 4, stats_z.clone());
        let report = transform_nonstandard_zorder(&src, &mut cz);
        let r = stats_r.snapshot().blocks();
        let z = stats_z.snapshot().blocks();
        table.row(&[
            &fmt_count((side * side) as u64),
            &fmt_count(r),
            &fmt_count(z),
            &format!("{:.1}x", r as f64 / z as f64),
            &report.peak_crest_cache,
        ]);
    }
    table.print();
    println!("Result 2 hinges on the schedule: with a tiny (4-block) pool the z-order");
    println!("walk with its O(log) crest cache avoids re-reading ancestor tiles.\n");
}

fn warm_vs_cold() {
    println!("## 2. Standard transform: warm vs cold buffer pool across chunks\n");
    let mut table = Table::new(&["N^2", "cold-cache blocks", "warm-cache blocks", "saving"]);
    for n in [7u32, 8, 9] {
        let side = 1usize << n;
        let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 13 + idx[1] * 3) % 23) as f64
        });
        let src = ArraySource::new(&data, &[3, 3]);
        let stats_c = IoStats::new();
        let mut cc = mem_store(StandardTiling::new(&[n; 2], &[2; 2]), 32, stats_c.clone());
        transform_standard(&src, &mut cc, true);
        let stats_w = IoStats::new();
        let mut cw = mem_store(StandardTiling::new(&[n; 2], &[2; 2]), 32, stats_w.clone());
        transform_standard(&src, &mut cw, false);
        let c = stats_c.snapshot().blocks();
        let w = stats_w.snapshot().blocks();
        table.row(&[
            &fmt_count((side * side) as u64),
            &fmt_count(c),
            &fmt_count(w),
            &format!("{:.1}x", c as f64 / w as f64),
        ]);
    }
    table.print();
    println!("The paper's per-chunk analysis assumes cold tiles; a modest warm pool");
    println!("recovers the shared coarse-path tiles between neighbouring chunks.\n");
}

fn sparse_vs_dense() {
    println!("## 3. Sparse-aware chunk scan on mostly-empty data\n");
    let mut table = Table::new(&[
        "non-zeros z",
        "dense-scan blocks",
        "sparse-scan blocks",
        "occupied chunks",
    ]);
    let side = 256usize;
    for z in [64usize, 512, 4096] {
        let data = sparse_cube(&[side, side], z, 11);
        let src = ArraySource::new(&data, &[3, 3]);
        let stats_d = IoStats::new();
        let mut cd = mem_store(StandardTiling::new(&[8; 2], &[2; 2]), 64, stats_d.clone());
        transform_standard(&src, &mut cd, false);
        let stats_s = IoStats::new();
        let mut cs = mem_store(StandardTiling::new(&[8; 2], &[2; 2]), 64, stats_s.clone());
        let report = transform_standard_sparse(&src, &mut cs);
        table.row(&[
            &z,
            &fmt_count(stats_d.snapshot().blocks()),
            &fmt_count(stats_s.snapshot().blocks()),
            &report.chunks,
        ]);
    }
    table.print();
    println!("Sparse I/O tracks the number of occupied chunks (≈ min(z, (N/M)^d)), not");
    println!("the domain volume — the paper's O(z + z·log(N/M)/M) regime.");
}
