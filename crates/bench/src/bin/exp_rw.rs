//! **E-RW** — readers × writers sweep of the live read/write server.
//!
//! Not a paper experiment: the paper maintains the transformed data
//! offline, this harness measures serving queries *while* absorbing
//! updates. A 64×64 standard-form store sits behind a throttled device
//! (200 µs per-block read latency) under a [`SnapshotCoeffStore`]: reader
//! clients run a closed-loop point/range-sum mix while writer clients
//! stream box updates and group-commit every few boxes through the
//! `update`/`commit` protocol ops — WAL-fsynced ahead of every commit.
//!
//! Three effects are on display:
//!
//! * **read/write overlap** — MVCC pins mean readers never wait for a
//!   commit: read throughput with writers attached stays close to the
//!   writer-free baseline;
//! * **group-commit cost** — commits per second and the share of wall
//!   time spent in the writer connections bound the update absorption
//!   rate at this commit granularity;
//! * **durability tax** — one row runs without a WAL; the gap to its
//!   logged twin is the fsync price of crash safety.
//!
//! Each configuration ends with a full-domain range sum checked against
//! the ingested mass plus every committed delta — served answers stay
//! consistent under concurrency, not just fast.

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_bench::{emit_json_row, fmt_f, timed_ms, Table};
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use ss_datagen::SplitMix64;
use ss_maintain::{FlushMode, SnapshotCoeffStore, Wal};
use ss_obs::json::Value;
use ss_serve::{Client, QueryServer, ServeConfig};
use ss_storage::{CoeffStore, IoStats, MemBlockStore, SharedCoeffStore, ThrottledBlockStore};
use std::sync::Arc;
use std::time::Duration;

const N: u32 = 6; // 64 x 64 domain
const B: u32 = 2; // 4x4-coefficient tiles
const POOL: usize = 48;
const SHARDS: usize = 8;
const READ_LAT_US: u64 = 200;
const READS_PER_CLIENT: usize = 120;
const UPDATES_PER_WRITER: usize = 40;
const COMMIT_EVERY: usize = 5;
/// Every update box carries the same total mass, so the final range sum
/// is predictable without replaying the workload.
const BOX_DATA: [f64; 4] = [1.0, -0.25, 0.5, 0.75];
const BATCH_MAX: usize = 4;
/// (readers, writers, with_wal)
const CONFIGS: [(usize, usize, bool); 5] = [
    (4, 0, true),
    (4, 1, true),
    (4, 1, false),
    (8, 1, true),
    (4, 2, true),
];

type ServedStore = SharedCoeffStore<StandardTiling, ThrottledBlockStore<MemBlockStore>>;

fn build_store(stats: IoStats) -> (ServedStore, f64) {
    let side = 1usize << N;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0].wrapping_mul(2654435761) ^ idx[1].wrapping_mul(40503)) % 1000) as f64 - 500.0
    });
    let total: f64 = MultiIndexIter::new(&[side, side])
        .map(|idx| data.get(&idx))
        .sum();
    let t = ss_core::standard::forward_to(&data);
    let map = StandardTiling::new(&[N; 2], &[B; 2]);
    let mem = MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
    let mut cs = CoeffStore::new(map, mem, 1 << 10, stats.clone());
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }
    cs.flush();
    let (map, mem) = cs.into_parts();
    let throttled =
        ThrottledBlockStore::new(mem, Duration::from_micros(READ_LAT_US), Duration::ZERO);
    (
        SharedCoeffStore::new(map, throttled, POOL, SHARDS, stats),
        total,
    )
}

fn run_reader(addr: std::net::SocketAddr, seed: u64) {
    let side = 1usize << N;
    let mut client = Client::connect(addr).expect("connect");
    let mut rng = SplitMix64::new(seed);
    for _ in 0..READS_PER_CLIENT {
        if rng.below(10) < 7 {
            client
                .point(&[rng.below(side), rng.below(side)])
                .expect("point");
        } else {
            let (a, b) = (rng.below(side), rng.below(side));
            let (c, d) = (rng.below(side), rng.below(side));
            client
                .range_sum(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)])
                .expect("range_sum");
        }
    }
}

fn run_writer(addr: std::net::SocketAddr, seed: u64) {
    let side = 1usize << N;
    let mut client = Client::connect(addr).expect("connect");
    let mut rng = SplitMix64::new(seed);
    for k in 1..=UPDATES_PER_WRITER {
        let at = [rng.below(side - 1), rng.below(side - 1)];
        client.update(&at, &[2, 2], &BOX_DATA).expect("update");
        if k % COMMIT_EVERY == 0 {
            client.commit().expect("commit");
        }
    }
}

fn main() {
    let side = 1usize << N;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# E-RW — live read/write serving: readers × writers sweep\n");
    println!(
        "domain {side}x{side}, pool {POOL} blocks, {READ_LAT_US} µs emulated \
         read latency, {READS_PER_CLIENT} reads per reader (70% point / 30% \
         range-sum), {UPDATES_PER_WRITER} box updates per writer with a \
         group commit every {COMMIT_EVERY}, batch_max {BATCH_MAX}; host has \
         {cores} core(s)\n"
    );
    let mut table = Table::new(&[
        "readers", "writers", "wal", "reads", "commits", "wall ms", "read qps", "epoch",
    ]);
    let registry = ss_obs::global();
    let commits_ctr = registry.counter("snapshot.commits");
    let box_mass: f64 = BOX_DATA.iter().sum();
    for &(readers, writers, with_wal) in &CONFIGS {
        let commits_before = commits_ctr.get();
        let stats = IoStats::new();
        let (shared, ingested_mass) = build_store(stats.clone());
        let wal_path = std::env::temp_dir().join(format!(
            "ss_exp_rw_{}_{readers}r{writers}w{}.wal",
            std::process::id(),
            if with_wal { "wal" } else { "nowal" }
        ));
        let _ = std::fs::remove_file(&wal_path);
        let wal = if with_wal {
            Some(Wal::open(&wal_path).expect("open wal").0)
        } else {
            None
        };
        let snap = Arc::new(SnapshotCoeffStore::new(shared, wal, 0));
        let server = QueryServer::bind_writable(
            "127.0.0.1:0",
            Arc::clone(&snap),
            vec![N; 2],
            FlushMode::Exact,
            ServeConfig {
                workers: 4,
                batch_max: BATCH_MAX,
                max_requests: None,
                slow_ns: None,
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let (_, wall_ms) = timed_ms(|| {
            std::thread::scope(|scope| {
                for r in 0..readers {
                    scope.spawn(move || run_reader(addr, 0xbead + r as u64));
                }
                for w in 0..writers {
                    scope.spawn(move || run_writer(addr, 0xfeed + w as u64));
                }
            });
        });
        // Consistency gate: the served full-domain sum equals the
        // ingested mass plus every committed box's mass.
        let mut client = Client::connect(addr).expect("connect");
        let got = client
            .range_sum(&[0, 0], &[side - 1, side - 1])
            .expect("final sum");
        let want = ingested_mass + (writers * UPDATES_PER_WRITER) as f64 * box_mass;
        assert!(
            (got - want).abs() < 1e-6,
            "served sum drifted: {got} vs {want}"
        );
        drop(client);
        server.shutdown();
        let epoch = snap.epoch();
        let commits = commits_ctr.get() - commits_before;
        // Writers share the server's delta buffer, so one writer's commit
        // can flush boxes the other buffered; the later commit then finds
        // an empty buffer and mints no epoch. The count is exact for a
        // single writer and an upper bound otherwise.
        let commit_calls = (writers * UPDATES_PER_WRITER / COMMIT_EVERY) as u64;
        if writers <= 1 {
            assert_eq!(commits, commit_calls);
        } else {
            assert!(commits >= 1 && commits <= commit_calls, "commits {commits}");
        }
        let reads = (readers * READS_PER_CLIENT) as u64;
        let qps = reads as f64 / (wall_ms / 1000.0);
        let wal_label = if with_wal { "fsync" } else { "none" };
        table.row(&[
            &readers,
            &writers,
            &wal_label,
            &reads,
            &commits,
            &fmt_f(wall_ms, 1),
            &fmt_f(qps, 0),
            &epoch,
        ]);
        emit_json_row(
            "rw",
            &[
                ("readers", Value::from(readers as u64)),
                ("writers", Value::from(writers as u64)),
                ("wal", Value::from(wal_label)),
                ("reads", Value::from(reads)),
                (
                    "updates",
                    Value::from((writers * UPDATES_PER_WRITER) as u64),
                ),
                ("commits", Value::from(commits)),
                ("wall_ms", Value::from(wall_ms)),
                ("read_qps", Value::from(qps)),
                ("final_epoch", Value::from(epoch)),
                ("read_latency_us", Value::from(READ_LAT_US)),
                ("batch_max", Value::from(BATCH_MAX as u64)),
            ],
        );
        let _ = std::fs::remove_file(&wal_path);
    }
    table.print();
    println!(
        "\nevery row ends with a served full-domain range sum matching the \
         ingested mass plus all committed deltas (checked, not assumed)"
    );
}
