//! **E2 / Table 2** — I/O complexities of the three transform methods.
//!
//! Measures the full out-of-core transformation cost, in coefficients and
//! in blocks, for the paper's three contenders on the same dataset:
//!
//! * Vitter et al. (standard form, row-major blocks, no tiling),
//! * SHIFT-SPLIT standard form (Result 1, subtree tiles),
//! * SHIFT-SPLIT non-standard form (Result 2, z-order + crest cache).
//!
//! Formulas, with `N = 2^n`, `M = 2^m`, `B = 2^b` per axis:
//!
//! * SS-standard:     `(N/B)^d·(1 + ceil((n−m)/b)·B/M)^d + (N/B)^d` blocks
//!   (write side + input scan; the paper folds constants into big-O),
//! * SS-non-standard: `≈ 2·(N/B)^d` blocks,
//! * Vitter:          measured only (the paper's entry is OCR-garbled; see
//!   DESIGN.md Corrections).

use ss_array::{NdArray, Shape};
use ss_bench::{fmt_count, Table};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_storage::{wstore::mem_store, IoStats};
use ss_transform::{
    transform_nonstandard_zorder, transform_standard, vitter_transform_standard, ArraySource,
};

fn main() {
    println!("# E2 / Table 2 — transform I/O, measured vs formula\n");
    let d = 2usize;
    let mut table = Table::new(&[
        "N^d",
        "M^d",
        "B^d",
        "Vitter coeffs",
        "SS-std coeffs",
        "SS-ns coeffs",
        "Vitter blocks",
        "SS-std blocks",
        "SS-ns blocks",
        "SS-ns formula 2(N/B)^d",
    ]);
    for (n, m, b) in [(6u32, 3u32, 2u32), (7, 3, 2), (8, 4, 2), (8, 4, 3)] {
        let side = 1usize << n;
        let data = NdArray::from_fn(Shape::cube(d, side), |idx| {
            ((idx[0] * 31 + idx[1] * 17) % 23) as f64 - 7.0
        });
        let src = ArraySource::new(&data, &vec![m; d]);
        let mem_coeffs = 1usize << (m as usize * d);
        let block_cap = 1usize << (b as usize * d);

        // Vitter baseline.
        let stats_v = IoStats::new();
        let _ = vitter_transform_standard(&src, mem_coeffs, block_cap, stats_v.clone());
        let v = stats_v.snapshot();

        // SHIFT-SPLIT standard.
        let stats_s = IoStats::new();
        let mut cs = mem_store(
            StandardTiling::new(&vec![n; d], &vec![b; d]),
            (mem_coeffs / block_cap).max(1),
            stats_s.clone(),
        );
        transform_standard(&src, &mut cs, false);
        let s = stats_s.snapshot();

        // SHIFT-SPLIT non-standard, z-order.
        let stats_z = IoStats::new();
        let mut cz = mem_store(
            NonStandardTiling::new(d, n, b),
            (mem_coeffs / block_cap).max(1),
            stats_z.clone(),
        );
        transform_nonstandard_zorder(&src, &mut cz);
        let z = stats_z.snapshot();

        let ns_formula = 2 * (1usize << ((n - b) as usize * d));
        table.row(&[
            &fmt_count((side * side) as u64),
            &mem_coeffs,
            &block_cap,
            &fmt_count(v.coeffs()),
            &fmt_count(s.coeffs()),
            &fmt_count(z.coeffs()),
            &fmt_count(v.blocks()),
            &fmt_count(s.blocks()),
            &fmt_count(z.blocks()),
            &fmt_count(ns_formula as u64),
        ]);
    }
    table.print();
    println!("Expected shape: SS-ns ≤ SS-std < Vitter in blocks; SS-ns block cost ≈ its");
    println!("2(N/B)^d scan-bound formula (Result 2's optimality).");
}
