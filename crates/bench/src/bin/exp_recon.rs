//! **E7 / Result 6** — partial-reconstruction strategies and their
//! crossovers.
//!
//! Result 6: reconstructing an `M^d` dyadic range from an `N^d` standard
//! transform costs `O((M + log(N/M))^d)` coefficient accesses via inverse
//! SHIFT-SPLIT, versus `O(M^d · (log N + 1)^d)` point-by-point and
//! `O(N^d)` for a full inverse. We sweep the range size on a 2-d dataset
//! and report measured coefficient reads and block reads for all three,
//! locating the crossover points the paper discusses (Section 5.4).

use ss_array::{DyadicRange, MultiIndexIter, NdArray, Shape};
use ss_bench::{fmt_count, Table};
use ss_core::tiling::StandardTiling;
use ss_query::recon;
use ss_storage::{wstore::mem_store, IoStats};

const N_LEVELS: u32 = 9; // 512 x 512
const B_LEVELS: u32 = 3;

fn main() {
    let side = 1usize << N_LEVELS;
    println!("# E7 / Result 6 — partial reconstruction of an M x M range from {side} x {side}\n");
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] * 37 + idx[1] * 59) % 101) as f64 - 50.0
    });
    let t = ss_core::standard::forward_to(&data);
    let stats = IoStats::new();
    let mut cs = mem_store(
        StandardTiling::new(&[N_LEVELS; 2], &[B_LEVELS; 2]),
        1 << 14,
        stats.clone(),
    );
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }
    cs.flush();

    let mut table = Table::new(&[
        "M",
        "shift-split reads",
        "(M+log(N/M))^2",
        "pointwise reads",
        "M^2(log N+1)^2",
        "full-inverse reads",
    ]);
    for m in 0..=N_LEVELS {
        let range = DyadicRange::cube(m, &[0, 0]);
        let big_m = 1usize << m;

        cs.clear_cache();
        stats.reset();
        let a = recon::reconstruct_dyadic_standard(&mut cs, &[N_LEVELS; 2], &range);
        let ss_reads = stats.take().coeff_reads;

        cs.clear_cache();
        stats.reset();
        let b = recon::reconstruct_pointwise_standard(
            &mut cs,
            &[N_LEVELS; 2],
            &range.origin(),
            &range
                .origin()
                .iter()
                .zip(range.extents())
                .map(|(&o, e)| o + e - 1)
                .collect::<Vec<_>>(),
        );
        let pw_reads = stats.take().coeff_reads;
        assert!(
            a.max_abs_diff(&b) < 1e-9,
            "strategies disagree at M={big_m}"
        );

        let full_reads = (side * side) as u64;
        let ss_formula = (big_m as u64 + (N_LEVELS - m) as u64).pow(2);
        let pw_formula = (big_m as u64).pow(2) * (N_LEVELS as u64 + 1).pow(2);
        table.row(&[
            &big_m,
            &fmt_count(ss_reads),
            &fmt_count(ss_formula),
            &fmt_count(pw_reads),
            &fmt_count(pw_formula),
            &fmt_count(full_reads),
        ]);
    }
    table.print();
    println!("Expected shape: shift-split tracks its (M + log(N/M))^2 formula, beating");
    println!("pointwise by ~(log N)^2 at every size and beating the full inverse until");
    println!("M approaches N (where they coincide).\n");
    nonstandard();
}

/// Result 6's non-standard bound: `M^d + (2^d − 1)·log(N/M) + 1` reads.
fn nonstandard() {
    use ss_core::tiling::NonStandardTiling;
    let n = 8u32;
    let side = 1usize << n;
    println!("## Non-standard form ({side} x {side})\n");
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] * 41 + idx[1] * 13) % 67) as f64 - 30.0
    });
    let tns = {
        let mut a = data.clone();
        ss_core::nonstandard::forward(&mut a);
        a
    };
    let mut cs = mem_store(NonStandardTiling::new(2, n, 2), 1 << 14, IoStats::new());
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, tns.get(&idx));
    }
    let stats = cs.stats().clone();
    let mut table = Table::new(&["M", "shift-split reads", "M^2 + 3(n-m) + 1"]);
    for m in 0..=n {
        let range = DyadicRange::cube(m, &[0, 0]);
        cs.clear_cache();
        stats.reset();
        let got = recon::reconstruct_range_nonstandard(&mut cs, n, &range);
        let want = data.extract(&range.origin(), &range.extents());
        assert!(got.max_abs_diff(&want) < 1e-9);
        let reads = stats.take().coeff_reads;
        let formula = (1u64 << (2 * m)) - 1 + 3 * (n - m) as u64 + 1;
        table.row(&[&(1usize << m), &fmt_count(reads), &fmt_count(formula)]);
    }
    table.print();
    println!("The non-standard inverse SHIFT-SPLIT reads the M^2 − 1 in-range details");
    println!("plus one quad-tree path — Result 6's second bound, measured.");
}
