//! **E-PAR** — worker sweep of the parallel out-of-core drivers.
//!
//! Not a paper experiment: the paper's cost model counts I/O, not
//! wall-clock. This harness sweeps worker counts over a 1024² domain and
//! reports, per run, the wall time, the speedup against the serial
//! driver, the exact store divergence (must be ≤ 1e-9), and the full
//! [`IoSnapshot`](ss_storage::IoSnapshot) — including the sharded buffer pool's
//! hit/miss/eviction/write-back counters.
//!
//! Wall-clock speedup needs real cores: on a single-CPU host every
//! worker count times roughly the same (plus locking overhead) and the
//! table says so instead of pretending.

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_bench::{emit_json_row, timed_ms, Table};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_obs::json::Value;
use ss_storage::{mem_shared_store, wstore::mem_store, IoStats, SharedCoeffStore};
use ss_transform::{
    transform_nonstandard_parallel, transform_nonstandard_zorder, transform_standard,
    transform_standard_parallel, ArraySource,
};

const N: u32 = 10; // 1024 x 1024
const M: u32 = 5; // 32 x 32 chunks
const B: u32 = 3; // 8 x 8 tiles
const POOL: usize = 256;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let side = 1usize << N;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# E-PAR — parallel driver worker sweep\n");
    println!(
        "domain {side}x{side}, chunks {c}x{c}, tiles {t}x{t}, pool {POOL} blocks, \
         shards = max(workers, 2); host has {cores} core(s)\n",
        c = 1usize << M,
        t = 1usize << B,
    );
    if cores == 1 {
        println!(
            "> single-CPU host: expect no wall-clock speedup — the sweep still \
             validates correctness and pool-counter accounting\n"
        );
    }
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0].wrapping_mul(2654435761) ^ idx[1].wrapping_mul(40503)) % 1000) as f64 - 500.0
    });

    standard(&data);
    nonstandard(&data);
}

fn row(
    table: &mut Table,
    form: &str,
    label: &str,
    wall_ms: f64,
    serial_ms: f64,
    max_diff: f64,
    snap: ss_storage::IoSnapshot,
) {
    table.row(&[
        &label,
        &format!("{wall_ms:.1}"),
        &format!("{:.2}x", serial_ms / wall_ms),
        &format!("{max_diff:.1e}"),
        &format!("{}r/{}w", snap.block_reads, snap.block_writes),
        &format!(
            "{}h/{}m/{}e/{}wb",
            snap.pool_hits, snap.pool_misses, snap.pool_evictions, snap.pool_writebacks
        ),
    ]);
    emit_json_row(
        "par",
        &[
            ("form", Value::from(form)),
            ("workers", Value::from(label)),
            ("wall_ms", Value::from(wall_ms)),
            ("speedup", Value::from(serial_ms / wall_ms)),
            ("block_reads", Value::from(snap.block_reads)),
            ("block_writes", Value::from(snap.block_writes)),
            ("pool_hits", Value::from(snap.pool_hits)),
            ("pool_misses", Value::from(snap.pool_misses)),
            ("pool_evictions", Value::from(snap.pool_evictions)),
            ("pool_writebacks", Value::from(snap.pool_writebacks)),
        ],
    );
}

fn max_divergence(
    shared: &SharedCoeffStore<StandardTiling, ss_storage::MemBlockStore>,
    want: &NdArray<f64>,
    side: usize,
) -> f64 {
    let mut max_diff = 0.0f64;
    for idx in MultiIndexIter::new(&[side, side]) {
        max_diff = max_diff.max((shared.read(&idx) - want.get(&idx)).abs());
    }
    max_diff
}

fn standard(data: &NdArray<f64>) {
    let side = data.shape().dim(0);
    println!("## Standard form\n");
    let mut table = Table::new(&[
        "workers",
        "wall ms",
        "speedup",
        "max |diff|",
        "blocks",
        "pool",
    ]);
    let src = ArraySource::new(data, &[M; 2]);

    let stats = IoStats::new();
    let mut serial = mem_store(StandardTiling::new(&[N; 2], &[B; 2]), POOL, stats.clone());
    let (_, serial_ms) = timed_ms(|| transform_standard(&src, &mut serial, false));
    let want = NdArray::from_fn(Shape::cube(2, side), |idx| serial.read(idx));
    row(
        &mut table,
        "standard",
        "serial",
        serial_ms,
        serial_ms,
        0.0,
        stats.snapshot(),
    );

    for workers in WORKERS {
        let stats = IoStats::new();
        let shared = mem_shared_store(
            StandardTiling::new(&[N; 2], &[B; 2]),
            POOL,
            workers.max(2),
            stats.clone(),
        );
        let (_, wall_ms) = timed_ms(|| transform_standard_parallel(&src, &shared, workers));
        let snap = stats.snapshot();
        let max_diff = max_divergence(&shared, &want, side);
        assert!(max_diff <= 1e-9, "parallel store diverged: {max_diff:e}");
        row(
            &mut table,
            "standard",
            &workers.to_string(),
            wall_ms,
            serial_ms,
            max_diff,
            snap,
        );
    }
    table.print();
    println!();
}

fn nonstandard(data: &NdArray<f64>) {
    let side = data.shape().dim(0);
    println!("## Non-standard form (z-order schedule)\n");
    let mut table = Table::new(&[
        "workers",
        "wall ms",
        "speedup",
        "max |diff|",
        "blocks",
        "pool",
    ]);
    let src = ArraySource::new(data, &[M; 2]);

    let stats = IoStats::new();
    let mut serial = mem_store(NonStandardTiling::new(2, N, B), POOL, stats.clone());
    let (_, serial_ms) = timed_ms(|| transform_nonstandard_zorder(&src, &mut serial));
    let want = NdArray::from_fn(Shape::cube(2, side), |idx| serial.read(idx));
    row(
        &mut table,
        "nonstandard",
        "serial",
        serial_ms,
        serial_ms,
        0.0,
        stats.snapshot(),
    );

    for workers in WORKERS {
        let stats = IoStats::new();
        let shared = mem_shared_store(
            NonStandardTiling::new(2, N, B),
            POOL,
            workers.max(2),
            stats.clone(),
        );
        let (report, wall_ms) = timed_ms(|| transform_nonstandard_parallel(&src, &shared, workers));
        let snap = stats.snapshot();
        let mut max_diff = 0.0f64;
        for idx in MultiIndexIter::new(&[side, side]) {
            max_diff = max_diff.max((shared.read(&idx) - want.get(&idx)).abs());
        }
        assert!(max_diff <= 1e-9, "parallel store diverged: {max_diff:e}");
        assert!(
            report.peak_crest_cache <= (3 * (N - M) + 1) as usize,
            "crest cache exceeded its bound: {}",
            report.peak_crest_cache
        );
        row(
            &mut table,
            "nonstandard",
            &workers.to_string(),
            wall_ms,
            serial_ms,
            max_diff,
            snap,
        );
    }
    table.print();
    println!();
}
