//! **E5 / Figure 13** — SHIFT-SPLIT in appending.
//!
//! Paper setup: the PRECIPITATION cube (8 × 8 spatial grid, time growing by
//! one 32-day month at a time for 45 years), appended in the wavelet
//! domain; per-append I/O in blocks for tile sizes 2 K / 4 K / 8 K. The
//! figure's signature is a low steady per-month cost with *spikes* at the
//! months where the time domain doubles (the expansion re-homes every
//! coefficient), spikes that matter less with larger tiles.
//!
//! Tile sizes: per-axis tile exponents `(3,3,2) = 256` coeffs = 2 KB,
//! `(3,3,3) = 512` = 4 KB, `(3,3,4) = 1024` = 8 KB — the paper's sizes
//! exactly.

use ss_bench::{fmt_count, Table};
use ss_datagen::precipitation_month;
use ss_storage::{IoStats, MemBlockStore};
use ss_transform::{Appender, NsChainStore};

const MONTHS: usize = 540; // 45 years
const DAYS: usize = 32;

fn main() {
    println!("# E5 / Figure 13 — per-append I/O (blocks) over 45 years of monthly data\n");
    let tile_configs: [(&str, [u32; 3]); 3] =
        [("2KB", [3, 3, 2]), ("4KB", [3, 3, 3]), ("8KB", [3, 3, 4])];
    let mut per_month: Vec<Vec<u64>> = Vec::new();
    let mut totals = Vec::new();
    let mut expansions = 0usize;
    // Alternative representation: the non-standard hypercube chain (one
    // 8x8 cube per day; 512 B tiles). Appends are flat by construction.
    let chain_stats = IoStats::new();
    let cs2 = chain_stats.clone();
    let mut chain = NsChainStore::new(
        2,
        3,
        3,
        move |cap, blocks| MemBlockStore::new(cap, blocks, cs2.clone()),
        8,
        chain_stats.clone(),
    );
    let mut chain_costs: Vec<u64> = Vec::with_capacity(MONTHS);
    for month in 0..MONTHS {
        let chunk = precipitation_month(8, 8, DAYS, month, 45);
        let before = chain_stats.snapshot();
        for day in 0..DAYS {
            let grid = chunk.extract(&[0, 0, day], &[8, 8, 1]);
            let cube = ss_array::NdArray::from_vec(ss_array::Shape::cube(2, 8), grid.into_vec());
            chain.append(&cube);
        }
        chain_costs.push(chain_stats.snapshot().since(&before).blocks());
    }
    for (_, tiles) in &tile_configs {
        let stats = IoStats::new();
        let s2 = stats.clone();
        let mut app = Appender::new(
            &[3, 3, 5], // 8 x 8 x 32 initial domain (one month)
            tiles,
            2,
            move |cap, blocks| MemBlockStore::new(cap, blocks, s2.clone()),
            1 << 12,
            stats.clone(),
        );
        let mut costs = Vec::with_capacity(MONTHS);
        for month in 0..MONTHS {
            let chunk = precipitation_month(8, 8, DAYS, month, 45);
            let before = stats.snapshot();
            app.append(&chunk);
            costs.push(stats.snapshot().since(&before).blocks());
        }
        expansions = app.expansions();
        totals.push(stats.snapshot().blocks());
        per_month.push(costs);
    }

    // The full 540-row series as CSV (for plotting), then a summary table.
    println!("## Per-month series (CSV)\n");
    println!("```");
    println!("month,blocks_2KB,blocks_4KB,blocks_8KB,blocks_ns_chain");
    for (m, (((a, b), c), ch)) in per_month[0]
        .iter()
        .zip(&per_month[1])
        .zip(&per_month[2])
        .zip(&chain_costs)
        .enumerate()
    {
        println!("{m},{a},{b},{c},{ch}");
    }
    println!("```\n");

    println!("## Summary\n");
    let mut table = Table::new(&[
        "tile",
        "total blocks",
        "median month",
        "max month (expansion spike)",
        "spike/median",
    ]);
    for (i, (name, _)) in tile_configs.iter().enumerate() {
        let mut sorted = per_month[i].clone();
        sorted.sort_unstable();
        let median = sorted[MONTHS / 2];
        let max = *sorted.last().unwrap();
        table.row(&[
            name,
            &fmt_count(totals[i]),
            &fmt_count(median),
            &fmt_count(max),
            &format!("{:.1}x", max as f64 / median.max(1) as f64),
        ]);
    }
    {
        let mut sorted = chain_costs.clone();
        sorted.sort_unstable();
        let median = sorted[MONTHS / 2];
        let max = *sorted.last().unwrap();
        table.row(&[
            &"ns-chain (512B)",
            &fmt_count(chain_costs.iter().sum()),
            &fmt_count(median),
            &fmt_count(max),
            &format!("{:.1}x", max as f64 / median.max(1) as f64),
        ]);
    }
    table.print();
    println!("domain expansions over {MONTHS} months: {expansions} (standard form);");
    println!("the non-standard hypercube chain needs none — its appends are flat.");
    println!("\nExpected shape (paper Fig. 13): flat monthly cost with spikes at the");
    println!("domain-doubling months; larger tiles reduce block counts throughout and");
    println!("soften the spikes.");
}
