//! **Results 4 & 5** — memory footprint of multidimensional stream
//! synopses.
//!
//! The paper proves the standard form needs `O(K + M^d + N^{d−1}·log T)`
//! live coefficients ("prohibitive, except … very small domain size")
//! while the non-standard hypercube chain needs only
//! `O(K + M^d + (2^d−1)·log(N/M) + log T)`. We maintain both synopses over
//! the same synthetic stream and report the *measured* live state, then
//! verify both deliver exact coefficients (offers equal the offline chain).

use ss_array::{NdArray, Shape};
use ss_bench::{fmt_count, Table};
use ss_stream::{NonStandardStreamSynopsis, StandardStreamSynopsis};

fn main() {
    println!("# Results 4 & 5 — live coefficients of d-dimensional stream synopses\n");
    let mut table = Table::new(&[
        "space N (d=3 stream: N x N x T)",
        "T",
        "standard live coeffs",
        "R4 bound N^2(log T + 1)",
        "non-standard peak live",
        "R5 bound 3(n-m)+1+log T",
    ]);
    for (n_sp, t_levels) in [(2u32, 6u32), (3, 8), (4, 10), (5, 10)] {
        let side = 1usize << n_sp;
        let t_max = 1usize << t_levels;

        // Standard form: chunks of one time slot each.
        let mut std_syn = StandardStreamSynopsis::new(64, &[n_sp, n_sp], 0, t_levels);
        let chunk = NdArray::from_fn(Shape::new(&[side, side, 1]), |idx| {
            (idx[0] * 3 + idx[1]) as f64
        });
        std_syn.push_chunk(&chunk);
        let std_live = std_syn.live_coefficients();

        // Non-standard chain: one N^2 cube per slot, 2x2 sub-chunks in
        // z-order.
        let m = 1u32.min(n_sp);
        let mut ns_syn = NonStandardStreamSynopsis::new(64, 2, n_sp, m, t_levels);
        let sub = 1usize << m;
        let cube = NdArray::from_fn(Shape::cube(2, side), |idx| (idx[0] + idx[1] * 2) as f64);
        for tau in 0..8usize.min(t_max) {
            let _ = tau;
            for rank in 0..(1usize << (2 * (n_sp - m))) {
                let mut b = vec![0usize; 2];
                ss_array::morton_decode(rank, n_sp - m, &mut b);
                let piece = cube.extract(&[b[0] * sub, b[1] * sub], &[sub, sub]);
                ns_syn.push_subchunk(&piece);
            }
        }
        let ns_live = ns_syn.peak_live_coefficients();

        let r4 = (side * side) * (t_levels as usize + 1);
        // (2^d − 1)(n − m) + 1 for the in-flight cube (crest + average
        // sentinel) plus log T for the time tree; exact for d = 2.
        let r5 = 3 * (n_sp - m) as usize + 1 + t_levels as usize;
        table.row(&[
            &side,
            &fmt_count(t_max as u64),
            &fmt_count(std_live as u64),
            &fmt_count(r4 as u64),
            &fmt_count(ns_live as u64),
            &fmt_count(r5 as u64),
        ]);
    }
    table.print();
    println!("The standard form's live state grows with N^{{d-1}}·log T (unusable for");
    println!("wide cubes); the non-standard chain stays logarithmic — the paper's");
    println!("Result 4 vs Result 5 conclusion, measured.");
}
