//! **Approximate-query ablation** — the OLAP synopsis use-case that
//! motivates wavelets in the paper's introduction ("approximate,
//! progressive or even fast exact answers to OLAP range-aggregate
//! queries").
//!
//! On a TEMPERATURE-like 2-d slice we sweep the synopsis size K and report
//! the captured energy plus the relative error of random range sums; then
//! we show progressive (coarse-to-fine) evaluation converging on an exact
//! store.

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_bench::{fmt_f, Table};
use ss_core::tiling::StandardTiling;
use ss_datagen::SplitMix64;
use ss_query::{progressive_range_sum, StoredSynopsis};
use ss_storage::{wstore::mem_store, IoStats};

const N: u32 = 8; // 256 x 256
const QUERIES: usize = 200;

fn main() {
    let side = 1usize << N;
    println!("# Approximate & progressive range aggregates ({side} x {side})\n");
    // A smooth climate-like field: latitude gradient + two pressure systems.
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        let (x, y) = (idx[0] as f64 / side as f64, idx[1] as f64 / side as f64);
        30.0 * (std::f64::consts::PI * x).sin()
            + 10.0 * (-((x - 0.3).powi(2) + (y - 0.7).powi(2)) * 20.0).exp()
            - 8.0 * (-((x - 0.8).powi(2) + (y - 0.2).powi(2)) * 30.0).exp()
    });
    let t = ss_core::standard::forward_to(&data);
    let mut cs = mem_store(
        StandardTiling::new(&[N; 2], &[2; 2]),
        1 << 14,
        IoStats::new(),
    );
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }

    let mut rng = SplitMix64::new(7);
    let queries: Vec<([usize; 2], [usize; 2])> = (0..QUERIES)
        .map(|_| {
            let lo = [rng.below(side - 32), rng.below(side - 32)];
            let hi = [lo[0] + 8 + rng.below(24), lo[1] + 8 + rng.below(24)];
            (lo, hi)
        })
        .collect();

    println!("## Synopsis size vs accuracy\n");
    let mut table = Table::new(&[
        "K",
        "K / N^2",
        "energy captured",
        "median rel. error of range sums",
    ]);
    for k in [16usize, 64, 256, 1024, 4096] {
        let syn = StoredSynopsis::build(&mut cs, &[N; 2], k);
        let energy = syn.energy_ratio(&mut cs);
        let mut errors: Vec<f64> = queries
            .iter()
            .map(|(lo, hi)| {
                let exact = data.region_sum(lo, hi);
                let approx = syn.range_sum(lo, hi);
                (approx - exact).abs() / exact.abs().max(1.0)
            })
            .collect();
        errors.sort_by(|a, b| a.total_cmp(b));
        table.row(&[
            &k,
            &fmt_f(k as f64 / (side * side) as f64, 4),
            &fmt_f(energy, 4),
            &fmt_f(errors[QUERIES / 2], 4),
        ]);
    }
    table.print();

    println!("## Progressive evaluation (one query, coarse to fine)\n");
    let (lo, hi) = ([37usize, 80usize], [180usize, 201usize]);
    let exact = data.region_sum(&lo, &hi);
    let estimates = progressive_range_sum(&mut cs, &[N; 2], &lo, &hi);
    let mut table = Table::new(&["refinement step", "estimate", "relative error"]);
    for (i, est) in estimates.iter().enumerate() {
        table.row(&[
            &i,
            &fmt_f(*est, 1),
            &fmt_f((est - exact).abs() / exact.abs().max(1.0), 5),
        ]);
    }
    table.print();
    println!("exact: {exact:.1}");
    println!("\nSmooth data compresses hard: a fraction of a percent of the coefficients");
    println!("answers range sums to ~1% error, and progressive evaluation reaches the");
    println!("exact answer after the last refinement step.");
}
