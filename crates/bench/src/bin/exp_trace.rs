//! **E-TRACE** — what request tracing costs the query server.
//!
//! Not a paper experiment: this harness prices the observability layer.
//! A 32×32 standard-form store is served entirely from the buffer pool
//! (no emulated device latency), so per-request work is small and any
//! tracing overhead is as visible as it will ever be. The same
//! closed-loop client mix runs four times against one server binary:
//!
//! * **off** — tracing disabled (the shipped default);
//! * **ring** — every request records spans + tile fetches into the
//!   in-memory ring (lock-cheap, no I/O);
//! * **export** — ring plus `ss-trace-v1` JSON-lines serialisation to a
//!   buffered temp file (the `serve --trace-out` path);
//! * **off_again** — tracing disabled once more, asserting the process
//!   returns to within 2× of the first off run (no lingering cost —
//!   generous because short CPU-bound runs on shared hosts are noisy).
//!
//! Reported per mode: wall time and qps, as ss-exp-v1 JSONL rows.

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_bench::{emit_json_row, fmt_f, timed_ms, Table};
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use ss_datagen::SplitMix64;
use ss_obs::json::Value;
use ss_serve::{Client, QueryServer, ServeConfig};
use ss_storage::{CoeffStore, IoStats, MemBlockStore, SharedCoeffStore};

const N: u32 = 5; // 32 x 32 domain
const B: u32 = 2; // 8x8 tiles of 4x4 coefficients
const WORKERS: usize = 2;
const CLIENTS: usize = 4;
const REQS_PER_CLIENT: usize = 400;
const BATCH_MAX: usize = 8;

type ServedStore = SharedCoeffStore<StandardTiling, MemBlockStore>;

fn build_store(stats: IoStats) -> ServedStore {
    let side = 1usize << N;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0].wrapping_mul(2654435761) ^ idx[1].wrapping_mul(40503)) % 1000) as f64 - 500.0
    });
    let t = ss_core::standard::forward_to(&data);
    let map = StandardTiling::new(&[N; 2], &[B; 2]);
    let mem = MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
    let mut cs = CoeffStore::new(map, mem, 1 << 10, stats.clone());
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }
    cs.flush();
    let (map, mem) = cs.into_parts();
    // Pool holds every tile: the sweep measures tracing, not I/O.
    SharedCoeffStore::new(map, mem, map_tiles(), WORKERS.max(2), stats)
}

fn map_tiles() -> usize {
    1usize << (2 * (N - B))
}

fn run_client(addr: std::net::SocketAddr, seed: u64) {
    let side = 1usize << N;
    let mut client = Client::connect(addr).expect("connect");
    let mut rng = SplitMix64::new(seed);
    for _ in 0..REQS_PER_CLIENT {
        if rng.below(10) < 7 {
            let pos = [rng.below(side), rng.below(side)];
            client.point(&pos).expect("point");
        } else {
            let (a, b) = (rng.below(side), rng.below(side));
            let (c, d) = (rng.below(side), rng.below(side));
            client
                .range_sum(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)])
                .expect("range_sum");
        }
    }
}

/// One full client sweep against a fresh server; returns (wall ms, qps).
fn sweep() -> (f64, f64) {
    let stats = IoStats::new();
    let store = build_store(stats);
    let server = QueryServer::bind(
        "127.0.0.1:0",
        store,
        vec![N; 2],
        ServeConfig {
            workers: WORKERS,
            batch_max: BATCH_MAX,
            max_requests: None,
            slow_ns: None,
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let (_, wall_ms) = timed_ms(|| {
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                scope.spawn(move || run_client(addr, 0x7ACE + c as u64));
            }
        });
    });
    server.shutdown();
    let requests = (CLIENTS * REQS_PER_CLIENT) as f64;
    (wall_ms, requests / (wall_ms / 1000.0))
}

fn main() {
    let side = 1usize << N;
    println!("# E-TRACE — tracing overhead on the query server\n");
    println!(
        "domain {side}x{side}, {t}x{t} tiles all pool-resident, {WORKERS} workers, \
         {CLIENTS} clients x {REQS_PER_CLIENT} requests (70% point / 30% range-sum)\n",
        t = 1usize << (N - B),
    );
    let tracer = ss_obs::trace::tracer();
    let export_path =
        std::env::temp_dir().join(format!("ss_exp_trace_{}.jsonl", std::process::id()));
    let mut table = Table::new(&["mode", "requests", "wall ms", "qps"]);
    let mut qps_of = std::collections::HashMap::new();
    for mode in ["off", "ring", "export", "off_again"] {
        match mode {
            "ring" => tracer.enable_ring(),
            "export" => {
                let file = std::fs::File::create(&export_path).expect("trace temp file");
                tracer.enable_export(Box::new(std::io::BufWriter::new(file)));
            }
            _ => tracer.disable(),
        }
        let (wall_ms, qps) = sweep();
        qps_of.insert(mode, qps);
        let requests = (CLIENTS * REQS_PER_CLIENT) as u64;
        table.row(&[&mode, &requests, &fmt_f(wall_ms, 1), &fmt_f(qps, 0)]);
        emit_json_row(
            "trace",
            &[
                ("mode", Value::from(mode)),
                ("workers", Value::from(WORKERS as u64)),
                ("clients", Value::from(CLIENTS as u64)),
                ("requests", Value::from(requests)),
                ("wall_ms", Value::from(wall_ms)),
                ("qps", Value::from(qps)),
            ],
        );
    }
    tracer.disable();
    let exported = std::fs::metadata(&export_path)
        .map(|m| m.len())
        .unwrap_or(0);
    std::fs::remove_file(&export_path).ok();
    table.print();
    println!(
        "\nexport wrote {} KiB of ss-trace-v1 lines; ring overhead {}%, export overhead {}%",
        exported / 1024,
        fmt_f(100.0 * (qps_of["off"] / qps_of["ring"] - 1.0), 1),
        fmt_f(100.0 * (qps_of["off"] / qps_of["export"] - 1.0), 1),
    );
    // Disabled tracing must cost nothing that survives the run: the
    // closing off sweep stays within noise of the opening one.
    assert!(
        qps_of["off_again"] >= 0.5 * qps_of["off"],
        "tracing left residual overhead: off {} qps vs off_again {} qps",
        qps_of["off"],
        qps_of["off_again"],
    );
}
