//! **E6 / §6.3** — stream synopsis update cost vs buffer size.
//!
//! The paper's third experiment (its figure is truncated in our source
//! text, but §6 promises "the significant improvement in the update cost
//! for maintaining a wavelet synopsis in a data stream application by
//! employing additional memory as buffer"). Result 3's claim: per-item
//! cost drops from `O(log N)` to `O(1 + log(N/B)/B)` with a `B`-item
//! buffer, with **identical** synopsis quality at buffer boundaries.
//!
//! We stream 2^20 sensor readings, K = 64, and sweep the buffer size,
//! reporting measured per-item coefficient operations and the final
//! synopsis SSE against the offline best-K floor.

use ss_bench::{fmt_count, fmt_f, Table};
use ss_datagen::sensor_stream;
use ss_stream::stream1d::reconstruct_from_entries;
use ss_stream::{offline_best_k_sse, sse, BufferedStream, PerItemStream};

const N_LEVELS: u32 = 20;
const K: usize = 64;

fn main() {
    let n = 1usize << N_LEVELS;
    println!("# E6 — per-item update cost vs buffer size (stream of 2^{N_LEVELS}, K={K})\n");
    let data = sensor_stream(n, 7);
    let best = offline_best_k_sse(&data, K);

    let mut table = Table::new(&[
        "method",
        "buffer B",
        "total coeff ops",
        "ops/item",
        "synopsis SSE",
        "SSE / offline-best-K",
    ]);

    let mut per_item = PerItemStream::new(K, N_LEVELS);
    for &x in &data {
        per_item.push(x);
    }
    let approx = reconstruct_from_entries(per_item.average(), &per_item.entries(), n);
    let e = sse(&data, &approx);
    table.row(&[
        &"per-item (Gilbert et al.)",
        &1,
        &fmt_count(per_item.work()),
        &fmt_f(per_item.work() as f64 / n as f64, 2),
        &fmt_f(e, 1),
        &fmt_f(e / best, 4),
    ]);

    for b in [1u32, 2, 4, 6, 8, 10, 12] {
        let mut s = BufferedStream::new(K, b, N_LEVELS);
        for &x in &data {
            s.push(x);
        }
        let approx = reconstruct_from_entries(s.average(), &s.entries(), n);
        let e = sse(&data, &approx);
        table.row(&[
            &"shift-split buffered",
            &(1usize << b),
            &fmt_count(s.work()),
            &fmt_f(s.work() as f64 / n as f64, 2),
            &fmt_f(e, 1),
            &fmt_f(e / best, 4),
        ]);
    }
    table.print();
    println!("offline best-K SSE floor: {}", fmt_f(best, 1));
    println!("\nExpected shape (Result 3): ops/item ≈ log N for the baseline, falling");
    println!("towards ≈ 1 + log(N/B)/B as the buffer grows, with SSE identical to the");
    println!("offline best-K floor for every buffer size.");
}
