//! **E3 / Figure 11** — effect of larger memory on transformation cost.
//!
//! Paper setup: the 16 GB 4-d TEMPERATURE cube, transformed with growing
//! memory; I/O reported in *coefficients*. Series: Vitter et al.,
//! SHIFT-SPLIT standard, SHIFT-SPLIT non-standard.
//!
//! Our setup: a synthetic TEMPERATURE-like cube (`ss-datagen`), default
//! `32^4` (≈ 1M cells, 8 MB — same dimensionality, laptop scale), memory
//! swept as cubic chunks `M^4`. The claims to reproduce (paper Figure 11):
//!
//! 1. larger memory sharply reduces the standard form's cost (its SPLIT
//!    cost falls as `(1 + log(N/M)/M)^d`),
//! 2. the non-standard form is nearly flat in memory (its SPLIT is
//!    negligible),
//! 3. SHIFT-SPLIT beats Vitter at every memory size.

use ss_bench::{fmt_count, Table};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_datagen::temperature_cube;
use ss_storage::{wstore::mem_store, IoStats};
use ss_transform::{
    transform_nonstandard_zorder, transform_standard, vitter_transform_standard, ArraySource,
};

const D: usize = 4;
const N_LEVELS: u32 = 5; // 32 per axis -> 32^4 = 1,048,576 cells
const B_LEVELS: u32 = 2; // 4^4 = 256 coefficients (2 KB) per block

fn main() {
    println!("# E3 / Figure 11 — I/O (coefficients) vs memory size, d=4\n");
    let side = 1usize << N_LEVELS;
    println!(
        "dataset: TEMPERATURE-like {side}^4 cube ({} cells); block {} coeffs\n",
        fmt_count((side * side * side * side) as u64),
        1usize << (B_LEVELS as usize * D),
    );
    let data = temperature_cube(&[side; 4], 20050614);
    let mut table = Table::new(&[
        "memory M^4 (coeffs)",
        "Vitter",
        "Shift-Split (Standard)",
        "Shift-Split (Non-Standard)",
    ]);
    // Chunk side 2 (m = 1) is a degenerate configuration where per-chunk
    // SPLIT dominates everything; the paper's sweep starts at a realistic
    // memory, and so does ours.
    for m in 2..=N_LEVELS {
        let src = ArraySource::new(&data, &[m; 4]);
        let mem_coeffs = 1usize << (4 * m as usize);
        let block_cap = 1usize << (B_LEVELS as usize * D);

        let stats_v = IoStats::new();
        let _ = vitter_transform_standard(&src, mem_coeffs, block_cap, stats_v.clone());

        let stats_s = IoStats::new();
        let mut cs = mem_store(
            StandardTiling::new(&[N_LEVELS; 4], &[B_LEVELS; 4]),
            (mem_coeffs / block_cap).max(1),
            stats_s.clone(),
        );
        transform_standard(&src, &mut cs, false);

        let stats_z = IoStats::new();
        let mut cz = mem_store(
            NonStandardTiling::new(D, N_LEVELS, B_LEVELS),
            (mem_coeffs / block_cap).max(1),
            stats_z.clone(),
        );
        transform_nonstandard_zorder(&src, &mut cz);

        table.row(&[
            &fmt_count(mem_coeffs as u64),
            &fmt_count(stats_v.snapshot().coeffs()),
            &fmt_count(stats_s.snapshot().coeffs()),
            &fmt_count(stats_z.snapshot().coeffs()),
        ]);
    }
    table.print();
    println!("Expected shape (paper Fig. 11): Standard falls steeply with memory;");
    println!("Non-Standard is flat and lowest; Vitter is highest at every size.");
}
