//! **E-SERVE** — workers × clients sweep of the concurrent query server.
//!
//! Not a paper experiment: the paper maintains the transformed data, this
//! harness measures *serving* it. A 64×64 standard-form store sits behind
//! a [`ThrottledBlockStore`] emulating a device with 200 µs per-block read
//! latency and internal parallelism (shared positional reads), cached by a
//! sharded pool far smaller than the tile count so misses dominate. For
//! every (executor workers × closed-loop clients × `batch_max`)
//! combination the sweep runs a fixed per-client mix of point and
//! range-sum queries through the real TCP server and reports wall time,
//! throughput, mean executor batch size and the pool hit rate.
//!
//! Two effects are on display:
//!
//! * **worker overlap** — with several clients in flight, executor workers
//!   overlap their miss sleeps under the pool's read lock, so throughput
//!   scales with workers even on a single CPU (the sleeps, not the CPU,
//!   are the bottleneck);
//! * **tile-major batching** — each executor sweep answers every pending
//!   request that wants a hot tile from one fetch, visible as mean batch
//!   sizes above 1 once clients outnumber workers.
//!
//! With one client there is exactly one request in flight and extra
//! workers cannot help; the table says so instead of pretending.

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_bench::{emit_json_row, fmt_f, timed_ms, Table};
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use ss_datagen::SplitMix64;
use ss_obs::json::Value;
use ss_serve::{Client, QueryServer, ServeConfig};
use ss_storage::{CoeffStore, IoStats, MemBlockStore, SharedCoeffStore, ThrottledBlockStore};
use std::time::Duration;

const N: u32 = 6; // 64 x 64 domain
const B: u32 = 2; // 4x4-coefficient tiles -> 16x16 = 256 tiles
const POOL: usize = 48; // blocks cached (~19% of tiles): misses dominate
const SHARDS: usize = 8;
const READ_LAT_US: u64 = 200;
const REQS_PER_CLIENT: usize = 150;
const BATCHES: [usize; 3] = [1, 4, 16];
const WORKERS: [usize; 3] = [1, 2, 4];
const CLIENTS: [usize; 3] = [1, 4, 8];

type ServedStore = SharedCoeffStore<StandardTiling, ThrottledBlockStore<MemBlockStore>>;

/// Builds the served store: populate through an unthrottled serial store,
/// then wrap the block file in the read throttle for serving.
fn build_store(stats: IoStats) -> ServedStore {
    let side = 1usize << N;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0].wrapping_mul(2654435761) ^ idx[1].wrapping_mul(40503)) % 1000) as f64 - 500.0
    });
    let t = ss_core::standard::forward_to(&data);
    let map = StandardTiling::new(&[N; 2], &[B; 2]);
    let mem = MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
    let mut cs = CoeffStore::new(map, mem, 1 << 10, stats.clone());
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }
    cs.flush();
    let (map, mem) = cs.into_parts();
    let throttled =
        ThrottledBlockStore::new(mem, Duration::from_micros(READ_LAT_US), Duration::ZERO);
    SharedCoeffStore::new(map, throttled, POOL, SHARDS, stats)
}

/// One closed-loop client: connect, then issue the seeded query mix one
/// request at a time (the next request leaves only after the answer).
fn run_client(addr: std::net::SocketAddr, seed: u64) {
    let side = 1usize << N;
    let mut client = Client::connect(addr).expect("connect");
    let mut rng = SplitMix64::new(seed);
    for _ in 0..REQS_PER_CLIENT {
        if rng.below(10) < 7 {
            let pos = [rng.below(side), rng.below(side)];
            client.point(&pos).expect("point");
        } else {
            let (a, b) = (rng.below(side), rng.below(side));
            let (c, d) = (rng.below(side), rng.below(side));
            client
                .range_sum(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)])
                .expect("range_sum");
        }
    }
}

fn main() {
    let side = 1usize << N;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# E-SERVE — query server worker × client × batch sweep\n");
    println!(
        "domain {side}x{side}, tiles {t}x{t}, pool {POOL} of {total} blocks, \
         {READ_LAT_US} µs emulated read latency, {REQS_PER_CLIENT} requests \
         per client (70% point / 30% range-sum), batch_max swept over \
         {BATCHES:?}; host has {cores} core(s)\n",
        t = 1usize << (N - B),
        total = 1usize << (2 * (N - B)),
    );
    let mut table = Table::new(&[
        "workers",
        "clients",
        "batch_max",
        "requests",
        "wall ms",
        "qps",
        "mean batch",
        "hit %",
    ]);
    let registry = ss_obs::global();
    let (ok_ctr, batch_ctr) = (
        registry.counter("serve.requests_ok"),
        registry.counter("serve.batches"),
    );
    let mut qps_at = Vec::new();
    for &workers in &WORKERS {
        for &clients in &CLIENTS {
            for &batch_max in &BATCHES {
                let before = (ok_ctr.get(), batch_ctr.get());
                let stats = IoStats::new();
                let store = build_store(stats.clone());
                stats.reset(); // count only the serving phase
                let server = QueryServer::bind(
                    "127.0.0.1:0",
                    store,
                    vec![N; 2],
                    ServeConfig {
                        workers,
                        batch_max,
                        max_requests: None,
                        slow_ns: None,
                    },
                )
                .expect("bind");
                let addr = server.local_addr();
                let (_, wall_ms) = timed_ms(|| {
                    std::thread::scope(|scope| {
                        for c in 0..clients {
                            scope.spawn(move || run_client(addr, 0x5E44E + c as u64));
                        }
                    });
                });
                server.shutdown();
                let requests = (clients * REQS_PER_CLIENT) as u64;
                let answered = ok_ctr.get() - before.0;
                assert_eq!(answered, requests, "every request answered exactly once");
                let batches = batch_ctr.get() - before.1;
                let qps = requests as f64 / (wall_ms / 1000.0);
                let mean_batch = requests as f64 / batches.max(1) as f64;
                let snap = stats.snapshot();
                let hit_pct = 100.0 * snap.pool_hits as f64 / snap.pool_accesses().max(1) as f64;
                qps_at.push(((workers, clients, batch_max), qps));
                table.row(&[
                    &workers,
                    &clients,
                    &batch_max,
                    &requests,
                    &fmt_f(wall_ms, 1),
                    &fmt_f(qps, 0),
                    &fmt_f(mean_batch, 2),
                    &fmt_f(hit_pct, 1),
                ]);
                emit_json_row(
                    "serve",
                    &[
                        ("workers", Value::from(workers as u64)),
                        ("clients", Value::from(clients as u64)),
                        ("requests", Value::from(requests)),
                        ("wall_ms", Value::from(wall_ms)),
                        ("qps", Value::from(qps)),
                        ("mean_batch", Value::from(mean_batch)),
                        ("pool_hit_pct", Value::from(hit_pct)),
                        ("read_latency_us", Value::from(READ_LAT_US)),
                        ("batch_max", Value::from(batch_max as u64)),
                    ],
                );
            }
        }
    }
    table.print();
    let at = |w: usize, c: usize, b: usize| {
        qps_at
            .iter()
            .find(|(cfg, _)| *cfg == (w, c, b))
            .map(|(_, q)| *q)
            .expect("swept configuration")
    };
    let speedup = at(4, 8, 4) / at(1, 8, 4);
    println!(
        "4-worker vs 1-worker speedup at 8 clients (batch_max 4): {}x",
        fmt_f(speedup, 2)
    );
    let batch_gain = at(4, 8, 16) / at(4, 8, 1);
    println!(
        "batch_max 16 vs 1 at 4 workers / 8 clients: {}x",
        fmt_f(batch_gain, 2)
    );
}
