//! **E4 / Figure 12** — effect of larger tiles on transformation cost.
//!
//! Paper setup: d=2, memory 64 coefficients, dataset size swept to 16 GB;
//! I/O in *blocks* for tile sizes 1 KB and 4 KB, both forms. Claims:
//! cost grows linearly with dataset size, larger tiles cost fewer block
//! I/Os, and the non-standard form stays below the standard form.
//!
//! Our tiles are `B × B` with `B = 2^b`, i.e. `8·B²` bytes: `b = 3` → 512 B,
//! `b = 4` → 2 KB, `b = 5` → 8 KB (the nearest realisable sizes to the
//! paper's 1 KB / 4 KB).

use ss_array::{NdArray, Shape};
use ss_bench::{fmt_count, Table};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_storage::{wstore::mem_store, IoStats};
use ss_transform::{transform_nonstandard_zorder, transform_standard, ArraySource};

const M_LEVELS: u32 = 3; // 8x8 = 64-coefficient memory, as in the paper

fn main() {
    println!("# E4 / Figure 12 — I/O (blocks) vs dataset size, d=2, memory 64\n");
    let mut table = Table::new(&[
        "dataset (cells)",
        "Std b=3 (512B)",
        "Std b=4 (2KB)",
        "Std b=5 (8KB)",
        "NS b=3 (512B)",
        "NS b=4 (2KB)",
        "NS b=5 (8KB)",
    ]);
    for n in [7u32, 8, 9, 10] {
        let side = 1usize << n;
        let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 131 + idx[1] * 71) % 97) as f64 * 0.5 - 10.0
        });
        let src = ArraySource::new(&data, &[M_LEVELS; 2]);
        let mut cells = vec![fmt_count((side * side) as u64)];
        let mut std_cols = Vec::new();
        let mut ns_cols = Vec::new();
        for b in [3u32, 4, 5] {
            let block_cap = 1usize << (2 * b as usize);
            let pool = (64usize / block_cap).max(1);

            let stats_s = IoStats::new();
            let mut cs = mem_store(StandardTiling::new(&[n; 2], &[b; 2]), pool, stats_s.clone());
            transform_standard(&src, &mut cs, false);
            std_cols.push(fmt_count(stats_s.snapshot().blocks()));

            let stats_z = IoStats::new();
            let mut cz = mem_store(NonStandardTiling::new(2, n, b), pool, stats_z.clone());
            transform_nonstandard_zorder(&src, &mut cz);
            ns_cols.push(fmt_count(stats_z.snapshot().blocks()));
        }
        cells.extend(std_cols);
        cells.extend(ns_cols);
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        table.row(&refs);
    }
    table.print();
    println!("Expected shape (paper Fig. 12): linear growth in dataset size; larger");
    println!("tiles strictly cheaper; non-standard ≤ standard at equal tile size.");
}
