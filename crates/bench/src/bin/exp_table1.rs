//! **E1 / Table 1** — tiles touched by SHIFT and SPLIT.
//!
//! The paper's Table 1 gives the number of `B^d` tiles a single chunk's
//! SHIFT and SPLIT operations touch:
//!
//! | form          | SHIFT          | SPLIT                         |
//! |---------------|----------------|-------------------------------|
//! | standard      | `(M/B)^d`      | `(log_B(N/M))^d` (path tiles) |
//! | non-standard  | `(M/B)^d`      | `(2^d−1)·log_B(N/M)` coeffs in `log_B(N/M)` tiles |
//!
//! We enumerate the actual delta stream of a fully dense transformed chunk,
//! map every target through the Section 3 tiling, and count distinct tiles,
//! split by which operation produced them (a target is SHIFT's iff every
//! axis re-indexes a chunk detail). Formulas are ceilinged per the paper.

use ss_array::{NdArray, Shape};
use ss_bench::Table;
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_core::TilingMap;
use std::collections::HashSet;

fn main() {
    println!("# E1 / Table 1 — tiles touched by SHIFT and SPLIT\n");
    standard();
    nonstandard();
}

/// `true` when every axis of `idx` addresses a detail of level ≤ m (a pure
/// SHIFT target).
fn is_shift_target(idx: &[usize], n: &[u32], m: &[u32]) -> bool {
    idx.iter().zip(n.iter().zip(m)).all(|(&i, (&nt, &mt))| {
        if i == 0 {
            return false;
        }
        let octave = usize::BITS - 1 - i.leading_zeros();
        let level = nt - octave;
        level <= mt
    })
}

fn standard() {
    println!("## Standard form\n");
    let mut table = Table::new(&[
        "d",
        "N",
        "M",
        "B",
        "shift tiles",
        "pred s^d",
        "split tiles",
        "pred (s+p)^d-s^d",
    ]);
    for (d, n, m, b) in [
        (1usize, 10u32, 6u32, 2u32),
        (1, 12, 8, 3),
        (2, 6, 3, 1),
        (2, 7, 4, 2),
        (2, 8, 4, 2),
        (3, 5, 2, 1),
    ] {
        let nv = vec![n; d];
        let mv = vec![m; d];
        let bv = vec![b; d];
        let tiling = StandardTiling::new(&nv, &bv);
        let chunk = NdArray::from_fn(Shape::cube(d, 1 << m), |_| 1.0);
        let block = vec![1usize.min((1usize << (n - m)) - 1); d];
        let mut shift_tiles = HashSet::new();
        let mut split_tiles = HashSet::new();
        ss_core::split::standard_deltas(&chunk, &nv, &block, |idx, _| {
            let tile = tiling.locate(idx).tile;
            if is_shift_target(idx, &nv, &mv) {
                shift_tiles.insert(tile);
            } else {
                split_tiles.insert(tile);
            }
        });
        // Shared tiles count once, on the SHIFT side (the block is read
        // anyway); drop them from the split count.
        let split_only: HashSet<_> = split_tiles.difference(&shift_tiles).collect();
        // Exact per-axis predictions: a height-m subtree spans
        // s = ceil((M-1)/(B-1)) tiles; the root path above it spans
        // p = ceil((n-m)/b) band tiles (one fewer when the lowest path
        // band is shared with the subtree).
        let s_axis = ((1usize << m) - 1).div_ceil((1usize << b) - 1);
        let p_axis = (n - m).div_ceil(b) as usize;
        let shift_formula = s_axis.pow(d as u32);
        let split_formula = (s_axis + p_axis).pow(d as u32) - shift_formula;
        table.row(&[
            &d,
            &(1u64 << n),
            &(1u64 << m),
            &(1u64 << b),
            &shift_tiles.len(),
            &shift_formula,
            &split_only.len(),
            &split_formula,
        ]);
    }
    table.print();
    println!("(predictions are exact up to band-boundary sharing between the subtree");
    println!("and the lowest path tile, which can save one tile per axis)\n");
}

fn nonstandard() {
    println!("## Non-standard form\n");
    let mut table = Table::new(&[
        "d",
        "N",
        "M",
        "B",
        "shift tiles",
        "pred (M^d-1)/(B^d-1)",
        "split tiles",
        "pred ceil((n-m)/b)",
    ]);
    for (d, n, m, b) in [
        (2usize, 6u32, 3u32, 1u32),
        (2, 7, 4, 2),
        (2, 8, 4, 2),
        (3, 5, 2, 1),
        (3, 6, 3, 1),
    ] {
        let tiling = NonStandardTiling::new(d, n, b);
        let chunk = NdArray::from_fn(Shape::cube(d, 1 << m), |_| 1.0);
        let block = vec![1usize.min((1usize << (n - m)) - 1); d];
        let mut shift_tiles = HashSet::new();
        let mut split_tiles = HashSet::new();
        ss_core::split::nonstandard_deltas(&chunk, n, &block, |idx, _| {
            let tile = tiling.locate(idx).tile;
            let level = match ss_core::nonstandard::coeff_at(n, idx) {
                ss_core::nonstandard::NsCoeff::Scaling => u32::MAX,
                ss_core::nonstandard::NsCoeff::Detail { level, .. } => level,
            };
            if level <= m {
                shift_tiles.insert(tile);
            } else {
                split_tiles.insert(tile);
            }
        });
        let split_only: HashSet<_> = split_tiles.difference(&shift_tiles).collect();
        // A height-m quad-tree subtree has (M^d - 1)/(2^{db} - 1) node
        // groups, i.e. that many tiles; the split path crosses one tile
        // per band above the chunk level.
        let shift_formula =
            ((1usize << (m as usize * d)) - 1).div_ceil((1usize << (b as usize * d)) - 1);
        let split_formula = (n - m).div_ceil(b) as usize;
        table.row(&[
            &d,
            &(1u64 << n),
            &(1u64 << m),
            &(1u64 << b),
            &shift_tiles.len(),
            &shift_formula,
            &split_only.len(),
            &split_formula,
        ]);
    }
    table.print();
    println!("SHIFT touches B^d-fold fewer tiles than coefficients; SPLIT log_B-fold fewer —");
    println!("the two claims of Section 4.2.");
}
