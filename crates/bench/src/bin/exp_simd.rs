//! **E-SIMD** — hot-kernel sweep: the cache-blocked (and, under
//! `--features simd`, vectorized) kernels against in-binary naive
//! references.
//!
//! Not a paper experiment: the paper counts I/O, not cycles. This
//! harness guards the kernel layer (`ss-core/src/kernel.rs`): each row
//! times one hot kernel at a 256²+ working set against a deliberately
//! naive reference — per-line gather/scatter for the axis cascades,
//! tuple-indexed butterflies for the non-standard form, a branchy
//! element loop for the dense SPLIT flush — and reports the speedup.
//! Every reference computes bit-identical results (asserted per rep),
//! so the speedup is pure execution-strategy, not accuracy trade.
//!
//! Run once per build and append to the same `SS_EXP_JSON` file to get
//! the committed `BENCH_simd.json`: rows carry `build` (`scalar` /
//! `simd`) and `lanes`, so scalar-vs-SIMD comparisons read straight off
//! the dataset. The binary asserts best speedup >= 1.0 against its own
//! references (>= 1.5 in the SIMD build, the ISSUE acceptance bar;
//! override with `SS_SIMD_BAR`).

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_bench::{emit_json_row, fmt_f, Table};
use ss_core::{haar1d, kernel, nonstandard, standard};
use ss_obs::json::Value;
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 7;

/// Deterministic data: cheap SplitMix-style hash of the index.
fn data(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let x = seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let x = (x ^ (x >> 31)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (x >> 11) as f64 / (1u64 << 53) as f64 * 2e3 - 1e3
        })
        .collect()
}

/// Min-of-`REPS` wall time in milliseconds (1 warmup rep first).
fn time_ms(mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn assert_same_bits(name: &str, got: &[f64], want: &[f64]) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{name}: bit mismatch at {i}: {g} vs {w}"
        );
    }
}

struct Row {
    kernel: &'static str,
    shape: String,
    cells: usize,
    naive_ms: f64,
    active_ms: f64,
}

/// 1-d Haar cascade on a long signal: active kernel vs the pinned
/// scalar cascade (identical code in the scalar build; the direct
/// deinterleave/interleave SIMD win in the `simd` build).
fn bench_haar1d(len: usize) -> Row {
    let src = data(len, 0x51);
    let mut scratch = Vec::new();
    let mut buf = src.clone();
    let naive_ms = time_ms(|| {
        buf.copy_from_slice(&src);
        haar1d::forward_scalar_with(black_box(&mut buf), &mut scratch);
        black_box(&buf);
    });
    let want = buf.clone();
    let active_ms = time_ms(|| {
        buf.copy_from_slice(&src);
        haar1d::forward_with(black_box(&mut buf), &mut scratch);
        black_box(&buf);
    });
    assert_same_bits("haar1d_forward", &buf, &want);
    Row {
        kernel: "haar1d_forward",
        shape: format!("{len}"),
        cells: len,
        naive_ms,
        active_ms,
    }
}

/// Standard-form axis cascade: the panel/cache-blocked path vs gather
/// each strided line into a contiguous buffer, transform, scatter back.
fn bench_standard(dims: &[usize]) -> Row {
    let shape = Shape::new(dims);
    let a = NdArray::from_vec(shape.clone(), data(shape.len(), 0x57d));
    let mut scratch = Vec::new();
    let mut want = a.clone();
    let naive_ms = time_ms(|| {
        want = a.clone();
        let shape = want.shape().clone();
        for axis in 0..shape.ndim() {
            let len = shape.dim(axis);
            let stride = shape.strides()[axis];
            let mut outer: Vec<usize> = shape.dims().to_vec();
            outer[axis] = 1;
            for idx in MultiIndexIter::new(&outer) {
                let base = shape.offset(&idx);
                let mut line: Vec<f64> = (0..len)
                    .map(|i| want.as_slice()[base + i * stride])
                    .collect();
                haar1d::forward_scalar_with(&mut line, &mut scratch);
                for (i, &v) in line.iter().enumerate() {
                    want.as_mut_slice()[base + i * stride] = v;
                }
            }
        }
        black_box(&want);
    });
    let mut got = a.clone();
    let active_ms = time_ms(|| {
        got = a.clone();
        standard::forward(black_box(&mut got));
        black_box(&got);
    });
    assert_same_bits("standard_forward", got.as_slice(), want.as_slice());
    Row {
        kernel: "standard_forward",
        shape: dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x"),
        cells: shape.len(),
        naive_ms,
        active_ms,
    }
}

/// Non-standard joint butterfly: the flat odometer kernel vs a
/// tuple-indexed reference (same corner-order association, so the
/// outputs stay bit-identical).
fn bench_nonstandard(d: usize, side: usize) -> Row {
    let shape = Shape::cube(d, side);
    let a = NdArray::from_vec(shape.clone(), data(shape.len(), 0x2d));
    let m = 1usize << d;
    let mut want = a.clone();
    let mut scratch_arr = a.clone();
    let mut src = vec![0usize; d];
    let mut dst = vec![0usize; d];
    let naive_ms = time_ms(|| {
        want = a.clone();
        let mut width = side;
        while width > 1 {
            let half = width / 2;
            for idx in MultiIndexIter::new(&vec![half; d]) {
                for eps in 0..m {
                    let mut acc = 0.0;
                    for corner in 0..m {
                        let mut sign = 1.0;
                        for t in 0..d {
                            let bit = (corner >> (d - 1 - t)) & 1;
                            src[t] = 2 * idx[t] + bit;
                            if (eps >> (d - 1 - t)) & 1 == 1 && bit == 1 {
                                sign = -sign;
                            }
                        }
                        let v = sign * want.get(&src);
                        acc = if corner == 0 { v } else { acc + v };
                    }
                    for t in 0..d {
                        dst[t] = idx[t] + ((eps >> (d - 1 - t)) & 1) * half;
                    }
                    scratch_arr.set(&dst, acc / m as f64);
                }
            }
            for idx in MultiIndexIter::new(&vec![width; d]) {
                want.set(&idx, scratch_arr.get(&idx));
            }
            width = half;
        }
        black_box(&want);
    });
    let mut got = a.clone();
    let active_ms = time_ms(|| {
        got = a.clone();
        nonstandard::forward(black_box(&mut got));
        black_box(&got);
    });
    assert_same_bits("nonstandard_forward", got.as_slice(), want.as_slice());
    Row {
        kernel: "nonstandard_forward",
        shape: format!("{side}^{d}"),
        cells: shape.len(),
        naive_ms,
        active_ms,
    }
}

/// Dense SPLIT flush apply (`kernel::masked_add`): one accumulated
/// delta block added into a coefficient block, skipping untouched
/// slots — vs the branchy scalar loop it replaces.
fn bench_masked_add(blocks: usize, block_len: usize) -> Row {
    let base = data(blocks * block_len, 0xadd);
    let mut deltas = data(blocks * block_len, 0xde17a);
    // Half the slots untouched, as a coalesced flush typically leaves.
    for (i, d) in deltas.iter_mut().enumerate() {
        if i % 2 == 0 {
            *d = 0.0;
        }
    }
    let mut want = base.clone();
    let naive_ms = time_ms(|| {
        want.copy_from_slice(&base);
        for (blk, dl) in want
            .chunks_exact_mut(block_len)
            .zip(deltas.chunks_exact(block_len))
        {
            for (b, &d) in blk.iter_mut().zip(dl) {
                if d != 0.0 {
                    *b += d;
                }
            }
        }
        black_box(&want);
    });
    let mut got = base.clone();
    let active_ms = time_ms(|| {
        got.copy_from_slice(&base);
        for (blk, dl) in got
            .chunks_exact_mut(block_len)
            .zip(deltas.chunks_exact(block_len))
        {
            kernel::masked_add(blk, dl);
        }
        black_box(&got);
    });
    assert_same_bits("split_masked_add", &got, &want);
    Row {
        kernel: "split_masked_add",
        shape: format!("{blocks}x{block_len}"),
        cells: blocks * block_len,
        naive_ms,
        active_ms,
    }
}

fn main() {
    let build = kernel::name();
    let lanes = kernel::lanes();
    println!("# E-SIMD — hot kernels vs naive references (build: {build}, lanes {lanes})\n");

    let rows = vec![
        bench_haar1d(1 << 21),
        bench_standard(&[256, 256]),
        bench_standard(&[512, 512]),
        bench_standard(&[64, 64, 64]),
        bench_nonstandard(2, 512),
        bench_nonstandard(3, 64),
        bench_masked_add(512, 4096),
    ];

    let mut table = Table::new(&[
        "kernel",
        "shape",
        "cells",
        "naive ms",
        "active ms",
        "speedup",
    ]);
    let mut best = 0.0f64;
    for r in &rows {
        let speedup = r.naive_ms / r.active_ms;
        best = best.max(speedup);
        table.row(&[
            &r.kernel,
            &r.shape,
            &(r.cells as u64),
            &fmt_f(r.naive_ms, 3),
            &fmt_f(r.active_ms, 3),
            &format!("{speedup:.2}x"),
        ]);
        emit_json_row(
            "simd",
            &[
                ("kernel", Value::from(r.kernel)),
                ("shape", Value::from(r.shape.as_str())),
                ("cells", Value::from(r.cells as u64)),
                ("build", Value::from(build)),
                ("lanes", Value::from(lanes as u64)),
                ("naive_ms", Value::from(r.naive_ms)),
                ("active_ms", Value::from(r.active_ms)),
                ("speedup", Value::from(r.naive_ms / r.active_ms)),
            ],
        );
    }
    table.print();

    // Scalar build: the cache-blocked restructure alone must not lose to
    // the naive paths. SIMD build: the ISSUE acceptance bar, >= 1.5x on
    // at least one kernel at 256²+.
    let default_bar = if lanes > 1 { 1.5 } else { 1.0 };
    let bar = std::env::var("SS_SIMD_BAR")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default_bar);
    println!("\nBest speedup {best:.2}x (bar {bar:.2}x, build {build}).");
    assert!(
        best >= bar,
        "acceptance: best kernel speedup {best:.2}x under the {bar:.2}x bar ({build} build)"
    );
    println!("All rows verified bit-identical against their references before timing was trusted.");
}
