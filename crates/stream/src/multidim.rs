//! Multidimensional stream synopses (Results 4 and 5).
//!
//! A d-dimensional stream in the time-series model grows along one axis
//! (time `T`) while the other axes are fixed at size `N`. What must stay in
//! memory is whatever a future SPLIT can still change:
//!
//! * **Standard form** ([`StandardStreamSynopsis`], Result 4) — every
//!   space-basis combination keeps its own time crest, so
//!   `O(K + M^d + N^{d−1}·log T)` coefficients are live. Prohibitive unless
//!   the constant dimensions are small — exactly the paper's conclusion.
//! * **Non-standard form** ([`NonStandardStreamSynopsis`], Result 5) — the
//!   stream is a chain of `N^d` hypercubes; each hypercube decomposes
//!   independently (its details finalize immediately, with a z-order crest
//!   of `(2^d − 1)·log(N/M) + 1` while in flight) and only its average
//!   enters a single 1-d time tree. Live coefficients:
//!   `O(K + M^d + (2^d − 1)·log(N/M) + log T)`.

use crate::synopsis::KTermSynopsis;
use ss_array::NdArray;
use ss_obs::{Histogram, Stopwatch};

/// Time-axis component of a standard-form stream key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimeKey {
    /// A finalized time detail `w_{level, k}`.
    Detail {
        /// Time decomposition level.
        level: u32,
        /// Translation within the level.
        k: usize,
    },
    /// The time-axis overall average (finalized only at `finish`).
    Average,
}

/// Key of a standard-form d-dimensional stream coefficient: fully
/// transformed space indices plus a time-axis component.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StdKey {
    /// Per-space-axis 1-d coefficient indices.
    pub space: Vec<usize>,
    /// Time-axis coefficient.
    pub time: TimeKey,
}

/// Result 4: K-term synopsis of a standard-form d-dimensional stream.
pub struct StandardStreamSynopsis {
    synopsis: KTermSynopsis<StdKey>,
    space_levels: Vec<u32>,
    chunk_time_levels: u32,
    max_time_levels: u32,
    blocks: usize,
    /// `crest[space_offset][s-1]` = open coefficient at time level
    /// `chunk_time_levels + s` for that space basis.
    crest: Vec<Vec<f64>>,
    /// Accumulating (space basis × time-average) coefficients.
    avg_acc: Vec<f64>,
    space_shape: ss_array::Shape,
    finished: bool,
}

impl StandardStreamSynopsis {
    /// A synopsis over chunks shaped `2^{space_levels} × 2^{chunk_time_levels}`
    /// for a stream of up to `2^{max_time_levels}` time slots.
    pub fn new(
        k: usize,
        space_levels: &[u32],
        chunk_time_levels: u32,
        max_time_levels: u32,
    ) -> Self {
        assert!(chunk_time_levels <= max_time_levels);
        let space_dims: Vec<usize> = space_levels.iter().map(|&n| 1usize << n).collect();
        let space_shape = ss_array::Shape::new(&space_dims);
        let n_space = space_shape.len();
        let crest_levels = (max_time_levels - chunk_time_levels) as usize;
        StandardStreamSynopsis {
            synopsis: KTermSynopsis::new(k),
            space_levels: space_levels.to_vec(),
            chunk_time_levels,
            max_time_levels,
            blocks: 0,
            crest: vec![vec![0.0; crest_levels]; n_space],
            avg_acc: vec![0.0; n_space],
            space_shape,
            finished: false,
        }
    }

    /// Live (non-K) coefficients held: the Result 4 space bound
    /// `N^{d−1} · log T` (plus the accumulators).
    pub fn live_coefficients(&self) -> usize {
        self.crest.len() * (self.max_time_levels - self.chunk_time_levels) as usize
            + self.avg_acc.len()
    }

    /// Time slots consumed.
    pub fn time_filled(&self) -> usize {
        self.blocks << self.chunk_time_levels
    }

    /// The maintained top-K container.
    pub fn synopsis(&self) -> &KTermSynopsis<StdKey> {
        &self.synopsis
    }

    /// Orthonormal scale of the space part of a key.
    fn space_scale(&self, space: &[usize]) -> f64 {
        space
            .iter()
            .zip(&self.space_levels)
            .map(|(&i, &n)| ss_core::Layout1d::new(n).orthonormal_scale(i))
            .product()
    }

    /// Consumes one chunk spanning the full space domain and
    /// `2^{chunk_time_levels}` time slots.
    pub fn push_chunk(&mut self, chunk: &NdArray<f64>) {
        assert!(!self.finished, "stream already finished");
        let d = self.space_levels.len() + 1;
        assert_eq!(chunk.shape().ndim(), d);
        let levels = chunk.shape().levels();
        assert_eq!(
            &levels[..d - 1],
            &self.space_levels[..],
            "space shape mismatch"
        );
        assert_eq!(
            levels[d - 1],
            self.chunk_time_levels,
            "time extent mismatch"
        );
        assert!(
            self.time_filled() + (1usize << self.chunk_time_levels)
                <= (1usize << self.max_time_levels),
            "stream exceeded declared time domain"
        );
        let p = self.blocks;
        let mc = self.chunk_time_levels;
        let mut t = chunk.clone();
        ss_core::standard::forward(&mut t);
        let layout_c = ss_core::Layout1d::new(mc);
        for idx in ss_array::MultiIndexIter::new(chunk.shape().dims()) {
            let v = t.get(&idx);
            if v == 0.0 {
                continue;
            }
            let space = &idx[..d - 1];
            let it = idx[d - 1];
            if it >= 1 {
                // Final time detail: SHIFT to global translation.
                if let ss_core::Coeff1d::Detail { level, k } = layout_c.coeff_at(it) {
                    let key = StdKey {
                        space: space.to_vec(),
                        time: TimeKey::Detail {
                            level,
                            k: (p << (mc - level)) + k,
                        },
                    };
                    let scale = self.space_scale(space) * (2.0f64).powf(level as f64 / 2.0);
                    self.synopsis.offer(key, v, scale);
                }
            } else {
                // Chunk time-average: SPLIT into this space basis's crest.
                let off = self.space_shape.offset(space);
                for s in 1..=(self.max_time_levels - mc) {
                    let sign = if (p >> (s - 1)) & 1 == 0 { 1.0 } else { -1.0 };
                    self.crest[off][(s - 1) as usize] += sign * v / (1u64 << s) as f64;
                }
                self.avg_acc[off] += v / (1u64 << (self.max_time_levels - mc)) as f64;
            }
        }
        self.blocks += 1;
        // Finalize completed time levels for every space basis.
        for s in 1..=(self.max_time_levels - mc) {
            if !self.blocks.is_multiple_of(1usize << s) {
                break;
            }
            let level = mc + s;
            let k = (self.blocks >> s) - 1;
            for off in 0..self.crest.len() {
                let v = self.crest[off][(s - 1) as usize];
                self.crest[off][(s - 1) as usize] = 0.0;
                if v == 0.0 {
                    continue;
                }
                let space = self.space_shape.unoffset(off);
                let scale = self.space_scale(&space) * (2.0f64).powf(level as f64 / 2.0);
                self.synopsis.offer(
                    StdKey {
                        space,
                        time: TimeKey::Detail { level, k },
                    },
                    v,
                    scale,
                );
            }
        }
    }

    /// Declares the stream complete: offers the (space basis × time
    /// average) coefficients. Returns the overall average.
    pub fn finish(&mut self) -> f64 {
        assert!(!self.finished);
        self.finished = true;
        let time_scale = (2.0f64).powf(self.max_time_levels as f64 / 2.0);
        let mut overall = 0.0;
        for off in 0..self.avg_acc.len() {
            let v = self.avg_acc[off];
            let space = self.space_shape.unoffset(off);
            if space.iter().all(|&i| i == 0) {
                overall = v;
                continue;
            }
            if v != 0.0 {
                let scale = self.space_scale(&space) * time_scale;
                self.synopsis.offer(
                    StdKey {
                        space,
                        time: TimeKey::Average,
                    },
                    v,
                    scale,
                );
            }
        }
        overall
    }
}

/// Key of a non-standard-form stream coefficient.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NsKey {
    /// A detail inside the hypercube at time slot `tau`.
    Cube {
        /// Which hypercube along the time chain.
        tau: usize,
        /// Quad-tree level inside the cube.
        level: u32,
        /// Quad-tree node.
        node: Vec<usize>,
        /// Differenced axes.
        subband: Vec<bool>,
    },
    /// A detail of the 1-d tree over hypercube averages.
    Time {
        /// Time decomposition level.
        level: u32,
        /// Translation within the level.
        k: usize,
    },
}

/// Result 5: K-term synopsis of a non-standard-form d-dimensional stream.
///
/// Hypercubes of side `2^cube_levels` arrive one per time slot, delivered
/// as `2^sub_levels`-sided sub-chunks **in z-order** (the Result 2
/// schedule), so only a logarithmic crest is live inside the current cube.
///
/// The in-flight crest is a *flat indexed* array rather than a map keyed
/// by coefficient tuple: under the z-order schedule at most one node per
/// level `m+1 ..= n` is open at a time, so an open detail is identified by
/// `(level, subband)` alone — `(2^d − 1)·(n − m)` detail slots plus one
/// slot for the accumulating cube average. This keeps the per-delta hot
/// path allocation-free (the map version hashed an owned `Vec<usize>` key
/// per contribution).
pub struct NonStandardStreamSynopsis {
    synopsis: KTermSynopsis<NsKey>,
    d: usize,
    cube_levels: u32,
    sub_levels: u32,
    max_time_levels: u32,
    tau: usize,
    sub_rank: usize,
    /// Flat crest: slot `(level − m − 1)·(2^d − 1) + (eps − 1)` for the
    /// open detail of `(level, subband eps)`; last slot is the cube
    /// average.
    cube_crest: Vec<f64>,
    /// Which crest slots hold a live (possibly zero-valued) coefficient.
    crest_occupied: Vec<bool>,
    crest_live: usize,
    time_crest: Vec<f64>,
    time_avg_acc: f64,
    peak_live: usize,
    finished: bool,
    /// `stream.push_ns` handle (global registry), one sample per
    /// sub-chunk.
    push_ns: Histogram,
}

impl NonStandardStreamSynopsis {
    /// A synopsis over `d`-dimensional hypercubes of side `2^cube_levels`,
    /// arriving as z-ordered sub-chunks of side `2^sub_levels`, for up to
    /// `2^max_time_levels` cubes.
    pub fn new(
        k: usize,
        d: usize,
        cube_levels: u32,
        sub_levels: u32,
        max_time_levels: u32,
    ) -> Self {
        assert!(sub_levels <= cube_levels);
        let det_per_level = (1usize << d) - 1;
        let crest_slots = det_per_level * (cube_levels - sub_levels) as usize + 1;
        NonStandardStreamSynopsis {
            synopsis: KTermSynopsis::new(k),
            d,
            cube_levels,
            sub_levels,
            max_time_levels,
            tau: 0,
            sub_rank: 0,
            cube_crest: vec![0.0; crest_slots],
            crest_occupied: vec![false; crest_slots],
            crest_live: 0,
            time_crest: vec![0.0; max_time_levels as usize],
            time_avg_acc: 0.0,
            peak_live: 0,
            finished: false,
            push_ns: ss_obs::global().histogram("stream.push_ns"),
        }
    }

    /// Crest slot of the open detail at `level` (`> m`) with subband rank
    /// `eps` (`1 ..= 2^d − 1`).
    #[inline]
    fn detail_slot(sub_levels: u32, d: usize, level: u32, eps: usize) -> usize {
        ((level - sub_levels - 1) as usize) * ((1usize << d) - 1) + (eps - 1)
    }

    /// Hypercubes completed.
    pub fn cubes_filled(&self) -> usize {
        self.tau
    }

    /// Peak live (non-K) coefficients observed — must respect the Result 5
    /// bound `(2^d − 1)·log(N/M) + 1 + log T`.
    pub fn peak_live_coefficients(&self) -> usize {
        self.peak_live
    }

    /// The maintained top-K container.
    pub fn synopsis(&self) -> &KTermSynopsis<NsKey> {
        &self.synopsis
    }

    /// Consumes the next sub-chunk (z-order within the current cube).
    pub fn push_subchunk(&mut self, chunk: &NdArray<f64>) {
        assert!(!self.finished, "stream already finished");
        assert!(
            self.tau < (1usize << self.max_time_levels),
            "stream exceeded declared time domain"
        );
        let sw = Stopwatch::start();
        let (d, m) = ss_core::nonstandard::cube_levels(chunk.shape());
        assert_eq!(d, self.d);
        assert_eq!(m, self.sub_levels, "sub-chunk side mismatch");
        let n = self.cube_levels;
        let grid_bits = n - m;
        let mut block = vec![0usize; d];
        ss_array::morton_decode(self.sub_rank, grid_bits, &mut block);

        let mut t = chunk.clone();
        ss_core::nonstandard::forward(&mut t);
        let tau = self.tau;
        let avg_slot = self.cube_crest.len() - 1;
        let crest = &mut self.cube_crest;
        let occupied = &mut self.crest_occupied;
        let live = &mut self.crest_live;
        let synopsis = &mut self.synopsis;
        let mut bump = |slot: usize, delta: f64| {
            if !occupied[slot] {
                occupied[slot] = true;
                *live += 1;
            }
            crest[slot] += delta;
        };
        ss_core::split::nonstandard_deltas(&t, n, &block, |idx, delta| {
            match ss_core::nonstandard::coeff_at(n, idx) {
                ss_core::nonstandard::NsCoeff::Scaling => bump(avg_slot, delta),
                ss_core::nonstandard::NsCoeff::Detail {
                    level,
                    node,
                    subband,
                } => {
                    if level <= m {
                        synopsis.offer(
                            NsKey::Cube {
                                tau,
                                level,
                                node,
                                subband,
                            },
                            delta,
                            (2.0f64).powf(d as f64 * level as f64 / 2.0),
                        );
                    } else {
                        let eps = subband
                            .iter()
                            .fold(0usize, |acc, &e| (acc << 1) | usize::from(e));
                        bump(Self::detail_slot(m, d, level, eps), delta);
                    }
                }
            }
        });
        self.peak_live = self.peak_live.max(self.crest_live + self.time_crest.len());
        // Flush completed quad-tree nodes (z-order completion rule).
        for s in 1..=grid_bits {
            if !(self.sub_rank + 1).is_multiple_of(1usize << (d as u32 * s)) {
                break;
            }
            let node: Vec<usize> = block.iter().map(|&b| b >> s).collect();
            for eps in 1usize..(1usize << d) {
                let slot = Self::detail_slot(m, d, m + s, eps);
                if !self.crest_occupied[slot] {
                    continue;
                }
                self.crest_occupied[slot] = false;
                self.crest_live -= 1;
                let v = std::mem::take(&mut self.cube_crest[slot]);
                let subband: Vec<bool> = (0..d).map(|t| (eps >> (d - 1 - t)) & 1 == 1).collect();
                self.synopsis.offer(
                    NsKey::Cube {
                        tau,
                        level: m + s,
                        node: node.clone(),
                        subband,
                    },
                    v,
                    (2.0f64).powf(d as f64 * (m + s) as f64 / 2.0),
                );
            }
        }
        self.sub_rank += 1;
        if self.sub_rank == 1usize << (d as u32 * grid_bits) {
            self.complete_cube();
        }
        self.push_ns.record(sw.elapsed_ns());
    }

    fn complete_cube(&mut self) {
        let avg_slot = self.cube_crest.len() - 1;
        let avg = std::mem::take(&mut self.cube_crest[avg_slot]);
        if std::mem::take(&mut self.crest_occupied[avg_slot]) {
            self.crest_live -= 1;
        }
        debug_assert_eq!(self.crest_live, 0, "cube crest not drained");
        self.sub_rank = 0;
        // Feed the cube average into the 1-d time tree (per-item style).
        let tau = self.tau;
        let cube_cells_scale = (2.0f64).powf(self.d as f64 * self.cube_levels as f64 / 2.0);
        for j in 1..=self.max_time_levels {
            let sign = if (tau >> (j - 1)) & 1 == 0 { 1.0 } else { -1.0 };
            self.time_crest[(j - 1) as usize] += sign * avg / (1u64 << j) as f64;
        }
        self.time_avg_acc += avg / (1u64 << self.max_time_levels) as f64;
        self.tau += 1;
        for j in 1..=self.max_time_levels {
            if !self.tau.is_multiple_of(1usize << j) {
                break;
            }
            let v = self.time_crest[(j - 1) as usize];
            self.time_crest[(j - 1) as usize] = 0.0;
            self.synopsis.offer(
                NsKey::Time {
                    level: j,
                    k: (self.tau >> j) - 1,
                },
                v,
                (2.0f64).powf(j as f64 / 2.0) * cube_cells_scale,
            );
        }
        self.peak_live = self.peak_live.max(self.crest_live + self.time_crest.len());
    }

    /// Declares the stream complete; returns the overall average.
    pub fn finish(&mut self) -> f64 {
        assert!(!self.finished);
        self.finished = true;
        self.time_avg_acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::Shape;

    fn chunk(dims: &[usize], salt: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::new(dims), |idx| {
            ((idx.iter().sum::<usize>() * 7 + salt * 13) % 19) as f64 - 6.0
        })
    }

    #[test]
    fn standard_stream_matches_offline_transform() {
        // 4x4 space, time growing to 16 in chunks of 4.
        let mut s = StandardStreamSynopsis::new(usize::MAX >> 1, &[2, 2], 2, 4);
        let mut full = NdArray::<f64>::zeros(Shape::new(&[4, 4, 16]));
        for p in 0..4usize {
            let c = chunk(&[4, 4, 4], p);
            full.insert(&[0, 0, p * 4], &c);
            s.push_chunk(&c);
        }
        let _avg = s.finish();
        let want = ss_core::standard::forward_to(&full);
        let layout = ss_core::Layout1d::new(4);
        // Every offered entry must equal the offline coefficient.
        let mut offered = 0usize;
        for e in s.synopsis().entries() {
            let mut idx = e.key.space.clone();
            let ti = match e.key.time {
                TimeKey::Detail { level, k } => {
                    layout.index_of(ss_core::Coeff1d::Detail { level, k })
                }
                TimeKey::Average => 0,
            };
            idx.push(ti);
            assert!(
                (want.get(&idx) - e.value).abs() < 1e-9,
                "{:?} -> {idx:?}: {} vs {}",
                e.key,
                e.value,
                want.get(&idx)
            );
            offered += 1;
        }
        // All non-zero coefficients except the overall average are offered.
        let nonzero = ss_array::MultiIndexIter::new(&[4, 4, 16])
            .filter(|idx| want.get(idx).abs() > 1e-12 && idx.iter().any(|&i| i != 0))
            .count();
        assert_eq!(offered, nonzero);
    }

    #[test]
    fn standard_live_space_matches_result_4() {
        let s = StandardStreamSynopsis::new(8, &[3, 3], 1, 10);
        // N^{d-1}·log T = 64 · 9 live crest + 64 accumulators.
        assert_eq!(s.live_coefficients(), 64 * 9 + 64);
    }

    #[test]
    fn nonstandard_stream_matches_offline_chain() {
        // 4x4 cubes (n=2), sub-chunks 2x2 (m=1), 8 time slots.
        let mut s = NonStandardStreamSynopsis::new(usize::MAX >> 1, 2, 2, 1, 3);
        let mut cube_avgs = Vec::new();
        let mut offline: Vec<(NsKey, f64)> = Vec::new();
        for tau in 0..8usize {
            let cube = chunk(&[4, 4], tau);
            // Offline reference: per-cube non-standard transform.
            let t = ss_core::nonstandard::forward_to(&cube);
            for idx in ss_array::MultiIndexIter::new(&[4, 4]) {
                match ss_core::nonstandard::coeff_at(2, &idx) {
                    ss_core::nonstandard::NsCoeff::Scaling => cube_avgs.push(t.get(&idx)),
                    ss_core::nonstandard::NsCoeff::Detail {
                        level,
                        node,
                        subband,
                    } => offline.push((
                        NsKey::Cube {
                            tau,
                            level,
                            node,
                            subband,
                        },
                        t.get(&idx),
                    )),
                }
            }
            // Feed the cube as z-ordered 2x2 sub-chunks.
            for rank in 0..4usize {
                let mut b = vec![0usize; 2];
                ss_array::morton_decode(rank, 1, &mut b);
                let sub = cube.extract(&[b[0] * 2, b[1] * 2], &[2, 2]);
                s.push_subchunk(&sub);
            }
        }
        // Offline time tree over cube averages.
        let tcoeffs = ss_core::haar1d::forward_to_vec(&cube_avgs);
        let tlayout = ss_core::Layout1d::new(3);
        for (i, &v) in tcoeffs.iter().enumerate().skip(1) {
            if let ss_core::Coeff1d::Detail { level, k } = tlayout.coeff_at(i) {
                offline.push((NsKey::Time { level, k }, v));
            }
        }
        let overall = s.finish();
        assert!((overall - tcoeffs[0]).abs() < 1e-9);
        // Compare offered coefficients against the offline chain.
        let got: std::collections::HashMap<NsKey, f64> = s
            .synopsis()
            .entries()
            .into_iter()
            .map(|e| (e.key, e.value))
            .collect();
        for (key, v) in offline {
            if v.abs() < 1e-12 {
                continue;
            }
            let g = got.get(&key).unwrap_or_else(|| panic!("missing {key:?}"));
            assert!((g - v).abs() < 1e-9, "{key:?}: {g} vs {v}");
        }
    }

    #[test]
    fn nonstandard_live_space_respects_result_5() {
        let mut s = NonStandardStreamSynopsis::new(4, 2, 4, 1, 6);
        for tau in 0..4usize {
            for rank in 0..64usize {
                let mut b = vec![0usize; 2];
                ss_array::morton_decode(rank, 3, &mut b);
                let _ = b;
                let sub = chunk(&[2, 2], tau * 64 + rank);
                s.push_subchunk(&sub);
            }
        }
        // Bound: (2^d − 1)·(n − m) + 1 (cube crest incl. average sentinel)
        // + log T (time crest).
        let bound = 3 * (4 - 1) + 1 + 6;
        assert!(
            s.peak_live_coefficients() <= bound,
            "peak {} > bound {bound}",
            s.peak_live_coefficients()
        );
    }

    #[test]
    #[should_panic]
    fn standard_rejects_wrong_space_shape() {
        let mut s = StandardStreamSynopsis::new(4, &[2, 2], 1, 4);
        s.push_chunk(&chunk(&[4, 8, 2], 0));
    }
}
