//! The K-term synopsis container.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identity of a wavelet coefficient in an unbounded 1-d stream: detail
/// coefficients are keyed by `(level, translation)`, which — unlike linear
/// indices — never changes as the domain grows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoeffKey {
    /// Decomposition level (`1 ..`).
    pub level: u32,
    /// Translation within the level.
    pub k: usize,
}

impl CoeffKey {
    /// Orthonormal rescale factor of a 1-d detail at this level
    /// (`2^{level/2}`).
    pub fn scale(&self) -> f64 {
        (2.0f64).powf(self.level as f64 / 2.0)
    }
}

/// One retained coefficient.
#[derive(Clone, Debug, PartialEq)]
pub struct SynopsisEntry<Key> {
    /// Which coefficient.
    pub key: Key,
    /// Unnormalised coefficient value (the paper's convention).
    pub value: f64,
    /// Orthonormal rescale factor of this coefficient's basis function.
    pub scale: f64,
}

impl<Key> SynopsisEntry<Key> {
    /// Orthonormal-basis magnitude `|value| · scale` — the correct
    /// criterion for best-K selection under L² error.
    pub fn magnitude(&self) -> f64 {
        self.value.abs() * self.scale
    }
}

#[derive(Clone, Debug, PartialEq)]
struct Ranked<Key> {
    mag: f64,
    key: Key,
    value: f64,
    scale: f64,
}

impl<Key: Ord + Eq> Eq for Ranked<Key> {}

impl<Key: Ord> PartialOrd for Ranked<Key> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<Key: Ord> Ord for Ranked<Key> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mag
            .total_cmp(&other.mag)
            .then_with(|| self.key.cmp(&other.key))
    }
}

/// Keeps the K finalized coefficients of largest orthonormal magnitude.
///
/// `offer` is `O(log K)`; the container never exceeds `K` entries, matching
/// the `O(K)` part of the paper's space bounds. Generic over the key type
/// so the same container serves 1-d streams ([`CoeffKey`]) and the
/// multidimensional keys of [`crate::multidim`].
#[derive(Clone, Debug)]
pub struct KTermSynopsis<Key: Ord + Clone = CoeffKey> {
    k: usize,
    heap: BinaryHeap<Reverse<Ranked<Key>>>,
    offers: u64,
}

impl<Key: Ord + Clone> KTermSynopsis<Key> {
    /// A synopsis retaining at most `k` coefficients.
    pub fn new(k: usize) -> Self {
        KTermSynopsis {
            k,
            heap: BinaryHeap::with_capacity(k.min(1 << 16) + 1),
            offers: 0,
        }
    }

    /// Capacity `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Coefficients currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total offers seen (for experiment accounting).
    pub fn offers(&self) -> u64 {
        self.offers
    }

    /// Offers a finalized coefficient with its orthonormal rescale factor;
    /// it is retained iff it ranks among the K largest magnitudes so far.
    pub fn offer(&mut self, key: Key, value: f64, scale: f64) {
        self.offers += 1;
        if self.k == 0 || value == 0.0 {
            return;
        }
        let entry = Ranked {
            mag: value.abs() * scale,
            key,
            value,
            scale,
        };
        if self.heap.len() < self.k {
            self.heap.push(Reverse(entry));
        } else if let Some(Reverse(min)) = self.heap.peek() {
            if entry > *min {
                self.heap.pop();
                self.heap.push(Reverse(entry));
            }
        }
    }

    /// The retained coefficients, largest magnitude first.
    pub fn entries(&self) -> Vec<SynopsisEntry<Key>> {
        let mut out: Vec<SynopsisEntry<Key>> = self
            .heap
            .iter()
            .map(|Reverse(r)| SynopsisEntry {
                key: r.key.clone(),
                value: r.value,
                scale: r.scale,
            })
            .collect();
        out.sort_by(|a, b| b.magnitude().total_cmp(&a.magnitude()));
        out
    }

    /// Smallest retained magnitude (the admission threshold), or 0 while
    /// below capacity.
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            0.0
        } else {
            self.heap.peek().map_or(0.0, |Reverse(r)| r.mag)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(level: u32, k: usize) -> CoeffKey {
        CoeffKey { level, k }
    }

    fn offer1d(s: &mut KTermSynopsis, k: CoeffKey, v: f64) {
        s.offer(k, v, k.scale());
    }

    #[test]
    fn keeps_largest_by_orthonormal_magnitude() {
        let mut s = KTermSynopsis::new(2);
        // magnitude: 1.0·2^2 = 4; 3.0·√2 ≈ 4.24; 2.0·2 = 4.
        offer1d(&mut s, key(4, 0), 1.0);
        offer1d(&mut s, key(1, 5), 3.0);
        offer1d(&mut s, key(2, 2), -2.0);
        let kept: Vec<CoeffKey> = s.entries().iter().map(|e| e.key).collect();
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&key(1, 5)));
    }

    #[test]
    fn below_capacity_keeps_everything_nonzero() {
        let mut s = KTermSynopsis::new(10);
        offer1d(&mut s, key(1, 0), 0.5);
        offer1d(&mut s, key(1, 1), 0.0); // zero is never retained
        offer1d(&mut s, key(2, 0), -0.1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.threshold(), 0.0);
    }

    #[test]
    fn entries_sorted_descending() {
        let mut s = KTermSynopsis::new(5);
        for (i, v) in [0.1, 5.0, 2.0, 4.0, 3.0].iter().enumerate() {
            offer1d(&mut s, key(1, i), *v);
        }
        let mags: Vec<f64> = s.entries().iter().map(|e| e.magnitude()).collect();
        for w in mags.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn matches_offline_top_k() {
        let mut s = KTermSynopsis::new(3);
        let values = [2.0, -7.0, 0.5, 3.0, -1.0, 6.5, 0.25, -4.0];
        for (i, &v) in values.iter().enumerate() {
            offer1d(&mut s, key(1, i), v);
        }
        let mut sorted: Vec<f64> = values.iter().map(|v| v.abs()).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let kept: Vec<f64> = s.entries().iter().map(|e| e.value.abs()).collect();
        assert_eq!(kept, sorted[..3].to_vec());
    }

    #[test]
    fn zero_capacity() {
        let mut s = KTermSynopsis::new(0);
        offer1d(&mut s, key(1, 0), 9.0);
        assert!(s.is_empty());
    }

    #[test]
    fn generic_keys() {
        let mut s: KTermSynopsis<(usize, usize)> = KTermSynopsis::new(2);
        s.offer((0, 1), 5.0, 1.0);
        s.offer((1, 0), 2.0, 10.0);
        s.offer((2, 2), 1.0, 1.0);
        let kept: Vec<(usize, usize)> = s.entries().iter().map(|e| e.key).collect();
        assert_eq!(kept, vec![(1, 0), (0, 1)]);
    }
}
