//! Approximation-quality metrics for synopses.

/// Sum of squared errors between two equal-length vectors.
pub fn sse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sse: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// SSE of the offline best K-term wavelet approximation of `data`
/// (orthonormal ranking; the overall average is always kept). This is the
/// floor any streaming maintainer is measured against.
pub fn offline_best_k_sse(data: &[f64], k: usize) -> f64 {
    let (avg, entries) = crate::stream1d::offline_top_k(data, k);
    let approx = crate::stream1d::reconstruct_from_entries(avg, &entries, data.len());
    sse(data, &approx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_basics() {
        assert_eq!(sse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(sse(&[1.0, 2.0], &[2.0, 0.0]), 1.0 + 4.0);
    }

    #[test]
    fn best_k_sse_decreases_with_k() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 13) % 17) as f64).collect();
        let mut prev = f64::INFINITY;
        for k in [1usize, 4, 16, 63] {
            let e = offline_best_k_sse(&data, k);
            assert!(e <= prev + 1e-12, "k={k}: {e} > {prev}");
            prev = e;
        }
    }

    #[test]
    fn full_k_is_exact() {
        let data: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos() * 7.0).collect();
        assert!(offline_best_k_sse(&data, 31) < 1e-9);
    }

    #[test]
    fn parseval_identity_for_dropped_terms() {
        // SSE of best-K equals the energy of the dropped orthonormal
        // coefficients.
        let data: Vec<f64> = (0..32).map(|i| ((i * 11) % 23) as f64 - 7.0).collect();
        let coeffs = ss_core::haar1d::forward_to_vec(&data);
        let layout = ss_core::Layout1d::for_len(32);
        let mut mags: Vec<f64> = (1..32)
            .map(|i| (coeffs[i] * layout.orthonormal_scale(i)).powi(2))
            .collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let k = 5;
        let dropped: f64 = mags[k..].iter().sum();
        let got = offline_best_k_sse(&data, k);
        assert!((got - dropped).abs() < 1e-6, "{got} vs {dropped}");
    }
}
