//! Wavelet synopses of data streams (Sections 5.3 and 6.3).
//!
//! In the time-series model a stream is an ever-growing vector; the goal is
//! to maintain the best K-term wavelet approximation using small space and
//! small per-item time. Key fact: once a coefficient's support is entirely
//! in the past it is *final*; only the `log N` coefficients on the current
//! root path (the *wavelet crest*) can still change.
//!
//! * [`synopsis`] — the top-K container (ranked by orthonormal magnitude)
//!   and reconstruction/error metrics,
//! * [`stream1d`] — Gilbert-style per-item maintenance (`O(log N)` work per
//!   item) and the paper's buffered **SHIFT-SPLIT** maintenance
//!   (**Result 3**: `O((1/B)·log(N/B))` amortised work with `B` extra
//!   space),
//! * [`multidim`] — multidimensional stream synopses: the standard form
//!   needs `N^{d−1}·log T` live coefficients (**Result 4**), the
//!   non-standard form a single hypercube chain plus one 1-d crest
//!   (**Result 5**). To our knowledge (and the paper's), these are the
//!   first maintenance algorithms for multidimensional stream wavelets.

// Axis-indexed loops over several parallel per-axis arrays are the clearest
// idiom for the index arithmetic in this workspace; iterator rewrites hurt
// readability without changing the generated code.
#![allow(clippy::needless_range_loop)]

pub mod metrics;
pub mod multidim;
pub mod stream1d;
pub mod synopsis;

pub use metrics::{offline_best_k_sse, sse};
pub use multidim::{NonStandardStreamSynopsis, StandardStreamSynopsis};
pub use stream1d::{BufferedStream, PerItemStream};
pub use synopsis::{CoeffKey, KTermSynopsis, SynopsisEntry};
