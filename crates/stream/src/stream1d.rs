//! One-dimensional stream synopsis maintenance.
//!
//! Two maintainers with identical outputs but different cost profiles:
//!
//! * [`PerItemStream`] — the Gilbert-et-al. baseline: every arriving item
//!   updates all `log N` crest coefficients, so the synopsis is exact after
//!   every single item. Per-item work: `O(log N)`.
//! * [`BufferedStream`] — **Result 3**: items accumulate in a `B`-slot
//!   buffer; a full buffer is transformed (`O(B)`), its details SHIFT to
//!   final keys and feed the top-K directly, and only `log(N/B)` crest
//!   coefficients receive SPLIT contributions. Amortised per-item work:
//!   `O(1 + log(N/B)/B)`, at the price of `B` extra space and a synopsis
//!   that is exact at buffer boundaries.
//!
//! Both count their coefficient operations in `work`, the quantity the
//! Section 6.3 experiment plots.

use crate::synopsis::{CoeffKey, KTermSynopsis, SynopsisEntry};
use ss_obs::{Histogram, Stopwatch};
use std::collections::HashMap;

/// Per-item (Gilbert-style) maintenance of a K-term synopsis.
#[derive(Clone, Debug)]
pub struct PerItemStream {
    synopsis: KTermSynopsis,
    max_levels: u32,
    t: usize,
    /// Open (still-changeable) detail per level: `crest[j-1] = w_{j, t≫j}`.
    crest: Vec<f64>,
    sum: f64,
    work: u64,
    /// `stream.push_ns` handle (global registry), one sample per item.
    push_ns: Histogram,
}

impl PerItemStream {
    /// Maintains a `k`-term synopsis of a stream of length up to
    /// `2^max_levels`.
    pub fn new(k: usize, max_levels: u32) -> Self {
        PerItemStream {
            synopsis: KTermSynopsis::new(k),
            max_levels,
            t: 0,
            crest: vec![0.0; max_levels as usize],
            sum: 0.0,
            work: 0,
            push_ns: ss_obs::global().histogram("stream.push_ns"),
        }
    }

    /// Items consumed.
    pub fn len(&self) -> usize {
        self.t
    }

    /// `true` before the first item.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    /// Coefficient operations performed so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// The running average of the (eventual) `2^max_levels` domain.
    pub fn average(&self) -> f64 {
        self.sum / (1u64 << self.max_levels) as f64
    }

    /// The maintained top-K container.
    pub fn synopsis(&self) -> &KTermSynopsis {
        &self.synopsis
    }

    /// Consumes one item: updates every crest coefficient, then finalizes
    /// the coefficients whose support just completed.
    pub fn push(&mut self, x: f64) {
        let sw = Stopwatch::start();
        assert!(
            self.t < (1usize << self.max_levels),
            "stream exceeded declared domain"
        );
        let t = self.t;
        self.sum += x;
        self.work += 1; // the running sum update
        for j in 1..=self.max_levels {
            // x joins the left half of w_{j, t≫j}'s support when bit j−1 of
            // t is clear. w = (sum_L − sum_R)/2^j.
            let sign = if (t >> (j - 1)) & 1 == 0 { 1.0 } else { -1.0 };
            self.crest[(j - 1) as usize] += sign * x / (1u64 << j) as f64;
            self.work += 1;
        }
        self.t += 1;
        // Finalize completed supports: level j completes at multiples of 2^j.
        for j in 1..=self.max_levels {
            if !self.t.is_multiple_of(1usize << j) {
                break;
            }
            let key = CoeffKey {
                level: j,
                k: (self.t >> j) - 1,
            };
            let value = self.crest[(j - 1) as usize];
            self.crest[(j - 1) as usize] = 0.0;
            self.synopsis.offer(key, value, key.scale());
            self.work += 1;
        }
        self.push_ns.record(sw.elapsed_ns());
    }

    /// Current synopsis entries (largest magnitude first).
    pub fn entries(&self) -> Vec<SynopsisEntry<CoeffKey>> {
        self.synopsis.entries()
    }
}

/// Buffered SHIFT-SPLIT maintenance of a K-term synopsis (**Result 3**).
///
/// ```
/// use ss_stream::BufferedStream;
///
/// // Best 4 terms of a 256-item stream with a 16-item buffer.
/// let mut s = BufferedStream::new(4, 4, 8);
/// for i in 0..256 {
///     s.push(if i < 128 { 1.0 } else { 5.0 });
/// }
/// // A two-level step function needs exactly one detail coefficient.
/// let top = &s.entries()[0];
/// assert_eq!(top.key.level, 8);
/// assert_eq!(top.value, -2.0); // (mean left − mean right)/2
/// ```
#[derive(Clone, Debug)]
pub struct BufferedStream {
    synopsis: KTermSynopsis,
    buf_levels: u32,
    max_levels: u32,
    buffer: Vec<f64>,
    blocks: usize,
    /// Open coefficients above the buffer level, keyed by level
    /// (`crest[s-1] = w_{b+s, p≫s}` for the current block `p`).
    crest: Vec<f64>,
    avg_acc: f64,
    work: u64,
    /// `stream.push_ns` handle (global registry), one sample per item —
    /// quiet pushes next to buffer-drain spikes, which is exactly the
    /// amortisation Result 3 trades on.
    push_ns: Histogram,
}

impl BufferedStream {
    /// Maintains a `k`-term synopsis with a buffer of `2^buf_levels` items
    /// over a stream of length up to `2^max_levels`.
    pub fn new(k: usize, buf_levels: u32, max_levels: u32) -> Self {
        assert!(buf_levels <= max_levels);
        BufferedStream {
            synopsis: KTermSynopsis::new(k),
            buf_levels,
            max_levels,
            buffer: Vec::with_capacity(1 << buf_levels),
            blocks: 0,
            crest: vec![0.0; (max_levels - buf_levels) as usize],
            avg_acc: 0.0,
            work: 0,
            push_ns: ss_obs::global().histogram("stream.push_ns"),
        }
    }

    /// Items consumed (including those still in the buffer).
    pub fn len(&self) -> usize {
        (self.blocks << self.buf_levels) + self.buffer.len()
    }

    /// `true` before the first item.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coefficient operations performed so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Buffer capacity `B`.
    pub fn buffer_capacity(&self) -> usize {
        1usize << self.buf_levels
    }

    /// The running average of the (eventual) `2^max_levels` domain.
    pub fn average(&self) -> f64 {
        self.avg_acc
    }

    /// The maintained top-K container.
    pub fn synopsis(&self) -> &KTermSynopsis {
        &self.synopsis
    }

    /// Consumes one item; all heavy work happens when the buffer fills.
    pub fn push(&mut self, x: f64) {
        let sw = Stopwatch::start();
        assert!(
            self.len() < (1usize << self.max_levels),
            "stream exceeded declared domain"
        );
        self.buffer.push(x);
        if self.buffer.len() == self.buffer_capacity() {
            self.drain_buffer();
        }
        self.push_ns.record(sw.elapsed_ns());
    }

    fn drain_buffer(&mut self) {
        let b = self.buf_levels;
        let p = self.blocks; // block index of this buffer
        ss_core::haar1d::forward(&mut self.buffer);
        self.work += self.buffer.len() as u64;
        // SHIFT: every detail of the buffer is final.
        let layout = ss_core::Layout1d::new(b);
        for (local, &v) in self.buffer.iter().enumerate().skip(1) {
            if let ss_core::Coeff1d::Detail { level, k } = layout.coeff_at(local) {
                let key = CoeffKey {
                    level,
                    k: (p << (b - level)) + k,
                };
                self.synopsis.offer(key, v, key.scale());
                self.work += 1;
            }
        }
        // SPLIT: the buffer average contributes to the crest.
        let avg = self.buffer[0];
        for s in 1..=(self.max_levels - b) {
            let sign = if (p >> (s - 1)) & 1 == 0 { 1.0 } else { -1.0 };
            self.crest[(s - 1) as usize] += sign * avg / (1u64 << s) as f64;
            self.work += 1;
        }
        self.avg_acc += avg / (1u64 << (self.max_levels - b)) as f64;
        self.work += 1;
        self.buffer.clear();
        self.blocks += 1;
        // Finalize completed crest coefficients.
        for s in 1..=(self.max_levels - b) {
            if !self.blocks.is_multiple_of(1usize << s) {
                break;
            }
            let key = CoeffKey {
                level: b + s,
                k: (self.blocks >> s) - 1,
            };
            let value = self.crest[(s - 1) as usize];
            self.crest[(s - 1) as usize] = 0.0;
            self.synopsis.offer(key, value, key.scale());
            self.work += 1;
        }
    }

    /// Current synopsis entries (largest magnitude first).
    pub fn entries(&self) -> Vec<SynopsisEntry<CoeffKey>> {
        self.synopsis.entries()
    }
}

/// Reconstructs an approximate prefix of length `len` from an average plus
/// retained detail entries — how a synopsis answers queries.
pub fn reconstruct_from_entries(
    average: f64,
    entries: &[SynopsisEntry<CoeffKey>],
    len: usize,
) -> Vec<f64> {
    let mut out = vec![average; len];
    for e in entries {
        let support = 1usize << e.key.level;
        let start = e.key.k * support;
        let half = support / 2;
        for i in start..(start + support).min(len) {
            if i < start + half {
                out[i] += e.value;
            } else {
                out[i] -= e.value;
            }
        }
    }
    out
}

/// Offline reference: the exact top-K detail entries (by orthonormal
/// magnitude) of a complete vector's transform.
pub fn offline_top_k(data: &[f64], k: usize) -> (f64, Vec<SynopsisEntry<CoeffKey>>) {
    let coeffs = ss_core::haar1d::forward_to_vec(data);
    let layout = ss_core::Layout1d::for_len(data.len());
    let mut syn: KTermSynopsis = KTermSynopsis::new(k);
    for (i, &v) in coeffs.iter().enumerate().skip(1) {
        if let ss_core::Coeff1d::Detail { level, k } = layout.coeff_at(i) {
            let key = CoeffKey { level, k };
            syn.offer(key, v, key.scale());
        }
    }
    (coeffs[0], syn.entries())
}

/// Map from key to value for set comparison in tests and experiments.
pub fn entry_map(entries: &[SynopsisEntry<CoeffKey>]) -> HashMap<CoeffKey, f64> {
    entries.iter().map(|e| (e.key, e.value)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37) % 101) as f64 * 0.25 + ((i / 16) as f64).sin() * 8.0)
            .collect()
    }

    #[test]
    fn per_item_matches_offline_top_k() {
        let data = stream(256);
        let mut s = PerItemStream::new(12, 8);
        for &x in &data {
            s.push(x);
        }
        let (avg, offline) = offline_top_k(&data, 12);
        assert!((s.average() - avg).abs() < 1e-9);
        let got = entry_map(&s.entries());
        let want = entry_map(&offline);
        assert_eq!(got.len(), want.len());
        for (k, v) in &want {
            let g = got.get(k).unwrap_or_else(|| panic!("missing {k:?}"));
            assert!((g - v).abs() < 1e-9, "{k:?}");
        }
    }

    #[test]
    fn buffered_matches_offline_top_k() {
        let data = stream(256);
        for b in [1u32, 3, 5] {
            let mut s = BufferedStream::new(12, b, 8);
            for &x in &data {
                s.push(x);
            }
            let (avg, offline) = offline_top_k(&data, 12);
            assert!((s.average() - avg).abs() < 1e-9, "b={b}");
            let got = entry_map(&s.entries());
            let want = entry_map(&offline);
            for (k, v) in &want {
                let g = got.get(k).unwrap_or_else(|| panic!("b={b}: missing {k:?}"));
                assert!((g - v).abs() < 1e-9, "b={b} {k:?}");
            }
        }
    }

    #[test]
    fn buffered_work_is_much_smaller() {
        let data = stream(4096);
        let mut per_item = PerItemStream::new(16, 12);
        let mut buffered = BufferedStream::new(16, 6, 12);
        for &x in &data {
            per_item.push(x);
            buffered.push(x);
        }
        // Baseline ≈ N·log N; buffered ≈ N·(1 + log(N/B)/B).
        assert!(
            buffered.work() * 4 < per_item.work(),
            "buffered {} vs per-item {}",
            buffered.work(),
            per_item.work()
        );
    }

    #[test]
    fn bigger_buffers_cost_less() {
        let data = stream(4096);
        let mut prev = u64::MAX;
        for b in [1u32, 3, 6, 9] {
            let mut s = BufferedStream::new(16, b, 12);
            for &x in &data {
                s.push(x);
            }
            assert!(s.work() < prev, "b={b}: {} !< {prev}", s.work());
            prev = s.work();
        }
    }

    #[test]
    fn reconstruction_error_matches_offline_best_k() {
        let data = stream(512);
        let mut s = BufferedStream::new(20, 4, 9);
        for &x in &data {
            s.push(x);
        }
        let approx = reconstruct_from_entries(s.average(), &s.entries(), 512);
        let (avg, offline) = offline_top_k(&data, 20);
        let best = reconstruct_from_entries(avg, &offline, 512);
        let sse_s: f64 = data.iter().zip(&approx).map(|(a, b)| (a - b).powi(2)).sum();
        let sse_best: f64 = data.iter().zip(&best).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(
            (sse_s - sse_best).abs() < 1e-6,
            "stream SSE {sse_s} vs offline best-K SSE {sse_best}"
        );
    }

    #[test]
    fn per_item_work_is_logarithmic() {
        let mut s = PerItemStream::new(4, 10);
        for x in stream(1024) {
            s.push(x);
        }
        // ≈ N · (log N + 1 + finalizations): between N·log N and 3·N·log N.
        let n = 1024u64;
        assert!(s.work() >= n * 10);
        assert!(s.work() <= 3 * n * 12);
    }

    #[test]
    #[should_panic]
    fn per_item_rejects_overflow() {
        let mut s = PerItemStream::new(2, 2);
        for x in stream(5) {
            s.push(x);
        }
    }
}
