//! Property tests of the scalar/SIMD kernel boundary.
//!
//! The `simd` build's contract (crates/core/src/kernel.rs, documented in
//! docs/ERROR_MODEL.md) is **bit-identity**: every transform produces the
//! same `f64` bits as the scalar build, because the vector paths perform
//! the same IEEE operations in the same per-element order. These
//! properties pin both builds to build-independent scalar references —
//! passing in *each* build therefore proves the builds agree with each
//! other. `to_bits` equality throughout, no tolerances.

use proptest::prelude::*;
use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_core::{haar1d, nonstandard, standard};

/// Deterministic pseudo-random data derived from a sampled seed.
fn data_from_seed(seed: u64, len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let x = seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let x = (x ^ (x >> 31)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (x >> 11) as f64 / (1u64 << 53) as f64 * 2e3 - 1e3
        })
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn haar1d_active_kernel_matches_scalar_bitwise(seed in any::<u64>(), levels in 0u32..13) {
        let data = data_from_seed(seed, 1usize << levels);
        let (mut active, mut scalar) = (data.clone(), data);
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        haar1d::forward_with(&mut active, &mut s1);
        haar1d::forward_scalar_with(&mut scalar, &mut s2);
        prop_assert_eq!(bits(&active), bits(&scalar));
        haar1d::inverse_with(&mut active, &mut s1);
        haar1d::inverse_scalar_with(&mut scalar, &mut s2);
        prop_assert_eq!(bits(&active), bits(&scalar));
    }

    #[test]
    fn standard_panel_pass_matches_per_line_scalar_bitwise(
        seed in any::<u64>(),
        shape_pick in 0usize..5,
    ) {
        let dims: &[usize] = match shape_pick {
            0 => &[64, 64],
            1 => &[8, 32],
            2 => &[16, 4, 8],
            3 => &[2, 128],
            _ => &[4, 4, 4, 4],
        };
        let shape = Shape::new(dims);
        let flat = data_from_seed(seed, shape.len());
        let a = NdArray::from_vec(shape.clone(), flat);
        let got = standard::forward_to(&a);
        // Reference: gather each strided line, scalar-pinned 1-d cascade,
        // scatter back — the definition of the standard form.
        let mut want = a.clone();
        let mut scratch = Vec::new();
        for axis in 0..shape.ndim() {
            let len = shape.dim(axis);
            let stride = shape.strides()[axis];
            let mut outer: Vec<usize> = shape.dims().to_vec();
            outer[axis] = 1;
            for idx in MultiIndexIter::new(&outer) {
                let base = shape.offset(&idx);
                let mut line: Vec<f64> =
                    (0..len).map(|i| want.as_slice()[base + i * stride]).collect();
                haar1d::forward_scalar_with(&mut line, &mut scratch);
                for (i, &v) in line.iter().enumerate() {
                    want.as_mut_slice()[base + i * stride] = v;
                }
            }
        }
        prop_assert_eq!(bits(got.as_slice()), bits(want.as_slice()));
        // Inverse: panel cascade inverts the reference transform back to
        // the same bits in both builds.
        let mut back_active = got.clone();
        standard::inverse(&mut back_active);
        prop_assert!(a.max_abs_diff(&back_active) < 1e-8);
    }

    #[test]
    fn nonstandard_flat_kernel_matches_tuple_scalar_bitwise(
        seed in any::<u64>(),
        pick in 0usize..4,
    ) {
        let (d, side) = [(1usize, 64usize), (2, 32), (2, 8), (3, 8)][pick];
        let shape = Shape::cube(d, side);
        let a = NdArray::from_vec(shape.clone(), data_from_seed(seed, shape.len()));
        let got = nonstandard::forward_to(&a);
        let want = naive_nonstandard_forward(&a);
        prop_assert_eq!(bits(got.as_slice()), bits(want.as_slice()));
        let mut back = got.clone();
        nonstandard::inverse(&mut back);
        prop_assert!(a.max_abs_diff(&back) < 1e-8);
    }
}

/// Tuple-index scalar reference of the non-standard forward transform,
/// with the production kernels' fixed corner-order association.
fn naive_nonstandard_forward(a: &NdArray<f64>) -> NdArray<f64> {
    let shape = a.shape().clone();
    let d = shape.ndim();
    let side = shape.dim(0);
    let mut out = a.clone();
    let mut width = side;
    while width > 1 {
        let half = width / 2;
        let mut scratch = out.clone();
        for idx in MultiIndexIter::new(&vec![half; d]) {
            for eps in 0..(1usize << d) {
                let mut acc = 0.0;
                for corner in 0..(1usize << d) {
                    let mut src = Vec::new();
                    let mut sign = 1.0;
                    for (t, &i) in idx.iter().enumerate() {
                        let bit = (corner >> (d - 1 - t)) & 1;
                        src.push(2 * i + bit);
                        if (eps >> (d - 1 - t)) & 1 == 1 && bit == 1 {
                            sign = -sign;
                        }
                    }
                    let v = sign * out.get(&src);
                    acc = if corner == 0 { v } else { acc + v };
                }
                let dst: Vec<usize> = (0..d)
                    .map(|t| idx[t] + ((eps >> (d - 1 - t)) & 1) * half)
                    .collect();
                scratch.set(&dst, acc / (1usize << d) as f64);
            }
        }
        for idx in MultiIndexIter::new(&vec![width; d]) {
            out.set(&idx, scratch.get(&idx));
        }
        width = half;
    }
    out
}
