//! One-dimensional Haar transform in the paper's conventions.
//!
//! The forward transform of a vector of size `N = 2^n` produces the layout
//! `[u_{n,0}, w_{n,0}, w_{n−1,0}, w_{n−1,1}, …, w_{1,0}, …, w_{1,N/2−1}]`,
//! i.e. the single overall average followed by detail coefficients sorted by
//! decreasing level and increasing translation — `w_{j,k}` lives at linear
//! index `2^{n−j} + k` (see [`crate::layout`]).
//!
//! Filters are the **unnormalised** average/difference pair used throughout
//! the database literature and the paper:
//! `u = (a + b) / 2`, `w = (a − b) / 2`. The orthonormal variant divides by
//! `√2` instead; [`to_orthonormal`] / [`from_orthonormal`] rescale between
//! the two so callers can rank coefficients by true L² energy.

//! Both cascades run on the build-selected compute kernel
//! ([`crate::kernel`]): the default scalar path, or the `std::simd` path
//! under the `simd` cargo feature. The two are bit-identical —
//! [`forward_scalar_with`] / [`inverse_scalar_with`] stay exported so
//! tests can pin that down inside a single build.

use crate::kernel;
use crate::layout::Layout1d;
use std::cell::RefCell;

thread_local! {
    // Shared scratch for the argument-less entry points, so tight loops of
    // short transforms (tile kernels, per-line axis sweeps) do not allocate
    // once per call.
    static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// In-place forward Haar transform (unnormalised convention).
///
/// Uses a thread-local scratch buffer; hot loops that already own one
/// should call [`forward_with`] instead.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn forward(data: &mut [f64]) {
    SCRATCH.with(|s| forward_with(data, &mut s.borrow_mut()));
}

/// [`forward`] with a caller-provided scratch buffer (grown as needed to
/// `data.len() / 2`); the buffer's contents are clobbered.
pub fn forward_with(data: &mut [f64], scratch: &mut Vec<f64>) {
    let n = data.len();
    assert!(
        ss_array::is_pow2(n),
        "haar1d::forward: length {n} not a power of two"
    );
    if scratch.len() < n / 2 {
        scratch.resize(n / 2, 0.0);
    }
    let mut width = n;
    while width > 1 {
        let half = width / 2;
        // Averages into the front, details into scratch.
        kernel::forward_level(data, scratch, half);
        data[half..width].copy_from_slice(&scratch[..half]);
        width = half;
    }
}

/// [`forward_with`] pinned to the scalar kernel regardless of the build —
/// the reference side of the scalar/SIMD bit-identity tests.
pub fn forward_scalar_with(data: &mut [f64], scratch: &mut Vec<f64>) {
    let n = data.len();
    assert!(
        ss_array::is_pow2(n),
        "haar1d::forward: length {n} not a power of two"
    );
    if scratch.len() < n / 2 {
        scratch.resize(n / 2, 0.0);
    }
    let mut width = n;
    while width > 1 {
        let half = width / 2;
        kernel::forward_level_scalar(data, scratch, half);
        data[half..width].copy_from_slice(&scratch[..half]);
        width = half;
    }
}

/// In-place inverse Haar transform (unnormalised convention).
///
/// Uses a thread-local scratch buffer; hot loops that already own one
/// should call [`inverse_with`] instead.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn inverse(data: &mut [f64]) {
    SCRATCH.with(|s| inverse_with(data, &mut s.borrow_mut()));
}

/// [`inverse`] with a caller-provided scratch buffer (grown as needed to
/// `data.len()`); the buffer's contents are clobbered.
pub fn inverse_with(data: &mut [f64], scratch: &mut Vec<f64>) {
    let n = data.len();
    assert!(
        ss_array::is_pow2(n),
        "haar1d::inverse: length {n} not a power of two"
    );
    if scratch.len() < n {
        scratch.resize(n, 0.0);
    }
    let mut width = 1usize;
    while width < n {
        let double = width * 2;
        kernel::inverse_level(data, scratch, width);
        data[..double].copy_from_slice(&scratch[..double]);
        width = double;
    }
}

/// [`inverse_with`] pinned to the scalar kernel regardless of the build —
/// the reference side of the scalar/SIMD bit-identity tests.
pub fn inverse_scalar_with(data: &mut [f64], scratch: &mut Vec<f64>) {
    let n = data.len();
    assert!(
        ss_array::is_pow2(n),
        "haar1d::inverse: length {n} not a power of two"
    );
    if scratch.len() < n {
        scratch.resize(n, 0.0);
    }
    let mut width = 1usize;
    while width < n {
        let double = width * 2;
        kernel::inverse_level_scalar(data, scratch, width);
        data[..double].copy_from_slice(&scratch[..double]);
        width = double;
    }
}

/// Forward transform into a fresh vector, leaving the input untouched.
pub fn forward_to_vec(data: &[f64]) -> Vec<f64> {
    let mut out = data.to_vec();
    forward(&mut out);
    out
}

/// Inverse transform into a fresh vector, leaving the input untouched.
pub fn inverse_to_vec(coeffs: &[f64]) -> Vec<f64> {
    let mut out = coeffs.to_vec();
    inverse(&mut out);
    out
}

/// Rescales unnormalised coefficients in place to the orthonormal basis.
///
/// In the orthonormal Haar basis the detail at level `j` equals the
/// unnormalised detail times `2^{j/2}`, and the overall average times
/// `2^{n/2}`. After this call, Parseval holds: `Σ coeff² = Σ data²`.
pub fn to_orthonormal(coeffs: &mut [f64]) {
    let layout = Layout1d::for_len(coeffs.len());
    for (i, c) in coeffs.iter_mut().enumerate() {
        *c *= layout.orthonormal_scale(i);
    }
}

/// Inverse of [`to_orthonormal`].
pub fn from_orthonormal(coeffs: &mut [f64]) {
    let layout = Layout1d::for_len(coeffs.len());
    for (i, c) in coeffs.iter_mut().enumerate() {
        *c /= layout.orthonormal_scale(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_running_example() {
        // Section 2.1 of the paper: {3,5,7,5} -> {5, -1, -1, 1}.
        let got = forward_to_vec(&[3.0, 5.0, 7.0, 5.0]);
        assert_eq!(got, vec![5.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let data: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 10.0 + i as f64).collect();
            let rt = inverse_to_vec(&forward_to_vec(&data));
            for (a, b) in data.iter().zip(&rt) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn first_coefficient_is_mean() {
        let data = [2.0, 4.0, 6.0, 8.0, 1.0, 3.0, 5.0, 7.0];
        let coeffs = forward_to_vec(&data);
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        assert!((coeffs[0] - mean).abs() < 1e-12);
    }

    #[test]
    fn second_coefficient_is_half_difference_of_halves() {
        let data = [2.0, 4.0, 6.0, 8.0, 1.0, 3.0, 5.0, 7.0];
        let coeffs = forward_to_vec(&data);
        let left = data[..4].iter().sum::<f64>() / 4.0;
        let right = data[4..].iter().sum::<f64>() / 4.0;
        assert!((coeffs[1] - (left - right) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_signal_has_only_average() {
        let coeffs = forward_to_vec(&[7.0; 16]);
        assert_eq!(coeffs[0], 7.0);
        assert!(coeffs[1..].iter().all(|&c| c == 0.0));
    }

    #[test]
    fn length_one_is_identity() {
        let mut v = vec![42.0];
        forward(&mut v);
        assert_eq!(v, vec![42.0]);
        inverse(&mut v);
        assert_eq!(v, vec![42.0]);
    }

    #[test]
    fn transform_is_linear() {
        let a = [1.0, -2.0, 3.0, 0.5, 4.0, 4.0, -1.0, 2.0];
        let b = [0.0, 5.0, -1.0, 2.0, 2.0, 1.0, 0.0, -3.0];
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + 3.0 * y).collect();
        let ca = forward_to_vec(&a);
        let cb = forward_to_vec(&b);
        let cs = forward_to_vec(&sum);
        for i in 0..a.len() {
            assert!((cs[i] - (2.0 * ca[i] + 3.0 * cb[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn orthonormal_rescale_satisfies_parseval() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut coeffs = forward_to_vec(&data);
        to_orthonormal(&mut coeffs);
        let energy_data: f64 = data.iter().map(|x| x * x).sum();
        let energy_coeff: f64 = coeffs.iter().map(|x| x * x).sum();
        assert!((energy_data - energy_coeff).abs() < 1e-9);
        from_orthonormal(&mut coeffs);
        let back = inverse_to_vec(&coeffs);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        forward(&mut [1.0, 2.0, 3.0]);
    }

    #[test]
    fn active_kernel_is_bit_identical_to_scalar() {
        // Runs in both builds: trivially green on scalar, and the real
        // scalar-vs-SIMD equivalence check when `--features simd`.
        for n in [2usize, 8, 64, 1024, 4096] {
            let data: Vec<f64> = (0..n)
                .map(|i| ((i as f64) * 0.7).sin() * 1e3 + (i % 17) as f64)
                .collect();
            let mut active = data.clone();
            let mut scalar = data;
            let (mut s1, mut s2) = (Vec::new(), Vec::new());
            forward_with(&mut active, &mut s1);
            forward_scalar_with(&mut scalar, &mut s2);
            assert!(active
                .iter()
                .zip(&scalar)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            inverse_with(&mut active, &mut s1);
            inverse_scalar_with(&mut scalar, &mut s2);
            assert!(active
                .iter()
                .zip(&scalar)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}
