//! The **standard form** of multidimensional Haar decomposition
//! (Appendix B of the paper).
//!
//! The standard form applies a complete 1-d transform along each axis in
//! turn; the result is the tensor product of 1-d bases, so a coefficient is
//! addressed by a tuple of independent 1-d indices — one per axis, each
//! interpreted through that axis's [`Layout1d`](crate::layout::Layout1d).
//! Axes may have different (power-of-two) sizes.
//!
//! This is the form used by Vitter et al. for OLAP range aggregates: range
//! sums compress extremely well because per-axis contribution lists multiply
//! (Section 3.1 of the paper).

use ss_array::{MultiIndexIter, NdArray, Shape};

/// In-place standard-form transform of every axis of `a`.
///
/// # Panics
///
/// Panics when any axis size is not a power of two.
pub fn forward(a: &mut NdArray<f64>) {
    transform_axes(a, LineOp::Forward);
}

/// In-place inverse of [`forward`].
pub fn inverse(a: &mut NdArray<f64>) {
    transform_axes(a, LineOp::Inverse);
}

/// Out-of-place [`forward`].
pub fn forward_to(a: &NdArray<f64>) -> NdArray<f64> {
    let mut out = a.clone();
    forward(&mut out);
    out
}

/// Out-of-place [`inverse`].
pub fn inverse_to(a: &NdArray<f64>) -> NdArray<f64> {
    let mut out = a.clone();
    inverse(&mut out);
    out
}

/// Which 1-d kernel to run on each line.
#[derive(Clone, Copy)]
enum LineOp {
    Forward,
    Inverse,
}

fn transform_axes(a: &mut NdArray<f64>, op: LineOp) {
    let shape = a.shape().clone();
    assert!(
        shape.is_dyadic(),
        "standard form requires power-of-two axes, got {shape:?}"
    );
    // One gather buffer and one Haar scratch shared by every line of every
    // axis — the per-line `vec![0.0; len]` allocations this loop used to
    // make dominated small-chunk transforms.
    let mut line = Vec::new();
    let mut scratch = Vec::new();
    for axis in 0..shape.ndim() {
        apply_along_axis(a, &shape, axis, op, &mut line, &mut scratch);
    }
}

/// Applies `op` to every 1-d line of `a` along `axis`. Contiguous lines
/// (stride 1) are transformed in place; strided lines are gathered into
/// `line`, transformed, and scattered back.
fn apply_along_axis(
    a: &mut NdArray<f64>,
    shape: &Shape,
    axis: usize,
    op: LineOp,
    line: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) {
    let len = shape.dim(axis);
    if len == 1 {
        return;
    }
    let stride = shape.strides()[axis];
    if line.len() < len {
        line.resize(len, 0.0);
    }
    // Iterate over all index tuples with `axis` fixed at zero.
    let mut outer_dims: Vec<usize> = shape.dims().to_vec();
    outer_dims[axis] = 1;
    let data = a.as_mut_slice();
    for idx in MultiIndexIter::new(&outer_dims) {
        let base = shape.offset(&idx);
        if stride == 1 {
            let row = &mut data[base..base + len];
            match op {
                LineOp::Forward => crate::haar1d::forward_with(row, scratch),
                LineOp::Inverse => crate::haar1d::inverse_with(row, scratch),
            }
            continue;
        }
        let buf = &mut line[..len];
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = data[base + i * stride];
        }
        match op {
            LineOp::Forward => crate::haar1d::forward_with(buf, scratch),
            LineOp::Inverse => crate::haar1d::inverse_with(buf, scratch),
        }
        for (i, &v) in buf.iter().enumerate() {
            data[base + i * stride] = v;
        }
    }
}

/// Orthonormal rescale factor of the standard-form coefficient at tuple
/// index `idx` (product of per-axis 1-d factors).
pub fn orthonormal_scale(shape: &Shape, idx: &[usize]) -> f64 {
    idx.iter()
        .enumerate()
        .map(|(axis, &i)| crate::layout::Layout1d::for_len(shape.dim(axis)).orthonormal_scale(i))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::Shape;

    fn sample(shape: &Shape) -> NdArray<f64> {
        let mut c = 0.0;
        NdArray::from_fn(shape.clone(), |idx| {
            c += 1.0;
            c + idx.iter().sum::<usize>() as f64 * 0.25
        })
    }

    #[test]
    fn roundtrip_2d() {
        let a = sample(&Shape::new(&[8, 8]));
        let mut t = forward_to(&a);
        inverse(&mut t);
        assert!(a.max_abs_diff(&t) < 1e-9);
    }

    #[test]
    fn roundtrip_rectangular() {
        let a = sample(&Shape::new(&[4, 16, 2]));
        let mut t = forward_to(&a);
        inverse(&mut t);
        assert!(a.max_abs_diff(&t) < 1e-9);
    }

    #[test]
    fn dc_coefficient_is_grand_mean() {
        let a = sample(&Shape::new(&[4, 8]));
        let t = forward_to(&a);
        let mean = a.total() / a.len() as f64;
        assert!((t.get(&[0, 0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn separable_signal_has_separable_transform() {
        // a[i,j] = f(i)·g(j) implies t = DWT(f) ⊗ DWT(g).
        let f = [3.0, 5.0, 7.0, 5.0];
        let g = [1.0, 2.0, 0.0, -1.0];
        let a = NdArray::from_fn(Shape::new(&[4, 4]), |idx| f[idx[0]] * g[idx[1]]);
        let t = forward_to(&a);
        let tf = crate::haar1d::forward_to_vec(&f);
        let tg = crate::haar1d::forward_to_vec(&g);
        for i in 0..4 {
            for j in 0..4 {
                assert!((t.get(&[i, j]) - tf[i] * tg[j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matches_sequential_axis_transforms_1d_case() {
        let data = [3.0, 5.0, 7.0, 5.0];
        let a = NdArray::from_vec(Shape::new(&[4]), data.to_vec());
        let t = forward_to(&a);
        assert_eq!(
            t.as_slice(),
            crate::haar1d::forward_to_vec(&data).as_slice()
        );
    }

    #[test]
    fn orthonormal_scale_parseval_2d() {
        let a = sample(&Shape::new(&[4, 4]));
        let t = forward_to(&a);
        let mut energy = 0.0;
        for idx in ss_array::MultiIndexIter::new(a.shape().dims()) {
            let s = orthonormal_scale(a.shape(), &idx);
            let c = t.get(&idx) * s;
            energy += c * c;
        }
        let want: f64 = a.as_slice().iter().map(|x| x * x).sum();
        assert!((energy - want).abs() < 1e-6, "{energy} vs {want}");
    }

    #[test]
    #[should_panic]
    fn rejects_non_dyadic_shape() {
        let mut a = NdArray::<f64>::zeros(Shape::new(&[4, 6]));
        forward(&mut a);
    }
}
