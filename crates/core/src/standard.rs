//! The **standard form** of multidimensional Haar decomposition
//! (Appendix B of the paper).
//!
//! The standard form applies a complete 1-d transform along each axis in
//! turn; the result is the tensor product of 1-d bases, so a coefficient is
//! addressed by a tuple of independent 1-d indices — one per axis, each
//! interpreted through that axis's [`Layout1d`](crate::layout::Layout1d).
//! Axes may have different (power-of-two) sizes.
//!
//! This is the form used by Vitter et al. for OLAP range aggregates: range
//! sums compress extremely well because per-axis contribution lists multiply
//! (Section 3.1 of the paper).

//! # Axis-pass execution
//!
//! Unit-stride axes run the 1-d cascade line by line. Strided axes are
//! processed as **panels**: the cells of all lines sharing an index
//! prefix form one contiguous region of `len·stride` elements — a
//! `len × stride` matrix whose *columns* are the lines. Each cascade
//! level then becomes a row-wise average/difference over unit-stride
//! rows (the shape [`crate::kernel`] vectorises), and the row pairs are
//! walked in cache-resident column blocks instead of striding the whole
//! panel once per line. Per column the arithmetic sequence is exactly
//! the 1-d cascade, so results are bit-identical to the old
//! gather/scatter path.

use crate::kernel;
use ss_array::{NdArray, Shape};

/// In-place standard-form transform of every axis of `a`.
///
/// # Panics
///
/// Panics when any axis size is not a power of two.
pub fn forward(a: &mut NdArray<f64>) {
    transform_axes(a, LineOp::Forward);
}

/// In-place inverse of [`forward`].
pub fn inverse(a: &mut NdArray<f64>) {
    transform_axes(a, LineOp::Inverse);
}

/// Out-of-place [`forward`].
pub fn forward_to(a: &NdArray<f64>) -> NdArray<f64> {
    let mut out = a.clone();
    forward(&mut out);
    out
}

/// Out-of-place [`inverse`].
pub fn inverse_to(a: &NdArray<f64>) -> NdArray<f64> {
    let mut out = a.clone();
    inverse(&mut out);
    out
}

/// Which 1-d kernel to run on each line.
#[derive(Clone, Copy)]
enum LineOp {
    Forward,
    Inverse,
}

fn transform_axes(a: &mut NdArray<f64>, op: LineOp) {
    let shape = a.shape().clone();
    assert!(
        shape.is_dyadic(),
        "standard form requires power-of-two axes, got {shape:?}"
    );
    // One gather buffer and one Haar scratch shared by every line of every
    // axis — the per-line `vec![0.0; len]` allocations this loop used to
    // make dominated small-chunk transforms.
    let mut line = Vec::new();
    let mut scratch = Vec::new();
    for axis in 0..shape.ndim() {
        apply_along_axis(a, &shape, axis, op, &mut line, &mut scratch);
    }
}

/// Applies `op` to every 1-d line of `a` along `axis`. Contiguous lines
/// (stride 1) are transformed in place; strided lines are processed in
/// cache-blocked contiguous panels (see the module docs).
fn apply_along_axis(
    a: &mut NdArray<f64>,
    shape: &Shape,
    axis: usize,
    op: LineOp,
    panel_scratch: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) {
    let len = shape.dim(axis);
    if len == 1 {
        return;
    }
    let stride = shape.strides()[axis];
    let data = a.as_mut_slice();
    if stride == 1 {
        // Lines are the contiguous rows of the trailing axis.
        for row in data.chunks_exact_mut(len) {
            match op {
                LineOp::Forward => crate::haar1d::forward_with(row, scratch),
                LineOp::Inverse => crate::haar1d::inverse_with(row, scratch),
            }
        }
        return;
    }
    // All lines sharing an index prefix live in one contiguous
    // `len x stride` panel; lines are its columns.
    if panel_scratch.len() < len * block_cols(len, stride) {
        panel_scratch.resize(len * block_cols(len, stride), 0.0);
    }
    for panel in data.chunks_exact_mut(len * stride) {
        match op {
            LineOp::Forward => panel_forward(panel, len, stride, panel_scratch),
            LineOp::Inverse => panel_inverse(panel, len, stride, panel_scratch),
        }
    }
}

/// Column-block width for the panel cascade: wide enough to keep full
/// SIMD rows busy, narrow enough that the block's working set
/// (`len` rows of `block` doubles) stays cache-resident.
fn block_cols(len: usize, stride: usize) -> usize {
    ((1usize << 12) / len).clamp(16, stride.max(16)).min(stride)
}

/// Full forward cascade over one `len x stride` panel, one column block
/// at a time. Per level, averages of row pair `(2k, 2k+1)` land in row
/// `k` (loads precede the store, so the `k == 0` alias is benign) and
/// details stage in `scratch` until the pair rows are free.
fn panel_forward(panel: &mut [f64], len: usize, stride: usize, scratch: &mut [f64]) {
    let bcols = block_cols(len, stride);
    let mut j0 = 0;
    while j0 < stride {
        let w = bcols.min(stride - j0);
        let mut width = len;
        while width > 1 {
            let half = width / 2;
            for k in 0..half {
                kernel::avg_diff_panel(
                    panel,
                    2 * k * stride + j0,
                    (2 * k + 1) * stride + j0,
                    k * stride + j0,
                    &mut scratch[k * w..(k + 1) * w],
                    w,
                );
            }
            for k in 0..half {
                let dst = (half + k) * stride + j0;
                panel[dst..dst + w].copy_from_slice(&scratch[k * w..k * w + w]);
            }
            width = half;
        }
        j0 += w;
    }
}

/// Full inverse cascade over one `len x stride` panel, one column block
/// at a time. Per level, rows `k` (average) and `width + k` (detail)
/// reconstruct into scratch rows `2k`/`2k + 1`, then the doubled corner
/// copies back.
fn panel_inverse(panel: &mut [f64], len: usize, stride: usize, scratch: &mut [f64]) {
    let bcols = block_cols(len, stride);
    let mut j0 = 0;
    while j0 < stride {
        let w = bcols.min(stride - j0);
        let mut width = 1;
        while width < len {
            for k in 0..width {
                let u0 = k * stride + j0;
                let w0 = (width + k) * stride + j0;
                let (sum, diff) = scratch[2 * k * w..(2 * k + 2) * w].split_at_mut(w);
                kernel::add_sub_rows(&panel[u0..u0 + w], &panel[w0..w0 + w], sum, diff);
            }
            for r in 0..2 * width {
                let dst = r * stride + j0;
                panel[dst..dst + w].copy_from_slice(&scratch[r * w..r * w + w]);
            }
            width *= 2;
        }
        j0 += w;
    }
}

/// Orthonormal rescale factor of the standard-form coefficient at tuple
/// index `idx` (product of per-axis 1-d factors).
pub fn orthonormal_scale(shape: &Shape, idx: &[usize]) -> f64 {
    idx.iter()
        .enumerate()
        .map(|(axis, &i)| crate::layout::Layout1d::for_len(shape.dim(axis)).orthonormal_scale(i))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::Shape;

    fn sample(shape: &Shape) -> NdArray<f64> {
        let mut c = 0.0;
        NdArray::from_fn(shape.clone(), |idx| {
            c += 1.0;
            c + idx.iter().sum::<usize>() as f64 * 0.25
        })
    }

    #[test]
    fn roundtrip_2d() {
        let a = sample(&Shape::new(&[8, 8]));
        let mut t = forward_to(&a);
        inverse(&mut t);
        assert!(a.max_abs_diff(&t) < 1e-9);
    }

    #[test]
    fn roundtrip_rectangular() {
        let a = sample(&Shape::new(&[4, 16, 2]));
        let mut t = forward_to(&a);
        inverse(&mut t);
        assert!(a.max_abs_diff(&t) < 1e-9);
    }

    #[test]
    fn dc_coefficient_is_grand_mean() {
        let a = sample(&Shape::new(&[4, 8]));
        let t = forward_to(&a);
        let mean = a.total() / a.len() as f64;
        assert!((t.get(&[0, 0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn separable_signal_has_separable_transform() {
        // a[i,j] = f(i)·g(j) implies t = DWT(f) ⊗ DWT(g).
        let f = [3.0, 5.0, 7.0, 5.0];
        let g = [1.0, 2.0, 0.0, -1.0];
        let a = NdArray::from_fn(Shape::new(&[4, 4]), |idx| f[idx[0]] * g[idx[1]]);
        let t = forward_to(&a);
        let tf = crate::haar1d::forward_to_vec(&f);
        let tg = crate::haar1d::forward_to_vec(&g);
        for i in 0..4 {
            for j in 0..4 {
                assert!((t.get(&[i, j]) - tf[i] * tg[j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matches_sequential_axis_transforms_1d_case() {
        let data = [3.0, 5.0, 7.0, 5.0];
        let a = NdArray::from_vec(Shape::new(&[4]), data.to_vec());
        let t = forward_to(&a);
        assert_eq!(
            t.as_slice(),
            crate::haar1d::forward_to_vec(&data).as_slice()
        );
    }

    #[test]
    fn orthonormal_scale_parseval_2d() {
        let a = sample(&Shape::new(&[4, 4]));
        let t = forward_to(&a);
        let mut energy = 0.0;
        for idx in ss_array::MultiIndexIter::new(a.shape().dims()) {
            let s = orthonormal_scale(a.shape(), &idx);
            let c = t.get(&idx) * s;
            energy += c * c;
        }
        let want: f64 = a.as_slice().iter().map(|x| x * x).sum();
        assert!((energy - want).abs() < 1e-6, "{energy} vs {want}");
    }

    #[test]
    #[should_panic]
    fn rejects_non_dyadic_shape() {
        let mut a = NdArray::<f64>::zeros(Shape::new(&[4, 6]));
        forward(&mut a);
    }

    #[test]
    fn panel_pass_is_bit_identical_to_per_line_cascade() {
        // The cache-blocked panel path must reproduce a gather /
        // 1-d-transform / scatter of every strided line, bit for bit.
        for dims in [vec![8, 4], vec![32, 64], vec![4, 8, 2], vec![16, 2, 4]] {
            let shape = Shape::new(&dims);
            let a = sample(&shape);
            let got = forward_to(&a);
            // Reference: explicit gather/scatter per line, axis by axis.
            let mut want = a.clone();
            let mut scratch = Vec::new();
            for axis in 0..shape.ndim() {
                let len = shape.dim(axis);
                let stride = shape.strides()[axis];
                let mut outer: Vec<usize> = shape.dims().to_vec();
                outer[axis] = 1;
                for idx in ss_array::MultiIndexIter::new(&outer) {
                    let base = shape.offset(&idx);
                    let mut line: Vec<f64> = (0..len)
                        .map(|i| want.as_slice()[base + i * stride])
                        .collect();
                    crate::haar1d::forward_with(&mut line, &mut scratch);
                    for (i, &v) in line.iter().enumerate() {
                        want.as_mut_slice()[base + i * stride] = v;
                    }
                }
            }
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
            // And the inverse cascade must round-trip bit-exactly too
            // relative to the reference layout.
            let mut back = got.clone();
            inverse(&mut back);
            assert!(a.max_abs_diff(&back) < 1e-9);
        }
    }
}
