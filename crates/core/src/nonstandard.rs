//! The **non-standard form** of multidimensional Haar decomposition
//! (Appendix B of the paper).
//!
//! One level of non-standard decomposition performs a *single* pairwise
//! averaging/differencing step along every axis jointly, producing `2^d − 1`
//! detail subbands and one average subband; only the average subband is
//! decomposed further. Compared with the standard form it needs fewer
//! arithmetic operations and — crucially for SHIFT-SPLIT — its coefficients
//! form a single `2^d`-ary *quad tree* (Section 3.1), so a chunk's average
//! splits along just one root path.
//!
//! # Layout
//!
//! We store coefficients in the Mallat layout: the subband-`ε` coefficient of
//! level `j` at node `k ∈ [0, 2^{n−j})^d` lives at per-axis index
//! `i_t = 2^{n−j} + k_t` when `ε_t = 1`, and `i_t = k_t` when `ε_t = 0`; the
//! overall average lives at the origin. [`NsCoeff`] ↔ tuple-index conversion
//! is provided by [`coeff_at`]/[`index_of`]. The non-standard form requires a
//! hypercube domain (`N^d` with one shared `n`).

use ss_array::{MultiIndexIter, NdArray, Shape};

/// A coefficient of the non-standard decomposition.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NsCoeff {
    /// The single overall average, at the origin.
    Scaling,
    /// A detail coefficient.
    Detail {
        /// Level `1 ..= n` (coarsest is `n`).
        level: u32,
        /// Quad-tree node, one coordinate per axis, each `< 2^{n−level}`.
        node: Vec<usize>,
        /// Subband signature: `subband[t]` is `true` when axis `t` is
        /// differenced. At least one entry must be `true`.
        subband: Vec<bool>,
    },
}

/// Validates that `shape` is a hypercube with power-of-two side; returns
/// `(d, n)`.
pub fn cube_levels(shape: &Shape) -> (usize, u32) {
    let d = shape.ndim();
    let side = shape.dim(0);
    assert!(
        shape.dims().iter().all(|&s| s == side),
        "non-standard form requires a hypercube, got {shape:?}"
    );
    (d, ss_array::log2_exact(side))
}

/// In-place non-standard transform.
///
/// # Panics
///
/// Panics unless `a` is a hypercube with power-of-two side.
pub fn forward(a: &mut NdArray<f64>) {
    let shape = a.shape().clone();
    let (d, n) = cube_levels(&shape);
    // `width` is the side of the average subband still being decomposed.
    let mut width = 1usize << n;
    let mut scratch = NdArray::<f64>::zeros(shape.clone());
    while width > 1 {
        let half = width / 2;
        // One joint step on the leading width^d corner.
        for idx in MultiIndexIter::new(&vec![half; d]) {
            // For each output cell (average + 2^d−1 details at this level)
            // gather the 2^d input cells.
            for eps in 0..(1usize << d) {
                let mut acc = 0.0;
                for corner in 0..(1usize << d) {
                    let mut src = Vec::with_capacity(d);
                    let mut sign = 1.0;
                    for t in 0..d {
                        let bit = (corner >> (d - 1 - t)) & 1;
                        src.push(2 * idx[t] + bit);
                        let e = (eps >> (d - 1 - t)) & 1;
                        if e == 1 && bit == 1 {
                            sign = -sign;
                        }
                    }
                    acc += sign * a.get(&src);
                }
                acc /= (1usize << d) as f64;
                // Destination: average subband at idx, detail subbands at
                // idx + half·ε.
                let mut dst = Vec::with_capacity(d);
                for t in 0..d {
                    let e = (eps >> (d - 1 - t)) & 1;
                    dst.push(idx[t] + e * half);
                }
                scratch.set(&dst, acc);
            }
        }
        // Copy the processed width^d corner back.
        for idx in MultiIndexIter::new(&vec![width; d]) {
            a.set(&idx, scratch.get(&idx));
        }
        width = half;
    }
}

/// In-place inverse of [`forward`].
pub fn inverse(a: &mut NdArray<f64>) {
    let shape = a.shape().clone();
    let (d, n) = cube_levels(&shape);
    let mut width = 2usize;
    let mut scratch = NdArray::<f64>::zeros(shape.clone());
    while width <= (1usize << n) {
        let half = width / 2;
        for idx in MultiIndexIter::new(&vec![half; d]) {
            // Reconstruct the 2^d data cells from the subband coefficients.
            for corner in 0..(1usize << d) {
                let mut acc = 0.0;
                for eps in 0..(1usize << d) {
                    let mut src = Vec::with_capacity(d);
                    let mut sign = 1.0;
                    for t in 0..d {
                        let e = (eps >> (d - 1 - t)) & 1;
                        src.push(idx[t] + e * half);
                        let bit = (corner >> (d - 1 - t)) & 1;
                        if e == 1 && bit == 1 {
                            sign = -sign;
                        }
                    }
                    acc += sign * a.get(&src);
                }
                let mut dst = Vec::with_capacity(d);
                for t in 0..d {
                    let bit = (corner >> (d - 1 - t)) & 1;
                    dst.push(2 * idx[t] + bit);
                }
                scratch.set(&dst, acc);
            }
        }
        for idx in MultiIndexIter::new(&vec![width; d]) {
            a.set(&idx, scratch.get(&idx));
        }
        width *= 2;
    }
}

/// Out-of-place [`forward`].
pub fn forward_to(a: &NdArray<f64>) -> NdArray<f64> {
    let mut out = a.clone();
    forward(&mut out);
    out
}

/// Out-of-place [`inverse`].
pub fn inverse_to(a: &NdArray<f64>) -> NdArray<f64> {
    let mut out = a.clone();
    inverse(&mut out);
    out
}

/// Tuple index of a non-standard coefficient in the Mallat layout.
///
/// # Panics
///
/// Panics for [`NsCoeff::Scaling`] — the scaling coefficient's index is
/// `vec![0; d]`, which cannot be derived from the coefficient alone (it does
/// not carry the dimensionality).
pub fn index_of(n: u32, c: &NsCoeff) -> Vec<usize> {
    match c {
        NsCoeff::Scaling => {
            panic!("index_of(Scaling) needs explicit dimensionality; use `vec![0; d]`")
        }
        NsCoeff::Detail {
            level,
            node,
            subband,
        } => {
            debug_assert!(*level >= 1 && *level <= n);
            debug_assert!(subband.iter().any(|&e| e), "empty subband");
            let base = 1usize << (n - level);
            node.iter()
                .zip(subband)
                .map(|(&k, &e)| {
                    debug_assert!(k < base);
                    if e {
                        base + k
                    } else {
                        k
                    }
                })
                .collect()
        }
    }
}

/// Decodes a tuple index of a hypercube transform (`side 2^n`) back to the
/// coefficient it addresses.
pub fn coeff_at(n: u32, idx: &[usize]) -> NsCoeff {
    if idx.iter().all(|&i| i == 0) {
        return NsCoeff::Scaling;
    }
    let max = *idx.iter().max().unwrap();
    let octave = usize::BITS - 1 - max.leading_zeros(); // floor(log2 max)
    let level = n - octave;
    let base = 1usize << octave;
    let mut node = Vec::with_capacity(idx.len());
    let mut subband = Vec::with_capacity(idx.len());
    for &i in idx {
        if i >= base {
            node.push(i - base);
            subband.push(true);
        } else {
            node.push(i);
            subband.push(false);
        }
    }
    debug_assert!(node.iter().all(|&k| k < base), "malformed index {idx:?}");
    NsCoeff::Detail {
        level,
        node,
        subband,
    }
}

/// Orthonormal rescale factor for the non-standard coefficient at `idx` of a
/// `d`-cube with side `2^n`: `2^{d·j/2}` for a level-`j` detail, `2^{d·n/2}`
/// for the average.
pub fn orthonormal_scale(n: u32, d: usize, idx: &[usize]) -> f64 {
    let j = match coeff_at(n, idx) {
        NsCoeff::Scaling => n,
        NsCoeff::Detail { level, .. } => level,
    };
    (2.0f64).powf(d as f64 * j as f64 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::Shape;

    fn sample(shape: &Shape) -> NdArray<f64> {
        let mut c = 0.0f64;
        NdArray::from_fn(shape.clone(), |idx| {
            c += 1.0;
            (c * 1.37).sin() * 5.0 + idx[0] as f64
        })
    }

    #[test]
    fn roundtrip_2d() {
        let a = sample(&Shape::cube(2, 8));
        let mut t = forward_to(&a);
        inverse(&mut t);
        assert!(a.max_abs_diff(&t) < 1e-9);
    }

    #[test]
    fn roundtrip_3d_and_4d() {
        for (d, n) in [(3usize, 8usize), (4, 4)] {
            let a = sample(&Shape::cube(d, n));
            let mut t = forward_to(&a);
            inverse(&mut t);
            assert!(a.max_abs_diff(&t) < 1e-9, "d={d}");
        }
    }

    #[test]
    fn one_dimensional_matches_haar1d() {
        let data = [3.0, 5.0, 7.0, 5.0, 1.0, 0.0, 2.0, 2.0];
        let a = NdArray::from_vec(Shape::new(&[8]), data.to_vec());
        let t = forward_to(&a);
        assert_eq!(
            t.as_slice(),
            crate::haar1d::forward_to_vec(&data).as_slice()
        );
    }

    #[test]
    fn dc_coefficient_is_grand_mean() {
        let a = sample(&Shape::cube(2, 16));
        let t = forward_to(&a);
        let mean = a.total() / a.len() as f64;
        assert!((t.get(&[0, 0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn constant_cube_transforms_to_single_average() {
        let a = NdArray::from_fn(Shape::cube(3, 4), |_| 2.5);
        let t = forward_to(&a);
        assert!((t.get(&[0, 0, 0]) - 2.5).abs() < 1e-12);
        let nonzero = t.as_slice().iter().filter(|&&c| c.abs() > 1e-12).count();
        assert_eq!(nonzero, 1);
    }

    #[test]
    fn index_of_coeff_at_roundtrip() {
        let n = 3;
        let shape = Shape::cube(2, 8);
        for idx in ss_array::MultiIndexIter::new(shape.dims()) {
            let c = coeff_at(n, &idx);
            let back = match &c {
                NsCoeff::Scaling => vec![0, 0],
                _ => index_of(n, &c),
            };
            assert_eq!(back, idx, "coeff {c:?}");
        }
    }

    #[test]
    fn level_count_per_subband_matches_quadtree() {
        // 8x8 (n=3, d=2): level j has (2^{n-j})^2 nodes × 3 subbands.
        let n = 3u32;
        let shape = Shape::cube(2, 8);
        let mut per_level = std::collections::HashMap::new();
        for idx in ss_array::MultiIndexIter::new(shape.dims()) {
            if let NsCoeff::Detail { level, .. } = coeff_at(n, &idx) {
                *per_level.entry(level).or_insert(0usize) += 1;
            }
        }
        assert_eq!(per_level[&3], 3);
        assert_eq!(per_level[&2], 3 * 4);
        assert_eq!(per_level[&1], 3 * 16);
    }

    #[test]
    fn nonstandard_differs_from_standard_in_2d() {
        let a = sample(&Shape::cube(2, 8));
        let ns = forward_to(&a);
        let st = crate::standard::forward_to(&a);
        assert!(
            ns.max_abs_diff(&st) > 1e-9,
            "forms should differ on generic input"
        );
    }

    #[test]
    fn orthonormal_scale_parseval() {
        let a = sample(&Shape::cube(2, 8));
        let t = forward_to(&a);
        let mut energy = 0.0;
        for idx in ss_array::MultiIndexIter::new(a.shape().dims()) {
            let c = t.get(&idx) * orthonormal_scale(3, 2, &idx);
            energy += c * c;
        }
        let want: f64 = a.as_slice().iter().map(|x| x * x).sum();
        assert!((energy - want).abs() < 1e-6, "{energy} vs {want}");
    }

    #[test]
    #[should_panic]
    fn rejects_non_cube() {
        let mut a = NdArray::<f64>::zeros(Shape::new(&[4, 8]));
        forward(&mut a);
    }
}
