//! The **non-standard form** of multidimensional Haar decomposition
//! (Appendix B of the paper).
//!
//! One level of non-standard decomposition performs a *single* pairwise
//! averaging/differencing step along every axis jointly, producing `2^d − 1`
//! detail subbands and one average subband; only the average subband is
//! decomposed further. Compared with the standard form it needs fewer
//! arithmetic operations and — crucially for SHIFT-SPLIT — its coefficients
//! form a single `2^d`-ary *quad tree* (Section 3.1), so a chunk's average
//! splits along just one root path.
//!
//! # Layout
//!
//! We store coefficients in the Mallat layout: the subband-`ε` coefficient of
//! level `j` at node `k ∈ [0, 2^{n−j})^d` lives at per-axis index
//! `i_t = 2^{n−j} + k_t` when `ε_t = 1`, and `i_t = k_t` when `ε_t = 0`; the
//! overall average lives at the origin. [`NsCoeff`] ↔ tuple-index conversion
//! is provided by [`coeff_at`]/[`index_of`]. The non-standard form requires a
//! hypercube domain (`N^d` with one shared `n`).

//! # Joint-step execution
//!
//! A level's joint step applies a fixed `2^d x 2^d` signed butterfly to
//! every `2^d`-cell hypercube of the average subband. The inner loops
//! run on precomputed flat offset and sign tables (no per-cell index
//! tuples), accumulate in fixed corner order `(((v_0 ± v_1) ± v_2) ± …)`
//! so the scalar and SIMD builds agree bit for bit, and the common
//! `d = 2` case has a dedicated row-pair kernel on [`crate::kernel`]'s
//! lane width that deinterleaves quad columns straight into the four
//! subband rows.

use ss_array::{NdArray, Shape};

#[cfg(feature = "simd")]
use std::simd::Simd;

/// A coefficient of the non-standard decomposition.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NsCoeff {
    /// The single overall average, at the origin.
    Scaling,
    /// A detail coefficient.
    Detail {
        /// Level `1 ..= n` (coarsest is `n`).
        level: u32,
        /// Quad-tree node, one coordinate per axis, each `< 2^{n−level}`.
        node: Vec<usize>,
        /// Subband signature: `subband[t]` is `true` when axis `t` is
        /// differenced. At least one entry must be `true`.
        subband: Vec<bool>,
    },
}

/// Validates that `shape` is a hypercube with power-of-two side; returns
/// `(d, n)`.
pub fn cube_levels(shape: &Shape) -> (usize, u32) {
    let d = shape.ndim();
    let side = shape.dim(0);
    assert!(
        shape.dims().iter().all(|&s| s == side),
        "non-standard form requires a hypercube, got {shape:?}"
    );
    (d, ss_array::log2_exact(side))
}

/// In-place non-standard transform.
///
/// # Panics
///
/// Panics unless `a` is a hypercube with power-of-two side.
pub fn forward(a: &mut NdArray<f64>) {
    let shape = a.shape().clone();
    let (d, n) = cube_levels(&shape);
    let strides: Vec<usize> = shape.strides().to_vec();
    let tables = JointTables::new(d, &strides);
    let mut scratch = vec![0.0f64; a.len()];
    let data = a.as_mut_slice();
    // `width` is the side of the average subband still being decomposed.
    let mut width = 1usize << n;
    while width > 1 {
        let half = width / 2;
        joint_forward_level(data, &mut scratch, d, &strides, half, &tables);
        // Copy the processed width^d corner back.
        copy_corner(&scratch, data, d, &strides, width);
        width = half;
    }
}

/// In-place inverse of [`forward`].
pub fn inverse(a: &mut NdArray<f64>) {
    let shape = a.shape().clone();
    let (d, n) = cube_levels(&shape);
    let strides: Vec<usize> = shape.strides().to_vec();
    let tables = JointTables::new(d, &strides);
    let mut scratch = vec![0.0f64; a.len()];
    let data = a.as_mut_slice();
    let mut width = 2usize;
    while width <= (1usize << n) {
        let half = width / 2;
        joint_inverse_level(data, &mut scratch, d, &strides, half, &tables);
        copy_corner(&scratch, data, d, &strides, width);
        width *= 2;
    }
}

/// Flat-offset and sign tables of the `2^d`-cell joint butterfly.
///
/// `corner_off[c]` is the flat offset of hypercube corner `c` (axis `t`
/// contributes `strides[t]` when bit `d−1−t` of `c` is set) — scaled by
/// `half` it doubles as the subband offset of signature `ε = c`.
/// `sign[ε · 2^d + c]` is `(−1)^{popcount(ε & c)}`, the coefficient of
/// corner `c` in subband `ε` (an axis contributes `−1` exactly when it
/// is both differenced and on the high side).
struct JointTables {
    corner_off: Vec<usize>,
    sign: Vec<f64>,
}

impl JointTables {
    fn new(d: usize, strides: &[usize]) -> Self {
        let m = 1usize << d;
        let corner_off = (0..m)
            .map(|c| (0..d).map(|t| ((c >> (d - 1 - t)) & 1) * strides[t]).sum())
            .collect();
        let sign = (0..m * m)
            .map(|i| {
                let (e, c) = (i / m, i % m);
                if (e & c).count_ones() % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        JointTables { corner_off, sign }
    }
}

/// One forward joint step: reads the `(2·half)^d` corner of `data`,
/// writes the `2^d` subbands of side `half` into `out`.
fn joint_forward_level(
    data: &[f64],
    out: &mut [f64],
    d: usize,
    strides: &[usize],
    half: usize,
    tables: &JointTables,
) {
    #[cfg(feature = "simd")]
    if d == 2 && strides[1] == 1 {
        joint_forward_level_2d::<{ crate::kernel::LANES }>(data, out, strides[0], half);
        return;
    }
    let m = 1usize << d;
    let scale = m as f64;
    let mut idx = vec![0usize; d];
    let mut src_base = 0usize;
    let mut dst_base = 0usize;
    'cells: loop {
        for e in 0..m {
            let sign = &tables.sign[e * m..(e + 1) * m];
            // Corner 0 always enters with sign +1; accumulating from it
            // (rather than from 0.0) keeps the association identical to
            // the specialised SIMD kernels.
            let mut acc = data[src_base];
            for c in 1..m {
                acc += sign[c] * data[src_base + tables.corner_off[c]];
            }
            out[dst_base + half * tables.corner_off[e]] = acc / scale;
        }
        let mut t = d;
        loop {
            if t == 0 {
                break 'cells;
            }
            t -= 1;
            idx[t] += 1;
            src_base += 2 * strides[t];
            dst_base += strides[t];
            if idx[t] < half {
                break;
            }
            idx[t] = 0;
            src_base -= 2 * half * strides[t];
            dst_base -= half * strides[t];
        }
    }
}

/// One inverse joint step: reads the `2^d` subbands of side `half` from
/// `data`, writes the reconstructed `(2·half)^d` corner into `out`.
fn joint_inverse_level(
    data: &[f64],
    out: &mut [f64],
    d: usize,
    strides: &[usize],
    half: usize,
    tables: &JointTables,
) {
    #[cfg(feature = "simd")]
    if d == 2 && strides[1] == 1 {
        joint_inverse_level_2d::<{ crate::kernel::LANES }>(data, out, strides[0], half);
        return;
    }
    let m = 1usize << d;
    let mut idx = vec![0usize; d];
    let mut src_base = 0usize;
    let mut dst_base = 0usize;
    'cells: loop {
        for c in 0..m {
            // Subband ε = 0 (the average) always enters with sign +1.
            let mut acc = data[dst_base];
            for e in 1..m {
                acc += tables.sign[e * m + c] * data[dst_base + half * tables.corner_off[e]];
            }
            out[src_base + tables.corner_off[c]] = acc;
        }
        let mut t = d;
        loop {
            if t == 0 {
                break 'cells;
            }
            t -= 1;
            idx[t] += 1;
            src_base += 2 * strides[t];
            dst_base += strides[t];
            if idx[t] < half {
                break;
            }
            idx[t] = 0;
            src_base -= 2 * half * strides[t];
            dst_base -= half * strides[t];
        }
    }
}

/// `d = 2` forward joint step on SIMD lanes: each row pair deinterleaves
/// into the four quad corners `(p, q, r, s)` and lands in the four
/// subband rows. Accumulation order matches the generic path:
/// `((p ± q) ± r) ± s`, then one division by 4.
#[cfg(feature = "simd")]
fn joint_forward_level_2d<const L: usize>(data: &[f64], out: &mut [f64], side: usize, half: usize) {
    let four = Simd::<f64, L>::splat(4.0);
    for i in 0..half {
        let r0 = 2 * i * side;
        let r1 = r0 + side;
        let o00 = i * side; // average subband
        let o01 = o00 + half; // detail in axis 1
        let o10 = (i + half) * side; // detail in axis 0
        let o11 = o10 + half; // detail in both
        let mut j = 0;
        while j + L <= half {
            let x0 = Simd::<f64, L>::from_slice(&data[r0 + 2 * j..r0 + 2 * j + L]);
            let x1 = Simd::<f64, L>::from_slice(&data[r0 + 2 * j + L..r0 + 2 * j + 2 * L]);
            let (p, q) = x0.deinterleave(x1);
            let y0 = Simd::<f64, L>::from_slice(&data[r1 + 2 * j..r1 + 2 * j + L]);
            let y1 = Simd::<f64, L>::from_slice(&data[r1 + 2 * j + L..r1 + 2 * j + 2 * L]);
            let (r, s) = y0.deinterleave(y1);
            ((((p + q) + r) + s) / four).copy_to_slice(&mut out[o00 + j..o00 + j + L]);
            ((((p - q) + r) - s) / four).copy_to_slice(&mut out[o01 + j..o01 + j + L]);
            ((((p + q) - r) - s) / four).copy_to_slice(&mut out[o10 + j..o10 + j + L]);
            ((((p - q) - r) + s) / four).copy_to_slice(&mut out[o11 + j..o11 + j + L]);
            j += L;
        }
        for j in j..half {
            let p = data[r0 + 2 * j];
            let q = data[r0 + 2 * j + 1];
            let r = data[r1 + 2 * j];
            let s = data[r1 + 2 * j + 1];
            out[o00 + j] = (((p + q) + r) + s) / 4.0;
            out[o01 + j] = (((p - q) + r) - s) / 4.0;
            out[o10 + j] = (((p + q) - r) - s) / 4.0;
            out[o11 + j] = (((p - q) - r) + s) / 4.0;
        }
    }
}

/// `d = 2` inverse joint step on SIMD lanes: the four subband rows
/// `(A, B, C, D)` reconstruct a quad per column, interleaved back into
/// the two data rows. Accumulation order `((A ± B) ± C) ± D` matches
/// the generic path.
#[cfg(feature = "simd")]
fn joint_inverse_level_2d<const L: usize>(data: &[f64], out: &mut [f64], side: usize, half: usize) {
    for i in 0..half {
        let i00 = i * side;
        let i01 = i00 + half;
        let i10 = (i + half) * side;
        let i11 = i10 + half;
        let r0 = 2 * i * side;
        let r1 = r0 + side;
        let mut j = 0;
        while j + L <= half {
            let a = Simd::<f64, L>::from_slice(&data[i00 + j..i00 + j + L]);
            let b = Simd::<f64, L>::from_slice(&data[i01 + j..i01 + j + L]);
            let c = Simd::<f64, L>::from_slice(&data[i10 + j..i10 + j + L]);
            let d = Simd::<f64, L>::from_slice(&data[i11 + j..i11 + j + L]);
            let v00 = ((a + b) + c) + d;
            let v01 = ((a - b) + c) - d;
            let v10 = ((a + b) - c) - d;
            let v11 = ((a - b) - c) + d;
            let (lo, hi) = v00.interleave(v01);
            lo.copy_to_slice(&mut out[r0 + 2 * j..r0 + 2 * j + L]);
            hi.copy_to_slice(&mut out[r0 + 2 * j + L..r0 + 2 * j + 2 * L]);
            let (lo, hi) = v10.interleave(v11);
            lo.copy_to_slice(&mut out[r1 + 2 * j..r1 + 2 * j + L]);
            hi.copy_to_slice(&mut out[r1 + 2 * j + L..r1 + 2 * j + 2 * L]);
            j += L;
        }
        for j in j..half {
            let a = data[i00 + j];
            let b = data[i01 + j];
            let c = data[i10 + j];
            let d = data[i11 + j];
            out[r0 + 2 * j] = ((a + b) + c) + d;
            out[r0 + 2 * j + 1] = ((a - b) + c) - d;
            out[r1 + 2 * j] = ((a + b) - c) - d;
            out[r1 + 2 * j + 1] = ((a - b) - c) + d;
        }
    }
}

/// Copies the leading `width^d` corner of `src` into `dst`, run by run
/// along the (unit-stride) trailing axis.
fn copy_corner(src: &[f64], dst: &mut [f64], d: usize, strides: &[usize], width: usize) {
    debug_assert_eq!(strides[d - 1], 1, "trailing axis must be contiguous");
    if d == 1 {
        dst[..width].copy_from_slice(&src[..width]);
        return;
    }
    let mut idx = vec![0usize; d - 1];
    let mut base = 0usize;
    'rows: loop {
        dst[base..base + width].copy_from_slice(&src[base..base + width]);
        let mut t = d - 1;
        loop {
            if t == 0 {
                break 'rows;
            }
            t -= 1;
            idx[t] += 1;
            base += strides[t];
            if idx[t] < width {
                break;
            }
            idx[t] = 0;
            base -= width * strides[t];
        }
    }
}

/// Out-of-place [`forward`].
pub fn forward_to(a: &NdArray<f64>) -> NdArray<f64> {
    let mut out = a.clone();
    forward(&mut out);
    out
}

/// Out-of-place [`inverse`].
pub fn inverse_to(a: &NdArray<f64>) -> NdArray<f64> {
    let mut out = a.clone();
    inverse(&mut out);
    out
}

/// Tuple index of a non-standard coefficient in the Mallat layout.
///
/// # Panics
///
/// Panics for [`NsCoeff::Scaling`] — the scaling coefficient's index is
/// `vec![0; d]`, which cannot be derived from the coefficient alone (it does
/// not carry the dimensionality).
pub fn index_of(n: u32, c: &NsCoeff) -> Vec<usize> {
    match c {
        NsCoeff::Scaling => {
            panic!("index_of(Scaling) needs explicit dimensionality; use `vec![0; d]`")
        }
        NsCoeff::Detail {
            level,
            node,
            subband,
        } => {
            debug_assert!(*level >= 1 && *level <= n);
            debug_assert!(subband.iter().any(|&e| e), "empty subband");
            let base = 1usize << (n - level);
            node.iter()
                .zip(subband)
                .map(|(&k, &e)| {
                    debug_assert!(k < base);
                    if e {
                        base + k
                    } else {
                        k
                    }
                })
                .collect()
        }
    }
}

/// Decodes a tuple index of a hypercube transform (`side 2^n`) back to the
/// coefficient it addresses.
pub fn coeff_at(n: u32, idx: &[usize]) -> NsCoeff {
    if idx.iter().all(|&i| i == 0) {
        return NsCoeff::Scaling;
    }
    let max = *idx.iter().max().unwrap();
    let octave = usize::BITS - 1 - max.leading_zeros(); // floor(log2 max)
    let level = n - octave;
    let base = 1usize << octave;
    let mut node = Vec::with_capacity(idx.len());
    let mut subband = Vec::with_capacity(idx.len());
    for &i in idx {
        if i >= base {
            node.push(i - base);
            subband.push(true);
        } else {
            node.push(i);
            subband.push(false);
        }
    }
    debug_assert!(node.iter().all(|&k| k < base), "malformed index {idx:?}");
    NsCoeff::Detail {
        level,
        node,
        subband,
    }
}

/// Orthonormal rescale factor for the non-standard coefficient at `idx` of a
/// `d`-cube with side `2^n`: `2^{d·j/2}` for a level-`j` detail, `2^{d·n/2}`
/// for the average.
pub fn orthonormal_scale(n: u32, d: usize, idx: &[usize]) -> f64 {
    let j = match coeff_at(n, idx) {
        NsCoeff::Scaling => n,
        NsCoeff::Detail { level, .. } => level,
    };
    (2.0f64).powf(d as f64 * j as f64 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{MultiIndexIter, Shape};

    fn sample(shape: &Shape) -> NdArray<f64> {
        let mut c = 0.0f64;
        NdArray::from_fn(shape.clone(), |idx| {
            c += 1.0;
            (c * 1.37).sin() * 5.0 + idx[0] as f64
        })
    }

    #[test]
    fn roundtrip_2d() {
        let a = sample(&Shape::cube(2, 8));
        let mut t = forward_to(&a);
        inverse(&mut t);
        assert!(a.max_abs_diff(&t) < 1e-9);
    }

    #[test]
    fn roundtrip_3d_and_4d() {
        for (d, n) in [(3usize, 8usize), (4, 4)] {
            let a = sample(&Shape::cube(d, n));
            let mut t = forward_to(&a);
            inverse(&mut t);
            assert!(a.max_abs_diff(&t) < 1e-9, "d={d}");
        }
    }

    #[test]
    fn one_dimensional_matches_haar1d() {
        let data = [3.0, 5.0, 7.0, 5.0, 1.0, 0.0, 2.0, 2.0];
        let a = NdArray::from_vec(Shape::new(&[8]), data.to_vec());
        let t = forward_to(&a);
        assert_eq!(
            t.as_slice(),
            crate::haar1d::forward_to_vec(&data).as_slice()
        );
    }

    #[test]
    fn dc_coefficient_is_grand_mean() {
        let a = sample(&Shape::cube(2, 16));
        let t = forward_to(&a);
        let mean = a.total() / a.len() as f64;
        assert!((t.get(&[0, 0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn constant_cube_transforms_to_single_average() {
        let a = NdArray::from_fn(Shape::cube(3, 4), |_| 2.5);
        let t = forward_to(&a);
        assert!((t.get(&[0, 0, 0]) - 2.5).abs() < 1e-12);
        let nonzero = t.as_slice().iter().filter(|&&c| c.abs() > 1e-12).count();
        assert_eq!(nonzero, 1);
    }

    #[test]
    fn index_of_coeff_at_roundtrip() {
        let n = 3;
        let shape = Shape::cube(2, 8);
        for idx in ss_array::MultiIndexIter::new(shape.dims()) {
            let c = coeff_at(n, &idx);
            let back = match &c {
                NsCoeff::Scaling => vec![0, 0],
                _ => index_of(n, &c),
            };
            assert_eq!(back, idx, "coeff {c:?}");
        }
    }

    #[test]
    fn level_count_per_subband_matches_quadtree() {
        // 8x8 (n=3, d=2): level j has (2^{n-j})^2 nodes × 3 subbands.
        let n = 3u32;
        let shape = Shape::cube(2, 8);
        let mut per_level = std::collections::HashMap::new();
        for idx in ss_array::MultiIndexIter::new(shape.dims()) {
            if let NsCoeff::Detail { level, .. } = coeff_at(n, &idx) {
                *per_level.entry(level).or_insert(0usize) += 1;
            }
        }
        assert_eq!(per_level[&3], 3);
        assert_eq!(per_level[&2], 3 * 4);
        assert_eq!(per_level[&1], 3 * 16);
    }

    #[test]
    fn nonstandard_differs_from_standard_in_2d() {
        let a = sample(&Shape::cube(2, 8));
        let ns = forward_to(&a);
        let st = crate::standard::forward_to(&a);
        assert!(
            ns.max_abs_diff(&st) > 1e-9,
            "forms should differ on generic input"
        );
    }

    #[test]
    fn orthonormal_scale_parseval() {
        let a = sample(&Shape::cube(2, 8));
        let t = forward_to(&a);
        let mut energy = 0.0;
        for idx in ss_array::MultiIndexIter::new(a.shape().dims()) {
            let c = t.get(&idx) * orthonormal_scale(3, 2, &idx);
            energy += c * c;
        }
        let want: f64 = a.as_slice().iter().map(|x| x * x).sum();
        assert!((energy - want).abs() < 1e-6, "{energy} vs {want}");
    }

    #[test]
    #[should_panic]
    fn rejects_non_cube() {
        let mut a = NdArray::<f64>::zeros(Shape::new(&[4, 8]));
        forward(&mut a);
    }

    /// Tuple-index reference implementation of one forward level, with the
    /// same fixed corner-order association as the production kernels.
    fn naive_forward(a: &NdArray<f64>) -> NdArray<f64> {
        let (d, n) = cube_levels(a.shape());
        let mut out = a.clone();
        let mut width = 1usize << n;
        while width > 1 {
            let half = width / 2;
            let mut scratch = out.clone();
            for idx in MultiIndexIter::new(&vec![half; d]) {
                for eps in 0..(1usize << d) {
                    let mut acc = 0.0;
                    for corner in 0..(1usize << d) {
                        let mut src = Vec::new();
                        let mut sign = 1.0;
                        for t in 0..d {
                            let bit = (corner >> (d - 1 - t)) & 1;
                            src.push(2 * idx[t] + bit);
                            if (eps >> (d - 1 - t)) & 1 == 1 && bit == 1 {
                                sign = -sign;
                            }
                        }
                        let v = sign * out.get(&src);
                        acc = if corner == 0 { v } else { acc + v };
                    }
                    let dst: Vec<usize> = (0..d)
                        .map(|t| idx[t] + ((eps >> (d - 1 - t)) & 1) * half)
                        .collect();
                    scratch.set(&dst, acc / (1usize << d) as f64);
                }
            }
            for idx in MultiIndexIter::new(&vec![width; d]) {
                out.set(&idx, scratch.get(&idx));
            }
            width = half;
        }
        out
    }

    #[test]
    fn flat_kernel_is_bit_identical_to_tuple_reference() {
        // Pins both the scalar and the SIMD build to the same tuple-index
        // reference, so the two builds are bit-identical to each other.
        for (d, side) in [(1usize, 16usize), (2, 32), (3, 8)] {
            let a = sample(&Shape::cube(d, side));
            let got = forward_to(&a);
            let want = naive_forward(&a);
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(g.to_bits(), w.to_bits(), "d={d} side={side}");
            }
            let mut back = got.clone();
            inverse(&mut back);
            assert!(a.max_abs_diff(&back) < 1e-9);
        }
    }
}
