//! Reconstruction in and from the wavelet domain (Sections 2.2 and 5.4).
//!
//! Two families of primitives live here:
//!
//! * **Contribution lists** — `(coefficient index, weight)` pairs whose
//!   weighted sum yields a value in the original domain. They underlie point
//!   queries (Lemma 1), range sums (Lemma 2) and the *inverse SPLIT*
//!   (computing a dyadic block's average from the global transform). Using
//!   lists instead of direct evaluation lets disk-backed callers account for
//!   each coefficient access.
//! * **Partial reconstruction** (Result 6) — assembling the transform of a
//!   dyadic sub-range from the global transform via inverse SHIFT (detail
//!   re-indexing) plus inverse SPLIT (block-average evaluation), then
//!   running an in-memory inverse transform over just `M^d` values instead
//!   of `N^d`.

use crate::layout::Layout1d;
use crate::nonstandard::NsCoeff;
use ss_array::{DyadicRange, MultiIndexIter, NdArray, Shape};

/// Contributions computing the *scaling coefficient* `u_{m, block}` — the
/// average of the `(block+1)`-th dyadic range of length `2^m` — from the
/// global 1-d transform. This is the inverse of SPLIT: one weight-1 entry
/// for the overall average plus `n − m` signed path details.
pub fn block_average_contributions_1d(n: u32, m: u32, block: usize) -> Vec<(usize, f64)> {
    debug_assert!(m <= n);
    debug_assert!(block < (1usize << (n - m)));
    let layout = Layout1d::new(n);
    let mut out = Vec::with_capacity((n - m) as usize + 1);
    out.push((0usize, 1.0));
    for j in (m + 1)..=n {
        let shift = j - m;
        let k = block >> shift;
        let sign = if (block >> (shift - 1)) & 1 == 1 {
            -1.0
        } else {
            1.0
        };
        out.push((
            layout.index_of(crate::layout::Coeff1d::Detail { level: j, k }),
            sign,
        ));
    }
    out
}

/// Point-query contributions for the **standard** multidimensional form:
/// the cross product of per-axis Lemma 1 lists; `Π(n_t + 1)` entries.
pub fn standard_point_contributions(n: &[u32], pos: &[usize]) -> Vec<(Vec<usize>, f64)> {
    cross_product(
        &n.iter()
            .zip(pos)
            .map(|(&nt, &p)| Layout1d::new(nt).point_contributions(p))
            .collect::<Vec<_>>(),
    )
}

/// Range-sum contributions for the **standard** form over the inclusive box
/// `[lo, hi]`: cross product of per-axis Lemma 2 lists; at most
/// `Π(2·n_t + 1)` entries.
pub fn standard_range_sum_contributions(
    n: &[u32],
    lo: &[usize],
    hi: &[usize],
) -> Vec<(Vec<usize>, f64)> {
    cross_product(
        &n.iter()
            .zip(lo.iter().zip(hi))
            .map(|(&nt, (&l, &h))| Layout1d::new(nt).range_sum_contributions(l, h))
            .collect::<Vec<_>>(),
    )
}

/// Point-query contributions for the **non-standard** form on an `N^d`
/// hypercube: the overall average plus, per level, the `2^d − 1` subband
/// coefficients of the covering quad-tree node; `(2^d − 1)·n + 1` entries.
pub fn nonstandard_point_contributions(n: u32, d: usize, pos: &[usize]) -> Vec<(Vec<usize>, f64)> {
    debug_assert_eq!(pos.len(), d);
    let mut out = Vec::with_capacity(((1usize << d) - 1) * n as usize + 1);
    out.push((vec![0usize; d], 1.0));
    for j in 1..=n {
        let node: Vec<usize> = pos.iter().map(|&p| p >> j).collect();
        for eps in 1usize..(1usize << d) {
            let mut sign = 1.0;
            let mut subband = Vec::with_capacity(d);
            for (t, &p) in pos.iter().enumerate() {
                let e = (eps >> (d - 1 - t)) & 1 == 1;
                subband.push(e);
                if e && (p >> (j - 1)) & 1 == 1 {
                    sign = -sign;
                }
            }
            let c = NsCoeff::Detail {
                level: j,
                node: node.clone(),
                subband,
            };
            out.push((crate::nonstandard::index_of(n, &c), sign));
        }
    }
    out
}

/// Contributions computing the average of a cubic dyadic block (side `2^m`,
/// per-axis translation `block`) from a **non-standard** transform: the
/// inverse SPLIT for the non-standard form.
pub fn nonstandard_block_average_contributions(
    n: u32,
    m: u32,
    block: &[usize],
) -> Vec<(Vec<usize>, f64)> {
    let d = block.len();
    let mut out = Vec::with_capacity(((1usize << d) - 1) * (n - m) as usize + 1);
    out.push((vec![0usize; d], 1.0));
    for j in (m + 1)..=n {
        let shift = j - m;
        let node: Vec<usize> = block.iter().map(|&b| b >> shift).collect();
        for eps in 1usize..(1usize << d) {
            let mut sign = 1.0;
            let mut subband = Vec::with_capacity(d);
            for (t, &b) in block.iter().enumerate() {
                let e = (eps >> (d - 1 - t)) & 1 == 1;
                subband.push(e);
                if e && (b >> (shift - 1)) & 1 == 1 {
                    sign = -sign;
                }
            }
            let c = NsCoeff::Detail {
                level: j,
                node: node.clone(),
                subband,
            };
            out.push((crate::nonstandard::index_of(n, &c), sign));
        }
    }
    out
}

/// Assembles the **standard-form transform of a dyadic sub-range** from a
/// global coefficient accessor, without touching coefficients outside the
/// `(M_t + (n_t − m_t))`-per-axis envelope (Result 6).
///
/// `get` is called once per required global coefficient with its tuple
/// index; the per-axis mixed SHIFT⁻¹/SPLIT⁻¹ cross product mirrors
/// [`crate::split::standard_deltas`].
pub fn standard_range_transform(
    n: &[u32],
    range: &DyadicRange,
    mut get: impl FnMut(&[usize]) -> f64,
) -> NdArray<f64> {
    let d = range.ndim();
    assert_eq!(n.len(), d);
    let m: Vec<u32> = range.axes.iter().map(|a| a.level).collect();
    let block: Vec<usize> = range.axes.iter().map(|a| a.translation).collect();
    let shape = Shape::new(&range.extents());
    let mut out = NdArray::<f64>::zeros(shape.clone());
    // Per-axis source lists, hoisted out of the cell loop: detail local
    // index -> single shifted index; average (local 0) -> block-average
    // contributions along that axis. Each cell then just cross-multiplies
    // the d lists its coordinates select.
    let axis_lists: Vec<Vec<Vec<(usize, f64)>>> = (0..d)
        .map(|t| {
            (0..shape.dim(t))
                .map(|local_t| {
                    if local_t == 0 {
                        block_average_contributions_1d(n[t], m[t], block[t])
                    } else {
                        vec![(
                            crate::shift::shift_index_1d(n[t], m[t], block[t], local_t),
                            1.0,
                        )]
                    }
                })
                .collect()
        })
        .collect();
    let mut idx = vec![0usize; d];
    for local in MultiIndexIter::new(shape.dims()) {
        if local.iter().all(|&i| i != 0) {
            // All-detail cell: every list is a single weight-1 entry, so
            // the sum collapses to one coefficient access.
            for t in 0..d {
                idx[t] = axis_lists[t][local[t]][0].0;
            }
            let mut acc = 0.0;
            acc += get(&idx);
            out.set(&local, acc);
            continue;
        }
        let per_axis: Vec<&[(usize, f64)]> =
            (0..d).map(|t| axis_lists[t][local[t]].as_slice()).collect();
        let mut acc = 0.0;
        let counts: Vec<usize> = per_axis.iter().map(|v| v.len()).collect();
        for choice in MultiIndexIter::new(&counts) {
            let mut w = 1.0;
            for (t, &c) in choice.iter().enumerate() {
                let (i, f) = per_axis[t][c];
                idx[t] = i;
                w *= f;
            }
            acc += w * get(&idx);
        }
        out.set(&local, acc);
    }
    out
}

/// Reconstructs the **data** of a dyadic sub-range from a standard-form
/// global transform (assemble via [`standard_range_transform`], then invert
/// in memory).
pub fn standard_reconstruct_range(
    n: &[u32],
    range: &DyadicRange,
    get: impl FnMut(&[usize]) -> f64,
) -> NdArray<f64> {
    let mut t = standard_range_transform(n, range, get);
    crate::standard::inverse(&mut t);
    t
}

/// Assembles the **non-standard transform of a cubic dyadic sub-range** from
/// a global coefficient accessor: details by inverse SHIFT, the block
/// average by inverse SPLIT.
pub fn nonstandard_range_transform(
    n: u32,
    range: &DyadicRange,
    mut get: impl FnMut(&[usize]) -> f64,
) -> NdArray<f64> {
    assert!(range.is_cubic(), "non-standard form needs cubic ranges");
    let d = range.ndim();
    let m = range.axes[0].level;
    let block: Vec<usize> = range.axes.iter().map(|a| a.translation).collect();
    let shape = Shape::cube(d, 1usize << m);
    let mut out = NdArray::<f64>::zeros(shape.clone());
    for local in MultiIndexIter::new(shape.dims()) {
        if local.iter().all(|&i| i == 0) {
            continue;
        }
        let g = crate::shift::shift_index_nonstandard(n, m, &block, &local);
        out.set(&local, get(&g));
    }
    let avg: f64 = nonstandard_block_average_contributions(n, m, &block)
        .iter()
        .map(|(idx, w)| w * get(idx))
        .sum();
    out.set(&vec![0usize; d], avg);
    out
}

/// Reconstructs the **data** of a cubic dyadic sub-range from a
/// non-standard global transform.
pub fn nonstandard_reconstruct_range(
    n: u32,
    range: &DyadicRange,
    get: impl FnMut(&[usize]) -> f64,
) -> NdArray<f64> {
    let mut t = nonstandard_range_transform(n, range, get);
    crate::nonstandard::inverse(&mut t);
    t
}

fn cross_product(per_axis: &[Vec<(usize, f64)>]) -> Vec<(Vec<usize>, f64)> {
    let counts: Vec<usize> = per_axis.iter().map(|v| v.len()).collect();
    let mut out = Vec::with_capacity(counts.iter().product());
    for choice in MultiIndexIter::new(&counts) {
        let mut idx = Vec::with_capacity(per_axis.len());
        let mut w = 1.0;
        for (t, &c) in choice.iter().enumerate() {
            let (i, f) = per_axis[t][c];
            idx.push(i);
            w *= f;
        }
        out.push((idx, w));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::DyadicInterval;

    fn sample_2d(side: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 29 + idx[1] * 13) % 17) as f64 - 5.0
        })
    }

    #[test]
    fn block_average_contributions_match_direct_average() {
        let data: Vec<f64> = (0..32).map(|i| ((i * 11) % 7) as f64 + 0.5).collect();
        let coeffs = crate::haar1d::forward_to_vec(&data);
        for m in 0..=5u32 {
            for block in 0..(32 >> m) {
                let want: f64 =
                    data[block << m..(block + 1) << m].iter().sum::<f64>() / (1usize << m) as f64;
                let got: f64 = block_average_contributions_1d(5, m, block)
                    .iter()
                    .map(|&(i, w)| w * coeffs[i])
                    .sum();
                assert!((got - want).abs() < 1e-9, "m={m} block={block}");
            }
        }
    }

    #[test]
    fn standard_point_contributions_reconstruct() {
        let a = sample_2d(8);
        let t = crate::standard::forward_to(&a);
        for idx in MultiIndexIter::new(&[8, 8]) {
            let contribs = standard_point_contributions(&[3, 3], &idx);
            assert_eq!(contribs.len(), 16, "Lemma 1 squared");
            let got: f64 = contribs.iter().map(|(i, w)| w * t.get(i)).sum();
            assert!((got - a.get(&idx)).abs() < 1e-9, "{idx:?}");
        }
    }

    #[test]
    fn standard_range_sum_contributions_match_naive() {
        let a = sample_2d(8);
        let t = crate::standard::forward_to(&a);
        for lo0 in [0usize, 3] {
            for hi0 in [lo0, 6] {
                for lo1 in [1usize, 4] {
                    for hi1 in [lo1, 7] {
                        let want = a.region_sum(&[lo0, lo1], &[hi0, hi1]);
                        let got: f64 =
                            standard_range_sum_contributions(&[3, 3], &[lo0, lo1], &[hi0, hi1])
                                .iter()
                                .map(|(i, w)| w * t.get(i))
                                .sum();
                        assert!(
                            (got - want).abs() < 1e-9,
                            "[{lo0},{hi0}]x[{lo1},{hi1}]: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nonstandard_point_contributions_reconstruct() {
        let a = sample_2d(8);
        let t = crate::nonstandard::forward_to(&a);
        for idx in MultiIndexIter::new(&[8, 8]) {
            let contribs = nonstandard_point_contributions(3, 2, &idx);
            assert_eq!(contribs.len(), 3 * 3 + 1, "(2^d−1)·n + 1");
            let got: f64 = contribs.iter().map(|(i, w)| w * t.get(i)).sum();
            assert!((got - a.get(&idx)).abs() < 1e-9, "{idx:?}");
        }
    }

    #[test]
    fn standard_partial_reconstruction_equals_slice() {
        let a = sample_2d(16);
        let t = crate::standard::forward_to(&a);
        for (l0, l1) in [(0u32, 1u32), (2, 2), (1, 3)] {
            for b0 in 0..(16 >> l0).min(3) {
                for b1 in 0..(16 >> l1).min(3) {
                    let range = DyadicRange::new(vec![
                        DyadicInterval::new(l0, b0),
                        DyadicInterval::new(l1, b1),
                    ]);
                    let got = standard_reconstruct_range(&[4, 4], &range, |idx| t.get(idx));
                    let want = a.extract(&range.origin(), &range.extents());
                    assert!(
                        got.max_abs_diff(&want) < 1e-9,
                        "range {range:?}: diff {}",
                        got.max_abs_diff(&want)
                    );
                }
            }
        }
    }

    #[test]
    fn standard_partial_reconstruction_full_domain() {
        let a = sample_2d(8);
        let t = crate::standard::forward_to(&a);
        let range = DyadicRange::cube(3, &[0, 0]);
        let got = standard_reconstruct_range(&[3, 3], &range, |idx| t.get(idx));
        assert!(got.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn nonstandard_partial_reconstruction_equals_slice() {
        let a = sample_2d(16);
        let t = crate::nonstandard::forward_to(&a);
        for m in 0..=3u32 {
            for b0 in 0..(16usize >> m).min(3) {
                for b1 in 0..(16usize >> m).min(3) {
                    let range = DyadicRange::cube(m, &[b0, b1]);
                    let got = nonstandard_reconstruct_range(4, &range, |idx| t.get(idx));
                    let want = a.extract(&range.origin(), &range.extents());
                    assert!(
                        got.max_abs_diff(&want) < 1e-9,
                        "m={m} block=({b0},{b1}): diff {}",
                        got.max_abs_diff(&want)
                    );
                }
            }
        }
    }

    #[test]
    fn range_transform_access_count_is_result_6() {
        // Standard form: (M + (n−m))^d accesses for an M^d cube.
        let a = sample_2d(16);
        let t = crate::standard::forward_to(&a);
        let range = DyadicRange::cube(2, &[1, 2]); // M=4, n=4, m=2
        let mut accesses = 0usize;
        let _ = standard_range_transform(&[4, 4], &range, |idx| {
            accesses += 1;
            t.get(idx)
        });
        // Entries with both axes detail: (M−1)^2 single-access; mixed rows
        // cost (n−m+1) each. Total = (M−1 + n−m+1)^2 = (M + n−m)^2.
        assert_eq!(accesses, (4 + 2usize).pow(2));
    }
}
