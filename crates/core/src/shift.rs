//! The **SHIFT** operation (Section 4 of the paper).
//!
//! Let `a` be a vector of size `N = 2^n` and `b` its `(k+1)`-th dyadic range
//! of size `M = 2^m`. The detail coefficients of `DWT(b)` are — up to
//! re-indexing — detail coefficients of `DWT(a)` restricted to the subtree
//! rooted at `w_{m,k}`:
//!
//! ```text
//! w^b_{j,i}  ↦  w^a_{j, k·2^{m−j} + i}        for j ∈ [1, m]
//! ```
//!
//! SHIFT is pure re-indexing: no arithmetic on coefficient values. The
//! multidimensional generalisations re-index each axis independently
//! (standard form) or re-index quad-tree nodes (non-standard form); both are
//! expressed below as translations on tuple indices so that in-memory and
//! disk-backed callers share the code.

use crate::layout::{Coeff1d, Layout1d};

/// Translates a 1-d chunk-local coefficient index to its global position.
///
/// * `n` — global domain is `2^n`;
/// * `m` — chunk is `2^m` long (`m ≤ n`);
/// * `block` — the chunk is the `(block+1)`-th dyadic range, i.e. it starts
///   at `block · 2^m`;
/// * `local` — index in the chunk's transformed vector; **must be ≥ 1**
///   (index 0 is the chunk average, which SPLITs instead of shifting).
///
/// Returns the index in the global transformed vector.
///
/// # Panics
///
/// Panics when `local == 0` (debug: also on range violations).
pub fn shift_index_1d(n: u32, m: u32, block: usize, local: usize) -> usize {
    assert!(
        local != 0,
        "chunk average does not SHIFT; apply SPLIT instead"
    );
    debug_assert!(m <= n);
    debug_assert!(local < (1usize << m));
    debug_assert!(block < (1usize << (n - m)));
    let chunk = Layout1d::new(m);
    let global = Layout1d::new(n);
    match chunk.coeff_at(local) {
        Coeff1d::Scaling => unreachable!(),
        Coeff1d::Detail { level, k } => global.index_of(Coeff1d::Detail {
            level,
            k: (block << (m - level)) + k,
        }),
    }
}

/// Inverse of [`shift_index_1d`]: maps a global detail index back into the
/// chunk, or `None` when the global coefficient lies outside the chunk's
/// subtree (its support is not contained in the chunk).
pub fn unshift_index_1d(n: u32, m: u32, block: usize, global_idx: usize) -> Option<usize> {
    let chunk = Layout1d::new(m);
    let global = Layout1d::new(n);
    match global.coeff_at(global_idx) {
        Coeff1d::Scaling => None,
        Coeff1d::Detail { level, k } => {
            if level > m {
                return None;
            }
            let offset = block << (m - level);
            if k < offset || k >= offset + (1usize << (m - level)) {
                return None;
            }
            Some(chunk.index_of(Coeff1d::Detail {
                level,
                k: k - offset,
            }))
        }
    }
}

/// Standard-form multidimensional SHIFT on tuple indices.
///
/// Per-axis sizes are `2^{n[t]}` globally and `2^{m[t]}` for the chunk; the
/// chunk sits at dyadic block `block[t]` along each axis. Every component of
/// `local` must be a detail index (≥ 1); components equal to 0 belong to
/// SPLIT along that axis (see [`crate::split::standard_deltas`], which
/// handles the mixed cases).
pub fn shift_index_standard(n: &[u32], m: &[u32], block: &[usize], local: &[usize]) -> Vec<usize> {
    debug_assert_eq!(n.len(), m.len());
    debug_assert_eq!(n.len(), local.len());
    local
        .iter()
        .enumerate()
        .map(|(t, &i)| shift_index_1d(n[t], m[t], block[t], i))
        .collect()
}

/// Non-standard-form multidimensional SHIFT on tuple indices (Mallat
/// layout).
///
/// The domain is an `N^d` hypercube (`N = 2^n`), the chunk an `M^d` cube
/// (`M = 2^m`) at cubic dyadic position `block` (per-axis translations at
/// level `m`). A chunk detail of level `j` at node `q`, subband `ε` maps to
/// the global detail of the same level and subband at node
/// `block·2^{m−j} + q`.
///
/// In the Mallat layout this is exactly a per-axis index translation, and it
/// happens to coincide with the standard-form translation formula — but only
/// because chunk levels align with global levels for cubic chunks.
///
/// # Panics
///
/// Panics when `local` is the chunk origin (the chunk average).
pub fn shift_index_nonstandard(n: u32, m: u32, block: &[usize], local: &[usize]) -> Vec<usize> {
    assert!(
        local.iter().any(|&i| i != 0),
        "chunk average does not SHIFT; apply SPLIT instead"
    );
    let c = crate::nonstandard::coeff_at(m, local);
    match c {
        crate::nonstandard::NsCoeff::Scaling => unreachable!(),
        crate::nonstandard::NsCoeff::Detail {
            level,
            node,
            subband,
        } => {
            let shifted = crate::nonstandard::NsCoeff::Detail {
                level,
                node: node
                    .iter()
                    .zip(block)
                    .map(|(&q, &b)| (b << (m - level)) + q)
                    .collect(),
                subband,
            };
            crate::nonstandard::index_of(n, &shifted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar1d;
    use ss_array::{NdArray, Shape};

    /// The defining property: transforming a vector that is zero outside one
    /// dyadic block equals SHIFT+SPLIT of the block's own transform. Here we
    /// check the SHIFT part in isolation by comparing detail coefficients
    /// whose support lies inside the block.
    #[test]
    fn shifted_details_match_global_transform() {
        let n = 5u32;
        let m = 3u32;
        for block in 0..(1usize << (n - m)) {
            let chunk: Vec<f64> = (0..8)
                .map(|i| (i as f64 + 1.0) * (block as f64 + 1.0))
                .collect();
            let mut full = vec![0.0f64; 32];
            full[block * 8..(block + 1) * 8].copy_from_slice(&chunk);
            let full_t = haar1d::forward_to_vec(&full);
            let chunk_t = haar1d::forward_to_vec(&chunk);
            for local in 1..8 {
                let g = shift_index_1d(n, m, block, local);
                assert!(
                    (full_t[g] - chunk_t[local]).abs() < 1e-12,
                    "block {block} local {local}: {} vs {}",
                    full_t[g],
                    chunk_t[local]
                );
            }
        }
    }

    #[test]
    fn shift_unshift_roundtrip() {
        let (n, m) = (6u32, 3u32);
        for block in 0..(1usize << (n - m)) {
            for local in 1..(1usize << m) {
                let g = shift_index_1d(n, m, block, local);
                assert_eq!(unshift_index_1d(n, m, block, g), Some(local));
            }
        }
    }

    #[test]
    fn unshift_rejects_foreign_coefficients() {
        let (n, m) = (5u32, 2u32);
        // Global scaling and coarse details never land in a block subtree.
        assert_eq!(unshift_index_1d(n, m, 0, 0), None);
        assert_eq!(unshift_index_1d(n, m, 0, 1), None); // w_{5,0}
                                                        // Detail of a different block.
        let other = shift_index_1d(n, m, 3, 1);
        assert_eq!(unshift_index_1d(n, m, 2, other), None);
    }

    #[test]
    fn shift_targets_are_distinct() {
        let (n, m) = (6u32, 4u32);
        let mut seen = std::collections::HashSet::new();
        for local in 1..(1usize << m) {
            assert!(seen.insert(shift_index_1d(n, m, 2, local)));
        }
        assert_eq!(seen.len(), (1 << m) - 1);
    }

    #[test]
    #[should_panic]
    fn shifting_the_average_panics() {
        shift_index_1d(4, 2, 0, 0);
    }

    #[test]
    fn standard_2d_shift_matches_global_transform() {
        // 16x16 domain, 4x4 chunk at block (2, 1).
        let (n, m) = (4u32, 2u32);
        let block = [2usize, 1usize];
        let chunk = NdArray::from_fn(Shape::cube(2, 4), |idx| (idx[0] * 4 + idx[1]) as f64 + 1.0);
        let mut full = NdArray::<f64>::zeros(Shape::cube(2, 16));
        full.insert(&[block[0] * 4, block[1] * 4], &chunk);
        let full_t = crate::standard::forward_to(&full);
        let chunk_t = crate::standard::forward_to(&chunk);
        for i in 1..4usize {
            for j in 1..4usize {
                let g = shift_index_standard(&[n, n], &[m, m], &block, &[i, j]);
                assert!(
                    (full_t.get(&g) - chunk_t.get(&[i, j])).abs() < 1e-12,
                    "local ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn nonstandard_2d_shift_matches_global_transform() {
        let (n, m) = (4u32, 2u32);
        let block = [1usize, 3usize];
        let chunk = NdArray::from_fn(Shape::cube(2, 4), |idx| {
            ((idx[0] * 5 + idx[1] * 3) % 7) as f64 - 2.0
        });
        let mut full = NdArray::<f64>::zeros(Shape::cube(2, 16));
        full.insert(&[block[0] * 4, block[1] * 4], &chunk);
        let full_t = crate::nonstandard::forward_to(&full);
        let chunk_t = crate::nonstandard::forward_to(&chunk);
        for idx in ss_array::MultiIndexIter::new(&[4, 4]) {
            if idx.iter().all(|&i| i == 0) {
                continue;
            }
            let g = shift_index_nonstandard(n, m, &block, &idx);
            assert!(
                (full_t.get(&g) - chunk_t.get(&idx)).abs() < 1e-12,
                "local {idx:?}: {} vs {}",
                full_t.get(&g),
                chunk_t.get(&idx)
            );
        }
    }
}
