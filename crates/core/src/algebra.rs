//! Algebra on standard-form transforms, *entirely in the wavelet domain*.
//!
//! The paper's introduction credits Chakrabarti et al. with re-defining
//! relational operators to work directly on wavelet data; SHIFT-SPLIT
//! extends the same philosophy to maintenance. This module supplies the
//! remaining day-to-day operators a wavelet data cube needs, each with a
//! closed-form coefficient-space implementation (never reconstructing):
//!
//! * [`add_scaled`] — linear combinations of cubes (transforms are linear);
//! * [`project_sum`] — summing out an axis: details integrate to zero, so
//!   the marginal's transform is `N_t ×` the axis-index-0 slice;
//! * [`slice_at`] — fixing one coordinate: each output coefficient is the
//!   `(n_t + 1)`-term Lemma 1 combination along the sliced axis;
//! * [`coarsen_axis`] — halving an axis by pairwise averaging: drop that
//!   axis's finest-level details (the multiresolution property, literally).

use crate::layout::Layout1d;
use ss_array::{MultiIndexIter, NdArray, Shape};

/// `out = a + alpha · b`, in the wavelet domain. Both inputs must be
/// standard-form transforms of identically-shaped data.
pub fn add_scaled(a: &NdArray<f64>, b: &NdArray<f64>, alpha: f64) -> NdArray<f64> {
    assert_eq!(a.shape(), b.shape(), "add_scaled: shape mismatch");
    let mut out = a.clone();
    for (o, &v) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += alpha * v;
    }
    out
}

/// Sums out `axis`: returns the transform of
/// `m[rest] = Σ_{i} data[..., i, ...]` computed without reconstruction.
///
/// Every detail coefficient along the summed axis integrates to zero over
/// the full domain, so the marginal's transform is exactly `N_axis` times
/// the slice of the input at axis-index 0. Cost: one pass over the output.
pub fn project_sum(t: &NdArray<f64>, axis: usize) -> NdArray<f64> {
    let shape = t.shape().clone();
    let d = shape.ndim();
    assert!(d >= 2, "project_sum needs at least two axes");
    assert!(axis < d);
    let n_axis = shape.dim(axis) as f64;
    let out_dims: Vec<usize> = (0..d)
        .filter(|&a| a != axis)
        .map(|a| shape.dim(a))
        .collect();
    let mut idx = vec![0usize; d];
    NdArray::from_fn(Shape::new(&out_dims), |rest| {
        let mut r = 0usize;
        for a in 0..d {
            if a == axis {
                idx[a] = 0;
            } else {
                idx[a] = rest[r];
                r += 1;
            }
        }
        n_axis * t.get(&idx)
    })
}

/// Averages out `axis` (the `AVG` marginal): [`project_sum`] divided by the
/// axis length.
pub fn project_avg(t: &NdArray<f64>, axis: usize) -> NdArray<f64> {
    let n_axis = t.shape().dim(axis) as f64;
    let mut out = project_sum(t, axis);
    for v in out.as_mut_slice() {
        *v /= n_axis;
    }
    out
}

/// Fixes `axis` at coordinate `pos`: returns the transform of the
/// `(d−1)`-dimensional slice `data[..., pos, ...]`, computed in coefficient
/// space via Lemma 1 along the sliced axis (`n_axis + 1` input coefficients
/// per output coefficient).
pub fn slice_at(t: &NdArray<f64>, axis: usize, pos: usize) -> NdArray<f64> {
    let shape = t.shape().clone();
    let d = shape.ndim();
    assert!(d >= 2, "slice_at needs at least two axes");
    assert!(axis < d);
    assert!(pos < shape.dim(axis));
    let layout = Layout1d::for_len(shape.dim(axis));
    let contribs = layout.point_contributions(pos);
    let out_dims: Vec<usize> = (0..d)
        .filter(|&a| a != axis)
        .map(|a| shape.dim(a))
        .collect();
    let mut idx = vec![0usize; d];
    NdArray::from_fn(Shape::new(&out_dims), |rest| {
        let mut r = 0usize;
        for a in 0..d {
            if a != axis {
                idx[a] = rest[r];
                r += 1;
            }
        }
        contribs
            .iter()
            .map(|&(i, w)| {
                idx[axis] = i;
                w * t.get(&idx)
            })
            .sum()
    })
}

/// Halves `axis` by pairwise averaging (one multiresolution step): the
/// result's transform is the input's with that axis's finest-level details
/// dropped — a pure re-slicing, no arithmetic on values.
pub fn coarsen_axis(t: &NdArray<f64>, axis: usize) -> NdArray<f64> {
    let shape = t.shape().clone();
    let d = shape.ndim();
    assert!(axis < d);
    let len = shape.dim(axis);
    assert!(len >= 2, "axis already at minimum resolution");
    let mut out_dims = shape.dims().to_vec();
    out_dims[axis] = len / 2;
    let mut out = NdArray::<f64>::zeros(Shape::new(&out_dims));
    for idx in MultiIndexIter::new(&out_dims) {
        // Indices < len/2 along the axis are exactly the coarser transform.
        out.set(&idx, t.get(&idx));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard;

    fn sample(dims: &[usize]) -> NdArray<f64> {
        NdArray::from_fn(Shape::new(dims), |idx| {
            idx.iter()
                .enumerate()
                .map(|(t, &i)| ((i * (t + 2) + 1) % 9) as f64)
                .product::<f64>()
                - 3.0
        })
    }

    #[test]
    fn add_scaled_matches_direct() {
        let a = sample(&[8, 4]);
        let b = sample(&[8, 4]);
        let direct = {
            let mut c = a.clone();
            for (x, &y) in c.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *x += 2.5 * y;
            }
            standard::forward_to(&c)
        };
        let in_domain = add_scaled(&standard::forward_to(&a), &standard::forward_to(&b), 2.5);
        assert!(direct.max_abs_diff(&in_domain) < 1e-9);
    }

    #[test]
    fn project_sum_matches_direct_marginal() {
        let a = sample(&[8, 16]);
        let t = standard::forward_to(&a);
        for axis in 0..2usize {
            let got = project_sum(&t, axis);
            // Direct marginal.
            let out_len = if axis == 0 { 16 } else { 8 };
            let marginal = NdArray::from_fn(Shape::new(&[out_len]), |rest| {
                let mut s = 0.0;
                for i in 0..a.shape().dim(axis) {
                    let idx = if axis == 0 {
                        [i, rest[0]]
                    } else {
                        [rest[0], i]
                    };
                    s += a.get(&idx);
                }
                s
            });
            let want = standard::forward_to(&marginal);
            assert!(got.max_abs_diff(&want) < 1e-9, "axis {axis}");
        }
    }

    #[test]
    fn project_avg_is_scaled_sum() {
        let a = sample(&[4, 8]);
        let t = standard::forward_to(&a);
        let avg = project_avg(&t, 0);
        let sum = project_sum(&t, 0);
        for i in 0..8usize {
            assert!((avg.get(&[i]) * 4.0 - sum.get(&[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn slice_at_matches_direct_slice() {
        let a = sample(&[8, 16]);
        let t = standard::forward_to(&a);
        for pos in [0usize, 5, 7] {
            let got = slice_at(&t, 0, pos);
            let row = NdArray::from_fn(Shape::new(&[16]), |r| a.get(&[pos, r[0]]));
            let want = standard::forward_to(&row);
            assert!(got.max_abs_diff(&want) < 1e-9, "pos {pos}");
        }
        for pos in [0usize, 9, 15] {
            let got = slice_at(&t, 1, pos);
            let col = NdArray::from_fn(Shape::new(&[8]), |r| a.get(&[r[0], pos]));
            let want = standard::forward_to(&col);
            assert!(got.max_abs_diff(&want) < 1e-9, "pos {pos}");
        }
    }

    #[test]
    fn coarsen_matches_direct_averaging() {
        let a = sample(&[8, 8]);
        let t = standard::forward_to(&a);
        let got = coarsen_axis(&t, 1);
        let halved = NdArray::from_fn(Shape::new(&[8, 4]), |idx| {
            (a.get(&[idx[0], 2 * idx[1]]) + a.get(&[idx[0], 2 * idx[1] + 1])) / 2.0
        });
        let want = standard::forward_to(&halved);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn repeated_coarsening_reaches_marginal_average() {
        // Coarsening an axis all the way down equals project_avg.
        let a = sample(&[4, 8]);
        let mut t = standard::forward_to(&a);
        t = coarsen_axis(&t, 0);
        t = coarsen_axis(&t, 0);
        // Now axis 0 has length 1; squeeze and compare.
        let squeezed = NdArray::from_fn(Shape::new(&[8]), |r| t.get(&[0, r[0]]));
        let want = project_avg(&standard::forward_to(&a), 0);
        assert!(squeezed.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn chained_operators() {
        // AVG over altitude then slice a single latitude: still exact.
        let a = sample(&[4, 4, 8]);
        let t = standard::forward_to(&a);
        let no_alt = project_avg(&t, 1);
        let lat2 = slice_at(&no_alt, 0, 2);
        let direct = NdArray::from_fn(Shape::new(&[8]), |r| {
            (0..4).map(|alt| a.get(&[2, alt, r[0]])).sum::<f64>() / 4.0
        });
        let want = standard::forward_to(&direct);
        assert!(lat2.max_abs_diff(&want) < 1e-9);
    }
}
