//! Fixed-bucket sparse tiles and lossy coefficient retention.
//!
//! Wavelet-transformed real data is overwhelmingly near-zero, yet every
//! tile in the storage layer is a dense `f64` array. [`SparseTile`]
//! stores a tile as fixed-size **buckets** of [`BUCKET`] consecutive
//! slots where an absent bucket (`None`) means "all zero" — the idiom
//! of DjVu's sparse coefficient blocks, transplanted to `f64` tiles. A
//! tile whose non-zero coefficients cluster (as wavelet detail
//! coefficients do) pays memory and disk only for the buckets it
//! actually uses; the on-disk encoding is normative in
//! `docs/FORMAT.md` §8.
//!
//! [`RetentionPolicy`] is the lossy half: given a dense tile it zeroes
//! coefficients below a threshold ([`RetentionPolicy::Threshold`]) or
//! outside the per-tile best-K ([`RetentionPolicy::TopK`]), reporting
//! the error it introduced so callers can surface the achieved (not
//! just requested) accuracy. The error semantics are documented in
//! `docs/ERROR_MODEL.md`; Guha's synopsis-construction work grounds the
//! space/error tradeoff.
//!
//! Conversion is exact: `SparseTile::from_dense` followed by
//! [`SparseTile::to_dense`] reproduces the input bit-identically —
//! lossiness lives only in `RetentionPolicy`, never in the
//! representation.

/// Coefficients per bucket. Tiles smaller than this use one short
/// bucket; see [`SparseTile::bucket_len`].
pub const BUCKET: usize = 16;

/// A sparse tile: fixed buckets of [`BUCKET`] slots, `None` == all zero.
///
/// The read/apply surface mirrors a dense `&mut [f64]` tile — `get`,
/// `set`, `add` by slot — so buffer-pool frames, MVCC overlays and
/// delta flushes can use either representation interchangeably.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseTile {
    capacity: usize,
    buckets: Vec<Option<Box<[f64; BUCKET]>>>,
}

impl SparseTile {
    /// An all-zero tile of `capacity` slots.
    pub fn new(capacity: usize) -> SparseTile {
        assert!(capacity >= 1);
        SparseTile {
            capacity,
            buckets: vec![None; capacity.div_ceil(BUCKET)],
        }
    }

    /// Builds a sparse tile from a dense image, allocating buckets only
    /// where `dense` is non-zero. Exact: `to_dense` reproduces `dense`
    /// bit-identically (`-0.0` counts as non-zero and survives).
    pub fn from_dense(dense: &[f64]) -> SparseTile {
        let mut tile = SparseTile::new(dense.len());
        for (b, chunk) in dense.chunks(BUCKET).enumerate() {
            if chunk.iter().any(|&v| v.to_bits() != 0) {
                let mut bucket = Box::new([0.0; BUCKET]);
                bucket[..chunk.len()].copy_from_slice(chunk);
                tile.buckets[b] = Some(bucket);
            }
        }
        tile
    }

    /// Writes the tile into a dense image (`dense.len()` must equal the
    /// capacity).
    pub fn to_dense(&self, dense: &mut [f64]) {
        assert_eq!(dense.len(), self.capacity);
        for (b, chunk) in dense.chunks_mut(BUCKET).enumerate() {
            match &self.buckets[b] {
                Some(bucket) => chunk.copy_from_slice(&bucket[..chunk.len()]),
                None => chunk.fill(0.0),
            }
        }
    }

    /// Slots in the tile.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buckets in the tile (`ceil(capacity / BUCKET)`).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Slots covered by bucket `b` (short only for a tail bucket of a
    /// non-multiple capacity).
    pub fn bucket_len(&self, b: usize) -> usize {
        (self.capacity - b * BUCKET).min(BUCKET)
    }

    /// Whether bucket `b` is materialised (holds at least one slot that
    /// was non-zero when it was created).
    pub fn bucket_present(&self, b: usize) -> bool {
        self.buckets[b].is_some()
    }

    /// The materialised contents of bucket `b` (`None` == all zero).
    pub fn bucket(&self, b: usize) -> Option<&[f64]> {
        self.buckets[b].as_deref().map(|k| &k[..self.bucket_len(b)])
    }

    /// Count of materialised buckets.
    pub fn present_buckets(&self) -> usize {
        self.buckets.iter().filter(|b| b.is_some()).count()
    }

    /// Whether every bucket is absent (the tile reads as all zero).
    pub fn is_zero(&self) -> bool {
        self.buckets.iter().all(|b| b.is_none())
    }

    /// Reads one slot.
    pub fn get(&self, slot: usize) -> f64 {
        assert!(slot < self.capacity);
        match &self.buckets[slot / BUCKET] {
            Some(bucket) => bucket[slot % BUCKET],
            None => 0.0,
        }
    }

    /// Writes one slot, materialising its bucket on demand. Writing
    /// `0.0` into an absent bucket stays allocation-free.
    pub fn set(&mut self, slot: usize, value: f64) {
        assert!(slot < self.capacity);
        let b = slot / BUCKET;
        if self.buckets[b].is_none() {
            if value.to_bits() == 0 {
                return;
            }
            self.buckets[b] = Some(Box::new([0.0; BUCKET]));
        }
        self.buckets[b].as_mut().expect("materialised")[slot % BUCKET] = value;
    }

    /// Adds a delta to one slot (the maintenance `+=` primitive).
    pub fn add(&mut self, slot: usize, delta: f64) {
        if delta != 0.0 {
            self.set(slot, self.get(slot) + delta);
        }
    }

    /// Drops buckets whose every slot is exactly zero (e.g. after
    /// deltas cancelled out), restoring the canonical form where a
    /// present bucket holds at least one non-zero.
    pub fn compact(&mut self) {
        for bucket in &mut self.buckets {
            if let Some(k) = bucket {
                if k.iter().all(|&v| v.to_bits() == 0) {
                    *bucket = None;
                }
            }
        }
    }
}

/// What a lossy retention pass did to one tile (or a whole store).
///
/// `dropped_sq` accumulates the squared magnitudes of zeroed
/// coefficients, so `dropped_sq.sqrt()` is the exact L2 norm of the
/// introduced error in the coefficient domain (the dropped terms are
/// orthogonal contributions; see `docs/ERROR_MODEL.md`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RetentionReport {
    /// Non-zero coefficients kept.
    pub kept: u64,
    /// Non-zero coefficients zeroed by the policy.
    pub dropped: u64,
    /// Sum of squares of the zeroed coefficients.
    pub dropped_sq: f64,
    /// Largest magnitude zeroed.
    pub max_dropped: f64,
}

impl RetentionReport {
    /// Folds another report into this one.
    pub fn merge(&mut self, other: &RetentionReport) {
        self.kept += other.kept;
        self.dropped += other.dropped;
        self.dropped_sq += other.dropped_sq;
        self.max_dropped = self.max_dropped.max(other.max_dropped);
    }

    /// L2 norm of the introduced coefficient error.
    pub fn l2_error(&self) -> f64 {
        self.dropped_sq.sqrt()
    }
}

/// A per-tile lossy retention policy applied before coefficients reach
/// a sparse store.
///
/// Slot 0 of every tile is the redundant subtree-root **scaling
/// coefficient** (the single-block-query slot of the paper's Section
/// 3); both lossy policies always keep it, whatever its magnitude, so
/// fast-path point queries and range sums keep their anchor. Error
/// semantics — which query paths stay exact, how achieved error is
/// reported — are documented in `docs/ERROR_MODEL.md`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RetentionPolicy {
    /// Keep everything (the lossless identity; `--threshold 0`).
    Keep,
    /// Zero every coefficient with `|c| <= ε` (except slot 0). A
    /// non-positive `ε` keeps every non-zero *bit pattern* — including
    /// `-0.0`, whose magnitude is zero — so `Threshold(0)` is exactly
    /// lossless, not merely numerically so.
    Threshold(f64),
    /// Keep the `K` largest-magnitude coefficients per tile (plus slot
    /// 0); zero the rest. Ties break toward the lower slot.
    TopK(usize),
}

impl RetentionPolicy {
    /// Applies the policy to one dense tile in place, reporting what
    /// was kept and dropped.
    pub fn apply(&self, tile: &mut [f64]) -> RetentionReport {
        let mut report = RetentionReport::default();
        let keep_mask: Vec<bool> = match *self {
            RetentionPolicy::Keep => vec![true; tile.len()],
            RetentionPolicy::Threshold(eps) => tile
                .iter()
                .enumerate()
                .map(|(slot, &v)| slot == 0 || v.abs() > eps || eps <= 0.0)
                .collect(),
            RetentionPolicy::TopK(k) => {
                let mut ranked: Vec<usize> = (1..tile.len()).collect();
                ranked.sort_by(|&a, &b| {
                    tile[b]
                        .abs()
                        .partial_cmp(&tile[a].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                let mut mask = vec![false; tile.len()];
                mask[0] = true;
                for &slot in ranked.iter().take(k) {
                    mask[slot] = true;
                }
                mask
            }
        };
        for (slot, v) in tile.iter_mut().enumerate() {
            if v.to_bits() == 0 {
                continue; // zeros are neither kept nor dropped
            }
            if keep_mask[slot] {
                report.kept += 1;
            } else {
                report.dropped += 1;
                report.dropped_sq += *v * *v;
                report.max_dropped = report.max_dropped.max(v.abs());
                *v = 0.0;
            }
        }
        report
    }

    /// Whether the policy can zero anything (`false` only for
    /// [`RetentionPolicy::Keep`] and `Threshold(0)` on non-degenerate
    /// input — a zero threshold keeps every non-zero coefficient).
    pub fn lossless(&self) -> bool {
        match self {
            RetentionPolicy::Keep => true,
            RetentionPolicy::Threshold(t) => *t <= 0.0,
            RetentionPolicy::TopK(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip_is_bit_exact() {
        let mut dense = vec![0.0; 40];
        dense[0] = 5.0;
        dense[17] = -1.25;
        dense[39] = f64::from_bits(0x8000_0000_0000_0000); // -0.0 survives
        let tile = SparseTile::from_dense(&dense);
        assert_eq!(tile.present_buckets(), 3);
        let mut back = vec![1.0; 40];
        tile.to_dense(&mut back);
        for (a, b) in dense.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zero_tile_allocates_nothing() {
        let dense = vec![0.0; 64];
        let tile = SparseTile::from_dense(&dense);
        assert!(tile.is_zero());
        assert_eq!(tile.present_buckets(), 0);
        assert_eq!(tile.get(63), 0.0);
    }

    #[test]
    fn set_add_get_match_dense_semantics() {
        let mut tile = SparseTile::new(64);
        tile.set(0, 0.0); // zero into absent bucket: no allocation
        assert_eq!(tile.present_buckets(), 0);
        tile.set(20, 3.0);
        tile.add(20, -1.0);
        tile.add(5, 2.5);
        assert_eq!(tile.get(20), 2.0);
        assert_eq!(tile.get(5), 2.5);
        assert_eq!(tile.get(21), 0.0);
        assert_eq!(tile.present_buckets(), 2);
        // Cancelling deltas leave a materialised bucket until compact.
        tile.add(5, -2.5);
        assert_eq!(tile.present_buckets(), 2);
        tile.compact();
        assert_eq!(tile.present_buckets(), 1);
        assert_eq!(tile.get(5), 0.0);
    }

    #[test]
    fn short_tile_uses_one_short_bucket() {
        let mut tile = SparseTile::new(4);
        assert_eq!(tile.num_buckets(), 1);
        assert_eq!(tile.bucket_len(0), 4);
        tile.set(3, 7.0);
        assert_eq!(tile.bucket(0), Some(&[0.0, 0.0, 0.0, 7.0][..]));
    }

    #[test]
    fn threshold_drops_small_keeps_slot0() {
        let mut tile = vec![0.001, 5.0, -0.01, 0.5, 0.0, -2.0];
        let report = RetentionPolicy::Threshold(0.75).apply(&mut tile);
        assert_eq!(tile, vec![0.001, 5.0, 0.0, 0.0, 0.0, -2.0]);
        assert_eq!(report.kept, 3); // slot 0 + 5.0 + -2.0
        assert_eq!(report.dropped, 2);
        let expect = (0.01f64 * 0.01 + 0.5 * 0.5).sqrt();
        assert!((report.l2_error() - expect).abs() < 1e-15);
        assert_eq!(report.max_dropped, 0.5);
    }

    #[test]
    fn threshold_zero_is_lossless() {
        let mut tile = vec![0.0, 1e-300, -3.0, -0.0];
        let orig = tile.clone();
        let report = RetentionPolicy::Threshold(0.0).apply(&mut tile);
        for (a, b) in tile.iter().zip(&orig) {
            assert_eq!(a.to_bits(), b.to_bits()); // -0.0 keeps its sign bit
        }
        assert_eq!(report.dropped, 0);
        assert_eq!(report.l2_error(), 0.0);
        assert!(RetentionPolicy::Threshold(0.0).lossless());
        assert!(!RetentionPolicy::Threshold(0.1).lossless());
        assert!(RetentionPolicy::Keep.lossless());
    }

    #[test]
    fn topk_keeps_largest_plus_scaling_slot() {
        let mut tile = vec![0.1, 4.0, -9.0, 2.0, -2.0, 0.0];
        let report = RetentionPolicy::TopK(2).apply(&mut tile);
        // Slot 0 always kept; the best 2 details are -9.0 and 4.0; the
        // 2.0 / -2.0 tie is irrelevant here (both dropped).
        assert_eq!(tile, vec![0.1, 4.0, -9.0, 0.0, 0.0, 0.0]);
        assert_eq!(report.kept, 3);
        assert_eq!(report.dropped, 2);
        assert_eq!(report.max_dropped, 2.0);
    }

    #[test]
    fn topk_tie_breaks_toward_lower_slot() {
        let mut tile = vec![0.0, 3.0, -3.0, 3.0];
        RetentionPolicy::TopK(2).apply(&mut tile);
        assert_eq!(tile, vec![0.0, 3.0, -3.0, 0.0]);
    }

    #[test]
    fn retention_reports_merge() {
        let mut a = RetentionReport {
            kept: 2,
            dropped: 1,
            dropped_sq: 4.0,
            max_dropped: 2.0,
        };
        let b = RetentionReport {
            kept: 1,
            dropped: 3,
            dropped_sq: 5.0,
            max_dropped: 1.5,
        };
        a.merge(&b);
        assert_eq!(a.kept, 3);
        assert_eq!(a.dropped, 4);
        assert_eq!(a.dropped_sq, 9.0);
        assert_eq!(a.max_dropped, 2.0);
        assert_eq!(a.l2_error(), 3.0);
    }
}
