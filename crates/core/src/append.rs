//! Domain expansion in the wavelet domain (Section 5.2).
//!
//! Appending past the current domain boundary requires the wavelet tree of
//! the growing axis to gain a level — the domain doubles. Expansion is
//! itself a SHIFT-SPLIT: every existing detail keeps its `(level, k)`
//! coordinates but moves to a new linear index (SHIFT of the whole old tree,
//! now the *left* subtree of the new root), while the old overall average
//! splits into the new overall average plus the new root detail, both
//! `u_old / 2` (the incoming right half is still all zeros, so
//! `u_new = (u_old + 0)/2` and `w_new = (u_old − 0)/2`).
//!
//! These in-memory routines are the reference semantics; the disk-backed
//! appender in `ss-transform` replays the same index mapping against tiled
//! storage.

use crate::layout::{Coeff1d, Layout1d};
use ss_array::{MultiIndexIter, NdArray, Shape};

/// Expands a 1-d transformed vector from `2^n` to `2^{n+1}`, the new right
/// half implicitly zero.
pub fn expand_1d(coeffs: &[f64]) -> Vec<f64> {
    let n = Layout1d::for_len(coeffs.len()).levels();
    let old = Layout1d::new(n);
    let new = Layout1d::new(n + 1);
    let mut out = vec![0.0f64; coeffs.len() * 2];
    for (i, &v) in coeffs.iter().enumerate() {
        match old.coeff_at(i) {
            Coeff1d::Scaling => {
                out[0] += v * 0.5;
                out[new.index_of(Coeff1d::Detail { level: n + 1, k: 0 })] += v * 0.5;
            }
            detail @ Coeff1d::Detail { .. } => {
                out[new.index_of(detail)] += v;
            }
        }
    }
    out
}

/// Maps an old per-axis coefficient index to its targets after expansion:
/// a detail keeps `(level, k)` (one target, factor 1); the old average
/// becomes the new average and the new top detail (two targets, factor ½).
pub fn expand_index_1d(n: u32, index: usize) -> Vec<(usize, f64)> {
    let old = Layout1d::new(n);
    let new = Layout1d::new(n + 1);
    match old.coeff_at(index) {
        Coeff1d::Scaling => vec![
            (0, 0.5),
            (new.index_of(Coeff1d::Detail { level: n + 1, k: 0 }), 0.5),
        ],
        detail @ Coeff1d::Detail { .. } => vec![(new.index_of(detail), 1.0)],
    }
}

/// Expands a standard-form transformed array by doubling `axis`; the new
/// half of the domain is implicitly zero.
pub fn expand_axis_standard(t: &NdArray<f64>, axis: usize) -> NdArray<f64> {
    let shape = t.shape().clone();
    let n = ss_array::log2_exact(shape.dim(axis));
    let mut new_dims = shape.dims().to_vec();
    new_dims[axis] *= 2;
    let mut out = NdArray::<f64>::zeros(Shape::new(&new_dims));
    let mut target = vec![0usize; shape.ndim()];
    for idx in MultiIndexIter::new(shape.dims()) {
        let v = t.get(&idx);
        if v == 0.0 {
            continue;
        }
        target.copy_from_slice(&idx);
        for (new_i, factor) in expand_index_1d(n, idx[axis]) {
            target[axis] = new_i;
            let cur = out.get(&target);
            out.set(&target, cur + v * factor);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar1d;

    #[test]
    fn expand_1d_matches_zero_padded_transform() {
        let data: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).cos() * 4.0).collect();
        let coeffs = haar1d::forward_to_vec(&data);
        let expanded = expand_1d(&coeffs);
        let mut padded = data.clone();
        padded.extend(std::iter::repeat_n(0.0, 16));
        let want = haar1d::forward_to_vec(&padded);
        for i in 0..32 {
            assert!((expanded[i] - want[i]).abs() < 1e-12, "coeff {i}");
        }
    }

    #[test]
    fn expand_then_fill_right_half_equals_direct() {
        // Expand, then SHIFT-SPLIT the new right half in: the full append
        // workflow of Section 5.2 on one axis.
        let left: Vec<f64> = (0..8).map(|i| i as f64 + 1.0).collect();
        let right: Vec<f64> = (0..8).map(|i| 10.0 - i as f64).collect();
        let mut coeffs = expand_1d(&haar1d::forward_to_vec(&left));
        crate::split::apply_chunk_1d(&mut coeffs, &haar1d::forward_to_vec(&right), 1);
        let mut full = left.clone();
        full.extend(&right);
        let want = haar1d::forward_to_vec(&full);
        for i in 0..16 {
            assert!((coeffs[i] - want[i]).abs() < 1e-12, "coeff {i}");
        }
    }

    #[test]
    fn repeated_expansion() {
        let data = vec![5.0, 3.0];
        let mut coeffs = haar1d::forward_to_vec(&data);
        coeffs = expand_1d(&coeffs);
        coeffs = expand_1d(&coeffs);
        let mut padded = data;
        padded.resize(8, 0.0);
        let want = haar1d::forward_to_vec(&padded);
        for i in 0..8 {
            assert!((coeffs[i] - want[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn expand_axis_standard_matches_zero_padded_transform() {
        let a = NdArray::from_fn(Shape::new(&[4, 8]), |idx| {
            (idx[0] * 8 + idx[1]) as f64 * 0.5 - 3.0
        });
        let t = crate::standard::forward_to(&a);
        for axis in 0..2usize {
            let expanded = expand_axis_standard(&t, axis);
            let mut dims = [4usize, 8usize];
            dims[axis] *= 2;
            let mut padded = NdArray::<f64>::zeros(Shape::new(&dims));
            padded.insert(&[0, 0], &a);
            let want = crate::standard::forward_to(&padded);
            assert!(
                expanded.max_abs_diff(&want) < 1e-9,
                "axis {axis}: diff {}",
                expanded.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn expansion_preserves_reconstruction() {
        let data: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let expanded = expand_1d(&haar1d::forward_to_vec(&data));
        let back = haar1d::inverse_to_vec(&expanded);
        for i in 0..8 {
            assert!((back[i] - data[i]).abs() < 1e-9);
        }
        for i in 8..16 {
            assert!(back[i].abs() < 1e-9, "right half must be zero");
        }
    }
}
