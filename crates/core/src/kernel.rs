//! The element-wise compute kernels behind every hot loop in the
//! workspace — one scalar implementation, one lane-generic
//! [`std::simd`] implementation, selected at **build time** by the
//! `simd` cargo feature.
//!
//! # Why a kernel layer
//!
//! The Haar cascade is an O(N) butterfly: every level applies the same
//! unnormalised average/difference pair `u = (a + b)/2`, `w = (a − b)/2`
//! to independent element pairs, and the separable multidimensional
//! forms apply that pair across whole *panels* of adjacent lines (see
//! [`crate::standard`]). Those panels have unit-stride inner loops by
//! construction, which is exactly the shape `std::simd` vectorises.
//! Centralising the arithmetic here means `haar1d`, both
//! multidimensional transforms, reconstruction and the maintenance
//! engine's flush apply all pick up the vector build from one place —
//! and that the scalar/SIMD equivalence argument has one paragraph to
//! live in (docs/ERROR_MODEL.md §"Kernel equivalence").
//!
//! # Exactness
//!
//! Every function in this module performs the **same IEEE-754
//! operations in the same per-element order** in both builds: the SIMD
//! paths only regroup independent elements into lanes (additions never
//! reassociate across elements) and the lane tails fall back to the
//! scalar loop. Results are therefore **bit-identical** between the
//! scalar and SIMD builds, for every lane width — the property the
//! cross-build proptests in `haar1d`, `standard` and `nonstandard`
//! pin down.
//!
//! # Build selection
//!
//! The `simd` feature requires a nightly toolchain (`portable_simd`).
//! The default build is dependency-free stable Rust; [`name`] and
//! [`lanes`] report which kernel a binary was built with so CLIs and
//! experiment harnesses can label their output.

#[cfg(feature = "simd")]
use std::simd::{cmp::SimdPartialEq, Select, Simd};

/// Default lane width of the SIMD build: `f64x8` spans one AVX-512
/// register and lowers to two fused AVX2 ops elsewhere — measurably
/// better than `f64x4` on both, and exact either way.
#[cfg(feature = "simd")]
pub const LANES: usize = 8;

/// Which kernel this build runs: `"simd"` or `"scalar"`.
pub const fn name() -> &'static str {
    if cfg!(feature = "simd") {
        "simd"
    } else {
        "scalar"
    }
}

/// Lane width of the active kernel (1 for the scalar build).
pub const fn lanes() -> usize {
    #[cfg(feature = "simd")]
    {
        LANES
    }
    #[cfg(not(feature = "simd"))]
    {
        1
    }
}

// ---------------------------------------------------------------------
// Contiguous (interleaved-pair) butterfly levels — the 1-d cascade.
// ---------------------------------------------------------------------

/// One forward Haar level over a contiguous line: reads the pairs
/// `data[2k], data[2k+1]` for `k < half`, writes averages into
/// `data[..half]` and details into `detail[..half]`.
///
/// Writing average `k` is safe while later pairs are still unread:
/// `k < 2k' + 1` for every unprocessed pair `k' >= k`.
pub fn forward_level_scalar(data: &mut [f64], detail: &mut [f64], half: usize) {
    for k in 0..half {
        let a = data[2 * k];
        let b = data[2 * k + 1];
        data[k] = (a + b) * 0.5;
        detail[k] = (a - b) * 0.5;
    }
}

/// Lane-generic SIMD variant of [`forward_level_scalar`]; the tail that
/// does not fill a register runs the scalar loop.
#[cfg(feature = "simd")]
pub fn forward_level_lanes<const L: usize>(data: &mut [f64], detail: &mut [f64], half: usize) {
    let scale = Simd::<f64, L>::splat(0.5);
    let mut k = 0;
    while k + L <= half {
        // 2·L interleaved inputs -> L averages + L details. Both input
        // registers are loaded before the (potentially overlapping at
        // k = 0) average store.
        let x = Simd::<f64, L>::from_slice(&data[2 * k..2 * k + L]);
        let y = Simd::<f64, L>::from_slice(&data[2 * k + L..2 * k + 2 * L]);
        let (a, b) = x.deinterleave(y);
        ((a + b) * scale).copy_to_slice(&mut data[k..k + L]);
        ((a - b) * scale).copy_to_slice(&mut detail[k..k + L]);
        k += L;
    }
    for k in k..half {
        let a = data[2 * k];
        let b = data[2 * k + 1];
        data[k] = (a + b) * 0.5;
        detail[k] = (a - b) * 0.5;
    }
}

/// One forward level through the active kernel.
pub fn forward_level(data: &mut [f64], detail: &mut [f64], half: usize) {
    #[cfg(feature = "simd")]
    forward_level_lanes::<LANES>(data, detail, half);
    #[cfg(not(feature = "simd"))]
    forward_level_scalar(data, detail, half);
}

/// One inverse Haar level over a contiguous line: reads averages
/// `data[k]` and details `data[width + k]` for `k < width`, writes the
/// reconstructed interleaved pairs into `out[..2 * width]`. `data` and
/// `out` must not alias (the cascade hands in its scratch buffer).
pub fn inverse_level_scalar(data: &[f64], out: &mut [f64], width: usize) {
    for k in 0..width {
        let u = data[k];
        let w = data[width + k];
        out[2 * k] = u + w;
        out[2 * k + 1] = u - w;
    }
}

/// Lane-generic SIMD variant of [`inverse_level_scalar`].
#[cfg(feature = "simd")]
pub fn inverse_level_lanes<const L: usize>(data: &[f64], out: &mut [f64], width: usize) {
    let mut k = 0;
    while k + L <= width {
        let u = Simd::<f64, L>::from_slice(&data[k..k + L]);
        let w = Simd::<f64, L>::from_slice(&data[width + k..width + k + L]);
        let (lo, hi) = (u + w).interleave(u - w);
        lo.copy_to_slice(&mut out[2 * k..2 * k + L]);
        hi.copy_to_slice(&mut out[2 * k + L..2 * k + 2 * L]);
        k += L;
    }
    for k in k..width {
        let u = data[k];
        let w = data[width + k];
        out[2 * k] = u + w;
        out[2 * k + 1] = u - w;
    }
}

/// One inverse level through the active kernel.
pub fn inverse_level(data: &[f64], out: &mut [f64], width: usize) {
    #[cfg(feature = "simd")]
    inverse_level_lanes::<LANES>(data, out, width);
    #[cfg(not(feature = "simd"))]
    inverse_level_scalar(data, out, width);
}

// ---------------------------------------------------------------------
// Panel (strided-axis) butterfly levels — the multidimensional passes.
// ---------------------------------------------------------------------

/// Panel forward step: `data[dst + j] = (data[a0 + j] + data[b0 + j]) / 2`
/// and `diff[j] = (data[a0 + j] - data[b0 + j]) / 2` for `j < len`.
///
/// Offsets address one backing slice because the destination row *may*
/// alias the `a0` source row (the cascade writes average row `k` over
/// source row `2k` when `k == 0`); every element is loaded before its
/// store, so the aliasing is benign in both builds.
pub fn avg_diff_panel_scalar(
    data: &mut [f64],
    a0: usize,
    b0: usize,
    dst: usize,
    diff: &mut [f64],
    len: usize,
) {
    for j in 0..len {
        let a = data[a0 + j];
        let b = data[b0 + j];
        data[dst + j] = (a + b) * 0.5;
        diff[j] = (a - b) * 0.5;
    }
}

/// Lane-generic SIMD variant of [`avg_diff_panel_scalar`].
#[cfg(feature = "simd")]
pub fn avg_diff_panel_lanes<const L: usize>(
    data: &mut [f64],
    a0: usize,
    b0: usize,
    dst: usize,
    diff: &mut [f64],
    len: usize,
) {
    let scale = Simd::<f64, L>::splat(0.5);
    let mut j = 0;
    while j + L <= len {
        let a = Simd::<f64, L>::from_slice(&data[a0 + j..a0 + j + L]);
        let b = Simd::<f64, L>::from_slice(&data[b0 + j..b0 + j + L]);
        ((a + b) * scale).copy_to_slice(&mut data[dst + j..dst + j + L]);
        ((a - b) * scale).copy_to_slice(&mut diff[j..j + L]);
        j += L;
    }
    for j in j..len {
        let a = data[a0 + j];
        let b = data[b0 + j];
        data[dst + j] = (a + b) * 0.5;
        diff[j] = (a - b) * 0.5;
    }
}

/// Panel forward step through the active kernel.
pub fn avg_diff_panel(
    data: &mut [f64],
    a0: usize,
    b0: usize,
    dst: usize,
    diff: &mut [f64],
    len: usize,
) {
    #[cfg(feature = "simd")]
    avg_diff_panel_lanes::<LANES>(data, a0, b0, dst, diff, len);
    #[cfg(not(feature = "simd"))]
    avg_diff_panel_scalar(data, a0, b0, dst, diff, len);
}

/// Panel inverse step: `sum[j] = u[j] + w[j]`, `diff[j] = u[j] - w[j]`.
/// All four slices are disjoint (the cascade writes into scratch rows).
pub fn add_sub_rows_scalar(u: &[f64], w: &[f64], sum: &mut [f64], diff: &mut [f64]) {
    for j in 0..u.len() {
        sum[j] = u[j] + w[j];
        diff[j] = u[j] - w[j];
    }
}

/// Lane-generic SIMD variant of [`add_sub_rows_scalar`].
#[cfg(feature = "simd")]
pub fn add_sub_rows_lanes<const L: usize>(u: &[f64], w: &[f64], sum: &mut [f64], diff: &mut [f64]) {
    let len = u.len();
    let mut j = 0;
    while j + L <= len {
        let a = Simd::<f64, L>::from_slice(&u[j..j + L]);
        let b = Simd::<f64, L>::from_slice(&w[j..j + L]);
        (a + b).copy_to_slice(&mut sum[j..j + L]);
        (a - b).copy_to_slice(&mut diff[j..j + L]);
        j += L;
    }
    for j in j..len {
        sum[j] = u[j] + w[j];
        diff[j] = u[j] - w[j];
    }
}

/// Panel inverse step through the active kernel.
pub fn add_sub_rows(u: &[f64], w: &[f64], sum: &mut [f64], diff: &mut [f64]) {
    #[cfg(feature = "simd")]
    add_sub_rows_lanes::<LANES>(u, w, sum, diff);
    #[cfg(not(feature = "simd"))]
    add_sub_rows_scalar(u, w, sum, diff);
}

// ---------------------------------------------------------------------
// Dense delta application — the maintenance flush inner loop.
// ---------------------------------------------------------------------

/// Adds a dense per-slot delta vector into a block, touching **only**
/// slots whose delta is non-zero: `blk[j] += delta[j]` where
/// `delta[j] != 0.0`.
///
/// The skip is semantic, not an optimisation: an unconditional
/// `blk[j] += 0.0` would rewrite a stored `-0.0` coefficient to `+0.0`,
/// breaking the bit-identity contract of the exact flush path
/// (docs/ERROR_MODEL.md). The SIMD build keeps the contract with a
/// lane mask instead of a branch.
pub fn masked_add_scalar(blk: &mut [f64], delta: &[f64]) {
    for (b, &d) in blk.iter_mut().zip(delta) {
        if d != 0.0 {
            *b += d;
        }
    }
}

/// Lane-generic SIMD variant of [`masked_add_scalar`].
#[cfg(feature = "simd")]
pub fn masked_add_lanes<const L: usize>(blk: &mut [f64], delta: &[f64]) {
    let zero = Simd::<f64, L>::splat(0.0);
    let len = blk.len().min(delta.len());
    let mut j = 0;
    while j + L <= len {
        let d = Simd::<f64, L>::from_slice(&delta[j..j + L]);
        let b = Simd::<f64, L>::from_slice(&blk[j..j + L]);
        let touched = d.simd_ne(zero);
        touched.select(b + d, b).copy_to_slice(&mut blk[j..j + L]);
        j += L;
    }
    for j in j..len {
        if delta[j] != 0.0 {
            blk[j] += delta[j];
        }
    }
}

/// Dense delta application through the active kernel.
pub fn masked_add(blk: &mut [f64], delta: &[f64]) {
    #[cfg(feature = "simd")]
    masked_add_lanes::<LANES>(blk, delta);
    #[cfg(not(feature = "simd"))]
    masked_add_scalar(blk, delta);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) * 17.0 - 8.5
            })
            .collect()
    }

    #[test]
    fn forward_then_inverse_level_roundtrips() {
        for half in [1usize, 3, 7, 8, 16, 33] {
            let orig = sample(2 * half, 42 + half as u64);
            let mut data = orig.clone();
            let mut detail = vec![0.0; half];
            forward_level(&mut data, &mut detail, half);
            data[half..2 * half].copy_from_slice(&detail);
            let mut out = vec![0.0; 2 * half];
            inverse_level(&data, &mut out, half);
            for (a, b) in orig.iter().zip(&out) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn panel_steps_match_contiguous_steps() {
        let len = 37usize;
        let a = sample(len, 1);
        let b = sample(len, 2);
        // Panel forward vs direct formula.
        let mut data = [a.clone(), b.clone()].concat();
        let mut diff = vec![0.0; len];
        avg_diff_panel(&mut data, 0, len, 0, &mut diff, len);
        for j in 0..len {
            assert_eq!(data[j].to_bits(), ((a[j] + b[j]) * 0.5).to_bits());
            assert_eq!(diff[j].to_bits(), ((a[j] - b[j]) * 0.5).to_bits());
        }
        // Panel inverse vs direct formula.
        let (mut sum, mut d2) = (vec![0.0; len], vec![0.0; len]);
        add_sub_rows(&a, &b, &mut sum, &mut d2);
        for j in 0..len {
            assert_eq!(sum[j].to_bits(), (a[j] + b[j]).to_bits());
            assert_eq!(d2[j].to_bits(), (a[j] - b[j]).to_bits());
        }
    }

    #[test]
    fn masked_add_skips_zero_deltas_bitwise() {
        let mut blk = vec![-0.0f64, 1.5, -0.0, 2.5, -3.5, -0.0, 0.0, 4.0, -0.0];
        let mut delta = vec![0.0f64; blk.len()];
        delta[1] = 0.5;
        delta[4] = -1.0;
        let before = blk.clone();
        masked_add(&mut blk, &delta);
        for j in 0..blk.len() {
            let want = if delta[j] != 0.0 {
                before[j] + delta[j]
            } else {
                before[j] // bitwise: -0.0 stays -0.0
            };
            assert_eq!(blk[j].to_bits(), want.to_bits(), "slot {j}");
        }
    }

    #[cfg(feature = "simd")]
    #[test]
    fn lane_widths_agree_bitwise() {
        for half in [5usize, 16, 40, 128] {
            let orig = sample(2 * half, half as u64);
            let run = |f: &dyn Fn(&mut [f64], &mut [f64], usize)| {
                let mut d = orig.clone();
                let mut det = vec![0.0; half];
                f(&mut d, &mut det, half);
                (d, det)
            };
            let want = run(&forward_level_scalar);
            for (d, det) in [
                run(&forward_level_lanes::<2>),
                run(&forward_level_lanes::<4>),
                run(&forward_level_lanes::<8>),
            ] {
                assert_eq!(
                    d.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.0.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
                assert_eq!(
                    det.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }
}
