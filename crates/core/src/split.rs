//! The **SPLIT** operation (Section 4 of the paper) and the combined
//! SHIFT-SPLIT delta streams.
//!
//! SPLIT distributes a chunk's average `u^b_{m,k}` over the `n − m`
//! coefficients on the path from `w^a_{m,k}` to the root, plus the overall
//! average:
//!
//! ```text
//! δw^a_{j, k≫(j−m)} = ±u / 2^{j−m}     for j ∈ [m+1, n]
//! δu^a_{n,0}        =  u / 2^{n−m}
//! ```
//!
//! The sign is **negative iff bit `(j−m−1)` of `k` is 1** — i.e. iff the
//! chunk lies in the *right* half of the support of the receiving
//! coefficient. (The transcription of the paper states "positive iff
//! `k mod 2^{j−m}` is even", which fails for `k = 2, j−m = 2`; the rule here
//! is verified against direct transforms by the tests below and by property
//! tests.)
//!
//! The functions in this module produce `(index, delta)` streams so callers
//! can fold them into any representation (in-memory arrays here; tiled disk
//! stores in `ss-storage`). [`standard_deltas`] and [`nonstandard_deltas`]
//! combine SHIFT and SPLIT to emit *all* updates a transformed chunk implies
//! for the global transform — the primitive behind out-of-core
//! transformation (Section 5.1), batch updates (Example 2) and appending
//! (Section 5.2).

use crate::layout::{Coeff1d, Layout1d};
use crate::nonstandard::NsCoeff;
use ss_array::{MultiIndexIter, NdArray};

/// One SPLIT contribution target along a single axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitTarget {
    /// Linear index of the receiving coefficient in the global 1-d layout.
    pub index: usize,
    /// Multiplier applied to the chunk average (`±1/2^{j−m}`, or
    /// `1/2^{n−m}` for the overall average).
    pub factor: f64,
}

/// The SPLIT targets of a chunk average in one dimension: `n − m` path
/// details plus the overall average (`n − m + 1` entries).
///
/// * `n` — global domain `2^n`;
/// * `m` — chunk length `2^m`;
/// * `block` — the chunk is the `(block+1)`-th dyadic range.
pub fn split_targets_1d(n: u32, m: u32, block: usize) -> Vec<SplitTarget> {
    debug_assert!(m <= n);
    debug_assert!(block < (1usize << (n - m)));
    let layout = Layout1d::new(n);
    let mut out = Vec::with_capacity((n - m) as usize + 1);
    for j in (m + 1)..=n {
        let shift = j - m;
        let k = block >> shift;
        let sign = if (block >> (shift - 1)) & 1 == 1 {
            -1.0
        } else {
            1.0
        };
        out.push(SplitTarget {
            index: layout.index_of(Coeff1d::Detail { level: j, k }),
            factor: sign / (1u64 << shift) as f64,
        });
    }
    out.push(SplitTarget {
        index: 0,
        factor: 1.0 / (1u64 << (n - m)) as f64,
    });
    out
}

/// Per-axis target list for the standard multidimensional SHIFT-SPLIT: a
/// detail component re-indexes to one target with factor 1, an average
/// component (local index 0) splits along that axis.
fn axis_targets(n: u32, m: u32, block: usize, local: usize) -> Vec<SplitTarget> {
    if local == 0 {
        split_targets_1d(n, m, block)
    } else {
        vec![SplitTarget {
            index: crate::shift::shift_index_1d(n, m, block, local),
            factor: 1.0,
        }]
    }
}

/// Emits every global update implied by a **standard-form** transformed
/// chunk: for each chunk coefficient, the cross product of per-axis SHIFT or
/// SPLIT targets (Section 4.1).
///
/// `chunk_t` must already be standard-form transformed; its shape gives the
/// per-axis `m[t]`. The callback receives `(global tuple index, delta)`;
/// deltas **add** onto the global transform (which lets the same routine
/// serve both initial transformation of empty regions and batch updates).
///
/// Zero chunk coefficients are skipped, so sparse chunks cost
/// proportionally less.
pub fn standard_deltas(
    chunk_t: &NdArray<f64>,
    n: &[u32],
    block: &[usize],
    mut emit: impl FnMut(&[usize], f64),
) {
    let d = chunk_t.shape().ndim();
    assert_eq!(n.len(), d);
    assert_eq!(block.len(), d);
    let m: Vec<u32> = chunk_t.shape().levels();
    for (t, (&mt, &nt)) in m.iter().zip(n).enumerate() {
        assert!(mt <= nt, "chunk axis {t} larger than domain ({mt} > {nt})");
    }
    // Precompute the target list of every (axis, local index) pair once per
    // chunk; the per-coefficient loop below then only walks cross products.
    // This keeps the hot path allocation-free.
    let tables: Vec<Vec<Vec<SplitTarget>>> = (0..d)
        .map(|t| {
            (0..(1usize << m[t]))
                .map(|local| axis_targets(n[t], m[t], block[t], local))
                .collect()
        })
        .collect();
    let mut global = vec![0usize; d];
    let mut counts = vec![0usize; d];
    let mut choice = vec![0usize; d];
    for local in MultiIndexIter::new(chunk_t.shape().dims()) {
        let v = chunk_t.get(&local);
        if v == 0.0 {
            continue;
        }
        for t in 0..d {
            counts[t] = tables[t][local[t]].len();
            choice[t] = 0;
        }
        // Odometer over the cross product of per-axis targets.
        'coeff: loop {
            let mut factor = 1.0;
            for t in 0..d {
                let target = tables[t][local[t]][choice[t]];
                global[t] = target.index;
                factor *= target.factor;
            }
            emit(&global, v * factor);
            let mut axis = d;
            loop {
                if axis == 0 {
                    break 'coeff;
                }
                axis -= 1;
                choice[axis] += 1;
                if choice[axis] < counts[axis] {
                    break;
                }
                choice[axis] = 0;
            }
        }
    }
}

/// Emits every global update implied by a **non-standard-form** transformed
/// cubic chunk (Section 4.1).
///
/// All `M^d − 1` chunk details SHIFT (factor 1); the single chunk average
/// SPLITs into `(2^d − 1)(n − m)` subband contributions plus the overall
/// average. Signs per subband: negative for each differenced axis whose
/// block coordinate falls in the right half at that level; magnitudes are
/// `1/2^{d(j−m)}`.
pub fn nonstandard_deltas(
    chunk_t: &NdArray<f64>,
    n: u32,
    block: &[usize],
    mut emit: impl FnMut(&[usize], f64),
) {
    let (d, m) = crate::nonstandard::cube_levels(chunk_t.shape());
    assert_eq!(block.len(), d);
    assert!(m <= n);
    // SHIFT all details.
    for local in MultiIndexIter::new(chunk_t.shape().dims()) {
        if local.iter().all(|&i| i == 0) {
            continue;
        }
        let v = chunk_t.get(&local);
        if v == 0.0 {
            continue;
        }
        let g = crate::shift::shift_index_nonstandard(n, m, block, &local);
        emit(&g, v);
    }
    // SPLIT the average.
    let avg = chunk_t.get(&vec![0usize; d]);
    if avg == 0.0 {
        return;
    }
    for j in (m + 1)..=n {
        let shift = j - m;
        let node: Vec<usize> = block.iter().map(|&b| b >> shift).collect();
        let magnitude = 1.0 / (2.0f64).powi((d as u32 * shift) as i32);
        for eps in 1usize..(1usize << d) {
            let mut sign = 1.0;
            let mut subband = Vec::with_capacity(d);
            for (t, &b) in block.iter().enumerate() {
                let e = (eps >> (d - 1 - t)) & 1 == 1;
                subband.push(e);
                if e && (b >> (shift - 1)) & 1 == 1 {
                    sign = -sign;
                }
            }
            let coeff = NsCoeff::Detail {
                level: j,
                node: node.clone(),
                subband,
            };
            let g = crate::nonstandard::index_of(n, &coeff);
            emit(&g, avg * sign * magnitude);
        }
    }
    let g = vec![0usize; d];
    emit(&g, avg / (2.0f64).powi((d as u32 * (n - m)) as i32));
}

/// Convenience: applies a 1-d chunk transform to a global transformed vector
/// via SHIFT-SPLIT (Examples 1 and 2 of the paper). `global` accumulates.
///
/// ```
/// use ss_core::{haar1d, split};
///
/// // Transform a 16-value vector four values at a time.
/// let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
/// let mut acc = vec![0.0; 16];
/// for block in 0..4 {
///     let chunk = haar1d::forward_to_vec(&data[block * 4..(block + 1) * 4]);
///     split::apply_chunk_1d(&mut acc, &chunk, block);
/// }
/// assert_eq!(acc, haar1d::forward_to_vec(&data));
/// ```
pub fn apply_chunk_1d(global: &mut [f64], chunk_t: &[f64], block: usize) {
    let n = Layout1d::for_len(global.len()).levels();
    let m = Layout1d::for_len(chunk_t.len()).levels();
    assert!(m <= n);
    for (local, &v) in chunk_t.iter().enumerate().skip(1) {
        if v != 0.0 {
            global[crate::shift::shift_index_1d(n, m, block, local)] += v;
        }
    }
    let avg = chunk_t[0];
    if avg != 0.0 {
        for t in split_targets_1d(n, m, block) {
            global[t.index] += avg * t.factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar1d;
    use ss_array::Shape;

    #[test]
    fn paper_counterexample_sign() {
        // N=8, m=1, k=2: the level-3 contribution must be negative although
        // `2 mod 4` is even (see DESIGN.md, Corrections).
        let targets = split_targets_1d(3, 1, 2);
        // j=2 target: index of w_{2,1}=3, factor +1/2.
        assert_eq!(
            targets[0],
            SplitTarget {
                index: 3,
                factor: 0.5
            }
        );
        // j=3 target: index of w_{3,0}=1, factor -1/4.
        assert_eq!(
            targets[1],
            SplitTarget {
                index: 1,
                factor: -0.25
            }
        );
        // average: index 0, factor 1/4.
        assert_eq!(
            targets[2],
            SplitTarget {
                index: 0,
                factor: 0.25
            }
        );
    }

    #[test]
    fn split_reconstructs_embedded_transform_1d() {
        // Example 1 of the paper: transform of a vector that is zero outside
        // one dyadic block, assembled purely by SHIFT-SPLIT.
        let (n, m) = (6u32, 3u32);
        for block in 0..(1usize << (n - m)) {
            let chunk: Vec<f64> = (0..8).map(|i| ((i * 3 + block) % 5) as f64 + 1.0).collect();
            let chunk_t = haar1d::forward_to_vec(&chunk);
            let mut via_ss = vec![0.0f64; 64];
            apply_chunk_1d(&mut via_ss, &chunk_t, block);
            let mut direct = vec![0.0f64; 64];
            direct[block * 8..(block + 1) * 8].copy_from_slice(&chunk);
            let direct_t = haar1d::forward_to_vec(&direct);
            for i in 0..64 {
                assert!(
                    (via_ss[i] - direct_t[i]).abs() < 1e-12,
                    "block {block}, coeff {i}: {} vs {}",
                    via_ss[i],
                    direct_t[i]
                );
            }
        }
    }

    #[test]
    fn chunked_transform_equals_direct_1d() {
        // Transform 64 values by 8-value chunks, purely with SHIFT-SPLIT.
        let data: Vec<f64> = (0..64).map(|i| ((i * 7) % 23) as f64 - 11.0).collect();
        let mut acc = vec![0.0f64; 64];
        for block in 0..8 {
            let chunk_t = haar1d::forward_to_vec(&data[block * 8..(block + 1) * 8]);
            apply_chunk_1d(&mut acc, &chunk_t, block);
        }
        let direct = haar1d::forward_to_vec(&data);
        for i in 0..64 {
            assert!((acc[i] - direct[i]).abs() < 1e-12, "coeff {i}");
        }
    }

    #[test]
    fn batch_update_equals_recompute_1d() {
        // Example 2: updates to a dyadic region applied in the wavelet
        // domain.
        let base: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let mut coeffs = haar1d::forward_to_vec(&base);
        let updates: Vec<f64> = (0..8).map(|i| (i as f64) * 0.5 - 2.0).collect();
        let block = 2; // positions 16..24
        apply_chunk_1d(&mut coeffs, &haar1d::forward_to_vec(&updates), block);
        let mut updated = base;
        for (i, u) in updates.iter().enumerate() {
            updated[16 + i] += u;
        }
        let want = haar1d::forward_to_vec(&updated);
        for i in 0..32 {
            assert!((coeffs[i] - want[i]).abs() < 1e-12, "coeff {i}");
        }
    }

    #[test]
    fn split_target_count_is_path_length() {
        let t = split_targets_1d(10, 4, 17);
        assert_eq!(t.len(), (10 - 4) + 1);
    }

    #[test]
    fn standard_2d_chunked_transform_equals_direct() {
        let shape = Shape::cube(2, 16);
        let data = NdArray::from_fn(shape.clone(), |idx| {
            ((idx[0] * 31 + idx[1] * 17) % 11) as f64 - 3.0
        });
        let n = [4u32, 4u32];
        let mut acc = NdArray::<f64>::zeros(shape.clone());
        for bi in 0..4usize {
            for bj in 0..4usize {
                let chunk = data.extract(&[bi * 4, bj * 4], &[4, 4]);
                let chunk_t = crate::standard::forward_to(&chunk);
                standard_deltas(&chunk_t, &n, &[bi, bj], |idx, delta| {
                    let v = acc.get(idx);
                    acc.set(idx, v + delta);
                });
            }
        }
        let direct = crate::standard::forward_to(&data);
        assert!(
            acc.max_abs_diff(&direct) < 1e-9,
            "max diff {}",
            acc.max_abs_diff(&direct)
        );
    }

    #[test]
    fn standard_rectangular_chunks_and_domain() {
        // 8x32 domain, 4x8 chunks.
        let shape = Shape::new(&[8, 32]);
        let data = NdArray::from_fn(shape.clone(), |idx| {
            (idx[0] as f64 * 1.5 - idx[1] as f64 * 0.25).cos() * 9.0
        });
        let n = [3u32, 5u32];
        let mut acc = NdArray::<f64>::zeros(shape.clone());
        for bi in 0..2usize {
            for bj in 0..4usize {
                let chunk = data.extract(&[bi * 4, bj * 8], &[4, 8]);
                let chunk_t = crate::standard::forward_to(&chunk);
                standard_deltas(&chunk_t, &n, &[bi, bj], |idx, delta| {
                    let v = acc.get(idx);
                    acc.set(idx, v + delta);
                });
            }
        }
        let direct = crate::standard::forward_to(&data);
        assert!(acc.max_abs_diff(&direct) < 1e-9);
    }

    #[test]
    fn nonstandard_2d_chunked_transform_equals_direct() {
        let shape = Shape::cube(2, 16);
        let data = NdArray::from_fn(shape.clone(), |idx| {
            ((idx[0] * 13 + idx[1] * 7) % 19) as f64 * 0.5
        });
        let mut acc = NdArray::<f64>::zeros(shape.clone());
        for bi in 0..4usize {
            for bj in 0..4usize {
                let chunk = data.extract(&[bi * 4, bj * 4], &[4, 4]);
                let chunk_t = crate::nonstandard::forward_to(&chunk);
                nonstandard_deltas(&chunk_t, 4, &[bi, bj], |idx, delta| {
                    let v = acc.get(idx);
                    acc.set(idx, v + delta);
                });
            }
        }
        let direct = crate::nonstandard::forward_to(&data);
        assert!(
            acc.max_abs_diff(&direct) < 1e-9,
            "max diff {}",
            acc.max_abs_diff(&direct)
        );
    }

    #[test]
    fn nonstandard_3d_chunked_transform_equals_direct() {
        let shape = Shape::cube(3, 8);
        let data = NdArray::from_fn(shape.clone(), |idx| {
            (idx[0] + 2 * idx[1] + 3 * idx[2]) as f64 % 5.0 - 2.0
        });
        let mut acc = NdArray::<f64>::zeros(shape.clone());
        for b in ss_array::MultiIndexIter::new(&[4, 4, 4]) {
            let chunk = data.extract(&[b[0] * 2, b[1] * 2, b[2] * 2], &[2, 2, 2]);
            let chunk_t = crate::nonstandard::forward_to(&chunk);
            nonstandard_deltas(&chunk_t, 3, &b, |idx, delta| {
                let v = acc.get(idx);
                acc.set(idx, v + delta);
            });
        }
        let direct = crate::nonstandard::forward_to(&data);
        assert!(acc.max_abs_diff(&direct) < 1e-9);
    }

    #[test]
    fn delta_counts_match_section_4_1() {
        // Standard: SHIFT affects (M−1)^d, SPLIT (M+n−m)^d − (M−1)^d.
        let (n, m, d) = (5u32, 2u32, 2usize);
        let chunk = NdArray::from_fn(Shape::cube(d, 1 << m), |_| 1.0);
        // all-ones transformed chunk: every coefficient nonzero only at the
        // average; use a chunk with all coefficients nonzero instead.
        let chunk_t = NdArray::from_fn(Shape::cube(d, 1 << m), |_| 1.0);
        let _ = chunk;
        let mut shifts = 0usize;
        let mut total = 0usize;
        standard_deltas(&chunk_t, &[n; 2], &[0, 0], |_, _| total += 1);
        // count pure shifts: all-detail tuples
        let m_sz = 1usize << m;
        shifts += (m_sz - 1).pow(d as u32);
        let expect_total = (m_sz + (n - m) as usize).pow(d as u32);
        assert_eq!(total, expect_total);
        assert!(shifts < total);

        // Non-standard: M^d − 1 shifts + (2^d−1)(n−m) + 1 split contributions.
        let mut total_ns = 0usize;
        nonstandard_deltas(&chunk_t, n, &[0, 0], |_, _| total_ns += 1);
        let expect_ns = (m_sz.pow(d as u32) - 1) + ((1 << d) - 1) * (n - m) as usize + 1;
        assert_eq!(total_ns, expect_ns);
    }
}
