//! Coefficient-to-disk-block allocation (Section 3 of the paper).
//!
//! Queries on wavelet data always retrieve root paths, so a good block
//! allocation packs coefficients with *overlapping support* together. The
//! paper's strategy partitions the wavelet tree into complete subtree
//! **tiles** of height `b` (block side `B = 2^b`): each tile holds `2^b − 1`
//! detail coefficients plus the redundant scaling coefficient of the subtree
//! root in slot 0 — exactly `B` coefficients per disk block, and any root
//! path crosses only `≈ log_B N` tiles.
//!
//! Three concrete maps implement the [`TilingMap`] interface over tuple
//! indices:
//!
//! * [`Tiling1d`] / per-axis [`AxisTiling`] — binary-subtree tiles
//!   (Figure 4),
//! * [`StandardTiling`] — the cross product of per-axis tilings; blocks hold
//!   `Π B_t` coefficients (Section 3.2),
//! * [`NonStandardTiling`] — quad-tree subtree tiles; blocks hold `B^d`
//!   coefficients (Figure 7),
//! * [`NaiveMap`] — the row-major baseline the paper's tiling is compared
//!   against.
//!
//! When the tree height is not a multiple of `b`, the *top* band is shortened
//! (a single partially-filled tile) rather than the bottom one (which would
//! leave `Θ(N/B)` partially-filled tiles).

use crate::layout::{Coeff1d, Layout1d};
use crate::nonstandard::NsCoeff;
use ss_array::Shape;

/// Location of a coefficient inside block storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TileSlot {
    /// Tile ordinal in `[0, num_tiles)`; one tile per disk block.
    pub tile: usize,
    /// Slot within the tile, `< block_capacity`.
    pub slot: usize,
}

/// A map from coefficient tuple indices to `(tile, slot)` locations.
///
/// Maps are immutable layout descriptors shared freely across worker
/// threads (the parallel transform drivers call `locate` concurrently),
/// hence the `Send + Sync` supertraits.
pub trait TilingMap: Send + Sync {
    /// Dimensionality of coefficient indices.
    fn ndim(&self) -> usize;
    /// Coefficients per disk block.
    fn block_capacity(&self) -> usize;
    /// Total number of tiles.
    fn num_tiles(&self) -> usize;
    /// Locates a coefficient.
    fn locate(&self, idx: &[usize]) -> TileSlot;
}

/// Band decomposition shared by the 1-d and quad-tree tilings: levels are
/// grouped top-down into bands of height `b` (the top band may be shorter).
#[derive(Clone, Debug)]
struct Bands {
    /// Per band: level of the subtree roots (top level of the band).
    top_level: Vec<u32>,
    /// Per band: height (number of levels).
    height: Vec<u32>,
}

impl Bands {
    fn new(n: u32, b: u32) -> Self {
        assert!(b >= 1, "tile height must be at least 1");
        let mut top_level = Vec::new();
        let mut height = Vec::new();
        if n == 0 {
            // Degenerate single-value domain: one band holding only the
            // scaling coefficient.
            top_level.push(0);
            height.push(0);
            return Bands { top_level, height };
        }
        let r = n % b;
        let mut j_top = n;
        let mut remaining = n;
        let first = if r == 0 { b } else { r };
        let mut h = first;
        while remaining > 0 {
            top_level.push(j_top);
            height.push(h);
            remaining -= h;
            j_top -= h;
            h = b.min(remaining.max(1));
        }
        Bands { top_level, height }
    }

    /// Band index containing a detail of level `j` (`1 ..= n`).
    fn band_of_level(&self, j: u32) -> usize {
        // Bands are ordered by decreasing top_level; find the band whose
        // range [top_level − height + 1, top_level] contains j.
        for (i, (&top, &h)) in self.top_level.iter().zip(&self.height).enumerate() {
            if j <= top && j + h > top {
                return i;
            }
        }
        panic!("level {j} outside all bands");
    }
}

/// Subtree tiling of a single axis (the 1-d strategy of Figure 4).
#[derive(Clone, Debug)]
pub struct AxisTiling {
    n: u32,
    b: u32,
    bands: Bands,
    /// Tile-ordinal base per band.
    band_base: Vec<usize>,
    num_tiles: usize,
}

impl AxisTiling {
    /// Tiling of a `2^n` domain with per-axis block side `B = 2^b`.
    pub fn new(n: u32, b: u32) -> Self {
        let bands = Bands::new(n, b);
        let mut band_base = Vec::with_capacity(bands.top_level.len());
        let mut acc = 0usize;
        for (&top, _h) in bands.top_level.iter().zip(&bands.height) {
            band_base.push(acc);
            acc += 1usize << (n - top);
        }
        AxisTiling {
            n,
            b,
            bands,
            band_base,
            num_tiles: acc,
        }
    }

    /// Domain levels `n`.
    pub fn levels(&self) -> u32 {
        self.n
    }

    /// Per-axis block side `B = 2^b`.
    pub fn block_side(&self) -> usize {
        1usize << self.b
    }

    /// Number of tiles along this axis.
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// Locates a per-axis coefficient index.
    pub fn locate(&self, index: usize) -> TileSlot {
        let layout = Layout1d::new(self.n);
        match layout.coeff_at(index) {
            Coeff1d::Scaling => TileSlot { tile: 0, slot: 0 },
            Coeff1d::Detail { level, k } => {
                let band = self.bands.band_of_level(level);
                let j_top = self.bands.top_level[band];
                let local_depth = j_top - level;
                let k_top = k >> local_depth;
                TileSlot {
                    tile: self.band_base[band] + k_top,
                    slot: (1usize << local_depth) + (k - (k_top << local_depth)),
                }
            }
        }
    }

    /// The subtree root of a tile: `(level, translation)` of the topmost
    /// detail; slot 0 of the tile is reserved for the redundant scaling
    /// coefficient `u_{level, translation}`.
    pub fn tile_root(&self, tile: usize) -> (u32, usize) {
        assert!(tile < self.num_tiles, "tile {tile} out of range");
        let band = match self.band_base.binary_search(&tile) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (self.bands.top_level[band], tile - self.band_base[band])
    }

    /// Height of the band a tile belongs to (its subtree height).
    pub fn tile_height(&self, tile: usize) -> u32 {
        let band = match self.band_base.binary_search(&tile) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.bands.height[band]
    }

    /// The per-axis coefficient indices stored in `tile`, in slot order
    /// (excluding the redundant scaling slot, except for the top tile where
    /// slot 0 is the true overall average, index 0).
    ///
    /// Iterating tiles and their members gives storage-friendly access
    /// order: every tile is touched exactly once.
    pub fn tile_members(&self, tile: usize) -> Vec<usize> {
        let (j_top, k_top) = self.tile_root(tile);
        let h = self.tile_height(tile);
        let layout = Layout1d::new(self.n);
        let mut out = Vec::with_capacity(1usize << h);
        if j_top == self.n {
            out.push(0); // true scaling coefficient
        }
        if self.n == 0 {
            return out;
        }
        for local_depth in 0..h {
            let level = j_top - local_depth;
            let base_k = k_top << local_depth;
            for q in 0..(1usize << local_depth) {
                out.push(layout.index_of(Coeff1d::Detail {
                    level,
                    k: base_k + q,
                }));
            }
        }
        out
    }
}

/// 1-d tiling: an [`AxisTiling`] exposed through [`TilingMap`].
#[derive(Clone, Debug)]
pub struct Tiling1d {
    axis: AxisTiling,
}

impl Tiling1d {
    /// Tiling of a `2^n` vector into blocks of `B = 2^b` coefficients.
    pub fn new(n: u32, b: u32) -> Self {
        Tiling1d {
            axis: AxisTiling::new(n, b),
        }
    }

    /// The underlying axis tiling.
    pub fn axis(&self) -> &AxisTiling {
        &self.axis
    }
}

impl TilingMap for Tiling1d {
    fn ndim(&self) -> usize {
        1
    }
    fn block_capacity(&self) -> usize {
        self.axis.block_side()
    }
    fn num_tiles(&self) -> usize {
        self.axis.num_tiles()
    }
    fn locate(&self, idx: &[usize]) -> TileSlot {
        debug_assert_eq!(idx.len(), 1);
        self.axis.locate(idx[0])
    }
}

/// Standard-form multidimensional tiling: the cross product of per-axis
/// subtree tilings (Section 3.2). Axes may differ in both domain size and
/// block side, so blocks hold `Π_t B_t` coefficients.
#[derive(Clone, Debug)]
pub struct StandardTiling {
    axes: Vec<AxisTiling>,
    tile_grid: Shape,
    slot_grid: Shape,
}

impl StandardTiling {
    /// Per-axis domain levels `n[t]` and block-side exponents `b[t]`.
    pub fn new(n: &[u32], b: &[u32]) -> Self {
        assert_eq!(n.len(), b.len());
        assert!(!n.is_empty());
        let axes: Vec<AxisTiling> = n
            .iter()
            .zip(b)
            .map(|(&nt, &bt)| AxisTiling::new(nt, bt))
            .collect();
        let tile_grid = Shape::new(&axes.iter().map(|a| a.num_tiles()).collect::<Vec<_>>());
        let slot_grid = Shape::new(&axes.iter().map(|a| a.block_side()).collect::<Vec<_>>());
        StandardTiling {
            axes,
            tile_grid,
            slot_grid,
        }
    }

    /// Uniform constructor: every axis `2^n` with block side `2^b`.
    pub fn cube(d: usize, n: u32, b: u32) -> Self {
        StandardTiling::new(&vec![n; d], &vec![b; d])
    }

    /// Per-axis tilings.
    pub fn axes(&self) -> &[AxisTiling] {
        &self.axes
    }
}

impl TilingMap for StandardTiling {
    fn ndim(&self) -> usize {
        self.axes.len()
    }
    fn block_capacity(&self) -> usize {
        self.slot_grid.len()
    }
    fn num_tiles(&self) -> usize {
        self.tile_grid.len()
    }
    fn locate(&self, idx: &[usize]) -> TileSlot {
        debug_assert_eq!(idx.len(), self.axes.len());
        let mut tile_idx = Vec::with_capacity(idx.len());
        let mut slot_idx = Vec::with_capacity(idx.len());
        for (axis, &i) in self.axes.iter().zip(idx) {
            let loc = axis.locate(i);
            tile_idx.push(loc.tile);
            slot_idx.push(loc.slot);
        }
        TileSlot {
            tile: self.tile_grid.offset(&tile_idx),
            slot: self.slot_grid.offset(&slot_idx),
        }
    }
}

/// Non-standard-form tiling: subtrees of the `2^d`-ary quad tree (Figure 7).
///
/// A tile of height `h` holds `(2^{dh} − 1)/(2^d − 1)` nodes of `2^d − 1`
/// detail coefficients each, plus the scaling coefficient of the root node
/// in slot 0 — `2^{dh} ≤ B^d` coefficients in a `B^d` block.
#[derive(Clone, Debug)]
pub struct NonStandardTiling {
    d: usize,
    n: u32,
    b: u32,
    bands: Bands,
    band_base: Vec<usize>,
    num_tiles: usize,
}

impl NonStandardTiling {
    /// Tiling of an `(2^n)^d` hypercube transform into `B^d = 2^{db}`
    /// blocks.
    pub fn new(d: usize, n: u32, b: u32) -> Self {
        assert!(d >= 1);
        let bands = Bands::new(n, b);
        let mut band_base = Vec::with_capacity(bands.top_level.len());
        let mut acc = 0usize;
        for &top in &bands.top_level {
            band_base.push(acc);
            acc += 1usize << (d as u32 * (n - top));
        }
        NonStandardTiling {
            d,
            n,
            b,
            bands,
            band_base,
            num_tiles: acc,
        }
    }

    /// The tile rooted at quad-tree node `(level, node)`, or `None` when
    /// that level is not a band top (the node is interior to some tile).
    pub fn tile_of_root(&self, level: u32, node: &[usize]) -> Option<usize> {
        debug_assert_eq!(node.len(), self.d);
        let band = self.bands.top_level.iter().position(|&t| t == level)?;
        let grid = Shape::new(&vec![1usize << (self.n - level); self.d]);
        Some(self.band_base[band] + grid.offset(node))
    }

    /// The quad-tree root node of a tile: `(level, node)`.
    pub fn tile_root(&self, tile: usize) -> (u32, Vec<usize>) {
        assert!(tile < self.num_tiles);
        let band = match self.band_base.binary_search(&tile) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let top = self.bands.top_level[band];
        let grid = Shape::new(&vec![1usize << (self.n - top); self.d]);
        (top, grid.unoffset(tile - self.band_base[band]))
    }
}

impl TilingMap for NonStandardTiling {
    fn ndim(&self) -> usize {
        self.d
    }
    fn block_capacity(&self) -> usize {
        1usize << (self.d as u32 * self.b)
    }
    fn num_tiles(&self) -> usize {
        self.num_tiles
    }
    fn locate(&self, idx: &[usize]) -> TileSlot {
        debug_assert_eq!(idx.len(), self.d);
        match crate::nonstandard::coeff_at(self.n, idx) {
            NsCoeff::Scaling => TileSlot { tile: 0, slot: 0 },
            NsCoeff::Detail {
                level,
                node,
                subband,
            } => {
                let band = self.bands.band_of_level(level);
                let j_top = self.bands.top_level[band];
                let local_depth = j_top - level;
                let node_top: Vec<usize> = node.iter().map(|&k| k >> local_depth).collect();
                let top_grid = Shape::new(&vec![1usize << (self.n - j_top); self.d]);
                let tile = self.band_base[band] + top_grid.offset(&node_top);
                // Rank of the node inside the tile subtree: nodes of
                // shallower local depth come first, row-major within a depth.
                let dd = self.d as u32;
                let branch = 1usize << self.d; // 2^d
                let nodes_above = (branch.pow(local_depth) - 1) / (branch - 1);
                let local_grid = Shape::new(&vec![1usize << local_depth; self.d]);
                let local: Vec<usize> = node
                    .iter()
                    .zip(&node_top)
                    .map(|(&k, &kt)| k - (kt << local_depth))
                    .collect();
                let node_rank = nodes_above + local_grid.offset(&local);
                let eps_rank = subband
                    .iter()
                    .fold(0usize, |acc, &e| (acc << 1) | usize::from(e))
                    - 1;
                let _ = dd;
                TileSlot {
                    tile,
                    slot: 1 + node_rank * (branch - 1) + eps_rank,
                }
            }
        }
    }
}

/// Row-major baseline allocation: coefficient tuples in row-major order,
/// chopped into fixed-capacity blocks. This is what the paper's tiling is
/// measured against.
#[derive(Clone, Debug)]
pub struct NaiveMap {
    shape: Shape,
    capacity: usize,
}

impl NaiveMap {
    /// Row-major map over `shape` with `capacity` coefficients per block.
    pub fn new(shape: Shape, capacity: usize) -> Self {
        assert!(capacity >= 1);
        NaiveMap { shape, capacity }
    }
}

impl TilingMap for NaiveMap {
    fn ndim(&self) -> usize {
        self.shape.ndim()
    }
    fn block_capacity(&self) -> usize {
        self.capacity
    }
    fn num_tiles(&self) -> usize {
        self.shape.len().div_ceil(self.capacity)
    }
    fn locate(&self, idx: &[usize]) -> TileSlot {
        let off = self.shape.offset(idx);
        TileSlot {
            tile: off / self.capacity,
            slot: off % self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Every coefficient maps to a unique (tile, slot); slots stay within
    /// capacity.
    fn assert_injective(map: &dyn TilingMap, dims: &[usize]) {
        let mut seen = HashSet::new();
        for idx in ss_array::MultiIndexIter::new(dims) {
            let loc = map.locate(&idx);
            assert!(loc.tile < map.num_tiles(), "tile overflow at {idx:?}");
            assert!(
                loc.slot < map.block_capacity(),
                "slot {} >= capacity {} at {idx:?}",
                loc.slot,
                map.block_capacity()
            );
            assert!(seen.insert((loc.tile, loc.slot)), "collision at {idx:?}");
        }
    }

    #[test]
    fn tiling_1d_is_injective() {
        for n in 1..=6u32 {
            for b in 1..=3u32 {
                let map = Tiling1d::new(n, b);
                assert_injective(&map, &[1usize << n]);
            }
        }
    }

    #[test]
    fn tiling_1d_figure_4_example() {
        // 16 coefficients, block size 4 (b=2): height-2 subtree tiles, bands
        // at levels {4,3} and {2,1} — the structure of the paper's Figure 4.
        let map = Tiling1d::new(4, 2);
        // u_{4,0}, w_{4,0} and w_{3,0..1} share tile 0.
        for i in 0..4usize {
            assert_eq!(map.locate(&[i]).tile, 0, "index {i}");
        }
        // Next band: levels 2 and 1, 4 subtree roots.
        assert_eq!(map.locate(&[4]).tile, 1); // w_{2,0}
        assert_eq!(map.locate(&[8]).tile, 1); // w_{1,0} (child of w_{2,0})
        assert_eq!(map.locate(&[9]).tile, 1); // w_{1,1}
        assert_eq!(map.locate(&[5]).tile, 2); // w_{2,1}
        assert_eq!(map.num_tiles(), 1 + 4);
    }

    #[test]
    fn root_path_touches_few_tiles() {
        // A root path crosses at most ceil(n/b) tiles (tiling's raison
        // d'être).
        let (n, b) = (12u32, 3u32);
        let map = Tiling1d::new(n, b);
        let layout = Layout1d::new(n);
        for pos in [0usize, 1, 100, 4095] {
            let tiles: HashSet<usize> = layout
                .point_contributions(pos)
                .iter()
                .map(|&(i, _)| map.locate(&[i]).tile)
                .collect();
            assert!(
                tiles.len() as u32 <= n.div_ceil(b),
                "pos {pos}: {} tiles",
                tiles.len()
            );
        }
    }

    #[test]
    fn axis_tile_roots_are_consistent() {
        let axis = AxisTiling::new(5, 2);
        let (j, k) = axis.tile_root(0);
        assert_eq!((j, k), (5, 0));
        // n=5, b=2 gives bands {5}, {4,3}, {2,1}: the second band's tiles
        // are rooted at level 4.
        let (j, _) = axis.tile_root(1);
        assert_eq!(j, 4);
        // Every detail locates into the tile whose root covers it.
        let layout = Layout1d::new(5);
        for i in 1..32usize {
            if let Coeff1d::Detail { level, k } = layout.coeff_at(i) {
                let loc = axis.locate(i);
                let (rj, rk) = axis.tile_root(loc.tile);
                assert!(rj >= level);
                assert_eq!(k >> (rj - level), rk, "index {i}");
            }
        }
    }

    #[test]
    fn standard_tiling_is_injective() {
        let map = StandardTiling::new(&[4, 3], &[2, 1]);
        assert_injective(&map, &[16, 8]);
        assert_eq!(map.block_capacity(), 4 * 2);
    }

    #[test]
    fn standard_cube_tiling_is_injective() {
        let map = StandardTiling::cube(3, 3, 1);
        assert_injective(&map, &[8, 8, 8]);
    }

    #[test]
    fn nonstandard_tiling_is_injective() {
        for (d, n, b) in [(2usize, 4u32, 2u32), (2, 5, 2), (3, 3, 1), (2, 4, 1)] {
            let map = NonStandardTiling::new(d, n, b);
            assert_injective(&map, &vec![1usize << n; d]);
        }
    }

    #[test]
    fn nonstandard_tile_count_matches_paper_when_aligned() {
        // b | n: each tile holds B^d − 1 details plus one scaling slot, so
        // tiles = (N^d − 1)/(B^d − 1) and every slot is used.
        let map = NonStandardTiling::new(2, 4, 2);
        assert_eq!(map.num_tiles(), (16 * 16 - 1) / (16 - 1));
        assert_eq!(
            map.num_tiles() * map.block_capacity(),
            16 * 16 + (map.num_tiles() - 1)
        );
    }

    #[test]
    fn standard_tile_count_matches_paper_when_aligned() {
        // Per axis: (N − 1)/(B − 1) tiles; the cross product squares it.
        let map = StandardTiling::cube(2, 4, 2);
        let per_axis = (16 - 1) / (4 - 1);
        assert_eq!(map.num_tiles(), per_axis * per_axis);
    }

    #[test]
    fn nonstandard_point_path_touches_few_tiles() {
        let (d, n, b) = (2usize, 6u32, 2u32);
        let map = NonStandardTiling::new(d, n, b);
        for pos in [[0usize, 0], [63, 63], [17, 42]] {
            let tiles: HashSet<usize> =
                crate::reconstruct::nonstandard_point_contributions(n, d, &pos)
                    .iter()
                    .map(|(idx, _)| map.locate(idx).tile)
                    .collect();
            assert!(
                tiles.len() as u32 <= n.div_ceil(b),
                "pos {pos:?}: {} tiles",
                tiles.len()
            );
        }
    }

    #[test]
    fn naive_map_chops_row_major() {
        let map = NaiveMap::new(Shape::new(&[4, 4]), 4);
        assert_eq!(map.num_tiles(), 4);
        assert_eq!(map.locate(&[0, 3]), TileSlot { tile: 0, slot: 3 });
        assert_eq!(map.locate(&[1, 0]), TileSlot { tile: 1, slot: 0 });
        assert_injective(&map, &[4, 4]);
    }

    #[test]
    fn degenerate_single_cell_domain() {
        let map = Tiling1d::new(0, 2);
        assert_eq!(map.num_tiles(), 1);
        assert_eq!(map.locate(&[0]), TileSlot { tile: 0, slot: 0 });
    }

    #[test]
    fn tile_members_partition_the_axis() {
        // Every per-axis coefficient index appears in exactly one tile's
        // member list, and at the slot `locate` says.
        for (n, b) in [(4u32, 2u32), (5, 2), (6, 3), (3, 4)] {
            let axis = AxisTiling::new(n, b);
            let mut seen = std::collections::HashSet::new();
            for tile in 0..axis.num_tiles() {
                for idx in axis.tile_members(tile) {
                    assert!(seen.insert(idx), "n={n} b={b}: index {idx} duplicated");
                    assert_eq!(axis.locate(idx).tile, tile, "n={n} b={b} idx {idx}");
                }
            }
            assert_eq!(
                seen.len(),
                1usize << n,
                "n={n} b={b}: members must cover the axis"
            );
        }
    }

    #[test]
    fn nonstandard_tile_of_root_matches_tile_root() {
        let map = NonStandardTiling::new(2, 5, 2);
        for tile in 0..map.num_tiles() {
            let (level, node) = map.tile_root(tile);
            assert_eq!(map.tile_of_root(level, &node), Some(tile));
        }
        // A non-band-top level has no tile rooted at it.
        // n=5, b=2 bands: {5}, {4,3}, {2,1}: level 3 is interior.
        assert_eq!(map.tile_of_root(3, &[0, 0]), None);
        assert_eq!(map.tile_of_root(1, &[0, 0]), None);
    }

    #[test]
    fn short_top_band_when_b_does_not_divide_n() {
        // n=5, b=2: top band holds only level 5 (height 1): indices 0,1.
        let map = Tiling1d::new(5, 2);
        assert_eq!(map.locate(&[0]).tile, map.locate(&[1]).tile);
        // 11 tiles: 1 + 2 + 8.
        assert_eq!(map.num_tiles(), 11);
    }
}
