//! Coefficient geometry of the 1-d Haar wavelet tree.
//!
//! [`Layout1d`] fixes the bijection between tree coordinates
//! `(level j, translation k)` and linear indices in a transformed vector of
//! size `N = 2^n`, and provides the tree-navigation primitives everything
//! else builds on:
//!
//! * parent/children links of the *error tree* (Section 2.2),
//! * the root path of a data position (Lemma 1: `n + 1` coefficients
//!   reconstruct any point),
//! * range-sum contribution lists (Lemma 2: at most `2n + 1` coefficients
//!   answer any range sum),
//! * the *wavelet crest* — the set of coefficients a future append can still
//!   change — used by streaming maintenance (Section 5.3).

/// A coefficient of the 1-d decomposition: either the overall average
/// (scaling coefficient `u_{n,0}`) or a detail `w_{j,k}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Coeff1d {
    /// The scaling coefficient `u_{n,0}` at linear index 0.
    Scaling,
    /// The detail coefficient `w_{level, k}` at linear index
    /// `2^{n−level} + k`.
    Detail {
        /// Decomposition level, `1 ..= n`. Level `n` is the coarsest.
        level: u32,
        /// Translation within the level, `0 ..= 2^{n−level} − 1`.
        k: usize,
    },
}

/// Index geometry of a transformed vector of size `2^n`.
///
/// ```
/// use ss_core::{haar1d, Layout1d};
///
/// let data = [3.0, 5.0, 7.0, 5.0, 1.0, 1.0, 2.0, 0.0];
/// let coeffs = haar1d::forward_to_vec(&data);
/// let layout = Layout1d::for_len(8);
/// // Lemma 1: any value reconstructs from log2(N)+1 coefficients.
/// let v: f64 = layout
///     .point_contributions(5)
///     .iter()
///     .map(|&(i, w)| w * coeffs[i])
///     .sum();
/// assert!((v - data[5]).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout1d {
    n: u32,
}

impl Layout1d {
    /// Layout for a domain of size `2^n`.
    pub fn new(n: u32) -> Self {
        assert!(n < usize::BITS, "Layout1d: level {n} too large");
        Layout1d { n }
    }

    /// Layout for a vector of length `len` (must be a power of two).
    pub fn for_len(len: usize) -> Self {
        Layout1d::new(ss_array::log2_exact(len))
    }

    /// Number of decomposition levels `n`.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.n
    }

    /// Domain size `N = 2^n`.
    #[inline]
    pub fn len(&self) -> usize {
        1usize << self.n
    }

    /// Layouts are never empty (size ≥ 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear index of a coefficient.
    #[inline]
    pub fn index_of(&self, c: Coeff1d) -> usize {
        match c {
            Coeff1d::Scaling => 0,
            Coeff1d::Detail { level, k } => {
                debug_assert!(level >= 1 && level <= self.n);
                debug_assert!(k < (1usize << (self.n - level)));
                (1usize << (self.n - level)) + k
            }
        }
    }

    /// Coefficient at a linear index.
    #[inline]
    pub fn coeff_at(&self, index: usize) -> Coeff1d {
        debug_assert!(index < self.len());
        if index == 0 {
            Coeff1d::Scaling
        } else {
            let octave = usize::BITS - 1 - index.leading_zeros(); // floor(log2 index)
            let level = self.n - octave;
            Coeff1d::Detail {
                level,
                k: index - (1usize << octave),
            }
        }
    }

    /// The parent of a detail coefficient in the error tree, or the scaling
    /// coefficient for the root detail `w_{n,0}`, or `None` for the scaling
    /// coefficient itself.
    pub fn parent(&self, c: Coeff1d) -> Option<Coeff1d> {
        match c {
            Coeff1d::Scaling => None,
            Coeff1d::Detail { level, k } => {
                if level == self.n {
                    Some(Coeff1d::Scaling)
                } else {
                    Some(Coeff1d::Detail {
                        level: level + 1,
                        k: k >> 1,
                    })
                }
            }
        }
    }

    /// The children of a coefficient in the error tree. The scaling
    /// coefficient has the single child `w_{n,0}`; details at level 1 have no
    /// coefficient children (their children are data values).
    pub fn children(&self, c: Coeff1d) -> Vec<Coeff1d> {
        match c {
            Coeff1d::Scaling => {
                if self.n == 0 {
                    vec![]
                } else {
                    vec![Coeff1d::Detail {
                        level: self.n,
                        k: 0,
                    }]
                }
            }
            Coeff1d::Detail { level, k } => {
                if level == 1 {
                    vec![]
                } else {
                    vec![
                        Coeff1d::Detail {
                            level: level - 1,
                            k: 2 * k,
                        },
                        Coeff1d::Detail {
                            level: level - 1,
                            k: 2 * k + 1,
                        },
                    ]
                }
            }
        }
    }

    /// Support interval of a coefficient (Property 1): the dyadic interval
    /// the coefficient was computed from.
    pub fn support(&self, c: Coeff1d) -> ss_array::DyadicInterval {
        match c {
            Coeff1d::Scaling => ss_array::DyadicInterval::new(self.n, 0),
            Coeff1d::Detail { level, k } => ss_array::DyadicInterval::new(level, k),
        }
    }

    /// Lemma 1: the `(index, weight)` contributions reconstructing data
    /// position `pos`; always exactly `n + 1` entries. The reconstructed
    /// value is `Σ weight · coeff[index]`.
    ///
    /// The detail at level `j` enters with `+1` when `pos` lies in the left
    /// half of its support (bit `j−1` of `pos` clear) and `−1` otherwise.
    pub fn point_contributions(&self, pos: usize) -> Vec<(usize, f64)> {
        debug_assert!(pos < self.len());
        let mut out = Vec::with_capacity(self.n as usize + 1);
        out.push((0, 1.0));
        for level in 1..=self.n {
            let k = pos >> level;
            let sign = if (pos >> (level - 1)) & 1 == 0 {
                1.0
            } else {
                -1.0
            };
            out.push((self.index_of(Coeff1d::Detail { level, k }), sign));
        }
        out
    }

    /// Lemma 2: the `(index, weight)` contributions of the inclusive range
    /// sum `Σ_{i=lo}^{hi} a[i]`; at most `2n + 1` entries with non-zero
    /// weight.
    ///
    /// A detail `w_{j,k}` with support `S` split into halves `L`, `R`
    /// contributes `w · (|[lo,hi] ∩ L| − |[lo,hi] ∩ R|)`, which is non-zero
    /// only when the range boundary cuts `S`; the scaling coefficient
    /// contributes `(hi − lo + 1) · u`.
    pub fn range_sum_contributions(&self, lo: usize, hi: usize) -> Vec<(usize, f64)> {
        assert!(
            lo <= hi && hi < self.len(),
            "range [{lo},{hi}] out of bounds"
        );
        let count = (hi - lo + 1) as f64;
        let mut out = vec![(0usize, count)];
        // Only details whose support contains lo or hi can have partial
        // (non-cancelling) overlap. Walk both boundary paths, dedup shared
        // ancestors.
        for level in 1..=self.n {
            let k_lo = lo >> level;
            let k_hi = hi >> level;
            let mut push = |k: usize| {
                let support_lo = k << level;
                let half = 1usize << (level - 1);
                let mid = support_lo + half; // first position of right half
                let support_hi = support_lo + (1usize << level) - 1;
                let l_overlap = overlap(lo, hi, support_lo, mid - 1) as f64;
                let r_overlap = overlap(lo, hi, mid, support_hi) as f64;
                let weight = l_overlap - r_overlap;
                if weight != 0.0 {
                    out.push((self.index_of(Coeff1d::Detail { level, k }), weight));
                }
            };
            push(k_lo);
            if k_hi != k_lo {
                push(k_hi);
            }
        }
        out
    }

    /// The *crest* of an append frontier: the coefficients whose value can
    /// still change when data strictly after position `frontier` arrives
    /// (Section 5.3). These are the coefficients on the root path of
    /// `frontier`, plus the scaling coefficient.
    pub fn crest(&self, frontier: usize) -> Vec<Coeff1d> {
        debug_assert!(frontier < self.len());
        let mut out = vec![Coeff1d::Scaling];
        for level in 1..=self.n {
            out.push(Coeff1d::Detail {
                level,
                k: frontier >> level,
            });
        }
        out
    }

    /// Orthonormal rescale factor for the coefficient at `index`: multiply an
    /// unnormalised coefficient by this to obtain its orthonormal-basis
    /// magnitude (`2^{j/2}` for a level-`j` detail, `2^{n/2}` for the
    /// average).
    pub fn orthonormal_scale(&self, index: usize) -> f64 {
        match self.coeff_at(index) {
            Coeff1d::Scaling => (self.len() as f64).sqrt(),
            Coeff1d::Detail { level, .. } => ((1usize << level) as f64).sqrt(),
        }
    }
}

#[inline]
fn overlap(a_lo: usize, a_hi: usize, b_lo: usize, b_hi: usize) -> usize {
    let lo = a_lo.max(b_lo);
    let hi = a_hi.min(b_hi);
    if lo > hi {
        0
    } else {
        hi - lo + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar1d;

    #[test]
    fn index_roundtrip() {
        let layout = Layout1d::new(4);
        for i in 0..16 {
            assert_eq!(layout.index_of(layout.coeff_at(i)), i);
        }
    }

    #[test]
    fn detail_indices_match_paper_layout() {
        // N=8: [u_{3,0}, w_{3,0}, w_{2,0}, w_{2,1}, w_{1,0..3}]
        let layout = Layout1d::new(3);
        assert_eq!(layout.index_of(Coeff1d::Detail { level: 3, k: 0 }), 1);
        assert_eq!(layout.index_of(Coeff1d::Detail { level: 2, k: 0 }), 2);
        assert_eq!(layout.index_of(Coeff1d::Detail { level: 2, k: 1 }), 3);
        assert_eq!(layout.index_of(Coeff1d::Detail { level: 1, k: 3 }), 7);
    }

    #[test]
    fn parent_child_consistency() {
        let layout = Layout1d::new(4);
        for i in 0..16 {
            let c = layout.coeff_at(i);
            for child in layout.children(c) {
                assert_eq!(layout.parent(child), Some(c));
            }
        }
        assert_eq!(layout.parent(Coeff1d::Scaling), None);
    }

    #[test]
    fn support_of_detail_is_dyadic() {
        let layout = Layout1d::new(3);
        let s = layout.support(Coeff1d::Detail { level: 2, k: 1 });
        assert_eq!(s.start(), 4);
        assert_eq!(s.end(), 7);
    }

    #[test]
    fn point_contributions_reconstruct_every_value() {
        let data: Vec<f64> = (0..16).map(|i| (i * i) as f64 - 3.0).collect();
        let coeffs = haar1d::forward_to_vec(&data);
        let layout = Layout1d::for_len(16);
        for (pos, &want) in data.iter().enumerate() {
            let contribs = layout.point_contributions(pos);
            assert_eq!(contribs.len(), 5, "Lemma 1: n+1 coefficients");
            let got: f64 = contribs.iter().map(|&(i, w)| coeffs[i] * w).sum();
            assert!((got - want).abs() < 1e-9, "pos {pos}: {got} vs {want}");
        }
    }

    #[test]
    fn range_sum_contributions_match_naive() {
        let data: Vec<f64> = (0..32).map(|i| ((i * 7) % 13) as f64 - 5.0).collect();
        let coeffs = haar1d::forward_to_vec(&data);
        let layout = Layout1d::for_len(32);
        for lo in 0..32 {
            for hi in lo..32 {
                let naive: f64 = data[lo..=hi].iter().sum();
                let contribs = layout.range_sum_contributions(lo, hi);
                assert!(
                    contribs.len() <= 2 * 5 + 1,
                    "Lemma 2 bound violated: {} coefficients for [{lo},{hi}]",
                    contribs.len()
                );
                let got: f64 = contribs.iter().map(|&(i, w)| coeffs[i] * w).sum();
                assert!((got - naive).abs() < 1e-9, "[{lo},{hi}]: {got} vs {naive}");
            }
        }
    }

    #[test]
    fn full_range_sum_uses_only_average() {
        let layout = Layout1d::new(5);
        let contribs = layout.range_sum_contributions(0, 31);
        assert_eq!(contribs, vec![(0, 32.0)]);
    }

    #[test]
    fn crest_is_root_path() {
        let layout = Layout1d::new(3);
        let crest = layout.crest(5);
        assert_eq!(crest.len(), 4);
        assert!(crest.contains(&Coeff1d::Scaling));
        assert!(crest.contains(&Coeff1d::Detail { level: 3, k: 0 }));
        assert!(crest.contains(&Coeff1d::Detail { level: 2, k: 1 }));
        assert!(crest.contains(&Coeff1d::Detail { level: 1, k: 2 }));
    }

    #[test]
    fn trivial_domain() {
        let layout = Layout1d::new(0);
        assert_eq!(layout.len(), 1);
        assert_eq!(layout.point_contributions(0), vec![(0, 1.0)]);
        assert!(layout.children(Coeff1d::Scaling).is_empty());
    }
}
