//! Haar wavelet transforms, wavelet trees and the **SHIFT**/**SPLIT**
//! operations of
//! *"SHIFT-SPLIT: I/O Efficient Maintenance of Wavelet-Transformed
//! Multidimensional Data"* (Jahangiri, Sacharidis, Shahabi — SIGMOD 2005).
//!
//! # Overview
//!
//! The crate is organised around three layers:
//!
//! 1. **Codecs** — in-memory Haar transforms: [`haar1d`] (vectors),
//!    [`standard`] (tensor-product multidimensional form) and
//!    [`nonstandard`] (joint multiresolution form with Mallat layout).
//!    All transforms use the paper's unnormalised *average/difference*
//!    convention (`u = (a+b)/2`, `w = (a−b)/2`); orthonormal rescaling is
//!    available where best-K-term ranking needs it.
//! 2. **Coefficient geometry** — [`layout`] maps `(level, translation)`
//!    coordinates to linear indices, navigates the wavelet tree
//!    (parent/children/path-to-root/*crest*), and produces the contribution
//!    lists behind point queries (Lemma 1) and range sums (Lemma 2);
//!    [`tiling`] implements the optimal coefficient-to-disk-block maps of
//!    Section 3 for all three decomposition forms.
//! 3. **SHIFT/SPLIT** — [`shift`] and [`split`] implement the paper's two
//!    novel operations (Section 4) as *delta streams*: given the transform of
//!    a dyadic chunk they enumerate `(global coefficient index, delta)` pairs
//!    that callers (in-memory arrays or disk-backed stores) fold into the
//!    global transform. [`reconstruct`] provides the inverse direction
//!    (Section 5.4), and [`append`] grows a transformed domain in place
//!    (Section 5.2).
//!
//! # Quick example
//!
//! ```
//! use ss_core::haar1d;
//!
//! // The paper's running example: {3, 5, 7, 5} -> {5, -1, -1, 1}.
//! let mut v = vec![3.0, 5.0, 7.0, 5.0];
//! haar1d::forward(&mut v);
//! assert_eq!(v, vec![5.0, -1.0, -1.0, 1.0]);
//! haar1d::inverse(&mut v);
//! assert_eq!(v, vec![3.0, 5.0, 7.0, 5.0]);
//! ```

// Axis-indexed loops over several parallel per-axis arrays are the clearest
// idiom for the index arithmetic in this workspace; iterator rewrites hurt
// readability without changing the generated code.
#![allow(clippy::needless_range_loop)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod algebra;
pub mod append;
pub mod haar1d;
pub mod kernel;
pub mod layout;
pub mod nonstandard;
pub mod reconstruct;
pub mod shift;
pub mod sparse;
pub mod split;
pub mod standard;
pub mod tiling;

pub use layout::{Coeff1d, Layout1d};
pub use sparse::{RetentionPolicy, RetentionReport, SparseTile, BUCKET};
pub use tiling::{NaiveMap, NonStandardTiling, StandardTiling, Tiling1d, TilingMap};
