//! Fallible fronts over the transform drivers.
//!
//! The block-store traffic inside the drivers goes through the infallible
//! [`BlockStore`] face, which reports failures by
//! panicking with a [`StorageError`] payload (see
//! `ss_storage::downcast_storage_error`). These wrappers catch that
//! unwind — including out of worker threads in the parallel drivers — and
//! hand the typed error back as an `Err`, so callers like the CLI can
//! print a proper diagnostic and pick an exit code instead of aborting
//! with a panic trace.
//!
//! On `Err` the store must be considered poisoned: an unwind mid-transform
//! leaves an unknown subset of deltas applied. Callers should discard it
//! (or re-create and re-ingest); these wrappers make the failure *visible
//! and typed*, not resumable.

use crate::chunked::TransformReport;
use crate::source::ChunkSource;
use ss_core::TilingMap;
use ss_storage::{downcast_storage_error, BlockStore, CoeffStore, SharedCoeffStore, StorageError};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// [`transform_standard`](crate::transform_standard) with storage panics
/// surfaced as typed errors.
pub fn try_transform_standard<M: TilingMap, S: BlockStore>(
    src: &impl ChunkSource,
    cs: &mut CoeffStore<M, S>,
    sparse: bool,
) -> Result<TransformReport, StorageError> {
    catch_unwind(AssertUnwindSafe(|| {
        crate::chunked::transform_standard(src, cs, sparse)
    }))
    .map_err(downcast_storage_error)
}

/// [`transform_standard_parallel`](crate::transform_standard_parallel)
/// with storage panics — from any worker — surfaced as typed errors.
pub fn try_transform_standard_parallel<M, S>(
    src: &(impl ChunkSource + Sync),
    cs: &SharedCoeffStore<M, S>,
    workers: usize,
) -> Result<TransformReport, StorageError>
where
    M: TilingMap,
    S: BlockStore + Send + Sync,
{
    catch_unwind(AssertUnwindSafe(|| {
        crate::par::transform_standard_parallel(src, cs, workers)
    }))
    .map_err(downcast_storage_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ArraySource;
    use ss_array::{NdArray, Shape};
    use ss_core::tiling::StandardTiling;
    use ss_storage::{
        FaultConfig, FaultInjectingBlockStore, IoStats, MemBlockStore, RetryPolicy,
        RetryingBlockStore, SharedCoeffStore,
    };

    fn sample(side: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::cube(2, side), |idx| (idx[0] * 7 + idx[1]) as f64)
    }

    fn wrapped_store(
        read_rate: f64,
        retries: u32,
        stats: IoStats,
    ) -> RetryingBlockStore<FaultInjectingBlockStore<MemBlockStore>> {
        let map = StandardTiling::new(&[4; 2], &[2; 2]);
        let inner = MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats);
        RetryingBlockStore::new(
            FaultInjectingBlockStore::new(inner, FaultConfig::read_errors(read_rate, 21)),
            RetryPolicy::with_retries(retries),
        )
    }

    #[test]
    fn faulty_ingest_succeeds_through_retries() {
        let a = sample(16);
        let src = ArraySource::new(&a, &[2, 2]);
        let stats = IoStats::new();
        let map = StandardTiling::new(&[4; 2], &[2; 2]);
        let mut cs = CoeffStore::new(map, wrapped_store(0.1, 8, stats.clone()), 4, stats);
        let report = try_transform_standard(&src, &mut cs, false).unwrap();
        assert_eq!(report.chunks, 16);
        let want = ss_core::standard::forward_to(&a);
        for idx in ss_array::MultiIndexIter::new(&[16, 16]) {
            assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-9);
        }
    }

    #[test]
    fn exhausted_retries_surface_as_typed_error_serial() {
        let a = sample(16);
        let src = ArraySource::new(&a, &[2, 2]);
        let stats = IoStats::new();
        let map = StandardTiling::new(&[4; 2], &[2; 2]);
        // 100% read faults, tiny budget: the first pool miss must fail.
        let mut cs = CoeffStore::new(map, wrapped_store(1.0, 1, stats.clone()), 4, stats);
        match try_transform_standard(&src, &mut cs, false) {
            Err(StorageError::RetriesExhausted { op: "read", .. }) => {}
            other => panic!("expected typed exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_retries_surface_as_typed_error_parallel() {
        let a = sample(16);
        let src = ArraySource::new(&a, &[2, 2]);
        let stats = IoStats::new();
        let map = StandardTiling::new(&[4; 2], &[2; 2]);
        let cs = SharedCoeffStore::new(map, wrapped_store(1.0, 1, stats.clone()), 4, 2, stats);
        match try_transform_standard_parallel(&src, &cs, 2) {
            Err(StorageError::RetriesExhausted { op: "read", .. }) => {}
            other => panic!("expected typed exhaustion, got {other:?}"),
        }
    }
}
