//! Appending via the non-standard **hypercube chain** (the structure of
//! Result 5, applied to disk-resident maintenance).
//!
//! Section 5.2 analyses appending for the standard form and notes the
//! non-standard analysis "is similar" — but the chain representation that
//! Result 5 introduces for streams changes the game on disk too: the
//! dataset is a sequence of `N^d` hypercubes along the growing axis, each
//! decomposed *independently* (its coefficients and tiles never move
//! again), with only the 1-d tree over cube averages spanning time. An
//! append therefore costs `O(N^d/B^d)` blocks flat — **no domain
//! expansions, no migration spikes** — at the price of the standard form's
//! cross-time compression.
//!
//! [`NsChainStore`] implements the representation over any block store:
//! per-cube quad-tree tiles plus an in-memory averages tree (one value per
//! cube — negligible next to the cubes themselves, and exactly the state
//! Result 5 keeps).

use ss_array::{MultiIndexIter, NdArray};
use ss_core::tiling::NonStandardTiling;
use ss_core::{Layout1d, TilingMap};
use ss_storage::{BlockStore, CoeffStore, IoStats};

/// A growing chain of non-standard-transformed hypercubes.
pub struct NsChainStore<S: BlockStore, F: FnMut(usize, usize) -> S> {
    d: usize,
    n: u32,
    tiling: NonStandardTiling,
    cubes: Vec<CoeffStore<NonStandardTiling, S>>,
    /// Wavelet transform of the cube-averages series (padded to the next
    /// power of two; `taus` of them are live).
    avg_tree: Vec<f64>,
    taus: usize,
    factory: F,
    pool_budget: usize,
    stats: IoStats,
}

impl<S: BlockStore, F: FnMut(usize, usize) -> S> NsChainStore<S, F> {
    /// An empty chain of `d`-dimensional cubes with side `2^n`, tiled with
    /// per-axis block side `2^b`.
    pub fn new(d: usize, n: u32, b: u32, factory: F, pool_budget: usize, stats: IoStats) -> Self {
        NsChainStore {
            d,
            n,
            tiling: NonStandardTiling::new(d, n, b),
            cubes: Vec::new(),
            avg_tree: vec![0.0],
            taus: 0,
            factory,
            pool_budget,
            stats,
        }
    }

    /// Hypercubes appended so far.
    pub fn len(&self) -> usize {
        self.taus
    }

    /// `true` before the first append.
    pub fn is_empty(&self) -> bool {
        self.taus == 0
    }

    /// Cube side `2^n`.
    pub fn cube_side(&self) -> usize {
        1usize << self.n
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Appends one hypercube. Cost: transform + one pass over the cube's
    /// own tiles + an `O(log T)` in-memory averages-tree update. Existing
    /// cubes are never touched.
    pub fn append(&mut self, cube: &NdArray<f64>) {
        let (d, n) = ss_core::nonstandard::cube_levels(cube.shape());
        assert_eq!(d, self.d, "cube rank mismatch");
        assert_eq!(n, self.n, "cube side mismatch");
        let mut t = cube.clone();
        ss_core::nonstandard::forward(&mut t);
        // New per-cube store; its tiles are private to this cube forever.
        let store = (self.factory)(self.tiling.block_capacity(), self.tiling.num_tiles());
        let mut cs = CoeffStore::new(
            self.tiling.clone(),
            store,
            self.pool_budget,
            self.stats.clone(),
        );
        let mut avg = 0.0;
        for idx in MultiIndexIter::new(cube.shape().dims()) {
            let v = t.get(&idx);
            if idx.iter().all(|&i| i == 0) {
                avg = v;
                continue;
            }
            if v != 0.0 {
                cs.write(&idx, v);
            }
        }
        cs.flush();
        self.cubes.push(cs);
        // Grow the averages tree (in the wavelet domain) and fold the new
        // average in as a length-1 chunk.
        if self.taus == self.avg_tree.len() {
            self.avg_tree = ss_core::append::expand_1d(&self.avg_tree);
        }
        ss_core::split::apply_chunk_1d(&mut self.avg_tree, &[avg], self.taus);
        self.taus += 1;
    }

    /// The average of cube `tau`, reconstructed from the averages tree.
    pub fn cube_average(&self, tau: usize) -> f64 {
        assert!(tau < self.taus, "cube {tau} not appended yet");
        let layout = Layout1d::for_len(self.avg_tree.len());
        layout
            .point_contributions(tau)
            .iter()
            .map(|&(i, w)| w * self.avg_tree[i])
            .sum()
    }

    /// Point query: cell `pos` of cube `tau`.
    pub fn point(&mut self, tau: usize, pos: &[usize]) -> f64 {
        assert!(tau < self.taus);
        let mut value = self.cube_average(tau);
        let cs = &mut self.cubes[tau];
        for (idx, w) in ss_core::reconstruct::nonstandard_point_contributions(self.n, self.d, pos) {
            if idx.iter().all(|&i| i == 0) {
                continue; // replaced by the chain's cube average
            }
            value += w * cs.read(&idx);
        }
        value
    }

    /// Sum of all cells of cubes `tau_lo ..= tau_hi`: a Lemma 2 range sum
    /// over the averages tree, scaled by the cube volume — `O(log T)` work,
    /// no cube tile is touched.
    pub fn time_range_total(&self, tau_lo: usize, tau_hi: usize) -> f64 {
        assert!(tau_lo <= tau_hi && tau_hi < self.taus);
        let layout = Layout1d::for_len(self.avg_tree.len());
        let avg_sum: f64 = layout
            .range_sum_contributions(tau_lo, tau_hi)
            .iter()
            .map(|&(i, w)| w * self.avg_tree[i])
            .sum();
        avg_sum * (1usize << (self.d as u32 * self.n)) as f64
    }

    /// Reconstructs a cubic dyadic region of cube `tau`.
    pub fn reconstruct_region(
        &mut self,
        tau: usize,
        range: &ss_array::DyadicRange,
    ) -> NdArray<f64> {
        assert!(tau < self.taus);
        let avg = self.cube_average(tau);
        let n = self.n;
        let cs = &mut self.cubes[tau];
        ss_core::reconstruct::nonstandard_reconstruct_range(n, range, |idx| {
            if idx.iter().all(|&i| i == 0) {
                avg
            } else {
                cs.read(idx)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{DyadicRange, Shape};
    use ss_storage::MemBlockStore;

    type MemChain = NsChainStore<MemBlockStore, Box<dyn FnMut(usize, usize) -> MemBlockStore>>;

    fn chain(d: usize, n: u32, b: u32, stats: IoStats) -> MemChain {
        let s2 = stats.clone();
        NsChainStore::new(
            d,
            n,
            b,
            Box::new(move |cap, blocks| MemBlockStore::new(cap, blocks, s2.clone())),
            64,
            stats,
        )
    }

    fn cube(side: usize, tau: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 5 + idx[1] * 3 + tau * 11) % 13) as f64 - 4.0
        })
    }

    #[test]
    fn point_queries_match_raw_cubes() {
        let mut c = chain(2, 3, 1, IoStats::new());
        let cubes: Vec<_> = (0..5).map(|tau| cube(8, tau)).collect();
        for q in &cubes {
            c.append(q);
        }
        for (tau, q) in cubes.iter().enumerate() {
            for idx in MultiIndexIter::new(&[8, 8]).step_by(7) {
                let got = c.point(tau, &idx);
                assert!((got - q.get(&idx)).abs() < 1e-9, "tau {tau} {idx:?}");
            }
        }
    }

    #[test]
    fn cube_averages_come_from_the_time_tree() {
        let mut c = chain(2, 2, 1, IoStats::new());
        for tau in 0..7usize {
            c.append(&cube(4, tau));
        }
        for tau in 0..7usize {
            let want = cube(4, tau).total() / 16.0;
            assert!((c.cube_average(tau) - want).abs() < 1e-9, "tau {tau}");
        }
    }

    #[test]
    fn time_range_totals() {
        let mut c = chain(2, 2, 1, IoStats::new());
        let cubes: Vec<_> = (0..6).map(|tau| cube(4, tau)).collect();
        for q in &cubes {
            c.append(q);
        }
        for (lo, hi) in [(0usize, 5usize), (1, 3), (4, 4)] {
            let want: f64 = cubes[lo..=hi].iter().map(|q| q.total()).sum();
            let got = c.time_range_total(lo, hi);
            assert!((got - want).abs() < 1e-6, "[{lo},{hi}]: {got} vs {want}");
        }
    }

    #[test]
    fn region_reconstruction() {
        let mut c = chain(2, 3, 1, IoStats::new());
        let q = cube(8, 3);
        for tau in 0..4usize {
            c.append(&cube(8, tau));
        }
        let range = DyadicRange::cube(2, &[1, 0]);
        let got = c.reconstruct_region(3, &range);
        let want = q.extract(&range.origin(), &range.extents());
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn appends_never_touch_existing_cubes() {
        // The chain's defining property: per-append I/O is flat (no
        // expansion spikes), because old cubes are immutable.
        let stats = IoStats::new();
        let mut c = chain(2, 3, 1, stats.clone());
        let mut costs = Vec::new();
        for tau in 0..16usize {
            let before = stats.snapshot();
            c.append(&cube(8, tau));
            costs.push(stats.snapshot().since(&before).blocks());
        }
        let min = *costs.iter().min().unwrap();
        let max = *costs.iter().max().unwrap();
        assert!(max <= min + 2, "chain appends must be flat, got {costs:?}");
    }

    #[test]
    fn non_power_of_two_chain_lengths_work() {
        let mut c = chain(2, 2, 1, IoStats::new());
        for tau in 0..5usize {
            c.append(&cube(4, tau));
        }
        assert_eq!(c.len(), 5);
        // The averages tree padded to 8; queries on live cubes are exact.
        assert!((c.point(4, &[1, 2]) - cube(4, 4).get(&[1, 2])).abs() < 1e-9);
    }
}
