//! Out-of-core transformation by chunks with SHIFT-SPLIT
//! (Section 5.1, Results 1 and 2).
//!
//! Each chunk is small enough to transform in memory; its detail
//! coefficients SHIFT to final positions and its average SPLITs into
//! updates of coarser coefficients. The standard-form driver
//! ([`transform_standard`]) and the plain non-standard driver
//! ([`transform_nonstandard`]) fold every delta straight into tiled
//! storage. The z-order driver ([`transform_nonstandard_zorder`]) adds the
//! *crest cache* of Result 2: split contributions accumulate in a small
//! in-memory map and are written exactly once, when the z-order walk
//! completes the quad-tree node they belong to — bounding both extra memory
//! (`(2^d − 1)·log(N/M) + 1` entries) and I/O (`O(N^d/B^d)` blocks total).

use crate::source::ChunkSource;
use ss_array::{MortonIter, MultiIndexIter};
use ss_core::TilingMap;
use ss_obs::{Histogram, Stopwatch};
use ss_storage::{BlockStore, CoeffStore, IoStats};
use std::collections::HashMap;

/// Global-registry histograms attributing per-chunk ingest time to its
/// three phases: reading the chunk from the source, the in-memory
/// transform plus SHIFT-SPLIT delta generation, and folding the deltas
/// into tiled storage. One sample per chunk per phase; shared by the
/// serial drivers here and the parallel drivers in
/// [`par`](crate::transform_standard_parallel).
pub(crate) struct PhaseHists {
    pub read: Histogram,
    pub compute: Histogram,
    pub writeback: Histogram,
}

impl PhaseHists {
    pub(crate) fn resolve() -> Self {
        let g = ss_obs::global();
        PhaseHists {
            read: g.histogram("transform.read_ns"),
            compute: g.histogram("transform.compute_ns"),
            writeback: g.histogram("transform.writeback_ns"),
        }
    }
}

/// Statistics of one out-of-core transform run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// Chunks processed.
    pub chunks: usize,
    /// Input cells scanned (each charged as a coefficient read).
    pub input_coeffs: u64,
    /// Peak size of the crest cache (z-order non-standard driver only).
    pub peak_crest_cache: usize,
}

/// Charges the input scan of one chunk to `stats`: every cell is a
/// coefficient read, and the chunk arrives in block-sized units.
pub(crate) fn charge_input(stats: &IoStats, cells: usize, block_capacity: usize) {
    stats.add_coeff_reads(cells as u64);
    stats.add_block_reads(cells.div_ceil(block_capacity) as u64);
}

/// Applies one chunk's delta batch tile-by-tile: deltas are sorted by tile
/// ordinal so each affected tile is loaded at most once per chunk even with
/// a single-block buffer pool — the access discipline the paper's per-chunk
/// I/O analysis assumes.
fn apply_sorted<M: TilingMap, S: BlockStore>(
    cs: &mut CoeffStore<M, S>,
    deltas: &mut Vec<(usize, usize, f64)>,
) {
    deltas.sort_unstable_by_key(|&(tile, slot, _)| (tile, slot));
    let stats = cs.stats().clone();
    for &(tile, slot, delta) in deltas.iter() {
        stats.add_coeff_writes(1);
        cs.pool().add(tile, slot, delta);
    }
    deltas.clear();
}

/// **Result 1** — standard-form out-of-core transform.
///
/// Iterates the chunk grid in row-major order; per chunk: in-memory
/// standard transform, then the full SHIFT-SPLIT delta stream folded into
/// `cs`. With tiled storage this costs
/// `O(N^d/B · (1 + log_B(N/M)/M)^d)` blocks.
///
/// `cold_cache_per_chunk` clears the store's buffer pool between chunks so
/// the measured I/O matches the paper's per-chunk analysis exactly (no
/// cross-chunk tile reuse).
pub fn transform_standard<M: TilingMap, S: BlockStore>(
    src: &impl ChunkSource,
    cs: &mut CoeffStore<M, S>,
    cold_cache_per_chunk: bool,
) -> TransformReport {
    let n = src.domain_levels().to_vec();
    let mut report = TransformReport::default();
    let stats = cs.stats().clone();
    let block_capacity = cs.map().block_capacity();
    let phases = PhaseHists::resolve();
    let mut batch: Vec<(usize, usize, f64)> = Vec::new();
    for block in MultiIndexIter::new(&src.grid()) {
        let mut sw = Stopwatch::start();
        let mut chunk = src.read_chunk(&block);
        charge_input(&stats, chunk.len(), block_capacity);
        phases.read.record(sw.lap_ns());
        ss_core::standard::forward(&mut chunk);
        {
            let map = cs.map();
            ss_core::split::standard_deltas(&chunk, &n, &block, |idx, delta| {
                let loc = map.locate(idx);
                batch.push((loc.tile, loc.slot, delta));
            });
        }
        phases.compute.record(sw.lap_ns());
        apply_sorted(cs, &mut batch);
        phases.writeback.record(sw.lap_ns());
        if cold_cache_per_chunk {
            cs.clear_cache();
        }
        report.chunks += 1;
        report.input_coeffs += chunk.len() as u64;
    }
    cs.flush();
    report
}

/// Sparse variant of [`transform_standard`] (Section 5.1 discusses data
/// with `z` non-zero values): all-zero chunks are skipped entirely — in a
/// chunk-organised sparse store they are simply absent, so neither their
/// input scan nor any output work is charged. I/O becomes proportional to
/// the number of *occupied* chunks rather than the domain volume.
pub fn transform_standard_sparse<M: TilingMap, S: BlockStore>(
    src: &impl ChunkSource,
    cs: &mut CoeffStore<M, S>,
) -> TransformReport {
    let n = src.domain_levels().to_vec();
    let mut report = TransformReport::default();
    let stats = cs.stats().clone();
    let block_capacity = cs.map().block_capacity();
    let phases = PhaseHists::resolve();
    let mut batch: Vec<(usize, usize, f64)> = Vec::new();
    for block in MultiIndexIter::new(&src.grid()) {
        let mut sw = Stopwatch::start();
        let mut chunk = src.read_chunk(&block);
        if chunk.as_slice().iter().all(|&v| v == 0.0) {
            continue; // absent in a sparse chunk directory: zero I/O
        }
        charge_input(&stats, chunk.len(), block_capacity);
        phases.read.record(sw.lap_ns());
        ss_core::standard::forward(&mut chunk);
        {
            let map = cs.map();
            ss_core::split::standard_deltas(&chunk, &n, &block, |idx, delta| {
                let loc = map.locate(idx);
                batch.push((loc.tile, loc.slot, delta));
            });
        }
        phases.compute.record(sw.lap_ns());
        apply_sorted(cs, &mut batch);
        phases.writeback.record(sw.lap_ns());
        report.chunks += 1;
        report.input_coeffs += chunk.len() as u64;
    }
    cs.flush();
    report
}

/// Non-standard out-of-core transform with a **row-major** chunk schedule:
/// every split contribution is folded into storage immediately, costing
/// `O(N^d/B^d + chunks · (2^d − 1) · log_B(N/M))` blocks.
pub fn transform_nonstandard<M: TilingMap, S: BlockStore>(
    src: &impl ChunkSource,
    cs: &mut CoeffStore<M, S>,
    cold_cache_per_chunk: bool,
) -> TransformReport {
    let (n, _m) = cubic_levels(src);
    let mut report = TransformReport::default();
    let stats = cs.stats().clone();
    let block_capacity = cs.map().block_capacity();
    let phases = PhaseHists::resolve();
    let mut batch: Vec<(usize, usize, f64)> = Vec::new();
    for block in MultiIndexIter::new(&src.grid()) {
        let mut sw = Stopwatch::start();
        let mut chunk = src.read_chunk(&block);
        charge_input(&stats, chunk.len(), block_capacity);
        phases.read.record(sw.lap_ns());
        ss_core::nonstandard::forward(&mut chunk);
        {
            let map = cs.map();
            ss_core::split::nonstandard_deltas(&chunk, n, &block, |idx, delta| {
                let loc = map.locate(idx);
                batch.push((loc.tile, loc.slot, delta));
            });
        }
        phases.compute.record(sw.lap_ns());
        apply_sorted(cs, &mut batch);
        phases.writeback.record(sw.lap_ns());
        if cold_cache_per_chunk {
            cs.clear_cache();
        }
        report.chunks += 1;
        report.input_coeffs += chunk.len() as u64;
    }
    cs.flush();
    report
}

/// **Result 2** — non-standard out-of-core transform with the z-order
/// schedule and crest cache: optimal `O(N^d/B^d)` block I/O using
/// `(2^d − 1)·log(N/M) + 1` extra memory.
///
/// Split contributions never touch the store while "hot": they accumulate
/// in an in-memory map keyed by coefficient index, and a quad-tree node's
/// `2^d − 1` coefficients are flushed (written once) the moment the z-order
/// walk leaves its subtree.
pub fn transform_nonstandard_zorder<M: TilingMap, S: BlockStore>(
    src: &impl ChunkSource,
    cs: &mut CoeffStore<M, S>,
) -> TransformReport {
    let (n, m) = cubic_levels(src);
    let d = src.domain_levels().len();
    let grid_bits = n - m;
    let mut report = TransformReport::default();
    let stats = cs.stats().clone();
    let block_capacity = cs.map().block_capacity();
    let phases = PhaseHists::resolve();
    let mut crest: HashMap<Vec<usize>, f64> = HashMap::new();
    let mut batch: Vec<(usize, usize, f64)> = Vec::new();
    for (rank, block) in MortonIter::new(d, grid_bits).enumerate() {
        let mut sw = Stopwatch::start();
        let mut chunk = src.read_chunk(&block);
        charge_input(&stats, chunk.len(), block_capacity);
        phases.read.record(sw.lap_ns());
        ss_core::nonstandard::forward(&mut chunk);
        {
            let map = cs.map();
            ss_core::split::nonstandard_deltas(&chunk, n, &block, |idx, delta| {
                // Shifted details land at levels ≤ m; split contributions at
                // levels > m (or the overall average) go to the crest cache.
                if is_split_target(n, m, idx) {
                    *crest.entry(idx.to_vec()).or_insert(0.0) += delta;
                } else {
                    let loc = map.locate(idx);
                    batch.push((loc.tile, loc.slot, delta));
                }
            });
        }
        phases.compute.record(sw.lap_ns());
        apply_sorted(cs, &mut batch);
        report.peak_crest_cache = report.peak_crest_cache.max(crest.len());
        // Flush every quad-tree node whose subtree the z-order walk just
        // completed: after chunk `rank`, level m+s is complete when
        // (rank+1) is a multiple of 2^{d·s}.
        for s in 1..=grid_bits {
            if (rank + 1) % (1usize << (d as u32 * s)) != 0 {
                break;
            }
            let node: Vec<usize> = block.iter().map(|&bq| bq >> s).collect();
            for eps in 1usize..(1usize << d) {
                let subband: Vec<bool> = (0..d).map(|t| (eps >> (d - 1 - t)) & 1 == 1).collect();
                let idx = ss_core::nonstandard::index_of(
                    n,
                    &ss_core::nonstandard::NsCoeff::Detail {
                        level: m + s,
                        node: node.clone(),
                        subband,
                    },
                );
                if let Some(v) = crest.remove(&idx) {
                    cs.add(&idx, v);
                }
            }
        }
        phases.writeback.record(sw.lap_ns());
        report.chunks += 1;
        report.input_coeffs += chunk.len() as u64;
    }
    // The overall average (and, if the walk was trivial, any leftovers).
    let mut leftovers: Vec<(Vec<usize>, f64)> = crest.drain().collect();
    leftovers.sort_by(|a, b| a.0.cmp(&b.0));
    for (idx, v) in leftovers {
        cs.add(&idx, v);
    }
    cs.flush();
    report
}

/// Like [`transform_nonstandard_zorder`], but additionally fills every
/// tile's redundant scaling slot **during the pass**, leaving the store
/// immediately ready for the single-block fast-path queries of
/// `ss-query` — no
/// `materialize_nonstandard_scalings` post-pass (and none of its
/// `O(tiles · 2^d · log N)` coefficient reads).
///
/// In-chunk tile roots get their scaling from the chunk's own averaging
/// pyramid; roots above the chunk level are computed by the same
/// base-`2^d` carry accumulator that drives the crest flush.
pub fn transform_nonstandard_zorder_scalings<S: BlockStore>(
    src: &impl ChunkSource,
    cs: &mut CoeffStore<ss_core::tiling::NonStandardTiling, S>,
) -> TransformReport {
    let (n, m) = cubic_levels(src);
    let d = src.domain_levels().len();
    let grid_bits = n - m;
    let mut report = TransformReport::default();
    let stats = cs.stats().clone();
    let block_capacity = cs.map().block_capacity();
    let mut crest: HashMap<Vec<usize>, f64> = HashMap::new();
    let mut batch: Vec<(usize, usize, f64)> = Vec::new();
    // acc[s-1] accumulates the child averages of the open node at level
    // m+s on the current z-order path.
    let phases = PhaseHists::resolve();
    let mut acc = vec![0.0f64; grid_bits as usize];
    for (rank, block) in MortonIter::new(d, grid_bits).enumerate() {
        let mut sw = Stopwatch::start();
        let chunk = src.read_chunk(&block);
        charge_input(&stats, chunk.len(), block_capacity);
        phases.read.record(sw.lap_ns());
        // In-chunk averaging pyramid: level 0 = raw cells, level j = means
        // of 2^{dj} cells. Fills scaling slots of tiles rooted inside the
        // chunk's subtree.
        let mut level_avgs = chunk.clone();
        for j in 1..=m {
            let side = 1usize << (m - j);
            let prev = level_avgs;
            level_avgs = NdArrayMean::halve(&prev, d);
            for node_local in MultiIndexIter::new(&vec![side; d]) {
                let node: Vec<usize> = node_local
                    .iter()
                    .zip(&block)
                    .map(|(&q, &bq)| (bq << (m - j)) + q)
                    .collect();
                if let Some(tile) = cs.map().tile_of_root(j, &node) {
                    let v = level_avgs.get(&node_local);
                    batch.push((tile, 0, v));
                }
            }
        }
        let chunk_avg = level_avgs.get(&vec![0usize; d]);
        let mut t = chunk;
        ss_core::nonstandard::forward(&mut t);
        {
            let map = cs.map();
            ss_core::split::nonstandard_deltas(&t, n, &block, |idx, delta| {
                if is_split_target(n, m, idx) {
                    *crest.entry(idx.to_vec()).or_insert(0.0) += delta;
                } else {
                    let loc = map.locate(idx);
                    batch.push((loc.tile, loc.slot, delta));
                }
            });
        }
        // Base-2^d carry: completed ancestor nodes get their average (and
        // scaling slot, when they root a tile) as the walk leaves them.
        let mut carry = chunk_avg;
        for s in 1..=grid_bits {
            acc[(s - 1) as usize] += carry;
            if (rank + 1) % (1usize << (d as u32 * s)) != 0 {
                break;
            }
            let node_avg = acc[(s - 1) as usize] / (1usize << d) as f64;
            acc[(s - 1) as usize] = 0.0;
            let node: Vec<usize> = block.iter().map(|&bq| bq >> s).collect();
            if m + s < n {
                if let Some(tile) = cs.map().tile_of_root(m + s, &node) {
                    batch.push((tile, 0, node_avg));
                }
            }
            // Flush the node's completed detail coefficients from the crest.
            for eps in 1usize..(1usize << d) {
                let subband: Vec<bool> = (0..d).map(|t| (eps >> (d - 1 - t)) & 1 == 1).collect();
                let idx = ss_core::nonstandard::index_of(
                    n,
                    &ss_core::nonstandard::NsCoeff::Detail {
                        level: m + s,
                        node: node.clone(),
                        subband,
                    },
                );
                if let Some(v) = crest.remove(&idx) {
                    let loc = cs.map().locate(&idx);
                    batch.push((loc.tile, loc.slot, v));
                }
            }
            carry = node_avg;
        }
        phases.compute.record(sw.lap_ns());
        apply_sorted(cs, &mut batch);
        phases.writeback.record(sw.lap_ns());
        report.peak_crest_cache = report.peak_crest_cache.max(crest.len());
        report.chunks += 1;
        report.input_coeffs += t.len() as u64;
    }
    let mut leftovers: Vec<(Vec<usize>, f64)> = crest.drain().collect();
    leftovers.sort_by(|a, b| a.0.cmp(&b.0));
    for (idx, v) in leftovers {
        cs.add(&idx, v);
    }
    cs.flush();
    report
}

/// Pairwise mean-pooling helper for the in-chunk averaging pyramid.
struct NdArrayMean;

impl NdArrayMean {
    fn halve(a: &ss_array::NdArray<f64>, d: usize) -> ss_array::NdArray<f64> {
        let side = a.shape().dim(0) / 2;
        let out_shape = ss_array::Shape::cube(d, side.max(1));
        ss_array::NdArray::from_fn(out_shape, |idx| {
            let mut sum = 0.0;
            let mut child = vec![0usize; d];
            for corner in 0..(1usize << d) {
                for t in 0..d {
                    child[t] = 2 * idx[t] + ((corner >> (d - 1 - t)) & 1);
                }
                sum += a.get(&child);
            }
            sum / (1usize << d) as f64
        })
    }
}

/// `true` when `idx` addresses a coefficient produced by SPLIT (level above
/// the chunk level `m`, or the overall average) rather than by SHIFT.
pub(crate) fn is_split_target(n: u32, m: u32, idx: &[usize]) -> bool {
    match ss_core::nonstandard::coeff_at(n, idx) {
        ss_core::nonstandard::NsCoeff::Scaling => true,
        ss_core::nonstandard::NsCoeff::Detail { level, .. } => level > m,
    }
}

/// Validates that the source is a hypercube with cubic chunks; returns
/// `(n, m)`.
pub(crate) fn cubic_levels(src: &impl ChunkSource) -> (u32, u32) {
    let n = src.domain_levels();
    let m = src.chunk_levels();
    assert!(
        n.windows(2).all(|w| w[0] == w[1]) && m.windows(2).all(|w| w[0] == w[1]),
        "non-standard form requires cubic domain and chunks"
    );
    (n[0], m[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ArraySource;
    use ss_array::{NdArray, Shape};
    use ss_core::tiling::{NonStandardTiling, StandardTiling};
    use ss_storage::wstore::mem_store;

    fn sample(dims: &[usize]) -> NdArray<f64> {
        NdArray::from_fn(Shape::new(dims), |idx| {
            idx.iter()
                .enumerate()
                .map(|(t, &i)| ((i * (2 * t + 3)) % 13) as f64)
                .sum::<f64>()
                - 4.5
        })
    }

    fn read_all<M: TilingMap, S: BlockStore>(
        cs: &mut CoeffStore<M, S>,
        dims: &[usize],
    ) -> NdArray<f64> {
        NdArray::from_fn(Shape::new(dims), |idx| cs.read(idx))
    }

    #[test]
    fn standard_chunked_matches_direct() {
        let a = sample(&[16, 16]);
        let src = ArraySource::new(&a, &[2, 2]);
        let mut cs = mem_store(StandardTiling::cube(2, 4, 2), 256, IoStats::new());
        let report = transform_standard(&src, &mut cs, false);
        assert_eq!(report.chunks, 16);
        let got = read_all(&mut cs, &[16, 16]);
        let want = ss_core::standard::forward_to(&a);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn standard_chunked_rectangular() {
        let a = sample(&[8, 32]);
        let src = ArraySource::new(&a, &[2, 3]);
        let mut cs = mem_store(StandardTiling::new(&[3, 5], &[1, 2]), 256, IoStats::new());
        transform_standard(&src, &mut cs, true);
        let got = read_all(&mut cs, &[8, 32]);
        let want = ss_core::standard::forward_to(&a);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn nonstandard_chunked_matches_direct() {
        let a = sample(&[16, 16]);
        let src = ArraySource::new(&a, &[2, 2]);
        let mut cs = mem_store(NonStandardTiling::new(2, 4, 2), 256, IoStats::new());
        transform_nonstandard(&src, &mut cs, false);
        let got = read_all(&mut cs, &[16, 16]);
        let want = ss_core::nonstandard::forward_to(&a);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn zorder_matches_direct_and_bounds_crest() {
        let a = sample(&[16, 16]);
        let src = ArraySource::new(&a, &[1, 1]);
        let mut cs = mem_store(NonStandardTiling::new(2, 4, 2), 256, IoStats::new());
        let report = transform_nonstandard_zorder(&src, &mut cs);
        let got = read_all(&mut cs, &[16, 16]);
        let want = ss_core::nonstandard::forward_to(&a);
        assert!(got.max_abs_diff(&want) < 1e-9);
        // Crest bound: (2^d − 1) · (n − m) + 1 = 3·3 + 1.
        assert!(
            report.peak_crest_cache <= 3 * 3 + 1,
            "peak {}",
            report.peak_crest_cache
        );
    }

    #[test]
    fn zorder_3d_matches_direct() {
        let a = sample(&[8, 8, 8]);
        let src = ArraySource::new(&a, &[1, 1, 1]);
        let mut cs = mem_store(NonStandardTiling::new(3, 3, 1), 512, IoStats::new());
        let report = transform_nonstandard_zorder(&src, &mut cs);
        let got = read_all(&mut cs, &[8, 8, 8]);
        let want = ss_core::nonstandard::forward_to(&a);
        assert!(got.max_abs_diff(&want) < 1e-9);
        assert!(report.peak_crest_cache <= 7 * 2 + 1);
    }

    #[test]
    fn zorder_writes_each_split_target_once() {
        // Compare coefficient writes between row-major (per-chunk split
        // folds) and z-order (write-once crest): z-order must write fewer.
        let a = sample(&[16, 16]);
        let src = ArraySource::new(&a, &[1, 1]);

        let stats_rm = IoStats::new();
        let mut cs = mem_store(NonStandardTiling::new(2, 4, 2), 256, stats_rm.clone());
        transform_nonstandard(&src, &mut cs, false);

        let stats_z = IoStats::new();
        let mut cs2 = mem_store(NonStandardTiling::new(2, 4, 2), 256, stats_z.clone());
        transform_nonstandard_zorder(&src, &mut cs2);

        assert!(
            stats_z.snapshot().coeff_writes < stats_rm.snapshot().coeff_writes,
            "z-order {} vs row-major {}",
            stats_z.snapshot().coeff_writes,
            stats_rm.snapshot().coeff_writes
        );
    }

    #[test]
    fn input_scan_is_charged() {
        let a = sample(&[8, 8]);
        let src = ArraySource::new(&a, &[1, 1]);
        let stats = IoStats::new();
        let mut cs = mem_store(StandardTiling::cube(2, 3, 1), 64, stats.clone());
        let report = transform_standard(&src, &mut cs, false);
        assert_eq!(report.input_coeffs, 64);
        assert!(stats.snapshot().coeff_reads >= 64);
    }

    #[test]
    fn zorder_with_scalings_matches_direct_and_fills_slots() {
        let a = sample(&[16, 16]);
        for chunk_levels in [1u32, 2] {
            let src = ArraySource::new(&a, &[chunk_levels; 2]);
            let mut cs = mem_store(NonStandardTiling::new(2, 4, 2), 256, IoStats::new());
            transform_nonstandard_zorder_scalings(&src, &mut cs);
            // Coefficients match the direct transform.
            let want = ss_core::nonstandard::forward_to(&a);
            for idx in ss_array::MultiIndexIter::new(&[16, 16]) {
                assert!(
                    (cs.read(&idx) - want.get(&idx)).abs() < 1e-9,
                    "m={chunk_levels} {idx:?}"
                );
            }
            // Every tile's scaling slot holds its root-node average.
            for tile in 0..cs.map().num_tiles() {
                let (j, node) = cs.map().tile_root(tile);
                if j == 4 {
                    continue; // top tile: slot 0 is the true overall average
                }
                let side = 1usize << j;
                let lo = [node[0] * side, node[1] * side];
                let hi = [lo[0] + side - 1, lo[1] + side - 1];
                let want_avg = a.region_sum(&lo, &hi) / (side * side) as f64;
                let got = cs.read_at(tile, 0);
                assert!(
                    (got - want_avg).abs() < 1e-9,
                    "m={chunk_levels} tile {tile} root ({j},{node:?}): {got} vs {want_avg}"
                );
            }
        }
    }

    #[test]
    fn sparse_transform_matches_dense_and_costs_less() {
        // A 32x32 domain with a single occupied 4x4 corner.
        let mut a = NdArray::<f64>::zeros(Shape::cube(2, 32));
        for idx in ss_array::MultiIndexIter::new(&[4, 4]) {
            a.set(
                &[idx[0] + 8, idx[1] + 16],
                (idx[0] * 4 + idx[1]) as f64 + 1.0,
            );
        }
        let src = ArraySource::new(&a, &[2, 2]);
        let stats_d = IoStats::new();
        let mut dense = mem_store(StandardTiling::cube(2, 5, 2), 256, stats_d.clone());
        transform_standard(&src, &mut dense, false);
        let d = stats_d.snapshot();
        let stats_s = IoStats::new();
        let mut sparse = mem_store(StandardTiling::cube(2, 5, 2), 256, stats_s.clone());
        let report = transform_standard_sparse(&src, &mut sparse);
        let s = stats_s.snapshot();
        assert_eq!(report.chunks, 1, "only the occupied chunk processed");
        for idx in ss_array::MultiIndexIter::new(&[32, 32]) {
            assert!((dense.read(&idx) - sparse.read(&idx)).abs() < 1e-12);
        }
        // The dense driver already skips zero coefficients on the write
        // side; the sparse win is the skipped input scan (z vs N^d reads).
        assert_eq!(s.coeff_reads, 16, "read exactly one chunk");
        assert!(
            s.coeff_reads * 10 < d.coeff_reads && s.block_reads * 4 < d.block_reads,
            "sparse {s} vs dense {d}"
        );
    }

    #[test]
    fn whole_domain_single_chunk_degenerates_to_direct() {
        let a = sample(&[8, 8]);
        let src = ArraySource::new(&a, &[3, 3]);
        let mut cs = mem_store(StandardTiling::cube(2, 3, 1), 64, IoStats::new());
        transform_standard(&src, &mut cs, false);
        let got = read_all(&mut cs, &[8, 8]);
        let want = ss_core::standard::forward_to(&a);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }
}
