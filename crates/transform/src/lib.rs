//! Out-of-core wavelet transformation and wavelet-domain appending.
//!
//! This crate turns the in-memory SHIFT/SPLIT primitives of `ss-core` into
//! the disk-resident algorithms the paper evaluates:
//!
//! * [`source`] — the chunked input abstraction ("data organised and stored
//!   in multidimensional chunks", Section 5.1),
//! * [`chunked`] — **Result 1** (standard form) and **Result 2**
//!   (non-standard form with z-order schedule and crest cache): transform a
//!   dataset far larger than memory by transforming each chunk in memory and
//!   folding its SHIFT-SPLIT delta stream into tiled storage,
//! * [`vitter`] — the Vitter-et-al.-style baseline: dimension-by-dimension
//!   external 1-d transforms over row-major block storage,
//! * [`append`] — **Section 5.2**: appending new data to an existing
//!   transform, including wavelet-domain domain expansion,
//! * [`update`] — batch updates of arbitrary (non-dyadic) boxes in the
//!   wavelet domain, via dyadic decomposition (generalising Example 2),
//! * [`chain`] — the non-standard hypercube-chain alternative for appending
//!   (Result 5's structure on disk): flat per-append cost, no expansions.

// Axis-indexed loops over several parallel per-axis arrays are the clearest
// idiom for the index arithmetic in this workspace; iterator rewrites hurt
// readability without changing the generated code.
#![allow(clippy::needless_range_loop)]

pub mod append;
pub mod chain;
pub mod chunked;
pub mod fallible;
pub mod par;
pub mod source;
pub mod update;
pub mod vitter;

pub use append::Appender;
pub use chain::NsChainStore;
pub use chunked::{
    transform_nonstandard, transform_nonstandard_zorder, transform_nonstandard_zorder_scalings,
    transform_standard, transform_standard_sparse, TransformReport,
};
pub use fallible::{try_transform_standard, try_transform_standard_parallel};
pub use par::{resolve_workers, transform_nonstandard_parallel, transform_standard_parallel};
pub use source::{ArraySource, ChunkSource, FnSource};
pub use update::{
    for_each_box_delta_nonstandard, for_each_box_delta_standard, update_box_nonstandard,
    update_box_pointwise, update_box_standard, UpdateReport,
};
pub use vitter::vitter_transform_standard;
