//! The Vitter-et-al.-style baseline transform (the comparator of
//! Figure 11 and Table 2).
//!
//! Vitter and Wang compute the standard multidimensional decomposition by
//! running complete 1-d transforms along one dimension at a time over
//! row-major disk-resident data, without the SHIFT-SPLIT reorganisation or
//! the subtree tiling. We reproduce that strategy faithfully as an
//! *external* algorithm: the dataset lives in a row-major
//! ([`NaiveMap`]) block store behind an LRU pool sized
//! to the memory budget, and each axis pass streams every 1-d line through
//! memory. Along the innermost axis lines are block-contiguous and the pass
//! costs ~2 scans; along outer axes the strided access pattern re-reads
//! blocks whenever the pool cannot hold a full slab — exactly the
//! memory-sensitive log-factor behaviour the paper's Table 2 attributes to
//! this baseline. (The original paper's cost expression is OCR-garbled in
//! our source; we therefore *measure* this implementation rather than
//! assert its closed form — see DESIGN.md, Corrections.)

use crate::source::ChunkSource;
use ss_array::MultiIndexIter;
use ss_core::{NaiveMap, TilingMap};
use ss_storage::{CoeffStore, IoStats, MemBlockStore};

/// Runs the baseline external standard transform.
///
/// * `src` — chunked input (scanned once to materialise the working store);
/// * `mem_coeffs` — memory budget in coefficients (the paper's `M^d`);
/// * `block_capacity` — coefficients per disk block.
///
/// Returns the transformed store (row-major layout, canonical standard-form
/// coefficients) whose shared [`IoStats`] carry the measured cost.
pub fn vitter_transform_standard(
    src: &impl ChunkSource,
    mem_coeffs: usize,
    block_capacity: usize,
    stats: IoStats,
) -> CoeffStore<NaiveMap, MemBlockStore> {
    let shape = src.domain_shape();
    let d = shape.ndim();
    let map = NaiveMap::new(shape.clone(), block_capacity);
    let store = MemBlockStore::new(block_capacity, map.num_tiles(), stats.clone());
    let pool_budget = (mem_coeffs / block_capacity).max(1);
    let mut cs = CoeffStore::new(map, store, pool_budget, stats.clone());

    // Phase 1: materialise the input in row-major block storage.
    let mut global = vec![0usize; d];
    for block in MultiIndexIter::new(&src.grid()) {
        let chunk = src.read_chunk(&block);
        stats.add_coeff_reads(chunk.len() as u64);
        stats.add_block_reads(chunk.len().div_ceil(block_capacity) as u64);
        for local in MultiIndexIter::new(chunk.shape().dims()) {
            for (t, (&b, &l)) in block.iter().zip(&local).enumerate() {
                global[t] = (b << src.chunk_levels()[t]) + l;
            }
            cs.write(&global, chunk.get(&local));
        }
    }
    cs.flush();

    // Phase 2: one full 1-d transform pass per axis, streaming each line
    // through memory.
    let dims = shape.dims().to_vec();
    for axis in 0..d {
        let len = dims[axis];
        if len == 1 {
            continue;
        }
        let mut outer_dims = dims.clone();
        outer_dims[axis] = 1;
        let mut line = vec![0.0f64; len];
        let mut idx = vec![0usize; d];
        for outer in MultiIndexIter::new(&outer_dims) {
            idx.copy_from_slice(&outer);
            for (i, v) in line.iter_mut().enumerate() {
                idx[axis] = i;
                *v = cs.read(&idx);
            }
            ss_core::haar1d::forward(&mut line);
            for (i, &v) in line.iter().enumerate() {
                idx[axis] = i;
                cs.write(&idx, v);
            }
        }
        cs.flush();
    }
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ArraySource;
    use ss_array::{NdArray, Shape};

    fn sample(dims: &[usize]) -> NdArray<f64> {
        NdArray::from_fn(Shape::new(dims), |idx| {
            ((idx.iter().sum::<usize>() * 7) % 11) as f64 - 3.0
        })
    }

    #[test]
    fn produces_canonical_standard_transform() {
        let a = sample(&[8, 16]);
        let src = ArraySource::new(&a, &[1, 2]);
        let mut cs = vitter_transform_standard(&src, 64, 8, IoStats::new());
        let want = ss_core::standard::forward_to(&a);
        for idx in MultiIndexIter::new(&[8, 16]) {
            assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-9, "{idx:?}");
        }
    }

    #[test]
    fn more_memory_means_less_io() {
        let a = sample(&[32, 32]);
        let src = ArraySource::new(&a, &[2, 2]);
        let small_stats = IoStats::new();
        let _ = vitter_transform_standard(&src, 64, 16, small_stats.clone());
        let big_stats = IoStats::new();
        let _ = vitter_transform_standard(&src, 1024, 16, big_stats.clone());
        assert!(
            big_stats.snapshot().blocks() < small_stats.snapshot().blocks(),
            "big-mem {} vs small-mem {}",
            big_stats.snapshot().blocks(),
            small_stats.snapshot().blocks()
        );
    }

    #[test]
    fn three_dimensional_correctness() {
        let a = sample(&[4, 4, 8]);
        let src = ArraySource::new(&a, &[1, 1, 2]);
        let mut cs = vitter_transform_standard(&src, 128, 8, IoStats::new());
        let want = ss_core::standard::forward_to(&a);
        for idx in MultiIndexIter::new(&[4, 4, 8]) {
            assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-9, "{idx:?}");
        }
    }
}
