//! Batch updates of arbitrary regions in the wavelet domain
//! (generalising Example 2 of the paper).
//!
//! SHIFT-SPLIT batches updates for a *dyadic* range. An arbitrary
//! axis-aligned update box decomposes into `O(Π 2·log M_t)` maximal dyadic
//! ranges (Section 5.4 applies the same decomposition to selections); each
//! piece is transformed independently and folded in. Total cost
//! `O(V + pieces · Π log(N_t))` coefficient updates for an update volume
//! `V` — versus `O(V · Π log N_t)` for cell-at-a-time maintenance.

use ss_array::{decompose_range, NdArray, Shape};
use ss_core::TilingMap;
use ss_storage::{BlockStore, CoeffStore};

/// What one box update amounted to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Dyadic pieces the box decomposed into (cubes, for the non-standard
    /// form, whose pieces must be subdivided down to their shortest axis).
    pub pieces: usize,
    /// SHIFT-SPLIT delta emissions — coefficient touches the update cost.
    pub coeffs_touched: usize,
}

impl UpdateReport {
    /// Accumulates another report (e.g. across the boxes of a batch).
    pub fn merge(&mut self, other: UpdateReport) {
        self.pieces += other.pieces;
        self.coeffs_touched += other.coeffs_touched;
    }
}

fn check_box(n_bits: impl Iterator<Item = u32>, origin: &[usize], delta: &NdArray<f64>, d: usize) {
    assert_eq!(origin.len(), d);
    assert_eq!(delta.shape().ndim(), d);
    for (t, ((&o, &e), nt)) in origin
        .iter()
        .zip(delta.shape().dims())
        .zip(n_bits)
        .enumerate()
    {
        assert!(e > 0, "empty update box on axis {t}");
        assert!(
            o + e - 1 < (1usize << nt),
            "update escapes domain on axis {t}"
        );
    }
}

/// Enumerates every `(global index, delta)` a standard-form box update
/// implies, without touching any store: the shared core behind
/// [`update_box_standard`] and the coalescing maintenance engine.
///
/// One extraction buffer and one set of index scratch vectors are reused
/// across the dyadic pieces, so the per-piece cost is the transform and the
/// SHIFT-SPLIT cross product, not allocator traffic.
pub fn for_each_box_delta_standard(
    n: &[u32],
    origin: &[usize],
    delta: &NdArray<f64>,
    mut emit: impl FnMut(&[usize], f64),
) -> UpdateReport {
    let d = n.len();
    check_box(n.iter().copied(), origin, delta, d);
    let hi: Vec<usize> = origin
        .iter()
        .zip(delta.shape().dims())
        .map(|(&o, &e)| o + e - 1)
        .collect();
    let pieces = decompose_range(origin, &hi);
    let mut report = UpdateReport {
        pieces: pieces.len(),
        coeffs_touched: 0,
    };
    let mut rel_origin = vec![0usize; d];
    let mut block = vec![0usize; d];
    let mut extract_buf: Vec<f64> = Vec::new();
    for piece in &pieces {
        // Extract the sub-box of `delta` covered by this piece and
        // SHIFT-SPLIT it at the piece's dyadic position.
        for (t, (&p, &o)) in piece.origin().iter().zip(origin).enumerate() {
            rel_origin[t] = p - o;
            block[t] = piece.axes[t].translation;
        }
        let extents = piece.extents();
        let mut buf = std::mem::take(&mut extract_buf);
        buf.resize(piece.len(), 0.0);
        let mut t = NdArray::from_vec(Shape::new(&extents), buf);
        delta.extract_into(&rel_origin, &mut t);
        ss_core::standard::forward(&mut t);
        ss_core::split::standard_deltas(&t, n, &block, |idx, v| {
            report.coeffs_touched += 1;
            emit(idx, v);
        });
        extract_buf = t.into_vec();
    }
    report
}

/// Enumerates every `(global index, delta)` a **non-standard-form** box
/// update implies for a `d`-cube domain of side `2^n`.
///
/// Non-standard SHIFT-SPLIT requires cubic chunks, so each dyadic piece is
/// subdivided into aligned cubes of its shortest axis's side before being
/// transformed; `pieces` in the returned report counts those cubes.
pub fn for_each_box_delta_nonstandard(
    n: u32,
    origin: &[usize],
    delta: &NdArray<f64>,
    mut emit: impl FnMut(&[usize], f64),
) -> UpdateReport {
    let d = origin.len();
    check_box(std::iter::repeat_n(n, d), origin, delta, d);
    let hi: Vec<usize> = origin
        .iter()
        .zip(delta.shape().dims())
        .map(|(&o, &e)| o + e - 1)
        .collect();
    let pieces = decompose_range(origin, &hi);
    let mut report = UpdateReport::default();
    let mut rel_origin = vec![0usize; d];
    let mut block = vec![0usize; d];
    let mut extract_buf: Vec<f64> = Vec::new();
    for piece in &pieces {
        let m = piece
            .axes
            .iter()
            .map(|a| a.level)
            .min()
            .expect("non-empty rank");
        let side = 1usize << m;
        // Sub-cube grid within this (possibly non-cubic) dyadic piece.
        let grid: Vec<usize> = piece.axes.iter().map(|a| 1usize << (a.level - m)).collect();
        let cube_shape = Shape::cube(d, side);
        for cell in ss_array::MultiIndexIter::new(&grid) {
            for t in 0..d {
                let abs = piece.axes[t].start() + cell[t] * side;
                rel_origin[t] = abs - origin[t];
                block[t] = abs >> m;
            }
            let mut buf = std::mem::take(&mut extract_buf);
            buf.resize(cube_shape.len(), 0.0);
            let mut t = NdArray::from_vec(cube_shape.clone(), buf);
            delta.extract_into(&rel_origin, &mut t);
            ss_core::nonstandard::forward(&mut t);
            ss_core::split::nonstandard_deltas(&t, n, &block, |idx, v| {
                report.coeffs_touched += 1;
                emit(idx, v);
            });
            extract_buf = t.into_vec();
            report.pieces += 1;
        }
    }
    report
}

/// Adds `delta` (an arbitrary-shaped update box anchored at `origin`) to a
/// standard-form transformed store, entirely in the wavelet domain.
///
/// `n` are the per-axis domain levels. Neither `origin` nor the box extents
/// need any alignment; the box is decomposed into dyadic pieces internally.
pub fn update_box_standard<M: TilingMap, S: BlockStore>(
    cs: &mut CoeffStore<M, S>,
    n: &[u32],
    origin: &[usize],
    delta: &NdArray<f64>,
) -> UpdateReport {
    let report = for_each_box_delta_standard(n, origin, delta, |idx, v| {
        cs.add(idx, v);
    });
    cs.flush();
    report
}

/// Non-standard-form twin of [`update_box_standard`]: adds `delta` to a
/// store holding the non-standard transform of a `d`-cube of side `2^n`.
pub fn update_box_nonstandard<M: TilingMap, S: BlockStore>(
    cs: &mut CoeffStore<M, S>,
    n: u32,
    origin: &[usize],
    delta: &NdArray<f64>,
) -> UpdateReport {
    let report = for_each_box_delta_nonstandard(n, origin, delta, |idx, v| {
        cs.add(idx, v);
    });
    cs.flush();
    report
}

/// Cell-at-a-time baseline: applies every update through its Lemma 1 path.
/// Costs `O(V · Π(n_t + 1))` coefficient updates — what `update_box_standard`
/// is measured against.
pub fn update_box_pointwise<M: TilingMap, S: BlockStore>(
    cs: &mut CoeffStore<M, S>,
    n: &[u32],
    origin: &[usize],
    delta: &NdArray<f64>,
) {
    let d = n.len();
    let mut pos = vec![0usize; d];
    for rel in ss_array::MultiIndexIter::new(delta.shape().dims()) {
        let v = delta.get(&rel);
        if v == 0.0 {
            continue;
        }
        for (t, (&o, &r)) in origin.iter().zip(&rel).enumerate() {
            pos[t] = o + r;
        }
        // A single-cell update is the cross product of per-axis point
        // *analysis* weights: cell -> coefficient contribution is
        // w = Π sign_t / 2^{j_t} for details, 1/2^{n_t} for the average.
        let per_axis: Vec<Vec<(usize, f64)>> = (0..d)
            .map(|t| {
                let layout = ss_core::Layout1d::new(n[t]);
                layout
                    .point_contributions(pos[t])
                    .into_iter()
                    .map(|(idx, sign)| {
                        let level = match layout.coeff_at(idx) {
                            ss_core::Coeff1d::Scaling => n[t],
                            ss_core::Coeff1d::Detail { level, .. } => level,
                        };
                        (idx, sign / (1u64 << level) as f64)
                    })
                    .collect()
            })
            .collect();
        let counts: Vec<usize> = per_axis.iter().map(|v| v.len()).collect();
        let mut idx = vec![0usize; d];
        for choice in ss_array::MultiIndexIter::new(&counts) {
            let mut w = 1.0;
            for (t, &c) in choice.iter().enumerate() {
                let (i, f) = per_axis[t][c];
                idx[t] = i;
                w *= f;
            }
            cs.add(&idx, v * w);
        }
    }
    cs.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{MultiIndexIter, Shape};
    use ss_core::tiling::StandardTiling;
    use ss_storage::{wstore::mem_store, IoStats};

    fn setup(
        side: usize,
        n: u32,
    ) -> (
        NdArray<f64>,
        ss_storage::CoeffStore<StandardTiling, ss_storage::MemBlockStore>,
    ) {
        let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 5 + idx[1] * 3) % 13) as f64
        });
        let t = ss_core::standard::forward_to(&data);
        let mut cs = mem_store(StandardTiling::new(&[n; 2], &[2; 2]), 1024, IoStats::new());
        for idx in MultiIndexIter::new(&[side, side]) {
            cs.write(&idx, t.get(&idx));
        }
        (data, cs)
    }

    fn check_matches(
        cs: &mut ss_storage::CoeffStore<StandardTiling, ss_storage::MemBlockStore>,
        n: u32,
        reference: &NdArray<f64>,
    ) {
        let want = ss_core::standard::forward_to(reference);
        for idx in MultiIndexIter::new(reference.shape().dims()) {
            let got = cs.read(&idx);
            assert!(
                (got - want.get(&idx)).abs() < 1e-9,
                "{idx:?}: {got} vs {}",
                want.get(&idx)
            );
        }
        let _ = n;
    }

    #[test]
    fn misaligned_box_update_matches_recompute() {
        let (mut data, mut cs) = setup(32, 5);
        // An awkward 7x9 box at (3, 5).
        let delta = NdArray::from_fn(Shape::new(&[7, 9]), |idx| {
            (idx[0] + 2 * idx[1]) as f64 - 5.0
        });
        let report = update_box_standard(&mut cs, &[5, 5], &[3, 5], &delta);
        assert!(report.pieces > 1, "misaligned box must decompose");
        assert!(report.coeffs_touched > 0);
        for rel in MultiIndexIter::new(&[7, 9]) {
            let idx = [3 + rel[0], 5 + rel[1]];
            data.set(&idx, data.get(&idx) + delta.get(&rel));
        }
        check_matches(&mut cs, 5, &data);
    }

    #[test]
    fn aligned_box_is_single_piece() {
        let (mut data, mut cs) = setup(32, 5);
        let delta = NdArray::from_fn(Shape::new(&[8, 8]), |_| 1.5);
        let report = update_box_standard(&mut cs, &[5, 5], &[8, 16], &delta);
        assert_eq!(report.pieces, 1);
        for rel in MultiIndexIter::new(&[8, 8]) {
            let idx = [8 + rel[0], 16 + rel[1]];
            data.set(&idx, data.get(&idx) + 1.5);
        }
        check_matches(&mut cs, 5, &data);
    }

    #[test]
    fn pointwise_baseline_agrees_with_batched() {
        let (data, mut cs_a) = setup(16, 4);
        let (_, mut cs_b) = setup(16, 4);
        let delta = NdArray::from_fn(Shape::new(&[5, 3]), |idx| idx[0] as f64 - idx[1] as f64);
        update_box_standard(&mut cs_a, &[4, 4], &[2, 9], &delta);
        update_box_pointwise(&mut cs_b, &[4, 4], &[2, 9], &delta);
        for idx in MultiIndexIter::new(&[16, 16]) {
            assert!((cs_a.read(&idx) - cs_b.read(&idx)).abs() < 1e-9, "{idx:?}");
        }
        let _ = data;
    }

    #[test]
    fn batched_touches_fewer_coefficients_for_large_boxes() {
        let (_, mut cs_a) = setup(64, 6);
        let (_, mut cs_b) = setup(64, 6);
        let delta = NdArray::from_fn(Shape::new(&[32, 32]), |_| 2.0);
        let stats_a = cs_a.stats().clone();
        let stats_b = cs_b.stats().clone();
        stats_a.reset();
        update_box_standard(&mut cs_a, &[6, 6], &[0, 0], &delta);
        let batched = stats_a.snapshot().coeff_writes;
        stats_b.reset();
        update_box_pointwise(&mut cs_b, &[6, 6], &[0, 0], &delta);
        let pointwise = stats_b.snapshot().coeff_writes;
        assert!(
            batched * 10 < pointwise,
            "batched {batched} vs pointwise {pointwise}"
        );
    }

    #[test]
    fn single_cell_update() {
        let (mut data, mut cs) = setup(16, 4);
        let delta = NdArray::from_fn(Shape::new(&[1, 1]), |_| 7.0);
        update_box_standard(&mut cs, &[4, 4], &[9, 13], &delta);
        data.set(&[9, 13], data.get(&[9, 13]) + 7.0);
        check_matches(&mut cs, 4, &data);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_domain_update() {
        let (_, mut cs) = setup(16, 4);
        let delta = NdArray::from_fn(Shape::new(&[4, 4]), |_| 1.0);
        update_box_standard(&mut cs, &[4, 4], &[14, 0], &delta);
    }

    #[test]
    fn nonstandard_box_update_matches_recompute() {
        use ss_core::tiling::NonStandardTiling;
        let n = 5u32;
        let side = 1usize << n;
        let mut data = NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 11 + idx[1] * 7) % 17) as f64 - 4.0
        });
        let t = ss_core::nonstandard::forward_to(&data);
        let mut cs = mem_store(NonStandardTiling::new(2, n, 2), 1024, IoStats::new());
        for idx in MultiIndexIter::new(&[side, side]) {
            cs.write(&idx, t.get(&idx));
        }
        // An awkward 7x9 box at (3, 5): pieces of mixed extents, so cubic
        // subdivision must kick in.
        let delta = NdArray::from_fn(Shape::new(&[7, 9]), |idx| {
            (idx[0] * 2 + idx[1]) as f64 * 0.5 - 3.0
        });
        let report = update_box_nonstandard(&mut cs, n, &[3, 5], &delta);
        assert!(report.pieces > 1);
        for rel in MultiIndexIter::new(&[7, 9]) {
            let idx = [3 + rel[0], 5 + rel[1]];
            data.set(&idx, data.get(&idx) + delta.get(&rel));
        }
        let want = ss_core::nonstandard::forward_to(&data);
        for idx in MultiIndexIter::new(&[side, side]) {
            let got = cs.read(&idx);
            assert!(
                (got - want.get(&idx)).abs() < 1e-9,
                "{idx:?}: {got} vs {}",
                want.get(&idx)
            );
        }
    }

    #[test]
    fn enumeration_core_reports_touch_count() {
        let delta = NdArray::from_fn(Shape::new(&[3, 3]), |idx| (idx[0] + idx[1]) as f64 + 1.0);
        let mut count = 0usize;
        let report = for_each_box_delta_standard(&[4, 4], &[1, 2], &delta, |_, _| count += 1);
        assert_eq!(report.coeffs_touched, count);
        assert!(report.pieces >= 4, "3x3 at (1,2) must shatter");
    }
}
