//! Chunked input sources for out-of-core transformation.
//!
//! The paper assumes "the data are either organized and stored in
//! multidimensional chunks of equal size and shape, or that the
//! chunk-organization process has been performed" (Section 5.1).
//! [`ChunkSource`] is that contract: a grid of equally-shaped chunks, each
//! retrievable by its grid coordinates. Reading a chunk is charged to the
//! shared [`IoStats`](ss_storage::IoStats) by the transform drivers, since
//! the input scan is part of every algorithm's I/O budget.

use ss_array::{NdArray, Shape};

/// A dataset exposed as a grid of equally-shaped chunks.
pub trait ChunkSource {
    /// Per-axis `log2` of the full domain.
    fn domain_levels(&self) -> &[u32];

    /// Per-axis `log2` of one chunk.
    fn chunk_levels(&self) -> &[u32];

    /// Reads the chunk at grid coordinates `block`
    /// (`block[t] < 2^{domain_levels[t] − chunk_levels[t]}`).
    fn read_chunk(&self, block: &[usize]) -> NdArray<f64>;

    /// Per-axis chunk-grid extents.
    fn grid(&self) -> Vec<usize> {
        self.domain_levels()
            .iter()
            .zip(self.chunk_levels())
            .map(|(&n, &m)| 1usize << (n - m))
            .collect()
    }

    /// Full-domain shape.
    fn domain_shape(&self) -> Shape {
        Shape::new(
            &self
                .domain_levels()
                .iter()
                .map(|&n| 1usize << n)
                .collect::<Vec<_>>(),
        )
    }

    /// One chunk's shape.
    fn chunk_shape(&self) -> Shape {
        Shape::new(
            &self
                .chunk_levels()
                .iter()
                .map(|&m| 1usize << m)
                .collect::<Vec<_>>(),
        )
    }

    /// Cells per chunk.
    fn chunk_len(&self) -> usize {
        self.chunk_shape().len()
    }
}

/// A [`ChunkSource`] over an in-memory array (tests, small experiments).
pub struct ArraySource<'a> {
    data: &'a NdArray<f64>,
    domain_levels: Vec<u32>,
    chunk_levels: Vec<u32>,
}

impl<'a> ArraySource<'a> {
    /// Splits `data` into `2^{chunk_levels[t]}`-sized chunks.
    ///
    /// # Panics
    ///
    /// Panics when the shape is not dyadic or a chunk axis exceeds the
    /// domain axis.
    pub fn new(data: &'a NdArray<f64>, chunk_levels: &[u32]) -> Self {
        let domain_levels = data.shape().levels();
        assert_eq!(chunk_levels.len(), domain_levels.len());
        for (t, (&m, &n)) in chunk_levels.iter().zip(&domain_levels).enumerate() {
            assert!(m <= n, "chunk axis {t} larger than domain");
        }
        ArraySource {
            data,
            domain_levels,
            chunk_levels: chunk_levels.to_vec(),
        }
    }
}

impl ChunkSource for ArraySource<'_> {
    fn domain_levels(&self) -> &[u32] {
        &self.domain_levels
    }
    fn chunk_levels(&self) -> &[u32] {
        &self.chunk_levels
    }
    fn read_chunk(&self, block: &[usize]) -> NdArray<f64> {
        let origin: Vec<usize> = block
            .iter()
            .zip(&self.chunk_levels)
            .map(|(&b, &m)| b << m)
            .collect();
        let extents: Vec<usize> = self.chunk_levels.iter().map(|&m| 1usize << m).collect();
        self.data.extract(&origin, &extents)
    }
}

/// A [`ChunkSource`] that synthesises chunks on demand from a cell function
/// — how the huge Figure 11 cube is "read" without materialising 16 GB.
pub struct FnSource<F: Fn(&[usize]) -> f64> {
    f: F,
    domain_levels: Vec<u32>,
    chunk_levels: Vec<u32>,
}

impl<F: Fn(&[usize]) -> f64> FnSource<F> {
    /// A virtual dataset whose cell at global index `idx` is `f(idx)`.
    pub fn new(domain_levels: &[u32], chunk_levels: &[u32], f: F) -> Self {
        assert_eq!(domain_levels.len(), chunk_levels.len());
        for (&m, &n) in chunk_levels.iter().zip(domain_levels) {
            assert!(m <= n);
        }
        FnSource {
            f,
            domain_levels: domain_levels.to_vec(),
            chunk_levels: chunk_levels.to_vec(),
        }
    }
}

impl<F: Fn(&[usize]) -> f64> ChunkSource for FnSource<F> {
    fn domain_levels(&self) -> &[u32] {
        &self.domain_levels
    }
    fn chunk_levels(&self) -> &[u32] {
        &self.chunk_levels
    }
    fn read_chunk(&self, block: &[usize]) -> NdArray<f64> {
        let shape = self.chunk_shape();
        let mut global = vec![0usize; block.len()];
        NdArray::from_fn(shape, |local| {
            for (t, (&b, &l)) in block.iter().zip(local).enumerate() {
                global[t] = (b << self.chunk_levels[t]) + l;
            }
            (self.f)(&global)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_source_extracts_chunks() {
        let data = NdArray::from_fn(Shape::new(&[4, 8]), |idx| (idx[0] * 8 + idx[1]) as f64);
        let src = ArraySource::new(&data, &[1, 2]);
        assert_eq!(src.grid(), vec![2, 2]);
        let chunk = src.read_chunk(&[1, 1]);
        assert_eq!(chunk.shape().dims(), &[2, 4]);
        assert_eq!(chunk.get(&[0, 0]), data.get(&[2, 4]));
    }

    #[test]
    fn fn_source_matches_direct_evaluation() {
        let src = FnSource::new(&[3, 3], &[1, 1], |idx| (idx[0] * 10 + idx[1]) as f64);
        let chunk = src.read_chunk(&[2, 3]);
        assert_eq!(chunk.get(&[0, 0]), 46.0); // global (4, 6)
        assert_eq!(chunk.get(&[1, 1]), 57.0); // global (5, 7)
    }

    #[test]
    fn chunk_metadata() {
        let src = FnSource::new(&[4, 4], &[2, 2], |_| 0.0);
        assert_eq!(src.chunk_len(), 16);
        assert_eq!(src.domain_shape().dims(), &[16, 16]);
        assert_eq!(src.grid(), vec![4, 4]);
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_chunks() {
        let data = NdArray::<f64>::zeros(Shape::new(&[4, 4]));
        ArraySource::new(&data, &[3, 1]);
    }
}
