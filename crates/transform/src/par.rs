//! Parallel out-of-core transformation.
//!
//! The SHIFT-SPLIT decomposition is embarrassingly parallel on the CPU
//! side: chunks transform independently and their delta streams commute
//! (addition). This driver shards the chunk grid across worker threads;
//! each worker transforms its chunks and *accumulates* deltas into a
//! local map keyed by `(tile, slot)` — merging the many per-chunk
//! contributions to shared coarse coefficients for free — and the caller's
//! thread then applies each worker's batch in sorted tile order.
//!
//! I/O accounting note: accumulating before applying means shared
//! coefficients are written once per worker rather than once per chunk, so
//! the measured write I/O is a *lower* bound on the serial drivers' (the
//! experiments that validate the paper's per-chunk analyses use the serial
//! drivers; this one exists to make wall-clock ingestion fast).

use crate::source::ChunkSource;
use ss_array::Shape;
use ss_core::TilingMap;
use ss_storage::{BlockStore, CoeffStore};
use std::collections::HashMap;

/// Parallel standard-form transform with `workers` threads
/// (`0` = available parallelism).
pub fn transform_standard_parallel<M, S>(
    src: &(impl ChunkSource + Sync),
    cs: &mut CoeffStore<M, S>,
    workers: usize,
) -> crate::chunked::TransformReport
where
    M: TilingMap + Sync,
    S: BlockStore,
{
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    };
    let n = src.domain_levels().to_vec();
    let grid = src.grid();
    let grid_shape = Shape::new(&grid);
    let total_chunks = grid_shape.len();
    let stats = cs.stats().clone();
    let block_capacity = cs.map().block_capacity();
    let map = cs.map();

    // Shard chunk ordinals round-robin-by-range across workers.
    let batches: Vec<HashMap<(usize, usize), f64>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let n = n.clone();
            let grid_shape = grid_shape.clone();
            let stats = stats.clone();
            handles.push(scope.spawn(move || {
                let mut acc: HashMap<(usize, usize), f64> = HashMap::new();
                let lo = total_chunks * w / workers;
                let hi = total_chunks * (w + 1) / workers;
                for ordinal in lo..hi {
                    let block = grid_shape.unoffset(ordinal);
                    let mut chunk = src.read_chunk(&block);
                    stats.add_coeff_reads(chunk.len() as u64);
                    stats.add_block_reads(chunk.len().div_ceil(block_capacity) as u64);
                    ss_core::standard::forward(&mut chunk);
                    ss_core::split::standard_deltas(&chunk, &n, &block, |idx, delta| {
                        let loc = map.locate(idx);
                        *acc.entry((loc.tile, loc.slot)).or_insert(0.0) += delta;
                    });
                }
                acc
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Apply each worker's accumulated batch in tile order (single writer).
    let mut report = crate::chunked::TransformReport {
        chunks: total_chunks,
        ..Default::default()
    };
    for batch in batches {
        let mut sorted: Vec<((usize, usize), f64)> = batch.into_iter().collect();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        for ((tile, slot), delta) in sorted {
            stats.add_coeff_writes(1);
            cs.pool().add(tile, slot, delta);
        }
    }
    cs.flush();
    report.input_coeffs = (total_chunks * src.chunk_len()) as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ArraySource;
    use ss_array::{MultiIndexIter, NdArray};
    use ss_core::tiling::StandardTiling;
    use ss_storage::{wstore::mem_store, IoStats};

    fn sample(side: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 37 + idx[1] * 11) % 29) as f64 - 9.0
        })
    }

    #[test]
    fn parallel_matches_direct_transform() {
        let a = sample(64);
        let src = ArraySource::new(&a, &[3, 3]);
        for workers in [1usize, 2, 4, 7] {
            let mut cs = mem_store(StandardTiling::new(&[6; 2], &[2; 2]), 512, IoStats::new());
            let report = transform_standard_parallel(&src, &mut cs, workers);
            assert_eq!(report.chunks, 64);
            let want = ss_core::standard::forward_to(&a);
            for idx in MultiIndexIter::new(&[64, 64]) {
                assert!(
                    (cs.read(&idx) - want.get(&idx)).abs() < 1e-9,
                    "workers={workers} {idx:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial_driver() {
        let a = sample(32);
        let src = ArraySource::new(&a, &[2, 2]);
        let mut serial = mem_store(StandardTiling::new(&[5; 2], &[2; 2]), 512, IoStats::new());
        crate::chunked::transform_standard(&src, &mut serial, false);
        let mut parallel = mem_store(StandardTiling::new(&[5; 2], &[2; 2]), 512, IoStats::new());
        transform_standard_parallel(&src, &mut parallel, 3);
        for idx in MultiIndexIter::new(&[32, 32]) {
            assert!((serial.read(&idx) - parallel.read(&idx)).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_workers_means_auto() {
        let a = sample(16);
        let src = ArraySource::new(&a, &[2, 2]);
        let mut cs = mem_store(StandardTiling::new(&[4; 2], &[2; 2]), 256, IoStats::new());
        transform_standard_parallel(&src, &mut cs, 0);
        let want = ss_core::standard::forward_to(&a);
        for idx in MultiIndexIter::new(&[16, 16]) {
            assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-9);
        }
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let a = sample(8);
        let src = ArraySource::new(&a, &[2, 2]); // 4 chunks
        let mut cs = mem_store(StandardTiling::new(&[3; 2], &[1; 2]), 64, IoStats::new());
        transform_standard_parallel(&src, &mut cs, 16);
        let want = ss_core::standard::forward_to(&a);
        for idx in MultiIndexIter::new(&[8, 8]) {
            assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-9);
        }
    }
}
