//! Parallel out-of-core transformation.
//!
//! The SHIFT-SPLIT decomposition is embarrassingly parallel on the CPU
//! side: chunks transform independently and their delta streams commute
//! (addition). Both drivers here shard the chunk schedule across worker
//! threads that fold deltas *concurrently* into one
//! [`SharedCoeffStore`] — a sharded, independently locked buffer pool —
//! rather than accumulating per-worker maps for a single-threaded merge.
//! Each chunk's deltas are grouped by tile and applied under one shard
//! lock per tile, so the serial drivers' per-chunk access discipline
//! (each tile loaded at most once per chunk) survives parallelism.
//!
//! [`transform_standard_parallel`] shards the row-major chunk grid by
//! ordinal ranges. [`transform_nonstandard_parallel`] shards the
//! *z-order* schedule of Result 2 by contiguous rank ranges; every worker
//! keeps its own crest cache and flushes a quad-tree node the moment its
//! subtree completes inside the worker's range, so each worker's cache
//! still obeys the `(2^d − 1)·log(N/M) + 1` bound. A node whose subtree
//! straddles a range boundary is written as partial sums by the workers
//! that saw it — the folds commute, so the store converges to the serial
//! result exactly.
//!
//! I/O accounting note: straddling nodes cost one extra coefficient
//! write per extra worker, so the measured write I/O can exceed the
//! serial z-order driver's by `O(workers · (2^d − 1) · log(N/M))` — the
//! experiments that validate the paper's per-chunk analyses keep using
//! the serial drivers; these exist to make wall-clock ingestion fast.

use crate::chunked::{charge_input, cubic_levels, is_split_target, PhaseHists, TransformReport};
use crate::source::ChunkSource;
use ss_array::{morton_decode, Shape};
use ss_core::TilingMap;
use ss_obs::Stopwatch;
use ss_storage::{BlockStore, SharedCoeffStore};
use std::collections::HashMap;

/// Resolves a worker-count argument: `0` means "use the machine's
/// available parallelism".
pub fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

/// Parallel standard-form transform with `workers` threads
/// (`0` = available parallelism). Matches
/// [`transform_standard`](crate::transform_standard) exactly — deltas commute.
pub fn transform_standard_parallel<M, S>(
    src: &(impl ChunkSource + Sync),
    cs: &SharedCoeffStore<M, S>,
    workers: usize,
) -> TransformReport
where
    M: TilingMap,
    S: BlockStore + Send + Sync,
{
    let workers = resolve_workers(workers);
    ss_obs::global()
        .gauge("transform.workers")
        .set(workers as u64);
    let busy_ns = ss_obs::global().histogram("transform.worker_busy_ns");
    let n = src.domain_levels().to_vec();
    let grid = src.grid();
    let grid_shape = Shape::new(&grid);
    let total_chunks = grid_shape.len();
    let stats = cs.stats().clone();
    let block_capacity = cs.map().block_capacity();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let n = n.clone();
            let grid_shape = grid_shape.clone();
            let stats = stats.clone();
            let busy_ns = busy_ns.clone();
            handles.push(scope.spawn(move || {
                let worker_sw = Stopwatch::start();
                let phases = PhaseHists::resolve();
                let map = cs.map();
                let mut batch: Vec<(usize, usize, f64)> = Vec::new();
                let lo = total_chunks * w / workers;
                let hi = total_chunks * (w + 1) / workers;
                for ordinal in lo..hi {
                    let mut sw = Stopwatch::start();
                    let block = grid_shape.unoffset(ordinal);
                    let mut chunk = src.read_chunk(&block);
                    charge_input(&stats, chunk.len(), block_capacity);
                    phases.read.record(sw.lap_ns());
                    ss_core::standard::forward(&mut chunk);
                    ss_core::split::standard_deltas(&chunk, &n, &block, |idx, delta| {
                        let loc = map.locate(idx);
                        batch.push((loc.tile, loc.slot, delta));
                    });
                    phases.compute.record(sw.lap_ns());
                    cs.apply_batch(&mut batch);
                    phases.writeback.record(sw.lap_ns());
                }
                // One sample per worker: divide by the driver's wall time
                // for per-worker utilization.
                busy_ns.record(worker_sw.elapsed_ns());
            }));
        }
        for h in handles {
            // Forward the panic payload intact: storage failures unwind
            // carrying a typed `StorageError` that `try_*` fronts recover.
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    cs.flush();
    TransformReport {
        chunks: total_chunks,
        input_coeffs: (total_chunks * src.chunk_len()) as u64,
        peak_crest_cache: 0,
    }
}

/// Parallel non-standard transform on the **z-order** schedule with
/// `workers` threads (`0` = available parallelism).
///
/// The z-order rank space is split into contiguous per-worker ranges;
/// each worker runs the Result 2 crest-cache discipline privately:
/// split contributions accumulate in its local cache, and a quad-tree
/// node's `2^d − 1` detail coefficients are written the moment the
/// walk completes the node's subtree. A subtree that began *before* the
/// worker's range still flushes at the same rank — the cache then holds
/// a partial sum, and the worker(s) that processed the rest of the
/// subtree contribute their own partials; the adds commute. Whatever
/// remains at the end of a range (subtrees extending past it, the
/// overall average) drains as sorted adds.
///
/// The returned [`TransformReport::peak_crest_cache`] is the *maximum
/// over workers*, each of which respects the serial
/// `(2^d − 1)·log(N/M) + 1` bound.
pub fn transform_nonstandard_parallel<M, S>(
    src: &(impl ChunkSource + Sync),
    cs: &SharedCoeffStore<M, S>,
    workers: usize,
) -> TransformReport
where
    M: TilingMap,
    S: BlockStore + Send + Sync,
{
    let workers = resolve_workers(workers);
    ss_obs::global()
        .gauge("transform.workers")
        .set(workers as u64);
    let busy_ns = ss_obs::global().histogram("transform.worker_busy_ns");
    let (n, m) = cubic_levels(src);
    let d = src.domain_levels().len();
    let grid_bits = n - m;
    let code_bits = (grid_bits as usize)
        .checked_mul(d)
        .filter(|&b| b < usize::BITS as usize)
        .expect("chunk grid too large for z-order codes") as u32;
    let total_chunks = 1usize << code_bits;
    let stats = cs.stats().clone();
    let block_capacity = cs.map().block_capacity();

    let per_worker: Vec<(u64, usize)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let stats = stats.clone();
            let busy_ns = busy_ns.clone();
            handles.push(scope.spawn(move || {
                let worker_sw = Stopwatch::start();
                let phases = PhaseHists::resolve();
                let map = cs.map();
                let lo = total_chunks * w / workers;
                let hi = total_chunks * (w + 1) / workers;
                let mut crest: HashMap<Vec<usize>, f64> = HashMap::new();
                let mut batch: Vec<(usize, usize, f64)> = Vec::new();
                let mut block = vec![0usize; d];
                let mut input_coeffs = 0u64;
                let mut peak = 0usize;
                for rank in lo..hi {
                    let mut sw = Stopwatch::start();
                    morton_decode(rank, grid_bits, &mut block);
                    let mut chunk = src.read_chunk(&block);
                    charge_input(&stats, chunk.len(), block_capacity);
                    phases.read.record(sw.lap_ns());
                    input_coeffs += chunk.len() as u64;
                    ss_core::nonstandard::forward(&mut chunk);
                    ss_core::split::nonstandard_deltas(&chunk, n, &block, |idx, delta| {
                        if is_split_target(n, m, idx) {
                            *crest.entry(idx.to_vec()).or_insert(0.0) += delta;
                        } else {
                            let loc = map.locate(idx);
                            batch.push((loc.tile, loc.slot, delta));
                        }
                    });
                    phases.compute.record(sw.lap_ns());
                    cs.apply_batch(&mut batch);
                    peak = peak.max(crest.len());
                    // Flush every node whose subtree the walk just left,
                    // exactly as in the serial z-order driver. When the
                    // subtree started before `lo` the cached value is a
                    // partial sum; writing it is still correct (folds
                    // commute) and keeps the cache within its bound.
                    for s in 1..=grid_bits {
                        if (rank + 1) % (1usize << (d as u32 * s)) != 0 {
                            break;
                        }
                        let node: Vec<usize> = block.iter().map(|&bq| bq >> s).collect();
                        for eps in 1usize..(1usize << d) {
                            let subband: Vec<bool> =
                                (0..d).map(|t| (eps >> (d - 1 - t)) & 1 == 1).collect();
                            let idx = ss_core::nonstandard::index_of(
                                n,
                                &ss_core::nonstandard::NsCoeff::Detail {
                                    level: m + s,
                                    node: node.clone(),
                                    subband,
                                },
                            );
                            if let Some(v) = crest.remove(&idx) {
                                cs.add(&idx, v);
                            }
                        }
                    }
                    phases.writeback.record(sw.lap_ns());
                }
                // Subtrees extending past `hi` (and, for the last worker,
                // the overall average) drain as commuting adds.
                let mut leftovers: Vec<(Vec<usize>, f64)> = crest.drain().collect();
                leftovers.sort_by(|a, b| a.0.cmp(&b.0));
                for (idx, v) in leftovers {
                    cs.add(&idx, v);
                }
                busy_ns.record(worker_sw.elapsed_ns());
                (input_coeffs, peak)
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    cs.flush();
    TransformReport {
        chunks: total_chunks,
        input_coeffs: per_worker.iter().map(|&(c, _)| c).sum(),
        peak_crest_cache: per_worker.iter().map(|&(_, p)| p).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ArraySource;
    use ss_array::{MultiIndexIter, NdArray};
    use ss_core::tiling::{NonStandardTiling, StandardTiling};
    use ss_storage::{mem_shared_store, IoStats};

    fn sample(side: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 37 + idx[1] * 11) % 29) as f64 - 9.0
        })
    }

    #[test]
    fn parallel_matches_direct_transform() {
        let a = sample(64);
        let src = ArraySource::new(&a, &[3, 3]);
        for workers in [1usize, 2, 4, 7] {
            let cs = mem_shared_store(
                StandardTiling::new(&[6; 2], &[2; 2]),
                512,
                4,
                IoStats::new(),
            );
            let report = transform_standard_parallel(&src, &cs, workers);
            assert_eq!(report.chunks, 64);
            let want = ss_core::standard::forward_to(&a);
            for idx in MultiIndexIter::new(&[64, 64]) {
                assert!(
                    (cs.read(&idx) - want.get(&idx)).abs() < 1e-9,
                    "workers={workers} {idx:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial_driver() {
        let a = sample(32);
        let src = ArraySource::new(&a, &[2, 2]);
        let mut serial = ss_storage::wstore::mem_store(
            StandardTiling::new(&[5; 2], &[2; 2]),
            512,
            IoStats::new(),
        );
        crate::chunked::transform_standard(&src, &mut serial, false);
        let parallel = mem_shared_store(
            StandardTiling::new(&[5; 2], &[2; 2]),
            512,
            8,
            IoStats::new(),
        );
        transform_standard_parallel(&src, &parallel, 3);
        for idx in MultiIndexIter::new(&[32, 32]) {
            assert!((serial.read(&idx) - parallel.read(&idx)).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_workers_means_auto() {
        let a = sample(16);
        let src = ArraySource::new(&a, &[2, 2]);
        let cs = mem_shared_store(
            StandardTiling::new(&[4; 2], &[2; 2]),
            256,
            4,
            IoStats::new(),
        );
        transform_standard_parallel(&src, &cs, 0);
        let want = ss_core::standard::forward_to(&a);
        for idx in MultiIndexIter::new(&[16, 16]) {
            assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-9);
        }
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let a = sample(8);
        let src = ArraySource::new(&a, &[2, 2]); // 4 chunks
        let cs = mem_shared_store(StandardTiling::new(&[3; 2], &[1; 2]), 64, 2, IoStats::new());
        transform_standard_parallel(&src, &cs, 16);
        let want = ss_core::standard::forward_to(&a);
        for idx in MultiIndexIter::new(&[8, 8]) {
            assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-9);
        }
    }

    #[test]
    fn nonstandard_parallel_matches_direct() {
        let a = sample(16);
        let src = ArraySource::new(&a, &[1, 1]); // 8x8 z-order grid
        for workers in [1usize, 2, 3, 8] {
            let cs = mem_shared_store(NonStandardTiling::new(2, 4, 2), 256, 4, IoStats::new());
            let report = transform_nonstandard_parallel(&src, &cs, workers);
            assert_eq!(report.chunks, 64);
            let want = ss_core::nonstandard::forward_to(&a);
            for idx in MultiIndexIter::new(&[16, 16]) {
                assert!(
                    (cs.read(&idx) - want.get(&idx)).abs() < 1e-9,
                    "workers={workers} {idx:?}"
                );
            }
        }
    }

    #[test]
    fn nonstandard_parallel_keeps_crest_bound_per_worker() {
        let a = sample(32);
        let src = ArraySource::new(&a, &[1, 1]); // 16x16 grid, grid_bits = 4
        for workers in [1usize, 2, 4] {
            let cs = mem_shared_store(NonStandardTiling::new(2, 5, 2), 512, 4, IoStats::new());
            let report = transform_nonstandard_parallel(&src, &cs, workers);
            // Serial bound: (2^d − 1)·(n − m) + 1 = 3·4 + 1.
            assert!(
                report.peak_crest_cache <= 3 * 4 + 1,
                "workers={workers} peak {}",
                report.peak_crest_cache
            );
        }
    }
}
