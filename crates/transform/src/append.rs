//! Appending to wavelet-transformed data (Section 5.2).
//!
//! Appending differs from updating: the domain of the growing axis must
//! sometimes *double*, which re-homes every stored coefficient (its linear
//! index and therefore its tile change) and splits the old overall average
//! into the new root pair. [`Appender`] packages the full workflow:
//!
//! 1. transform the newly arrived chunk in memory,
//! 2. **expand** the stored transform when the chunk would overflow the
//!    current domain (`O(N^d)` coefficient moves — costly but rare, and
//!    made of cheap SHIFT/SPLIT index arithmetic rather than reconstruction),
//! 3. SHIFT-SPLIT the chunk's transform into the store.

use ss_array::NdArray;
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use ss_storage::{BlockStore, CoeffStore, IoStats};

/// Maintains a standard-form transform under appends along one axis.
///
/// The block-store lifecycle is delegated to a factory because expansion
/// needs a fresh, larger store (e.g. a new file) to migrate into.
pub struct Appender<S: BlockStore, F: FnMut(usize, usize) -> S> {
    cs: CoeffStore<StandardTiling, S>,
    levels: Vec<u32>,
    tile_exp: Vec<u32>,
    axis: usize,
    filled: usize,
    factory: F,
    stats: IoStats,
    pool_budget: usize,
    expansions: usize,
}

impl<S: BlockStore, F: FnMut(usize, usize) -> S> Appender<S, F> {
    /// Creates an empty appendable transform.
    ///
    /// * `levels` — initial per-axis domain levels (the append axis usually
    ///   starts at the size of one chunk);
    /// * `tile_exp` — per-axis tile-side exponents `b[t]`;
    /// * `axis` — the growing axis;
    /// * `factory(capacity, blocks)` — creates a zeroed block store;
    /// * `pool_budget` — buffer-pool size in blocks.
    pub fn new(
        levels: &[u32],
        tile_exp: &[u32],
        axis: usize,
        mut factory: F,
        pool_budget: usize,
        stats: IoStats,
    ) -> Self {
        assert!(axis < levels.len());
        let map = StandardTiling::new(levels, tile_exp);
        let store = factory(map.block_capacity(), map.num_tiles());
        let cs = CoeffStore::new(map, store, pool_budget, stats.clone());
        Appender {
            cs,
            levels: levels.to_vec(),
            tile_exp: tile_exp.to_vec(),
            axis,
            filled: 0,
            factory,
            stats,
            pool_budget,
            expansions: 0,
        }
    }

    /// Current per-axis domain levels.
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Cells filled along the append axis.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Domain expansions performed so far.
    pub fn expansions(&self) -> usize {
        self.expansions
    }

    /// The underlying coefficient store.
    pub fn store(&mut self) -> &mut CoeffStore<StandardTiling, S> {
        &mut self.cs
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Appends one chunk.
    ///
    /// The chunk must span the full domain on every non-append axis and a
    /// power-of-two extent on the append axis, and the append frontier must
    /// be aligned to the chunk extent (dyadic appends, as in the paper's
    /// monthly 8 × 8 × 32 feed).
    pub fn append(&mut self, chunk: &NdArray<f64>) {
        let d = self.levels.len();
        assert_eq!(chunk.shape().ndim(), d, "chunk rank mismatch");
        let chunk_levels = chunk.shape().levels();
        for t in 0..d {
            if t != self.axis {
                assert_eq!(
                    chunk_levels[t], self.levels[t],
                    "chunk must span the whole domain on axis {t}"
                );
            }
        }
        let extent = 1usize << chunk_levels[self.axis];
        assert!(
            self.filled.is_multiple_of(extent),
            "append frontier {} not aligned to chunk extent {extent}",
            self.filled
        );
        // Expand until the chunk fits.
        while self.filled + extent > (1usize << self.levels[self.axis]) {
            self.expand();
        }
        // SHIFT-SPLIT the chunk in.
        let mut block = vec![0usize; d];
        block[self.axis] = self.filled >> chunk_levels[self.axis];
        let mut t = chunk.clone();
        ss_core::standard::forward(&mut t);
        ss_core::split::standard_deltas(&t, &self.levels, &block, |idx, delta| {
            self.cs.add(idx, delta);
        });
        self.cs.flush();
        self.filled += extent;
    }

    /// Doubles the append axis, migrating every coefficient to its new
    /// tile: details keep `(level, k)`, the old average splits into the new
    /// average plus the new root detail.
    fn expand(&mut self) {
        let d = self.levels.len();
        let old_levels = self.levels.clone();
        self.levels[self.axis] += 1;
        let new_map = StandardTiling::new(&self.levels, &self.tile_exp);
        let new_store = (self.factory)(new_map.block_capacity(), new_map.num_tiles());
        let mut new_cs = CoeffStore::new(new_map, new_store, self.pool_budget, self.stats.clone());

        let n_axis = old_levels[self.axis];
        // Migrate tile by tile: every old tile is read exactly once, and
        // each tile's outgoing deltas are applied sorted by target tile, so
        // the expansion costs O(tiles) block reads plus O(tiles) writes
        // instead of thrashing the pool (the expansion is the dominant cost
        // of Figure 13's spike months).
        let old_axes = self.cs.map().axes().to_vec();
        let tile_counts: Vec<usize> = old_axes.iter().map(|a| a.num_tiles()).collect();
        let mut target = vec![0usize; d];
        let mut batch: Vec<(usize, usize, f64)> = Vec::new();
        for tile_tuple in ss_array::MultiIndexIter::new(&tile_counts) {
            let members: Vec<Vec<usize>> = old_axes
                .iter()
                .zip(&tile_tuple)
                .map(|(a, &t)| a.tile_members(t))
                .collect();
            let counts: Vec<usize> = members.iter().map(|m| m.len()).collect();
            let mut idx = vec![0usize; d];
            for choice in ss_array::MultiIndexIter::new(&counts) {
                for (t, &c) in choice.iter().enumerate() {
                    idx[t] = members[t][c];
                }
                let v = self.cs.read(&idx);
                if v == 0.0 {
                    continue;
                }
                target.copy_from_slice(&idx);
                for (new_i, factor) in ss_core::append::expand_index_1d(n_axis, idx[self.axis]) {
                    target[self.axis] = new_i;
                    let loc = new_cs.map().locate(&target);
                    batch.push((loc.tile, loc.slot, v * factor));
                }
            }
            // Apply this old tile's deltas grouped by destination tile.
            batch.sort_unstable_by_key(|&(tile, slot, _)| (tile, slot));
            for &(tile, slot, delta) in &batch {
                self.stats.add_coeff_writes(1);
                new_cs.pool().add(tile, slot, delta);
            }
            batch.clear();
        }
        new_cs.flush();
        self.cs = new_cs;
        self.expansions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::Shape;
    use ss_storage::MemBlockStore;

    type MemAppender = Appender<MemBlockStore, Box<dyn FnMut(usize, usize) -> MemBlockStore>>;

    fn appender(levels: &[u32], tile_exp: &[u32], axis: usize, stats: IoStats) -> MemAppender {
        let s2 = stats.clone();
        Appender::new(
            levels,
            tile_exp,
            axis,
            Box::new(move |cap, blocks| MemBlockStore::new(cap, blocks, s2.clone())),
            1 << 16,
            stats,
        )
    }

    fn month(dims: &[usize], m: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::new(dims), |idx| {
            ((idx.iter().sum::<usize>() + m * 13) % 7) as f64 + m as f64 * 0.1
        })
    }

    #[test]
    fn appends_match_from_scratch_transform() {
        let stats = IoStats::new();
        let mut app = appender(&[2, 2, 3], &[1, 1, 2], 2, stats);
        let months = 5usize; // grows 8 -> 64 along axis 2
        for m in 0..months {
            app.append(&month(&[4, 4, 8], m));
        }
        assert_eq!(app.filled(), 40);
        assert_eq!(app.levels(), &[2, 2, 6]);
        // Reference: full history zero-padded to the expanded domain.
        let mut full = NdArray::<f64>::zeros(Shape::new(&[4, 4, 64]));
        for m in 0..months {
            full.insert(&[0, 0, m * 8], &month(&[4, 4, 8], m));
        }
        let want = ss_core::standard::forward_to(&full);
        let cs = app.store();
        for idx in ss_array::MultiIndexIter::new(&[4, 4, 64]) {
            let got = cs.read(&idx);
            assert!(
                (got - want.get(&idx)).abs() < 1e-9,
                "{idx:?}: {got} vs {}",
                want.get(&idx)
            );
        }
    }

    #[test]
    fn expansion_count_follows_doublings() {
        let stats = IoStats::new();
        let mut app = appender(&[1, 2], &[1, 1], 1, stats);
        // Axis 1 starts at 4 cells; after m+1 four-cell appends the domain
        // must reach 4·next_pow2(m+1), i.e. ceil(log2(m+1)) doublings.
        for m in 0..9usize {
            app.append(&month(&[2, 4], m));
            let expected = (m + 1).next_power_of_two().trailing_zeros() as usize;
            assert_eq!(app.expansions(), expected, "after month {m}");
        }
    }

    #[test]
    fn expansion_io_spikes_visible() {
        let stats = IoStats::new();
        let mut app = appender(&[2, 2, 3], &[1, 1, 1], 2, stats.clone());
        let mut costs = Vec::new();
        for m in 0..8usize {
            let before = stats.snapshot();
            app.append(&month(&[4, 4, 8], m));
            costs.push(stats.snapshot().since(&before).blocks());
        }
        // Axis 2 starts at 8 cells: expansions fire at months 1 (8→16),
        // 2 (16→32) and 4 (32→64); those months must out-cost the quiet
        // month 3 (and 5–7).
        assert!(costs[1] > costs[3], "{costs:?}");
        assert!(costs[2] > costs[3], "{costs:?}");
        assert!(costs[4] > costs[5], "{costs:?}");
    }

    #[test]
    #[should_panic]
    fn rejects_misaligned_chunks() {
        let stats = IoStats::new();
        let mut app = appender(&[1, 3], &[1, 1], 1, stats);
        app.append(&month(&[2, 8], 0));
        app.append(&month(&[2, 4], 1)); // frontier 8 % 4 == 0: fine
        app.append(&month(&[2, 8], 2)); // frontier 12 % 8 != 0: panic
    }

    #[test]
    fn append_along_non_last_axis() {
        let stats = IoStats::new();
        let mut app = appender(&[2, 2], &[1, 1], 0, stats);
        for m in 0..3usize {
            app.append(&month(&[4, 4], m));
        }
        let mut full = NdArray::<f64>::zeros(Shape::new(&[16, 4]));
        for m in 0..3usize {
            full.insert(&[m * 4, 0], &month(&[4, 4], m));
        }
        let want = ss_core::standard::forward_to(&full);
        let cs = app.store();
        for idx in ss_array::MultiIndexIter::new(&[16, 4]) {
            assert!((cs.read(&idx) - want.get(&idx)).abs() < 1e-9, "{idx:?}");
        }
    }
}
