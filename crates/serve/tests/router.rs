//! End-to-end tests of the scatter-gather router: exact merges across
//! shard counts, replica failover, typed refusal of partial answers,
//! routed commits, crash replay, and cross-server trace propagation.

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use ss_maintain::{replay_records, FlushMode, SnapshotCoeffStore, Wal};
use ss_query::{batch_points, batch_range_sums};
use ss_serve::{Client, Query, QueryServer, RouterTopology, ServeConfig};
use ss_storage::wstore::mem_store;
use ss_storage::{mem_shared_store, IoStats, MemBlockStore, ShardMap, SharedCoeffStore};
use std::path::PathBuf;
use std::sync::Arc;

const N: u32 = 5;
const SIDE: usize = 1 << N;

fn test_data() -> NdArray<f64> {
    NdArray::from_fn(Shape::cube(2, SIDE), |idx| {
        ((idx[0] * 31 + idx[1] * 7) % 23) as f64 / 3.0 - 2.5
    })
}

fn tiling() -> StandardTiling {
    StandardTiling::new(&[N; 2], &[2; 2])
}

/// A full transformed copy of `a` in a shared store (each shard holds
/// the whole geometry; the router only ever asks it for its own tiles).
fn shard_store(a: &NdArray<f64>) -> SharedCoeffStore<StandardTiling, MemBlockStore> {
    let t = ss_core::standard::forward_to(a);
    let shared = mem_shared_store(tiling(), 1 << 10, 4, IoStats::new());
    for idx in MultiIndexIter::new(a.shape().dims()) {
        shared.write(&idx, t.get(&idx));
    }
    shared
}

fn cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        batch_max: 16,
        max_requests: None,
        slow_ns: None,
    }
}

/// Starts `shards * replicas` writable shard servers (no WAL) and
/// returns them indexed `[shard][replica]`, plus the topology.
fn fleet(
    a: &NdArray<f64>,
    shards: usize,
    replicas: usize,
) -> (Vec<Vec<QueryServer>>, RouterTopology) {
    let map = ShardMap::even(tiling().num_tiles(), shards, replicas).unwrap();
    let mut servers = Vec::with_capacity(shards);
    let mut addrs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let mut row = Vec::with_capacity(replicas);
        let mut row_addrs = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let store = Arc::new(SnapshotCoeffStore::new(shard_store(a), None, 0));
            let server = QueryServer::bind_writable(
                "127.0.0.1:0",
                store,
                vec![N; 2],
                FlushMode::Exact,
                cfg(),
            )
            .unwrap();
            row_addrs.push(server.local_addr());
            row.push(server);
        }
        servers.push(row);
        addrs.push(row_addrs);
    }
    let topo = RouterTopology::new(map, addrs).unwrap();
    (servers, topo)
}

fn bind_router(topo: RouterTopology) -> QueryServer {
    QueryServer::bind_router(
        "127.0.0.1:0",
        tiling(),
        vec![N; 2],
        topo,
        FlushMode::Exact,
        cfg(),
    )
    .unwrap()
}

fn probe_points() -> Vec<Vec<usize>> {
    (0..24)
        .map(|k| vec![(k * 13 + 3) % SIDE, (k * 7 + 11) % SIDE])
        .collect()
}

fn probe_ranges() -> Vec<(Vec<usize>, Vec<usize>)> {
    vec![
        (vec![0, 0], vec![SIDE - 1, SIDE - 1]),
        (vec![2, 3], vec![29, 17]),
        (vec![7, 7], vec![7, 7]),
        (vec![16, 0], vec![31, 31]),
        (vec![0, 16], vec![15, 31]),
    ]
}

/// Routed answers must be **bit-identical** to a single store holding
/// every tile, for every shard count — the contiguous partition plus
/// the ascending-tile merge reproduce the canonical addition tree.
#[test]
fn routed_answers_are_bit_identical_across_shard_counts() {
    let a = test_data();
    let mut serial = mem_store(tiling(), 1 << 10, IoStats::new());
    let t = ss_core::standard::forward_to(&a);
    for idx in MultiIndexIter::new(&[SIDE, SIDE]) {
        serial.write(&idx, t.get(&idx));
    }
    let points = probe_points();
    let ranges = probe_ranges();
    let want_points = batch_points(&mut serial, &[N; 2], &points);
    let want_ranges = batch_range_sums(&mut serial, &[N; 2], &ranges);

    for shards in [1usize, 2, 4, 8] {
        let (servers, topo) = fleet(&a, shards, 1);
        let router = bind_router(topo);
        let mut client = Client::connect(router.local_addr()).unwrap();
        for (p, want) in points.iter().zip(&want_points) {
            let got = client.point(p).unwrap();
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{shards} shards, point {p:?}"
            );
        }
        for ((lo, hi), want) in ranges.iter().zip(&want_ranges) {
            let got = client.range_sum(lo, hi).unwrap();
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{shards} shards, range {lo:?}..{hi:?}"
            );
        }
        drop(client);
        router.shutdown();
        for row in servers {
            for s in row {
                s.shutdown();
            }
        }
    }
}

/// With two replicas per shard, killing one replica of every shard
/// must leave every answer bit-identical (reads fail over); with one
/// replica, killing a shard must produce the typed `shard_unavailable`
/// error — never a partial sum — while plans that avoid the dead shard
/// keep working.
#[test]
fn degraded_reads_fail_over_or_refuse_but_never_return_partials() {
    let a = test_data();
    let mut serial = mem_store(tiling(), 1 << 10, IoStats::new());
    let t = ss_core::standard::forward_to(&a);
    for idx in MultiIndexIter::new(&[SIDE, SIDE]) {
        serial.write(&idx, t.get(&idx));
    }
    let points = probe_points();
    let want_points = batch_points(&mut serial, &[N; 2], &points);

    // replicas = 2: one replica of each shard dies, answers are unchanged.
    let (mut servers, topo) = fleet(&a, 2, 2);
    let router = bind_router(topo);
    let mut client = Client::connect(router.local_addr()).unwrap();
    for (p, want) in points.iter().zip(&want_points) {
        assert_eq!(client.point(p).unwrap().to_bits(), want.to_bits());
    }
    for row in servers.iter_mut() {
        row.remove(0).shutdown(); // kill replica 0 of every shard
    }
    for (p, want) in points.iter().zip(&want_points) {
        let got = client.point(p).unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "failover point {p:?}");
    }
    drop(client);
    router.shutdown();
    for row in servers {
        for s in row {
            s.shutdown();
        }
    }

    // replicas = 1: the dead shard's tiles are unreachable, so any plan
    // touching them is refused with the typed error.
    let (mut servers, topo) = fleet(&a, 2, 1);
    let map = topo.shard_map().clone();
    let router = bind_router(topo);
    let mut client = Client::connect(router.local_addr()).unwrap();
    servers.remove(1).remove(0).shutdown(); // shard 1 down
                                            // An index whose coefficient tile the dead shard owns. (A plan can
                                            // easily avoid shard 1 — e.g. a whole-domain range sum needs only
                                            // the coarsest coefficients, all in shard 0 — so probe a term that
                                            // provably lives on the dead shard.)
    let dead_idx = MultiIndexIter::new(&[SIDE, SIDE])
        .find(|idx| map.owner(tiling().locate(idx).tile) == 1)
        .expect("shard 1 owns tiles");
    let err = client
        .run(&[Query::Partial {
            terms: vec![(dead_idx.clone(), 1.0)],
        }])
        .unwrap()
        .pop()
        .unwrap()
        .unwrap_err();
    assert_eq!(err.0, "shard_unavailable", "got: {err:?}");
    // A sub-plan owned entirely by the surviving shard still answers —
    // and exactly. Tile 0 is always in shard 0.
    assert_eq!(map.owner(0), 0);
    let term_idx = vec![0usize, 0];
    assert_eq!(tiling().locate(&term_idx).tile, 0);
    let got = client
        .run(&[Query::Partial {
            terms: vec![(term_idx.clone(), 2.0)],
        }])
        .unwrap()
        .pop()
        .unwrap()
        .unwrap();
    let want = 2.0 * {
        let mut serial = mem_store(tiling(), 1 << 10, IoStats::new());
        for idx in MultiIndexIter::new(&[SIDE, SIDE]) {
            serial.write(&idx, t.get(&idx));
        }
        ss_query::execute_plans(&mut serial, &[vec![(term_idx, 1.0)]])[0]
    };
    assert_eq!(got.to_bits(), want.to_bits());
    drop(client);
    router.shutdown();
    for row in servers {
        for s in row {
            s.shutdown();
        }
    }
}

/// Routed writes: the router decomposes boxes once, scatters the
/// dirty-tile op lists to the owning shards, commits on every replica,
/// and the merged answers afterwards are bit-identical to a single
/// writable store given the same updates.
#[test]
fn routed_commit_is_bit_identical_to_a_single_writable_store() {
    let a = test_data();
    let shards = 4usize;
    let replicas = 2usize;
    let (servers, topo) = fleet(&a, shards, replicas);
    let router = bind_router(topo);
    let mut routed = Client::connect(router.local_addr()).unwrap();

    // The single-store reference: same protocol, same updates.
    let reference = Arc::new(SnapshotCoeffStore::new(shard_store(&a), None, 0));
    let ref_server = QueryServer::bind_writable(
        "127.0.0.1:0",
        reference,
        vec![N; 2],
        FlushMode::Exact,
        cfg(),
    )
    .unwrap();
    let mut single = Client::connect(ref_server.local_addr()).unwrap();

    let boxes: [(&[usize; 2], &[usize; 2], &[f64; 4]); 3] = [
        (&[4, 5], &[2, 2], &[10.0, 0.0, 0.0, -3.0]),
        (&[0, 0], &[2, 2], &[1.5, -2.5, 0.25, 4.0]),
        (&[30, 30], &[2, 2], &[-1.0, 2.0, -3.0, 4.0]),
    ];
    for (at, dims, data) in boxes {
        let d1 = routed.update(at, dims, data).unwrap();
        let d2 = single.update(at, dims, data).unwrap();
        assert_eq!(d1.to_bits(), d2.to_bits(), "decomposed delta counts");
    }
    // A routed commit is acknowledged by every replica of every shard.
    let acks = routed.commit().unwrap();
    assert_eq!(acks, (shards * replicas) as f64);
    single.commit().unwrap();

    for p in probe_points() {
        let got = routed.point(&p).unwrap();
        let want = single.point(&p).unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "post-commit point {p:?}");
    }
    for (lo, hi) in probe_ranges() {
        let got = routed.range_sum(&lo, &hi).unwrap();
        let want = single.range_sum(&lo, &hi).unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "post-commit range");
    }

    drop(routed);
    drop(single);
    router.shutdown();
    ref_server.shutdown();
    for row in servers {
        for s in row {
            s.shutdown();
        }
    }
}

/// A routed commit that cannot reach a shard must fail with the typed
/// error, not a silent partial acknowledgement.
#[test]
fn routed_commit_with_a_dead_shard_reports_shard_unavailable() {
    let a = test_data();
    let (mut servers, topo) = fleet(&a, 2, 1);
    let router = bind_router(topo);
    let mut client = Client::connect(router.local_addr()).unwrap();
    servers.remove(1).remove(0).shutdown();
    client
        .update(&[4, 5], &[2, 2], &[1.0, 2.0, 3.0, 4.0])
        .unwrap();
    let err = client.commit().unwrap_err();
    assert!(
        err.to_string().contains("shard_unavailable"),
        "expected shard_unavailable, got: {err}"
    );
    drop(client);
    router.shutdown();
    for row in servers {
        for s in row {
            s.shutdown();
        }
    }
}

fn crash_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss_router_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// WAL-backed shards: after a routed commit, rebuilding every shard
/// from its own write-ahead log (simulated crash) reproduces the
/// routed answers bit for bit.
#[test]
fn routed_commit_replays_bit_identically_after_shard_crash() {
    let a = test_data();
    let dir = crash_dir("crash");
    let shards = 2usize;
    let map = ShardMap::even(tiling().num_tiles(), shards, 1).unwrap();

    let open_fleet = |dir: &PathBuf| -> (Vec<QueryServer>, RouterTopology) {
        let mut servers = Vec::new();
        let mut addrs = Vec::new();
        for shard in 0..shards {
            let (wal, records, scan) = Wal::open(&dir.join(format!("shard{shard}.wal"))).unwrap();
            assert!(!scan.torn_tail, "test WALs are never torn");
            let base = shard_store(&a);
            replay_records(&records, &base);
            let epoch = records.last().map_or(0, |r| r.epoch);
            let store = Arc::new(SnapshotCoeffStore::new(base, Some(wal), epoch));
            let server = QueryServer::bind_writable(
                "127.0.0.1:0",
                store,
                vec![N; 2],
                FlushMode::Exact,
                cfg(),
            )
            .unwrap();
            addrs.push(vec![server.local_addr()]);
            servers.push(server);
        }
        let topo = RouterTopology::new(map.clone(), addrs).unwrap();
        (servers, topo)
    };

    // Commit two epochs through the router, record the answers.
    let (servers, topo) = open_fleet(&dir);
    let router = bind_router(topo);
    let mut client = Client::connect(router.local_addr()).unwrap();
    client
        .update(&[4, 5], &[2, 2], &[10.0, 0.0, 0.0, -3.0])
        .unwrap();
    assert_eq!(client.commit().unwrap(), shards as f64);
    client
        .update(&[0, 0], &[2, 2], &[1.5, -2.5, 0.25, 4.0])
        .unwrap();
    assert_eq!(client.commit().unwrap(), shards as f64);
    let points = probe_points();
    let ranges = probe_ranges();
    let before_points: Vec<u64> = points
        .iter()
        .map(|p| client.point(p).unwrap().to_bits())
        .collect();
    let before_ranges: Vec<u64> = ranges
        .iter()
        .map(|(lo, hi)| client.range_sum(lo, hi).unwrap().to_bits())
        .collect();
    drop(client);
    router.shutdown();
    for s in servers {
        s.shutdown();
    }

    // "Crash": every shard restarts from a fresh base + WAL replay.
    let (servers, topo) = open_fleet(&dir);
    let router = bind_router(topo);
    let mut client = Client::connect(router.local_addr()).unwrap();
    for (p, want) in points.iter().zip(&before_points) {
        assert_eq!(client.point(p).unwrap().to_bits(), *want, "replayed {p:?}");
    }
    for ((lo, hi), want) in ranges.iter().zip(&before_ranges) {
        assert_eq!(
            client.range_sum(lo, hi).unwrap().to_bits(),
            *want,
            "replayed range {lo:?}..{hi:?}"
        );
    }
    drop(client);
    router.shutdown();
    for s in servers {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tracing: a traced client request fans out with its trace id
/// forwarded, so router-side and shard-side spans land under **one**
/// trace id (in-process, all servers share the global tracer ring).
#[test]
fn router_fanout_spans_and_shard_spans_share_one_trace_id() {
    use ss_obs::trace;
    use ss_obs::TraceEventKind;

    trace::tracer().enable_ring();
    let a = test_data();
    let (servers, topo) = fleet(&a, 2, 1);
    let router = bind_router(topo);
    let mut client = Client::connect(router.local_addr()).unwrap();
    let trace_id = trace::new_trace_id();
    client.set_trace(Some(trace_id));
    client.range_sum(&[2, 3], &[29, 17]).unwrap();
    client.update(&[4, 5], &[1, 1], &[2.0]).unwrap();
    client.commit().unwrap();
    drop(client);
    router.shutdown();
    for row in servers {
        for s in row {
            s.shutdown();
        }
    }

    let events = trace::tracer().events();
    let mine: Vec<_> = events.iter().filter(|e| e.trace == trace_id).collect();
    let begun: Vec<&str> = mine
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::SpanBegin { name } => Some(name),
            _ => None,
        })
        .collect();
    // Router-side spans...
    for want in ["router.fanout", "router.commit_fanout"] {
        assert!(begun.contains(&want), "missing {want} in {begun:?}");
    }
    // ...and shard-side spans under the same trace id: the shard's own
    // request root plus its executor sweep and commit.
    for want in ["serve.exec", "serve.commit"] {
        assert!(
            begun.contains(&want),
            "missing shard span {want} in {begun:?}"
        );
    }
    // serve.request appears at least twice: once at the router, once
    // per shard sub-request.
    let requests = begun.iter().filter(|n| **n == "serve.request").count();
    assert!(requests >= 2, "router + shard roots, got {requests}");
    // Every begun span under this trace also ended.
    let ended = mine
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::SpanEnd { .. }))
        .count();
    assert_eq!(begun.len(), ended, "unbalanced spans: {begun:?}");
}
