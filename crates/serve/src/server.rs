//! The concurrent query server.
//!
//! Thread layout:
//!
//! * one **acceptor** thread owns the listener and spawns a reader/writer
//!   thread pair per connection,
//! * per-connection **readers** parse and validate each line immediately
//!   (errors are answered right away with a typed response) and push valid
//!   requests — already planned into contribution lists — onto one shared
//!   queue,
//! * a fixed pool of **executor** workers drains up to
//!   [`ServeConfig::batch_max`] pending requests per sweep and evaluates
//!   them **tile-major** through [`ss_query::execute_plans`]: requests that
//!   arrived concurrently from different clients share one fetch of every
//!   hot tile.
//!
//! Replies are written straight to the socket under a per-connection
//! mutex (shared by the executors and the reader's error path), not
//! queued to a writer thread: a response must be **on the wire before it
//! is counted** against the request budget, or a budgeted server could
//! stop — and its process exit — with the final answer still buffered,
//! handing that client an EOF.
//!
//! Shutdown mirrors [`ss_obs`]'s metrics server: a stop flag plus a
//! throwaway self-connection to unblock `accept`. A request budget
//! ([`ServeConfig::max_requests`]) triggers the same path once enough
//! responses have been written, which is how tests and CI smoke runs get a
//! bounded, clean exit; pending queued requests are still answered before
//! the workers park.
//!
//! # Writable serving
//!
//! [`QueryServer::bind_writable`] serves the same protocol over a
//! [`SnapshotCoeffStore`] and additionally accepts `update` / `commit`
//! mutations. Mutations are handled **synchronously on the connection
//! reader** (buffering deltas is cheap and commits must be ordered with
//! the requests around them on the same connection): `update` runs the
//! SHIFT-SPLIT decomposition into a shared [`DeltaBuffer`], `commit`
//! group-commits the buffer as the next epoch through the snapshot
//! store's WAL-backed commit path. Query batches pin one snapshot for the
//! whole batch, so a batch never observes a half-published epoch, and any
//! query parsed after a commit's response pins an epoch at least as new
//! (read-your-writes).

use crate::proto::{self, Mutation, Op, Request, RequestError};
use crate::router::{self, ConnCache, RoutedOutcome, RouterBackend, RouterCore, RouterTopology};
use ss_core::TilingMap;
use ss_maintain::{DeltaBuffer, FlushMode, SnapshotCoeffStore};
use ss_obs::trace::{self, SpanCtx, TraceEventKind};
use ss_obs::{Counter, Histogram};
use ss_storage::{BlockStore, SharedCoeffStore};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One connection's outbound socket half. Executors and the owning
/// reader's error path write whole response lines under the mutex, so
/// replies from different sources interleave safely — and synchronously:
/// by the time the sender counts the reply toward the request budget,
/// the bytes have already been handed to the kernel. Write errors are
/// ignored (the client hung up; its reader thread is winding down too).
struct ReplyLine {
    out: Mutex<TcpStream>,
}

impl ReplyLine {
    fn send(&self, line: &str) {
        let mut out = self.out.lock().unwrap();
        let _ = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush());
    }
}

/// Server sizing and lifetime knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Executor worker threads draining the shared queue.
    pub workers: usize,
    /// Most requests one executor sweep batches together.
    pub batch_max: usize,
    /// Stop after this many responses (`None` = serve forever).
    pub max_requests: Option<u64>,
    /// Requests at or above this duration hit the slow-request log (a
    /// structured stderr line plus, when tracing is on, a
    /// `slow_request` trace event). `None` disables the log.
    pub slow_ns: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            batch_max: 64,
            max_requests: None,
            slow_ns: None,
        }
    }
}

/// One planned request waiting for an executor.
struct Job {
    id: Option<i128>,
    plan: Vec<(Vec<usize>, f64)>,
    reply: Arc<ReplyLine>,
    enqueued: Instant,
    /// The request's root trace span (inert when untraced), opened on
    /// the connection reader and closed after the reply is sent.
    root: SpanCtx,
    /// Whether the reply must carry the per-tile partial decomposition
    /// (`partial` sub-plans from an upstream router).
    wants_tiles: bool,
}

/// The per-request part of a [`Job`] that survives into the answer path.
struct Route {
    id: Option<i128>,
    reply: Arc<ReplyLine>,
    enqueued: Instant,
    root: SpanCtx,
    wants_tiles: bool,
}

/// Type-erased mutation sink, so [`State`] stays non-generic. `Ok`
/// carries the response value (deltas buffered for an update, the
/// published epoch for a commit); `Err` carries a protocol error kind
/// plus message.
pub(crate) trait Mutator: Send + Sync {
    fn update(&self, at: &[usize], dims: &[usize], data: Vec<f64>) -> Result<f64, MutErr>;
    fn apply(&self, ops: &[(usize, usize, f64)]) -> Result<f64, MutErr>;
    fn commit(&self) -> Result<f64, MutErr>;
}

pub(crate) type MutErr = (&'static str, String);

/// The writable backend: one shared delta buffer feeding a snapshot
/// store. The buffer mutex also serialises commits relative to updates,
/// so a commit drains exactly the updates answered before it.
struct WritableBackend<M: TilingMap, S: BlockStore> {
    store: Arc<SnapshotCoeffStore<M, S>>,
    buffer: Mutex<DeltaBuffer>,
    levels: Vec<u32>,
}

impl<M, S> Mutator for WritableBackend<M, S>
where
    M: TilingMap,
    S: BlockStore + Send + Sync,
{
    fn update(&self, at: &[usize], dims: &[usize], data: Vec<f64>) -> Result<f64, MutErr> {
        let delta = ss_array::NdArray::from_vec(ss_array::Shape::new(dims), data);
        let map = self.store.map();
        let mut buf = self.buffer.lock().unwrap();
        buf.begin_box();
        let report =
            ss_transform::for_each_box_delta_standard(&self.levels, at, &delta, |idx, d| {
                buf.add_at(map, idx, d);
            });
        Ok(report.coeffs_touched as f64)
    }

    fn apply(&self, ops: &[(usize, usize, f64)]) -> Result<f64, MutErr> {
        let map = self.store.map();
        let (tiles, capacity) = (map.num_tiles(), map.block_capacity());
        for &(tile, slot, _) in ops {
            if tile >= tiles || slot >= capacity {
                return Err((
                    "bad_request",
                    format!(
                        "op ({tile}, {slot}) outside store geometry \
                         ({tiles} tiles x {capacity} slots)"
                    ),
                ));
            }
        }
        let mut buf = self.buffer.lock().unwrap();
        buf.begin_box();
        for &(tile, slot, delta) in ops {
            buf.add(tile, slot, delta);
        }
        Ok(ops.len() as f64)
    }

    fn commit(&self) -> Result<f64, MutErr> {
        let mut buf = self.buffer.lock().unwrap();
        match self.store.commit(&mut buf) {
            // Epochs stay far below 2^53 in practice, so the f64 is exact.
            Ok((epoch, _)) => Ok(epoch as f64),
            Err(e) => Err(("io", format!("commit failed: {e}"))),
        }
    }
}

struct Metrics {
    requests_ok: Counter,
    requests_err: Counter,
    requests_slow: Counter,
    batches: Counter,
    request_ns: Histogram,
    batch_size: Histogram,
}

impl Metrics {
    fn resolve() -> Metrics {
        let r = ss_obs::global();
        Metrics {
            requests_ok: r.counter("serve.requests_ok"),
            requests_err: r.counter("serve.requests_err"),
            requests_slow: r.counter("serve.requests_slow"),
            batches: r.counter("serve.batches"),
            request_ns: r.histogram("serve.request_ns"),
            batch_size: r.histogram("serve.batch_size"),
        }
    }
}

/// State shared by the acceptor, readers and executors.
struct State {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    answered: AtomicU64,
    max_requests: Option<u64>,
    addr: SocketAddr,
    levels: Vec<u32>,
    dims: Vec<usize>,
    batch_max: usize,
    metrics: Metrics,
    slow_ns: Option<u64>,
    /// `Some` on writable servers; `None` rejects mutations as `read_only`.
    mutator: Option<Arc<dyn Mutator>>,
}

impl State {
    /// The slow-request log: fires only at/above the configured
    /// threshold — a structured stderr line, a counter, and (when
    /// tracing is on) a `slow_request` event tied to the request's span.
    fn observe_slow(&self, id: Option<i128>, root: &SpanCtx, dur_ns: u64) {
        let Some(threshold_ns) = self.slow_ns else {
            return;
        };
        if dur_ns < threshold_ns {
            return;
        }
        self.metrics.requests_slow.inc();
        trace::tracer().event_for(
            root.trace,
            root.span,
            TraceEventKind::SlowRequest {
                dur_ns,
                threshold_ns,
            },
        );
        eprintln!(
            "slow_request id={} trace={} dur_ms={:.3} threshold_ms={:.3}",
            id.map_or_else(|| "-".to_string(), |i| i.to_string()),
            root.trace,
            dur_ns as f64 / 1e6,
            threshold_ns as f64 / 1e6,
        );
    }

    /// Counts one written response; reaching the budget triggers stop.
    fn count_reply(&self) {
        let n = self.answered.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(max) = self.max_requests {
            if n >= max {
                self.trigger_stop();
            }
        }
    }

    fn trigger_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.available.notify_all();
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// A query server running on background threads.
///
/// The handle is deliberately non-generic: the store type is captured by
/// the worker closures, so callers can hold `QueryServer` values of
/// different store types uniformly.
pub struct QueryServer {
    state: Arc<State>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves standard-form queries against `store`, whose per-axis domain
    /// levels are `levels`.
    pub fn bind<M, S>(
        addr: &str,
        store: SharedCoeffStore<M, S>,
        levels: Vec<u32>,
        config: ServeConfig,
    ) -> std::io::Result<QueryServer>
    where
        M: TilingMap + 'static,
        S: BlockStore + Send + Sync + 'static,
    {
        let (listener, state) = make_state(addr, levels, &config, None)?;
        let store = Arc::new(store);
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let state = Arc::clone(&state);
            let store = Arc::clone(&store);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ss-serve-exec-{w}"))
                    .spawn(move || executor_loop(&state, &store))?,
            );
        }
        QueryServer::finish(listener, state, workers)
    }

    /// Binds `addr` and serves standard-form queries **and mutations**
    /// against an epoch-versioned snapshot store: `update` buffers box
    /// deltas under `flush_mode`, `commit` publishes them as the next
    /// epoch, and each query batch executes against one pinned snapshot.
    /// The caller keeps a clone of the `Arc` to checkpoint / recover the
    /// store around the server's lifetime.
    pub fn bind_writable<M, S>(
        addr: &str,
        store: Arc<SnapshotCoeffStore<M, S>>,
        levels: Vec<u32>,
        flush_mode: FlushMode,
        config: ServeConfig,
    ) -> std::io::Result<QueryServer>
    where
        M: TilingMap + 'static,
        S: BlockStore + Send + Sync + 'static,
    {
        let backend = Arc::new(WritableBackend {
            buffer: Mutex::new(DeltaBuffer::for_map(store.map(), flush_mode)),
            levels: levels.clone(),
            store: Arc::clone(&store),
        });
        let (listener, state) = make_state(addr, levels, &config, Some(backend))?;
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let state = Arc::clone(&state);
            let store = Arc::clone(&store);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ss-serve-exec-{w}"))
                    .spawn(move || snapshot_executor_loop(&state, &store))?,
            );
        }
        QueryServer::finish(listener, state, workers)
    }

    /// Binds `addr` and serves the same protocol as a **scatter-gather
    /// router** over tile-range shards: the server owns no coefficients
    /// itself. Query plans are split by the owning shard of each
    /// contributing tile (per `topology`'s [`ss_storage::ShardMap`]),
    /// fanned out as `partial` sub-requests to the least-loaded replica
    /// of each shard, and the per-tile partial sums are merged back in
    /// ascending tile order — bit-identical to executing the plan
    /// against one store holding every tile. Mutations are accepted
    /// too: `update` decomposes boxes once at the router under
    /// `flush_mode`, and `commit` scatters the dirty-tile op lists to
    /// the owning shards and fans a commit to every replica (see
    /// [`crate::router`] for the failure semantics).
    ///
    /// `tiling` must describe the same tile space the shards serve;
    /// the call fails if `topology` partitions a different number of
    /// tiles.
    pub fn bind_router<M>(
        addr: &str,
        tiling: M,
        levels: Vec<u32>,
        topology: RouterTopology,
        flush_mode: FlushMode,
        config: ServeConfig,
    ) -> std::io::Result<QueryServer>
    where
        M: TilingMap + Send + Sync + 'static,
    {
        if topology.shard_map().num_tiles() != tiling.num_tiles() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "topology partitions {} tiles but the tiling has {}",
                    topology.shard_map().num_tiles(),
                    tiling.num_tiles()
                ),
            ));
        }
        let tiling = Arc::new(tiling);
        let core = Arc::new(RouterCore::new(topology));
        let backend = Arc::new(RouterBackend::new(
            Arc::clone(&core),
            Arc::clone(&tiling),
            levels.clone(),
            flush_mode,
        ));
        let (listener, state) = make_state(addr, levels, &config, Some(backend))?;
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let state = Arc::clone(&state);
            let core = Arc::clone(&core);
            let tiling = Arc::clone(&tiling);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ss-serve-route-{w}"))
                    .spawn(move || router_executor_loop(&state, &core, &tiling))?,
            );
        }
        QueryServer::finish(listener, state, workers)
    }

    fn finish(
        listener: TcpListener,
        state: Arc<State>,
        workers: Vec<JoinHandle<()>>,
    ) -> std::io::Result<QueryServer> {
        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("ss-serve-accept".into())
            .spawn(move || acceptor_loop(&listener, &acceptor_state))?;
        Ok(QueryServer {
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Responses written so far.
    pub fn answered(&self) -> u64 {
        self.state.answered.load(Ordering::Acquire)
    }

    /// Blocks until the server stops on its own (request budget reached),
    /// then joins every server thread and returns the number of responses
    /// written. Blocks forever when no budget was configured.
    pub fn join(mut self) -> u64 {
        self.join_threads();
        self.state.answered.load(Ordering::Acquire)
    }

    /// Stops the server and joins its threads; queued requests are still
    /// answered first. Returns the number of responses written.
    pub fn shutdown(mut self) -> u64 {
        self.state.trigger_stop();
        self.join_threads();
        self.state.answered.load(Ordering::Acquire)
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.state.trigger_stop();
            self.join_threads();
        }
    }
}

fn make_state(
    addr: &str,
    levels: Vec<u32>,
    config: &ServeConfig,
    mutator: Option<Arc<dyn Mutator>>,
) -> std::io::Result<(TcpListener, Arc<State>)> {
    assert!(config.workers >= 1, "server needs at least one worker");
    assert!(config.batch_max >= 1, "batch_max must be at least one");
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let dims = levels.iter().map(|&n| 1usize << n).collect();
    let state = Arc::new(State {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stop: AtomicBool::new(false),
        answered: AtomicU64::new(0),
        max_requests: config.max_requests,
        addr: local,
        levels,
        dims,
        batch_max: config.batch_max,
        metrics: Metrics::resolve(),
        slow_ns: config.slow_ns,
        mutator,
    });
    Ok((listener, state))
}

fn acceptor_loop(listener: &TcpListener, state: &Arc<State>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.stopped() {
                    return;
                }
                // Responses are single lines; waiting for an ACK to
                // coalesce them would stall closed-loop clients ~40 ms.
                let _ = stream.set_nodelay(true);
                let conn_state = Arc::clone(state);
                // Reader threads are detached: they exit when the client
                // disconnects (EOF).
                let _ = std::thread::Builder::new()
                    .name("ss-serve-conn".into())
                    .spawn(move || connection_loop(stream, &conn_state));
            }
            Err(_) => return,
        }
    }
}

/// Per-connection reader: parse, validate, plan, enqueue. The outbound
/// half of the socket lives in a shared [`ReplyLine`]; executors and this
/// reader's error path write to it directly.
fn connection_loop(stream: TcpStream, state: &Arc<State>) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let reply = Arc::new(ReplyLine {
        out: Mutex::new(writer_stream),
    });
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        if state.stopped() {
            break;
        }
        match parse_and_validate(&line, &state.dims) {
            Err(e) => {
                state.metrics.requests_err.inc();
                reply.send(&proto::err_response(e.id, e.kind, &e.message));
                state.count_reply();
            }
            Ok(Request {
                id,
                op: Op::Query(query),
                trace: trace_id,
            }) => {
                let root = trace::begin_span(request_trace_id(trace_id), 0, "serve.request");
                let plan = {
                    let plan_span = trace::begin_span(root.trace, root.span, "serve.plan");
                    let plan = query.plan(&state.levels);
                    trace::end_span(plan_span);
                    plan
                };
                let job = Job {
                    id,
                    plan,
                    reply: Arc::clone(&reply),
                    enqueued: Instant::now(),
                    root,
                    wants_tiles: query.wants_tiles(),
                };
                let mut queue = state.queue.lock().unwrap();
                queue.push_back(job);
                drop(queue);
                state.available.notify_one();
            }
            // Mutations are answered synchronously on the reader: the
            // response must be on the wire before the next line on this
            // connection is read, so a client that pipelines
            // `update, commit, query` gets read-your-writes.
            Ok(Request {
                id,
                op: Op::Mutation(m),
                trace: trace_id,
            }) => {
                let root = trace::begin_span(request_trace_id(trace_id), 0, "serve.request");
                let started = Instant::now();
                let outcome = {
                    // The thread-local context makes the WAL / commit /
                    // tile-fetch events of this mutation attach to it.
                    let _in_span = trace::enter(root);
                    match state.mutator.as_deref() {
                        None => Err((
                            "read_only",
                            "this server is read-only (start it writable to accept mutations)"
                                .to_string(),
                        )),
                        Some(mutator) => match m {
                            Mutation::Update { at, dims, data } => {
                                let _s = trace::scoped("serve.update");
                                mutator.update(&at, &dims, data)
                            }
                            Mutation::Apply { ops } => {
                                let _s = trace::scoped("serve.apply");
                                mutator.apply(&ops)
                            }
                            Mutation::Commit => {
                                let _s = trace::scoped("serve.commit");
                                mutator.commit()
                            }
                        },
                    }
                };
                let dur_ns = started.elapsed().as_nanos() as u64;
                match outcome {
                    Ok(value) => {
                        state.metrics.requests_ok.inc();
                        state.metrics.request_ns.record(dur_ns);
                        let echo = root.active().then_some(root.trace);
                        reply.send(&proto::ok_response_traced(id, echo, value));
                    }
                    Err((kind, message)) => {
                        state.metrics.requests_err.inc();
                        reply.send(&proto::err_response(id, kind, &message));
                    }
                }
                state.observe_slow(id, &root, dur_ns);
                trace::end_span(root);
                state.count_reply();
            }
        }
    }
}

/// The trace id a request runs under: the client's, else a fresh one
/// when tracing is on, else 0 (untraced — every recording call becomes
/// one relaxed load).
fn request_trace_id(client: Option<u64>) -> u64 {
    if !trace::enabled() {
        return 0;
    }
    client.unwrap_or_else(trace::new_trace_id)
}

fn parse_and_validate(line: &str, dims: &[usize]) -> Result<Request, RequestError> {
    let req = proto::parse_request(line)?;
    match &req.op {
        Op::Query(q) => q.validate(dims),
        Op::Mutation(m) => m.validate(dims),
    }
    .map_err(|message| RequestError {
        id: req.id,
        kind: "bad_request",
        message,
    })?;
    Ok(req)
}

/// Executor: drain up to `batch_max` planned requests and answer them in
/// one tile-major sweep. Answers are bit-identical to serial execution
/// because [`ss_query::execute_plans`] fixes the evaluation order from the
/// plans alone.
fn executor_loop<M, S>(state: &Arc<State>, store: &Arc<SharedCoeffStore<M, S>>)
where
    M: TilingMap,
    S: BlockStore,
{
    loop {
        let batch: Vec<Job> = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if !queue.is_empty() {
                    break;
                }
                if state.stopped() {
                    return;
                }
                queue = state.available.wait(queue).unwrap();
            }
            let n = state.batch_max.min(queue.len());
            queue.drain(..n).collect()
        };
        let (plans, routes) = split_batch(batch);
        let exec = batch_exec_span(&routes);
        let values = {
            let _in_span = trace::enter(exec);
            let mut handle: &SharedCoeffStore<M, S> = store;
            ss_query::execute_plans_tiled(&mut handle, &plans)
        };
        trace::end_span(exec);
        answer_batch(state, routes, values);
    }
}

/// Executor over a snapshot store: each batch pins one epoch for all of
/// its queries, so no request can observe a half-published commit, and a
/// request parsed after a commit's response pins an epoch at least as new.
fn snapshot_executor_loop<M, S>(state: &Arc<State>, store: &Arc<SnapshotCoeffStore<M, S>>)
where
    M: TilingMap,
    S: BlockStore,
{
    loop {
        let batch: Vec<Job> = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if !queue.is_empty() {
                    break;
                }
                if state.stopped() {
                    return;
                }
                queue = state.available.wait(queue).unwrap();
            }
            let n = state.batch_max.min(queue.len());
            queue.drain(..n).collect()
        };
        let (plans, routes) = split_batch(batch);
        let exec = batch_exec_span(&routes);
        let values = {
            let _in_span = trace::enter(exec);
            let pin = store.pin();
            let mut handle = &pin;
            let values = ss_query::execute_plans_tiled(&mut handle, &plans);
            drop(pin);
            values
        };
        trace::end_span(exec);
        answer_batch(state, routes, values);
    }
}

/// Router executor: drain a batch and scatter-gather it across the
/// shard fleet. Each worker keeps its own connection cache, so
/// concurrent workers fan out over disjoint sockets (per-replica
/// in-flight counters in [`RouterCore`] spread them across replicas).
fn router_executor_loop<M: TilingMap>(state: &Arc<State>, core: &Arc<RouterCore>, tiling: &Arc<M>) {
    let mut conns = ConnCache::new();
    loop {
        let batch: Vec<Job> = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if !queue.is_empty() {
                    break;
                }
                if state.stopped() {
                    return;
                }
                queue = state.available.wait(queue).unwrap();
            }
            let n = state.batch_max.min(queue.len());
            queue.drain(..n).collect()
        };
        let (plans, routes) = split_batch(batch);
        // Forward each request's own trace id so shard-side spans land
        // under the originating trace.
        let jobs: Vec<router::RoutedJob> = plans
            .into_iter()
            .zip(routes.iter())
            .map(|(plan, route)| (plan, route.root.active().then_some(route.root.trace)))
            .collect();
        let exec = batch_fanout_span(&routes);
        let outcomes = {
            let _in_span = trace::enter(exec);
            router::execute_routed(core, tiling.as_ref(), &mut conns, &jobs)
        };
        trace::end_span(exec);
        answer_routed(state, routes, outcomes);
    }
}

/// The `router.fanout` span covering one scatter-gather sweep, parented
/// under the batch's first traced request (the same batching
/// approximation as [`batch_exec_span`]).
fn batch_fanout_span(routes: &[Route]) -> SpanCtx {
    routes
        .iter()
        .map(|r| r.root)
        .find(SpanCtx::active)
        .map(|p| trace::begin_span(p.trace, p.span, "router.fanout"))
        .unwrap_or_else(SpanCtx::none)
}

fn answer_routed(state: &State, routes: Vec<Route>, outcomes: Vec<RoutedOutcome>) {
    state.metrics.batches.inc();
    state.metrics.batch_size.record(routes.len() as u64);
    for (route, outcome) in routes.into_iter().zip(outcomes) {
        let dur_ns = route.enqueued.elapsed().as_nanos() as u64;
        match outcome {
            Ok((value, tiles)) => {
                state.metrics.request_ns.record(dur_ns);
                state.metrics.requests_ok.inc();
                let echo = route.root.active().then_some(route.root.trace);
                let tiles = route.wants_tiles.then_some(tiles.as_slice());
                route
                    .reply
                    .send(&proto::ok_response_tiled(route.id, echo, value, tiles));
            }
            Err((kind, message)) => {
                state.metrics.requests_err.inc();
                route
                    .reply
                    .send(&proto::err_response(route.id, &kind, &message));
            }
        }
        state.observe_slow(route.id, &route.root, dur_ns);
        trace::end_span(route.root);
        state.count_reply();
    }
}

#[allow(clippy::type_complexity)]
fn split_batch(batch: Vec<Job>) -> (Vec<Vec<(Vec<usize>, f64)>>, Vec<Route>) {
    let mut plans = Vec::with_capacity(batch.len());
    let mut routes = Vec::with_capacity(batch.len());
    for job in batch {
        plans.push(job.plan);
        routes.push(Route {
            id: job.id,
            reply: job.reply,
            enqueued: job.enqueued,
            root: job.root,
            wants_tiles: job.wants_tiles,
        });
    }
    (plans, routes)
}

/// The `serve.exec` span covering one tile-major sweep, parented under
/// the batch's **first traced** request: tile fetches are shared across
/// the batch, so they are attributed to that request's tree (a
/// documented approximation — see DESIGN.md §13).
fn batch_exec_span(routes: &[Route]) -> SpanCtx {
    routes
        .iter()
        .map(|r| r.root)
        .find(SpanCtx::active)
        .map(|p| trace::begin_span(p.trace, p.span, "serve.exec"))
        .unwrap_or_else(SpanCtx::none)
}

fn answer_batch(state: &State, routes: Vec<Route>, values: Vec<ss_query::PlanTiles>) {
    state.metrics.batches.inc();
    state.metrics.batch_size.record(routes.len() as u64);
    for (route, result) in routes.into_iter().zip(values) {
        let dur_ns = route.enqueued.elapsed().as_nanos() as u64;
        state.metrics.request_ns.record(dur_ns);
        state.metrics.requests_ok.inc();
        let echo = route.root.active().then_some(route.root.trace);
        let tiles = route.wants_tiles.then_some(result.tiles.as_slice());
        route.reply.send(&proto::ok_response_tiled(
            route.id,
            echo,
            result.value,
            tiles,
        ));
        state.observe_slow(route.id, &route.root, dur_ns);
        trace::end_span(route.root);
        state.count_reply();
    }
}
