//! A small blocking client for the line-JSON query protocol.
//!
//! Requests are pipelined: [`Client::run`] writes every request line, then
//! reads exactly one response line per request and matches answers back to
//! requests by id (the server batches across connections, so responses may
//! return out of order).

use crate::proto::{self, Mutation, Op, Query, Response};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What went wrong talking to the server.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-exchange.
    Io(std::io::Error),
    /// The server sent something the protocol does not allow.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a [`QueryServer`](crate::QueryServer).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: i128,
    trace: Option<u64>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One-line requests and responses: Nagle + delayed ACK would add
        // ~40 ms to every closed-loop round trip.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
            trace: None,
        })
    }

    /// Tags every subsequent request with trace id `trace` (see the
    /// `trace` protocol field in [`crate::proto`]): a tracing-enabled
    /// server records the request's spans under that id, an old or
    /// tracing-off server ignores it. `None` stops tagging.
    pub fn set_trace(&mut self, trace: Option<u64>) {
        self.trace = trace;
    }

    /// Point query at `pos`.
    pub fn point(&mut self, pos: &[usize]) -> Result<f64, ClientError> {
        self.one(Query::Point { pos: pos.to_vec() })
    }

    /// Inclusive range sum over `[lo, hi]`.
    pub fn range_sum(&mut self, lo: &[usize], hi: &[usize]) -> Result<f64, ClientError> {
        self.one(Query::RangeSum {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        })
    }

    /// Buffers a box of deltas on a writable server: `at` is the lower
    /// corner, `dims` the per-axis extents, `data` the box in row-major
    /// order. Returns the number of coefficient deltas buffered. The
    /// deltas stay invisible to queries until [`commit`](Client::commit).
    pub fn update(
        &mut self,
        at: &[usize],
        dims: &[usize],
        data: &[f64],
    ) -> Result<f64, ClientError> {
        self.one_op(Op::Mutation(Mutation::Update {
            at: at.to_vec(),
            dims: dims.to_vec(),
            data: data.to_vec(),
        }))
    }

    /// Group-commits every buffered update as the next epoch on a
    /// writable server; returns the published epoch. Queries issued after
    /// this returns see the committed data (read-your-writes).
    pub fn commit(&mut self) -> Result<f64, ClientError> {
        self.one_op(Op::Mutation(Mutation::Commit))
    }

    /// Buffers raw `(tile, slot, delta)` coefficient ops on a writable
    /// server (the router's scatter form — see the `apply` op in
    /// [`crate::proto`]). Returns the number of ops buffered.
    pub fn apply(&mut self, ops: &[(usize, usize, f64)]) -> Result<f64, ClientError> {
        self.one_op(Op::Mutation(Mutation::Apply { ops: ops.to_vec() }))
    }

    fn one(&mut self, q: Query) -> Result<f64, ClientError> {
        self.one_op(Op::Query(q))
    }

    fn one_op(&mut self, op: Op) -> Result<f64, ClientError> {
        let mut answers = self.run_ops(&[op])?;
        answers
            .pop()
            .expect("one answer per operation")
            .map_err(|(kind, msg)| ClientError::Protocol(format!("server error {kind}: {msg}")))
    }

    /// Pipelines `queries` and returns one result per query, in request
    /// order. Per-query server errors come back as `Err((kind, message))`
    /// without failing the whole exchange.
    #[allow(clippy::type_complexity)]
    pub fn run(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<Result<f64, (String, String)>>, ClientError> {
        let ops: Vec<Op> = queries.iter().cloned().map(Op::Query).collect();
        self.run_ops(&ops)
    }

    /// Pipelines arbitrary operations (queries and mutations) and returns
    /// one result per operation, in request order. Note that the *server*
    /// answers mutations in connection order but may answer interleaved
    /// queries out of order; results are matched back by id here.
    #[allow(clippy::type_complexity)]
    pub fn run_ops(
        &mut self,
        queries: &[Op],
    ) -> Result<Vec<Result<f64, (String, String)>>, ClientError> {
        let trace = self.trace;
        let items: Vec<(Op, Option<u64>)> = queries.iter().map(|q| (q.clone(), trace)).collect();
        Ok(self
            .run_ops_detailed(&items)?
            .into_iter()
            .map(|r| r.result)
            .collect())
    }

    /// Pipelines operations carrying **per-operation** trace ids and
    /// returns the full parsed responses (including the per-tile partial
    /// decomposition of `partial` sub-plans), in request order. This is
    /// the fan-out primitive the scatter-gather router drives: one
    /// routed batch mixes requests from different traced clients, so
    /// each forwarded sub-request keeps its own trace id.
    pub fn run_ops_detailed(
        &mut self,
        items: &[(Op, Option<u64>)],
    ) -> Result<Vec<Response>, ClientError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let first_id = self.send_ops(items)?;
        self.recv_responses(first_id, items.len())
    }

    /// Writes and flushes one pipelined request per item without waiting
    /// for answers; returns the id of the first request. The router's
    /// scatter phase sends to every shard before reading from any, so
    /// shard round trips overlap instead of adding up.
    pub fn send_ops(&mut self, items: &[(Op, Option<u64>)]) -> Result<i128, ClientError> {
        let first_id = self.next_id;
        let mut lines = String::new();
        for (k, (op, trace)) in items.iter().enumerate() {
            lines.push_str(&proto::op_request_line_traced(
                first_id + k as i128,
                op,
                *trace,
            ));
            lines.push('\n');
        }
        self.next_id += items.len() as i128;
        self.writer.write_all(lines.as_bytes())?;
        self.writer.flush()?;
        Ok(first_id)
    }

    /// Reads the `count` responses to a [`send_ops`](Client::send_ops)
    /// exchange that started at `first_id`, re-ordered into request
    /// order.
    pub fn recv_responses(
        &mut self,
        first_id: i128,
        count: usize,
    ) -> Result<Vec<Response>, ClientError> {
        let mut by_id: HashMap<i128, Response> = HashMap::with_capacity(count);
        let mut line = String::new();
        while by_id.len() < count {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(format!(
                    "server closed after {} of {} answers",
                    by_id.len(),
                    count
                )));
            }
            let resp = proto::parse_response(line.trim_end()).map_err(ClientError::Protocol)?;
            let id = resp
                .id
                .ok_or_else(|| ClientError::Protocol("response without id".into()))?;
            if id < first_id || id >= first_id + count as i128 {
                return Err(ClientError::Protocol(format!(
                    "unexpected response id {id}"
                )));
            }
            by_id.insert(id, resp);
        }
        Ok((0..count)
            .map(|k| by_id.remove(&(first_id + k as i128)).expect("all ids seen"))
            .collect())
    }
}
