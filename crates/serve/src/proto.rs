//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, both UTF-8 JSON objects.
//! Requests:
//!
//! ```json
//! {"id": 7, "op": "point", "pos": [3, 9]}
//! {"id": 8, "op": "range_sum", "lo": [0, 0], "hi": [7, 7]}
//! ```
//!
//! `id` is optional; when present it is echoed verbatim in the response so
//! pipelined clients can match answers that return out of order (batches
//! are formed across connections, so ordering per connection is not
//! guaranteed). Responses:
//!
//! ```json
//! {"id": 7, "ok": true, "value": 12.5}
//! {"id": 8, "ok": false, "error": "bad_request", "message": "..."}
//! ```
//!
//! `value` uses the exact shortest-roundtrip `f64` formatting of
//! [`ss_obs::json`], so the served answer equals the serial in-process
//! answer bit for bit. Error kinds are closed: `parse` (not a JSON object),
//! `unknown_op` (unrecognised `op`), `bad_request` (wrong arity or
//! out-of-range coordinates).

use ss_obs::json::{self, Value};

/// A validated query, ready for planning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Point lookup at `pos`.
    Point {
        /// Coordinates, one per axis.
        pos: Vec<usize>,
    },
    /// Inclusive range sum over the box `[lo, hi]`.
    RangeSum {
        /// Lower corner, one coordinate per axis.
        lo: Vec<usize>,
        /// Upper corner, inclusive.
        hi: Vec<usize>,
    },
}

impl Query {
    /// The request's `op` string.
    pub fn op(&self) -> &'static str {
        match self {
            Query::Point { .. } => "point",
            Query::RangeSum { .. } => "range_sum",
        }
    }

    /// Checks arity and bounds against the served domain `dims`.
    pub fn validate(&self, dims: &[usize]) -> Result<(), String> {
        let check = |name: &str, v: &[usize]| -> Result<(), String> {
            if v.len() != dims.len() {
                return Err(format!(
                    "{name} has {} axes, domain has {}",
                    v.len(),
                    dims.len()
                ));
            }
            for (t, (&x, &d)) in v.iter().zip(dims).enumerate() {
                if x >= d {
                    return Err(format!("{name}[{t}] = {x} out of range (axis size {d})"));
                }
            }
            Ok(())
        };
        match self {
            Query::Point { pos } => check("pos", pos),
            Query::RangeSum { lo, hi } => {
                check("lo", lo)?;
                check("hi", hi)?;
                for (t, (&l, &h)) in lo.iter().zip(hi).enumerate() {
                    if l > h {
                        return Err(format!("lo[{t}] = {l} exceeds hi[{t}] = {h}"));
                    }
                }
                Ok(())
            }
        }
    }

    /// The Lemma 1 / Lemma 2 contribution-list plan for a standard-form
    /// store with per-axis levels `n`.
    pub fn plan(&self, n: &[u32]) -> Vec<(Vec<usize>, f64)> {
        match self {
            Query::Point { pos } => ss_core::reconstruct::standard_point_contributions(n, pos),
            Query::RangeSum { lo, hi } => {
                ss_core::reconstruct::standard_range_sum_contributions(n, lo, hi)
            }
        }
    }
}

/// A parsed request: optional client-chosen id plus the query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Echoed verbatim in the response when present.
    pub id: Option<i128>,
    /// The query itself.
    pub query: Query,
}

/// Why a request line was rejected, with the id (when one could still be
/// extracted) to address the error response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// The request id, when the line parsed far enough to reveal one.
    pub id: Option<i128>,
    /// Closed error vocabulary: `parse`, `unknown_op`, or `bad_request`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn new(id: Option<i128>, kind: &'static str, message: impl Into<String>) -> Self {
        RequestError {
            id,
            kind,
            message: message.into(),
        }
    }
}

fn usize_array(v: &Value, name: &str) -> Result<Vec<usize>, String> {
    let arr = v
        .as_array()
        .ok_or_else(|| format!("{name} must be an array"))?;
    arr.iter()
        .map(|e| match e {
            Value::Int(i) if *i >= 0 => usize::try_from(*i).map_err(|_| ()),
            _ => Err(()),
        })
        .collect::<Result<Vec<usize>, ()>>()
        .map_err(|()| format!("{name} must contain non-negative integers"))
}

/// Parses one request line. Validation against the domain happens
/// separately via [`Query::validate`].
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let v = json::parse(line)
        .map_err(|e| RequestError::new(None, "parse", format!("invalid JSON: {e}")))?;
    if v.as_object().is_none() {
        return Err(RequestError::new(
            None,
            "parse",
            "request must be an object",
        ));
    }
    let id = match v.get("id") {
        Some(Value::Int(i)) => Some(*i),
        Some(Value::Null) | None => None,
        Some(_) => {
            return Err(RequestError::new(None, "parse", "id must be an integer"));
        }
    };
    let op = match v.get("op").and_then(Value::as_str) {
        Some(op) => op,
        None => {
            return Err(RequestError::new(id, "parse", "missing string field op"));
        }
    };
    let field = |name: &str| -> Result<Vec<usize>, RequestError> {
        let raw = v
            .get(name)
            .ok_or_else(|| RequestError::new(id, "bad_request", format!("missing field {name}")))?;
        usize_array(raw, name).map_err(|m| RequestError::new(id, "bad_request", m))
    };
    let query = match op {
        "point" => Query::Point { pos: field("pos")? },
        "range_sum" => Query::RangeSum {
            lo: field("lo")?,
            hi: field("hi")?,
        },
        other => {
            return Err(RequestError::new(
                id,
                "unknown_op",
                format!("unknown op {other:?} (expected point or range_sum)"),
            ));
        }
    };
    Ok(Request { id, query })
}

fn id_value(id: Option<i128>) -> Value {
    match id {
        Some(i) => Value::Int(i),
        None => Value::Null,
    }
}

/// Renders a request line for `query` with id `id` (the client side).
pub fn request_line(id: i128, query: &Query) -> String {
    let mut pairs = vec![
        ("id".to_string(), Value::Int(id)),
        ("op".to_string(), Value::from(query.op())),
    ];
    let arr = |v: &[usize]| Value::Array(v.iter().map(|&x| Value::from(x)).collect());
    match query {
        Query::Point { pos } => pairs.push(("pos".into(), arr(pos))),
        Query::RangeSum { lo, hi } => {
            pairs.push(("lo".into(), arr(lo)));
            pairs.push(("hi".into(), arr(hi)));
        }
    }
    Value::Object(pairs).to_string()
}

/// Renders a success response line.
pub fn ok_response(id: Option<i128>, value: f64) -> String {
    Value::Object(vec![
        ("id".into(), id_value(id)),
        ("ok".into(), Value::Bool(true)),
        ("value".into(), Value::Float(value)),
    ])
    .to_string()
}

/// Renders a typed error response line.
pub fn err_response(id: Option<i128>, kind: &str, message: &str) -> String {
    Value::Object(vec![
        ("id".into(), id_value(id)),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::from(kind)),
        ("message".into(), Value::from(message)),
    ])
    .to_string()
}

/// A parsed response line.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The echoed request id.
    pub id: Option<i128>,
    /// The answer, or `(error kind, message)`.
    pub result: Result<f64, (String, String)>,
}

/// Parses one response line (the client side).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = json::parse(line).map_err(|e| format!("invalid response JSON: {e}"))?;
    let id = match v.get("id") {
        Some(Value::Int(i)) => Some(*i),
        _ => None,
    };
    match v.get("ok") {
        Some(Value::Bool(true)) => {
            let value = v
                .get("value")
                .and_then(Value::as_f64)
                .ok_or("ok response missing numeric value")?;
            Ok(Response {
                id,
                result: Ok(value),
            })
        }
        Some(Value::Bool(false)) => {
            let kind = v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string();
            let message = v
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            Ok(Response {
                id,
                result: Err((kind, message)),
            })
        }
        _ => Err("response missing boolean ok".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        for q in [
            Query::Point { pos: vec![3, 9] },
            Query::RangeSum {
                lo: vec![0, 0],
                hi: vec![7, 7],
            },
        ] {
            let line = request_line(42, &q);
            let back = parse_request(&line).unwrap();
            assert_eq!(back.id, Some(42));
            assert_eq!(back.query, q);
        }
    }

    #[test]
    fn response_round_trip_is_exact_for_awkward_floats() {
        for v in [0.1 + 0.2, 1.0 / 3.0, -0.0, 1e-300, 12_345.678_901_234_5] {
            let line = ok_response(Some(7), v);
            let back = parse_response(&line).unwrap();
            assert_eq!(back.result, Ok(v), "{line}");
        }
    }

    #[test]
    fn parse_errors_are_typed() {
        assert_eq!(parse_request("not json").unwrap_err().kind, "parse");
        assert_eq!(parse_request("[1,2]").unwrap_err().kind, "parse");
        assert_eq!(
            parse_request(r#"{"id":1,"op":"bogus"}"#).unwrap_err().kind,
            "unknown_op"
        );
        let e = parse_request(r#"{"id":1,"op":"point"}"#).unwrap_err();
        assert_eq!((e.kind, e.id), ("bad_request", Some(1)));
        let e = parse_request(r#"{"op":"point","pos":[1,-2]}"#).unwrap_err();
        assert_eq!(e.kind, "bad_request");
    }

    #[test]
    fn validation_checks_arity_bounds_and_ordering() {
        let dims = [16usize, 8];
        assert!(Query::Point { pos: vec![15, 7] }.validate(&dims).is_ok());
        assert!(Query::Point { pos: vec![16, 0] }.validate(&dims).is_err());
        assert!(Query::Point { pos: vec![1] }.validate(&dims).is_err());
        assert!(Query::RangeSum {
            lo: vec![2, 3],
            hi: vec![1, 5]
        }
        .validate(&dims)
        .is_err());
        assert!(Query::RangeSum {
            lo: vec![2, 3],
            hi: vec![15, 7]
        }
        .validate(&dims)
        .is_ok());
    }

    #[test]
    fn error_response_renders_kind_and_message() {
        let line = err_response(None, "bad_request", "pos[0] out of range");
        let back = parse_response(&line).unwrap();
        assert_eq!(back.id, None);
        let (kind, msg) = back.result.unwrap_err();
        assert_eq!(kind, "bad_request");
        assert!(msg.contains("out of range"));
    }
}
