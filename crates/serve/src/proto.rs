//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, both UTF-8 JSON objects.
//! Requests:
//!
//! ```json
//! {"id": 7, "op": "point", "pos": [3, 9]}
//! {"id": 8, "op": "range_sum", "lo": [0, 0], "hi": [7, 7]}
//! ```
//!
//! `id` is optional; when present it is echoed verbatim in the response so
//! pipelined clients can match answers that return out of order (batches
//! are formed across connections, so ordering per connection is not
//! guaranteed). Responses:
//!
//! ```json
//! {"id": 7, "ok": true, "value": 12.5}
//! {"id": 8, "ok": false, "error": "bad_request", "message": "..."}
//! ```
//!
//! `value` uses the exact shortest-roundtrip `f64` formatting of
//! [`ss_obs::json`], so the served answer equals the serial in-process
//! answer bit for bit.
//!
//! A **writable** server additionally accepts mutations:
//!
//! ```json
//! {"id": 9, "op": "update", "at": [2, 4], "dims": [2, 2], "data": [1.0, 0.0, 0.5, -1.0]}
//! {"id": 10, "op": "commit"}
//! ```
//!
//! `update` buffers one box of data-domain deltas (`data` is the box in
//! row-major order, `dims` its per-axis extents, `at` its lower corner);
//! its `value` answers with the number of coefficient deltas buffered.
//! `commit` group-commits everything buffered so far as the next epoch
//! and answers with the published epoch number. Buffered-but-uncommitted
//! updates are invisible to queries; from the commit response onward
//! every new query sees them (read-your-writes at epoch granularity).
//!
//! # Router sub-requests (`partial` / `apply`)
//!
//! The scatter-gather router (see [`crate::QueryServer::bind_router`])
//! speaks two additional operations to its shard servers:
//!
//! ```json
//! {"id": 11, "op": "partial", "terms": [[[3, 9], 0.25], [[0, 1], -0.5]]}
//! {"id": 12, "op": "apply", "ops": [[7, 3, 0.5], [7, 4, -1.0]]}
//! ```
//!
//! `partial` evaluates a raw contribution list (each term an
//! `[index, weight]` pair) and answers with the weighted sum **plus** its
//! per-tile decomposition, so a router can merge partials from disjoint
//! tile ranges bit-exactly (the canonical accumulation order is per-tile
//! decomposed — see `ss_query::execute_plans_tiled`):
//!
//! ```json
//! {"id": 11, "ok": true, "value": 3.25, "tiles": [[0, -0.5], [6, 3.75]]}
//! ```
//!
//! `apply` buffers raw `(tile, slot, delta)` coefficient ops on a
//! writable shard — the already-SHIFT-SPLIT-decomposed form a router
//! scatters after splitting one box update by tile ownership; its
//! `value` answers with the number of ops buffered. Like `update`, the
//! ops stay invisible until `commit`.
//!
//! Error kinds are closed: `parse` (not a JSON object), `unknown_op`
//! (unrecognised `op`), `bad_request` (wrong arity or out-of-range
//! coordinates), `read_only` (mutation sent to a read-only server), `io`
//! (a commit failed to reach the write-ahead log), `shard_unavailable`
//! (a router could not reach any replica of a shard a request needs — the
//! answer would otherwise be a silent partial sum, so it is refused).
//!
//! # Tracing (`trace` field)
//!
//! Any request may carry an **optional** `trace` field — a positive
//! integer trace id:
//!
//! ```json
//! {"id": 7, "op": "point", "pos": [3, 9], "trace": 401}
//! ```
//!
//! A tracing-enabled server records the request's spans and tile
//! fetches under that id (see `ss_obs::trace`) and echoes `trace` in
//! the success response. The field is **optional and
//! ignored-by-old-servers**: servers predating it (and servers with
//! tracing off) simply don't inspect unknown fields, so old and new
//! clients interoperate freely; anything other than a positive integer
//! is treated as absent rather than rejected, for the same reason.

use ss_obs::json::{self, Value};

/// A validated query, ready for planning.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Point lookup at `pos`.
    Point {
        /// Coordinates, one per axis.
        pos: Vec<usize>,
    },
    /// Inclusive range sum over the box `[lo, hi]`.
    RangeSum {
        /// Lower corner, one coordinate per axis.
        lo: Vec<usize>,
        /// Upper corner, inclusive.
        hi: Vec<usize>,
    },
    /// A raw contribution list — a router's sub-plan for one shard. The
    /// success response carries the per-tile partial decomposition (see
    /// the module docs).
    Partial {
        /// `(coefficient index, weight)` terms, evaluated in the
        /// canonical per-tile-decomposed order.
        terms: Vec<(Vec<usize>, f64)>,
    },
}

impl Query {
    /// The request's `op` string.
    pub fn op(&self) -> &'static str {
        match self {
            Query::Point { .. } => "point",
            Query::RangeSum { .. } => "range_sum",
            Query::Partial { .. } => "partial",
        }
    }

    /// Checks arity and bounds against the served domain `dims`.
    pub fn validate(&self, dims: &[usize]) -> Result<(), String> {
        let check = |name: &str, v: &[usize]| -> Result<(), String> {
            if v.len() != dims.len() {
                return Err(format!(
                    "{name} has {} axes, domain has {}",
                    v.len(),
                    dims.len()
                ));
            }
            for (t, (&x, &d)) in v.iter().zip(dims).enumerate() {
                if x >= d {
                    return Err(format!("{name}[{t}] = {x} out of range (axis size {d})"));
                }
            }
            Ok(())
        };
        match self {
            Query::Point { pos } => check("pos", pos),
            Query::RangeSum { lo, hi } => {
                check("lo", lo)?;
                check("hi", hi)?;
                for (t, (&l, &h)) in lo.iter().zip(hi).enumerate() {
                    if l > h {
                        return Err(format!("lo[{t}] = {l} exceeds hi[{t}] = {h}"));
                    }
                }
                Ok(())
            }
            Query::Partial { terms } => {
                for (k, (idx, _)) in terms.iter().enumerate() {
                    check(&format!("terms[{k}]"), idx)?;
                }
                Ok(())
            }
        }
    }

    /// The Lemma 1 / Lemma 2 contribution-list plan for a standard-form
    /// store with per-axis levels `n`. A `partial` sub-plan *is* its own
    /// contribution list.
    pub fn plan(&self, n: &[u32]) -> Vec<(Vec<usize>, f64)> {
        match self {
            Query::Point { pos } => ss_core::reconstruct::standard_point_contributions(n, pos),
            Query::RangeSum { lo, hi } => {
                ss_core::reconstruct::standard_range_sum_contributions(n, lo, hi)
            }
            Query::Partial { terms } => terms.clone(),
        }
    }

    /// Whether the success response must carry the per-tile partial
    /// decomposition (`partial` sub-plans only).
    pub fn wants_tiles(&self) -> bool {
        matches!(self, Query::Partial { .. })
    }
}

/// A mutation accepted by a writable server.
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Buffer one box of data-domain deltas.
    Update {
        /// Lower corner of the box, one coordinate per axis.
        at: Vec<usize>,
        /// Per-axis extents of the box.
        dims: Vec<usize>,
        /// Row-major box contents (`dims` product values).
        data: Vec<f64>,
    },
    /// Buffer raw `(tile, slot, delta)` coefficient ops — a router's
    /// already-decomposed scatter for one shard.
    Apply {
        /// The ops, in arrival order (replayed in this order at flush).
        ops: Vec<(usize, usize, f64)>,
    },
    /// Group-commit everything buffered so far as the next epoch.
    Commit,
}

impl Mutation {
    /// Checks arity, bounds and data length against the domain `dims`.
    /// `apply` ops address `(tile, slot)` locations directly; their
    /// bounds depend on the tiling map, so the backend checks them when
    /// buffering.
    pub fn validate(&self, domain: &[usize]) -> Result<(), String> {
        match self {
            Mutation::Commit => Ok(()),
            Mutation::Apply { .. } => Ok(()),
            Mutation::Update { at, dims, data } => {
                if at.len() != domain.len() || dims.len() != domain.len() {
                    return Err(format!(
                        "at/dims have {}/{} axes, domain has {}",
                        at.len(),
                        dims.len(),
                        domain.len()
                    ));
                }
                let mut cells = 1usize;
                for (t, ((&o, &e), &d)) in at.iter().zip(dims).zip(domain).enumerate() {
                    if e == 0 {
                        return Err(format!("dims[{t}] must be at least 1"));
                    }
                    if o + e > d {
                        return Err(format!(
                            "box [{o}, {}] exceeds axis {t} (size {d})",
                            o + e - 1
                        ));
                    }
                    cells = cells.saturating_mul(e);
                }
                if data.len() != cells {
                    return Err(format!("data has {} values, box needs {cells}", data.len()));
                }
                Ok(())
            }
        }
    }
}

/// What a request line asks for: a read or a mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// A read-only query (every server accepts these).
    Query(Query),
    /// A mutation (writable servers only).
    Mutation(Mutation),
}

/// A parsed request: optional client-chosen id plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response when present.
    pub id: Option<i128>,
    /// The requested operation.
    pub op: Op,
    /// Client-supplied trace id (positive; anything else parses as
    /// `None`). Echoed in the success response when honoured.
    pub trace: Option<u64>,
}

/// Why a request line was rejected, with the id (when one could still be
/// extracted) to address the error response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// The request id, when the line parsed far enough to reveal one.
    pub id: Option<i128>,
    /// Closed error vocabulary: `parse`, `unknown_op`, or `bad_request`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn new(id: Option<i128>, kind: &'static str, message: impl Into<String>) -> Self {
        RequestError {
            id,
            kind,
            message: message.into(),
        }
    }
}

fn usize_array(v: &Value, name: &str) -> Result<Vec<usize>, String> {
    let arr = v
        .as_array()
        .ok_or_else(|| format!("{name} must be an array"))?;
    arr.iter()
        .map(|e| match e {
            Value::Int(i) if *i >= 0 => usize::try_from(*i).map_err(|_| ()),
            _ => Err(()),
        })
        .collect::<Result<Vec<usize>, ()>>()
        .map_err(|()| format!("{name} must contain non-negative integers"))
}

fn f64_array(v: &Value, name: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .as_array()
        .ok_or_else(|| format!("{name} must be an array"))?;
    arr.iter()
        .map(|e| e.as_f64().ok_or(()))
        .collect::<Result<Vec<f64>, ()>>()
        .map_err(|()| format!("{name} must contain numbers"))
}

/// `terms`: an array of `[index_array, weight]` pairs.
fn terms_array(v: &Value) -> Result<Vec<(Vec<usize>, f64)>, String> {
    let arr = v.as_array().ok_or("terms must be an array")?;
    arr.iter()
        .enumerate()
        .map(|(k, e)| {
            let pair = e
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("terms[{k}] must be an [index, weight] pair"))?;
            let idx = usize_array(&pair[0], &format!("terms[{k}] index"))?;
            let w = pair[1]
                .as_f64()
                .ok_or_else(|| format!("terms[{k}] weight must be a number"))?;
            Ok((idx, w))
        })
        .collect()
}

/// `ops`: an array of `[tile, slot, delta]` triples.
fn ops_array(v: &Value) -> Result<Vec<(usize, usize, f64)>, String> {
    let arr = v.as_array().ok_or("ops must be an array")?;
    arr.iter()
        .enumerate()
        .map(|(k, e)| {
            let triple = e
                .as_array()
                .filter(|p| p.len() == 3)
                .ok_or_else(|| format!("ops[{k}] must be a [tile, slot, delta] triple"))?;
            let loc = usize_array(&Value::Array(triple[..2].to_vec()), &format!("ops[{k}]"))?;
            let d = triple[2]
                .as_f64()
                .ok_or_else(|| format!("ops[{k}] delta must be a number"))?;
            Ok((loc[0], loc[1], d))
        })
        .collect()
}

/// Parses one request line. Validation against the domain happens
/// separately via [`Query::validate`].
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let v = json::parse(line)
        .map_err(|e| RequestError::new(None, "parse", format!("invalid JSON: {e}")))?;
    if v.as_object().is_none() {
        return Err(RequestError::new(
            None,
            "parse",
            "request must be an object",
        ));
    }
    let id = match v.get("id") {
        Some(Value::Int(i)) => Some(*i),
        Some(Value::Null) | None => None,
        Some(_) => {
            return Err(RequestError::new(None, "parse", "id must be an integer"));
        }
    };
    let op = match v.get("op").and_then(Value::as_str) {
        Some(op) => op,
        None => {
            return Err(RequestError::new(id, "parse", "missing string field op"));
        }
    };
    // Lenient by design (see the module docs): a malformed trace id
    // degrades to "untraced", it never fails the request.
    let trace = match v.get("trace") {
        Some(Value::Int(t)) if *t > 0 => u64::try_from(*t).ok(),
        _ => None,
    };
    let field = |name: &str| -> Result<Vec<usize>, RequestError> {
        let raw = v
            .get(name)
            .ok_or_else(|| RequestError::new(id, "bad_request", format!("missing field {name}")))?;
        usize_array(raw, name).map_err(|m| RequestError::new(id, "bad_request", m))
    };
    let op = match op {
        "point" => Op::Query(Query::Point { pos: field("pos")? }),
        "range_sum" => Op::Query(Query::RangeSum {
            lo: field("lo")?,
            hi: field("hi")?,
        }),
        "update" => {
            let raw = v
                .get("data")
                .ok_or_else(|| RequestError::new(id, "bad_request", "missing field data"))?;
            let data =
                f64_array(raw, "data").map_err(|m| RequestError::new(id, "bad_request", m))?;
            Op::Mutation(Mutation::Update {
                at: field("at")?,
                dims: field("dims")?,
                data,
            })
        }
        "partial" => {
            let raw = v
                .get("terms")
                .ok_or_else(|| RequestError::new(id, "bad_request", "missing field terms"))?;
            let terms = terms_array(raw).map_err(|m| RequestError::new(id, "bad_request", m))?;
            Op::Query(Query::Partial { terms })
        }
        "apply" => {
            let raw = v
                .get("ops")
                .ok_or_else(|| RequestError::new(id, "bad_request", "missing field ops"))?;
            let ops = ops_array(raw).map_err(|m| RequestError::new(id, "bad_request", m))?;
            Op::Mutation(Mutation::Apply { ops })
        }
        "commit" => Op::Mutation(Mutation::Commit),
        other => {
            return Err(RequestError::new(
                id,
                "unknown_op",
                format!(
                    "unknown op {other:?} (expected point, range_sum, partial, \
                     update, apply, or commit)"
                ),
            ));
        }
    };
    Ok(Request { id, op, trace })
}

fn id_value(id: Option<i128>) -> Value {
    match id {
        Some(i) => Value::Int(i),
        None => Value::Null,
    }
}

/// Renders a request line for `query` with id `id` (the client side).
pub fn request_line(id: i128, query: &Query) -> String {
    op_request_line(id, &Op::Query(query.clone()))
}

/// Renders a request line for any operation with id `id` (the client side).
pub fn op_request_line(id: i128, op: &Op) -> String {
    op_request_line_traced(id, op, None)
}

/// Renders a request line carrying an optional `trace` id (the client
/// side; see the module docs on the `trace` field).
pub fn op_request_line_traced(id: i128, op: &Op, trace: Option<u64>) -> String {
    let name = match op {
        Op::Query(q) => q.op(),
        Op::Mutation(Mutation::Update { .. }) => "update",
        Op::Mutation(Mutation::Apply { .. }) => "apply",
        Op::Mutation(Mutation::Commit) => "commit",
    };
    let mut pairs = vec![
        ("id".to_string(), Value::Int(id)),
        ("op".to_string(), Value::from(name)),
    ];
    let arr = |v: &[usize]| Value::Array(v.iter().map(|&x| Value::from(x)).collect());
    match op {
        Op::Query(Query::Point { pos }) => pairs.push(("pos".into(), arr(pos))),
        Op::Query(Query::RangeSum { lo, hi }) => {
            pairs.push(("lo".into(), arr(lo)));
            pairs.push(("hi".into(), arr(hi)));
        }
        Op::Query(Query::Partial { terms }) => {
            pairs.push((
                "terms".into(),
                Value::Array(
                    terms
                        .iter()
                        .map(|(idx, w)| Value::Array(vec![arr(idx), Value::Float(*w)]))
                        .collect(),
                ),
            ));
        }
        Op::Mutation(Mutation::Apply { ops }) => {
            pairs.push((
                "ops".into(),
                Value::Array(
                    ops.iter()
                        .map(|&(t, s, d)| {
                            Value::Array(vec![Value::from(t), Value::from(s), Value::Float(d)])
                        })
                        .collect(),
                ),
            ));
        }
        Op::Mutation(Mutation::Update { at, dims, data }) => {
            pairs.push(("at".into(), arr(at)));
            pairs.push(("dims".into(), arr(dims)));
            pairs.push((
                "data".into(),
                Value::Array(data.iter().map(|&x| Value::Float(x)).collect()),
            ));
        }
        Op::Mutation(Mutation::Commit) => {}
    }
    if let Some(t) = trace {
        pairs.push(("trace".into(), Value::from(t)));
    }
    Value::Object(pairs).to_string()
}

/// Renders a success response line.
pub fn ok_response(id: Option<i128>, value: f64) -> String {
    ok_response_traced(id, None, value)
}

/// Renders a success response line echoing the honoured `trace` id.
pub fn ok_response_traced(id: Option<i128>, trace: Option<u64>, value: f64) -> String {
    ok_response_tiled(id, trace, value, None)
}

/// Renders a success response line, optionally carrying the per-tile
/// partial decomposition a `partial` sub-plan answers with.
pub fn ok_response_tiled(
    id: Option<i128>,
    trace: Option<u64>,
    value: f64,
    tiles: Option<&[(usize, f64)]>,
) -> String {
    let mut pairs = vec![
        ("id".into(), id_value(id)),
        ("ok".into(), Value::Bool(true)),
        ("value".into(), Value::Float(value)),
    ];
    if let Some(tiles) = tiles {
        pairs.push((
            "tiles".into(),
            Value::Array(
                tiles
                    .iter()
                    .map(|&(t, p)| Value::Array(vec![Value::from(t), Value::Float(p)]))
                    .collect(),
            ),
        ));
    }
    if let Some(t) = trace {
        pairs.push(("trace".into(), Value::from(t)));
    }
    Value::Object(pairs).to_string()
}

/// Renders a typed error response line.
pub fn err_response(id: Option<i128>, kind: &str, message: &str) -> String {
    Value::Object(vec![
        ("id".into(), id_value(id)),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::from(kind)),
        ("message".into(), Value::from(message)),
    ])
    .to_string()
}

/// A parsed response line.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The echoed request id.
    pub id: Option<i128>,
    /// The answer, or `(error kind, message)`.
    pub result: Result<f64, (String, String)>,
    /// Per-tile partial sums, present on `partial` sub-plan answers
    /// (ascending by tile ordinal).
    pub tiles: Option<Vec<(usize, f64)>>,
}

/// Parses one response line (the client side).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = json::parse(line).map_err(|e| format!("invalid response JSON: {e}"))?;
    let id = match v.get("id") {
        Some(Value::Int(i)) => Some(*i),
        _ => None,
    };
    match v.get("ok") {
        Some(Value::Bool(true)) => {
            let value = v
                .get("value")
                .and_then(Value::as_f64)
                .ok_or("ok response missing numeric value")?;
            let tiles = match v.get("tiles") {
                None => None,
                Some(raw) => {
                    let arr = raw.as_array().ok_or("tiles must be an array")?;
                    let mut tiles = Vec::with_capacity(arr.len());
                    for e in arr {
                        let pair = e
                            .as_array()
                            .filter(|p| p.len() == 2)
                            .ok_or("tiles entries must be [tile, partial] pairs")?;
                        let tile = match &pair[0] {
                            Value::Int(i) if *i >= 0 => {
                                usize::try_from(*i).map_err(|_| "tile out of range")?
                            }
                            _ => return Err("tile must be a non-negative integer".into()),
                        };
                        let partial = pair[1].as_f64().ok_or("tile partial must be a number")?;
                        tiles.push((tile, partial));
                    }
                    Some(tiles)
                }
            };
            Ok(Response {
                id,
                result: Ok(value),
                tiles,
            })
        }
        Some(Value::Bool(false)) => {
            let kind = v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string();
            let message = v
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            Ok(Response {
                id,
                result: Err((kind, message)),
                tiles: None,
            })
        }
        _ => Err("response missing boolean ok".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        for q in [
            Query::Point { pos: vec![3, 9] },
            Query::RangeSum {
                lo: vec![0, 0],
                hi: vec![7, 7],
            },
        ] {
            let line = request_line(42, &q);
            let back = parse_request(&line).unwrap();
            assert_eq!(back.id, Some(42));
            assert_eq!(back.op, Op::Query(q));
        }
    }

    #[test]
    fn mutation_round_trip() {
        for m in [
            Mutation::Update {
                at: vec![2, 4],
                dims: vec![2, 2],
                data: vec![1.0, 0.0, 0.5, -1.0],
            },
            Mutation::Commit,
        ] {
            let line = op_request_line(9, &Op::Mutation(m.clone()));
            let back = parse_request(&line).unwrap();
            assert_eq!(back.id, Some(9));
            assert_eq!(back.op, Op::Mutation(m));
        }
        // Integer-valued JSON data is accepted as f64.
        let back =
            parse_request(r#"{"id":1,"op":"update","at":[0],"dims":[2],"data":[1, 2.5]}"#).unwrap();
        assert_eq!(
            back.op,
            Op::Mutation(Mutation::Update {
                at: vec![0],
                dims: vec![2],
                data: vec![1.0, 2.5],
            })
        );
    }

    #[test]
    fn partial_and_apply_round_trip() {
        let q = Query::Partial {
            terms: vec![(vec![3, 9], 0.25), (vec![0, 1], -0.5)],
        };
        let line = request_line(11, &q);
        let back = parse_request(&line).unwrap();
        assert_eq!(back.op, Op::Query(q.clone()));
        // A partial sub-plan is its own plan and wants the tile breakdown.
        assert_eq!(
            q.plan(&[6, 6]),
            vec![(vec![3, 9], 0.25), (vec![0, 1], -0.5)]
        );
        assert!(q.wants_tiles());
        assert!(!Query::Point { pos: vec![1, 1] }.wants_tiles());
        assert!(q.validate(&[16, 16]).is_ok());
        assert!(q.validate(&[4, 4]).is_err(), "bounds");
        assert!(q.validate(&[16]).is_err(), "arity");

        let m = Mutation::Apply {
            ops: vec![(7, 3, 0.5), (7, 4, -1.0)],
        };
        let line = op_request_line(12, &Op::Mutation(m.clone()));
        let back = parse_request(&line).unwrap();
        assert_eq!(back.op, Op::Mutation(m.clone()));
        assert!(m.validate(&[16, 16]).is_ok());
    }

    #[test]
    fn tiled_response_round_trip() {
        let tiles = vec![(0usize, -0.5), (6, 3.75)];
        let line = ok_response_tiled(Some(11), None, 3.25, Some(&tiles));
        let back = parse_response(&line).unwrap();
        assert_eq!(back.result, Ok(3.25));
        assert_eq!(back.tiles, Some(tiles));
        // Plain responses parse with no tiles.
        let back = parse_response(&ok_response(Some(1), 2.0)).unwrap();
        assert_eq!(back.tiles, None);
    }

    #[test]
    fn update_validation_checks_arity_bounds_and_data_length() {
        let domain = [8usize, 4];
        let upd = |at: &[usize], dims: &[usize], n: usize| Mutation::Update {
            at: at.to_vec(),
            dims: dims.to_vec(),
            data: vec![0.5; n],
        };
        assert!(upd(&[6, 2], &[2, 2], 4).validate(&domain).is_ok());
        assert!(upd(&[6], &[2, 2], 4).validate(&domain).is_err(), "arity");
        assert!(
            upd(&[7, 2], &[2, 2], 4).validate(&domain).is_err(),
            "bounds"
        );
        assert!(upd(&[0, 0], &[0, 2], 0).validate(&domain).is_err(), "empty");
        assert!(upd(&[0, 0], &[2, 2], 3).validate(&domain).is_err(), "data");
        assert!(Mutation::Commit.validate(&domain).is_ok());
    }

    #[test]
    fn response_round_trip_is_exact_for_awkward_floats() {
        for v in [0.1 + 0.2, 1.0 / 3.0, -0.0, 1e-300, 12_345.678_901_234_5] {
            let line = ok_response(Some(7), v);
            let back = parse_response(&line).unwrap();
            assert_eq!(back.result, Ok(v), "{line}");
        }
    }

    #[test]
    fn trace_field_is_optional_lenient_and_echoed() {
        // Absent → untraced.
        let r = parse_request(r#"{"id":1,"op":"commit"}"#).unwrap();
        assert_eq!(r.trace, None);
        // A positive integer is honoured and round-trips.
        let line = op_request_line_traced(5, &Op::Query(Query::Point { pos: vec![1] }), Some(42));
        let back = parse_request(&line).unwrap();
        assert_eq!(back.trace, Some(42));
        assert_eq!(back.id, Some(5));
        // Anything else degrades to untraced — never a request error
        // (old servers ignore the field; new ones must not be stricter).
        for junk in [r#""x""#, "0", "-3", "1.5", "[1]", "null", "true"] {
            let line = format!(r#"{{"id":1,"op":"commit","trace":{junk}}}"#);
            let r = parse_request(&line).unwrap_or_else(|e| panic!("{junk}: {e:?}", e = e));
            assert_eq!(r.trace, None, "trace={junk}");
        }
        // The success response echoes the honoured id.
        let resp = ok_response_traced(Some(7), Some(42), 2.5);
        assert!(resp.contains(r#""trace":42"#), "{resp}");
        let back = parse_response(&resp).unwrap();
        assert_eq!(back.result, Ok(2.5));
    }

    #[test]
    fn parse_errors_are_typed() {
        assert_eq!(parse_request("not json").unwrap_err().kind, "parse");
        assert_eq!(parse_request("[1,2]").unwrap_err().kind, "parse");
        assert_eq!(
            parse_request(r#"{"id":1,"op":"bogus"}"#).unwrap_err().kind,
            "unknown_op"
        );
        let e = parse_request(r#"{"id":1,"op":"point"}"#).unwrap_err();
        assert_eq!((e.kind, e.id), ("bad_request", Some(1)));
        let e = parse_request(r#"{"op":"point","pos":[1,-2]}"#).unwrap_err();
        assert_eq!(e.kind, "bad_request");
    }

    #[test]
    fn validation_checks_arity_bounds_and_ordering() {
        let dims = [16usize, 8];
        assert!(Query::Point { pos: vec![15, 7] }.validate(&dims).is_ok());
        assert!(Query::Point { pos: vec![16, 0] }.validate(&dims).is_err());
        assert!(Query::Point { pos: vec![1] }.validate(&dims).is_err());
        assert!(Query::RangeSum {
            lo: vec![2, 3],
            hi: vec![1, 5]
        }
        .validate(&dims)
        .is_err());
        assert!(Query::RangeSum {
            lo: vec![2, 3],
            hi: vec![15, 7]
        }
        .validate(&dims)
        .is_ok());
    }

    #[test]
    fn error_response_renders_kind_and_message() {
        let line = err_response(None, "bad_request", "pos[0] out of range");
        let back = parse_response(&line).unwrap();
        assert_eq!(back.id, None);
        let (kind, msg) = back.result.unwrap_err();
        assert_eq!(kind, "bad_request");
        assert!(msg.contains("out of range"));
    }
}
