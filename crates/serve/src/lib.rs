//! Concurrent query serving over shared wavelet coefficient stores.
//!
//! The ROADMAP's north star is serving query traffic from a maintained
//! wavelet store, not just maintaining it. This crate is the serving
//! layer: a plain-TCP, line-delimited-JSON query server in the same
//! std-only style as the `ss-obs` metrics server, running standard-form
//! point and range-sum queries against a
//! [`SharedCoeffStore`](ss_storage::SharedCoeffStore) from a fixed pool of
//! worker threads.
//!
//! What makes it more than a socket wrapper is **tile-major batching
//! across clients**: every accepted request is planned into its Lemma 1/2
//! contribution list up front, and each executor sweep drains a batch of
//! concurrently pending requests and evaluates them through
//! [`ss_query::execute_plans`] — so a hot tile demanded by many clients in
//! the same instant is fetched once, not once per connection. Answers are
//! bit-identical to serial execution: the evaluation order is fixed by the
//! plans alone, and the wire format round-trips `f64` exactly.
//!
//! Live read/write serving: [`QueryServer::bind_writable`] runs the same
//! protocol over an epoch-versioned
//! [`SnapshotCoeffStore`](ss_maintain::SnapshotCoeffStore), adding
//! `update` (buffer box deltas) and `commit` (group-commit the next
//! epoch) operations. Each query batch pins one snapshot, so queries
//! never see a partially applied epoch, and a commit's effects are
//! visible to every query issued after its response (read-your-writes).
//!
//! Horizontal scale-out: [`QueryServer::bind_router`] serves the same
//! protocol as a **scatter-gather router** over tile-range shards — tile
//! space is partitioned by an [`ss_storage::ShardMap`] into contiguous
//! ranges, each held by N replica shard servers; the router splits every
//! plan by owning shard, fans `partial` sub-requests to the least-loaded
//! replicas, and merges the per-tile partial sums back **bit-identically**
//! (ascending tile order reproduces the single-store addition tree).
//!
//! * [`proto`] — the wire protocol: requests, typed error responses,
//!   exact float formatting,
//! * [`server`] — [`QueryServer`]: acceptor, per-connection reader
//!   threads, the shared batch queue, executor pool, and budgeted clean
//!   shutdown,
//! * [`router`] — scatter-gather fan-out, replica failover, and the
//!   routed write path behind [`QueryServer::bind_router`],
//! * [`client`] — [`Client`]: a small blocking, pipelining client used by
//!   the CLI `query` command, the benches and the tests.
//!
//! # Example
//!
//! Serve a transformed 16×16 store on an ephemeral port and query it
//! over TCP:
//!
//! ```
//! use ss_core::tiling::StandardTiling;
//! use ss_serve::{Client, QueryServer, ServeConfig};
//! use ss_storage::{mem_shared_store, IoStats};
//!
//! let store = mem_shared_store(
//!     StandardTiling::new(&[4, 4], &[2, 2]), 1 << 10, 4, IoStats::new());
//! store.write(&[3, 5], 2.0); // one non-zero cell, wavelet-transformed
//! // ... (a real ingest writes the full forward transform)
//!
//! let server = QueryServer::bind(
//!     "127.0.0.1:0", store, vec![4, 4], ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let got = client.point(&[3, 5]).unwrap();
//! assert!(got.is_finite());
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod router;
pub mod server;

pub use client::{Client, ClientError};
pub use proto::{Mutation, Op, Query};
pub use router::RouterTopology;
pub use server::{QueryServer, ServeConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{MultiIndexIter, NdArray, Shape};
    use ss_core::tiling::StandardTiling;
    use ss_storage::{mem_shared_store, wstore::mem_store, IoStats, SharedCoeffStore};
    use std::sync::Arc;

    fn test_data(side: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 31 + idx[1] * 7) % 23) as f64 / 3.0 - 2.5
        })
    }

    fn shared_store(
        a: &NdArray<f64>,
        n: u32,
    ) -> SharedCoeffStore<StandardTiling, ss_storage::MemBlockStore> {
        let t = ss_core::standard::forward_to(a);
        let shared = mem_shared_store(
            StandardTiling::new(&[n; 2], &[2; 2]),
            1 << 10,
            4,
            IoStats::new(),
        );
        for idx in MultiIndexIter::new(a.shape().dims()) {
            shared.write(&idx, t.get(&idx));
        }
        shared
    }

    /// Unwraps the store `Arc` once the server has let go of it. The
    /// per-connection reader threads are detached and hold a clone of
    /// the server state (and through it, the store) until the client's
    /// socket EOF wakes them — briefly *after* `shutdown()` returns and
    /// the client is dropped, so the unwrap must wait them out.
    fn unwrap_store<T>(mut store: Arc<T>) -> T {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match Arc::try_unwrap(store) {
                Ok(inner) => return inner,
                Err(shared) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "server threads never released the store"
                    );
                    store = shared;
                    std::thread::yield_now();
                }
            }
        }
    }

    fn bind(store: SharedCoeffStore<StandardTiling, ss_storage::MemBlockStore>) -> QueryServer {
        QueryServer::bind(
            "127.0.0.1:0",
            store,
            vec![5, 5],
            ServeConfig {
                workers: 3,
                batch_max: 16,
                max_requests: None,
                slow_ns: None,
            },
        )
        .unwrap()
    }

    #[test]
    fn serves_exact_point_and_range_answers() {
        let a = test_data(32);
        let server = bind(shared_store(&a, 5));
        let mut serial = mem_store(
            StandardTiling::new(&[5; 2], &[2; 2]),
            1 << 10,
            IoStats::new(),
        );
        let t = ss_core::standard::forward_to(&a);
        for idx in MultiIndexIter::new(&[32, 32]) {
            serial.write(&idx, t.get(&idx));
        }
        let mut client = Client::connect(server.local_addr()).unwrap();
        // The server evaluates tile-major; the matching serial discipline
        // is the batch path, whose per-query summation order is fixed by
        // the plan alone — so answers must agree bit for bit.
        for (x, y) in [(0, 0), (13, 7), (31, 31), (5, 28)] {
            let got = client.point(&[x, y]).unwrap();
            let want = ss_query::batch_points(&mut serial, &[5, 5], &[vec![x, y]])[0];
            assert_eq!(got.to_bits(), want.to_bits(), "point ({x},{y})");
        }
        let got = client.range_sum(&[2, 3], &[29, 17]).unwrap();
        let want =
            ss_query::batch_range_sums(&mut serial, &[5, 5], &[(vec![2, 3], vec![29, 17])])[0];
        assert_eq!(got.to_bits(), want.to_bits(), "range sum");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_their_own_answers() {
        let a = test_data(32);
        let server = bind(shared_store(&a, 5));
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for c in 0..6usize {
                let a = &a;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let queries: Vec<Query> = (0..40)
                        .map(|k| {
                            let x = (c * 11 + k * 13) % 32;
                            let y = (c * 7 + k * 17) % 32;
                            Query::Point { pos: vec![x, y] }
                        })
                        .collect();
                    let answers = client.run(&queries).unwrap();
                    for (q, ans) in queries.iter().zip(answers) {
                        let Query::Point { pos } = q else {
                            unreachable!()
                        };
                        let got = ans.unwrap();
                        assert!(
                            (got - a.get(pos)).abs() < 1e-9,
                            "client {c} pos {pos:?}: {got}"
                        );
                    }
                });
            }
        });
        server.shutdown();
    }

    #[test]
    fn bad_requests_get_typed_errors_without_killing_the_connection() {
        use std::io::{BufRead, BufReader, Write};
        let a = test_data(32);
        let server = bind(shared_store(&a, 5));
        let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |line: &str| -> String {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut out = String::new();
            reader.read_line(&mut out).unwrap();
            out
        };
        assert!(ask("garbage").contains(r#""error":"parse""#));
        assert!(ask(r#"{"op":"flush"}"#).contains(r#""error":"unknown_op""#));
        assert!(ask(r#"{"op":"point","pos":[99,0]}"#).contains(r#""error":"bad_request""#));
        assert!(ask(r#"{"op":"point","pos":[1]}"#).contains(r#""error":"bad_request""#));
        // The connection still answers a valid query afterwards.
        let ok = ask(r#"{"id":5,"op":"point","pos":[3,9]}"#);
        assert!(ok.contains(r#""ok":true"#), "{ok}");
        server.shutdown();
    }

    #[test]
    fn writable_server_round_trips_updates_and_commits() {
        use ss_maintain::SnapshotCoeffStore;
        let a = test_data(32);
        let store = Arc::new(SnapshotCoeffStore::new(shared_store(&a, 5), None, 0));
        let server = QueryServer::bind_writable(
            "127.0.0.1:0",
            Arc::clone(&store),
            vec![5, 5],
            ss_maintain::FlushMode::Exact,
            ServeConfig {
                workers: 3,
                batch_max: 16,
                max_requests: None,
                slow_ns: None,
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let before = client.point(&[4, 5]).unwrap();
        assert!((before - a.get(&[4, 5])).abs() < 1e-9);

        // Buffered but uncommitted: invisible to queries.
        let deltas = client
            .update(&[4, 5], &[2, 2], &[10.0, 0.0, 0.0, -3.0])
            .unwrap();
        assert!(deltas > 0.0);
        assert_eq!(client.point(&[4, 5]).unwrap().to_bits(), before.to_bits());

        // Commit publishes epoch 1; read-your-writes from here on.
        assert_eq!(client.commit().unwrap(), 1.0);
        assert!((client.point(&[4, 5]).unwrap() - (a.get(&[4, 5]) + 10.0)).abs() < 1e-9);
        assert!((client.point(&[5, 6]).unwrap() - (a.get(&[5, 6]) - 3.0)).abs() < 1e-9);
        assert!((client.point(&[4, 6]).unwrap() - a.get(&[4, 6])).abs() < 1e-9);
        // A range sum spanning the box sees the committed mass too.
        let sum_before: f64 = (0..32)
            .flat_map(|x| (0..32).map(move |y| (x, y)))
            .map(|(x, y)| a.get(&[x, y]))
            .sum();
        let got = client.range_sum(&[0, 0], &[31, 31]).unwrap();
        assert!((got - (sum_before + 7.0)).abs() < 1e-6, "{got}");

        // An empty commit is a no-op that re-answers the current epoch.
        assert_eq!(client.commit().unwrap(), 1.0);

        // Mutations are validated like queries.
        let err = client.update(&[31, 31], &[2, 2], &[1.0; 4]).unwrap_err();
        assert!(err.to_string().contains("bad_request"), "{err}");
        server.shutdown();
        drop(client);
        let store = unwrap_store(store);
        let (_map, _store) = store.into_parts().unwrap();
    }

    #[test]
    fn traced_requests_record_matched_spans_and_epoch_tagged_commits() {
        use ss_maintain::SnapshotCoeffStore;
        use ss_obs::{trace, TraceEventKind};
        use std::collections::HashMap;

        // The global tracer is shared across tests in this process;
        // ring mode only records, so enabling it never disturbs the
        // other servers' answers, and all assertions below filter by
        // this test's own trace ids.
        trace::tracer().enable_ring();
        let a = test_data(32);
        let store = Arc::new(SnapshotCoeffStore::new(shared_store(&a, 5), None, 0));
        let server = QueryServer::bind_writable(
            "127.0.0.1:0",
            Arc::clone(&store),
            vec![5, 5],
            ss_maintain::FlushMode::Exact,
            ServeConfig {
                workers: 2,
                batch_max: 16,
                max_requests: None,
                slow_ns: None,
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let query_trace = trace::new_trace_id();
        client.set_trace(Some(query_trace));
        let got = client.point(&[3, 9]).unwrap();
        assert!((got - a.get(&[3, 9])).abs() < 1e-9);

        let update_trace = trace::new_trace_id();
        client.set_trace(Some(update_trace));
        client.update(&[4, 5], &[1, 1], &[2.0]).unwrap();
        assert_eq!(client.commit().unwrap(), 1.0);
        server.shutdown();

        let events = trace::tracer().events();
        let of = |t: u64| -> Vec<&trace::TraceEvent> {
            events.iter().filter(|e| e.trace == t).collect()
        };

        // Query trace: a parented span tree request -> plan/exec, with
        // every begun span ended, and its tile reads attributed to it.
        let q = of(query_trace);
        let mut begun: HashMap<u64, &'static str> = HashMap::new();
        let mut ended: HashMap<u64, &'static str> = HashMap::new();
        for e in &q {
            match e.kind {
                TraceEventKind::SpanBegin { name } => {
                    begun.insert(e.span, name);
                }
                TraceEventKind::SpanEnd { name, .. } => {
                    ended.insert(e.span, name);
                }
                _ => {}
            }
        }
        assert_eq!(begun, ended, "every begun span must end, and vice versa");
        let names: Vec<&str> = begun.values().copied().collect();
        for want in ["serve.request", "serve.plan", "serve.exec", "query.execute"] {
            assert!(names.contains(&want), "missing span {want} in {names:?}");
        }
        let (root_span, _) = begun
            .iter()
            .find(|(_, n)| **n == "serve.request")
            .expect("root span");
        let plan = q
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::SpanBegin { name: "serve.plan" }))
            .expect("plan span");
        assert_eq!(plan.parent, *root_span, "plan parents under the request");
        assert!(
            q.iter()
                .any(|e| matches!(e.kind, TraceEventKind::TileFetch { .. })),
            "tile fetches carry the request's trace id"
        );

        // Update trace: update + commit spans, and the pipeline events
        // (WAL-less here, so just the publish) tagged with epoch 1.
        let u = of(update_trace);
        for want in ["serve.update", "serve.commit"] {
            assert!(
                u.iter()
                    .any(|e| matches!(e.kind, TraceEventKind::SpanBegin { name } if name == want)),
                "missing span {want}"
            );
        }
        assert!(
            u.iter()
                .any(|e| matches!(e.kind, TraceEventKind::Commit { epoch: 1, tiles } if tiles > 0)),
            "commit event must carry its epoch"
        );

        drop(client);
        let store = unwrap_store(store);
        let (_map, _store) = store.into_parts().unwrap();
    }

    #[test]
    fn read_only_server_rejects_mutations_with_a_typed_error() {
        let a = test_data(32);
        let server = bind(shared_store(&a, 5));
        let mut client = Client::connect(server.local_addr()).unwrap();
        let err = client.update(&[0, 0], &[1, 1], &[1.0]).unwrap_err();
        assert!(err.to_string().contains("read_only"), "{err}");
        let err = client.commit().unwrap_err();
        assert!(err.to_string().contains("read_only"), "{err}");
        // The connection still serves queries afterwards.
        assert!((client.point(&[3, 9]).unwrap() - a.get(&[3, 9])).abs() < 1e-9);
        server.shutdown();
    }

    #[test]
    fn request_budget_stops_the_server_cleanly() {
        let a = test_data(32);
        let store = shared_store(&a, 5);
        let server = QueryServer::bind(
            "127.0.0.1:0",
            store,
            vec![5, 5],
            ServeConfig {
                workers: 2,
                batch_max: 8,
                max_requests: Some(5),
                slow_ns: None,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        let queries: Vec<Query> = (0..5).map(|k| Query::Point { pos: vec![k, k] }).collect();
        let answers = client.run(&queries).unwrap();
        assert_eq!(answers.len(), 5);
        for (k, ans) in answers.into_iter().enumerate() {
            assert!((ans.unwrap() - a.get(&[k, k])).abs() < 1e-9);
        }
        // The budget is reached: join returns instead of blocking.
        server.join();
    }
}
