//! Scatter-gather query routing over tile-range shards.
//!
//! A **router** is a [`QueryServer`](crate::QueryServer) (see
//! [`bind_router`](crate::QueryServer::bind_router)) that owns no
//! coefficients itself. Tile space is partitioned by a
//! [`ShardMap`] into contiguous Morton tile
//! ranges, each served by `replicas` identical shard servers speaking
//! the same line-JSON protocol. The router:
//!
//! * splits every query plan by owning shard and fans the pieces out as
//!   `partial` sub-requests — **scattering to every shard before
//!   reading from any**, so shard round trips overlap,
//! * merges the per-tile partial sums back in ascending tile order,
//!   which reproduces the canonical evaluation order of
//!   [`ss_query::execute_plans_tiled`] **bit-identically** (the shard
//!   ranges are contiguous, so concatenating their tile-ascending
//!   partials in ascending shard order is globally tile-ascending),
//! * load-balances reads across a shard's replicas by picking the
//!   replica with the fewest router-side in-flight exchanges, and fails
//!   over to the next replica on connection errors,
//! * scatters writes: `update` boxes are decomposed once at the router,
//!   buffered, and on `commit` the dirty-tile op lists are sent to the
//!   owning shards as `apply` sub-requests followed by a fanned-out
//!   `commit` to **every replica of every shard** — acknowledged only
//!   when all of them committed (fsynced their WAL).
//!
//! When every replica of a shard a request needs is unreachable, the
//! request fails with the typed `shard_unavailable` error. A partial
//! sum is never returned: a silently wrong answer is strictly worse
//! than a refused one.
//!
//! There is **no cross-shard commit protocol** (no 2PC): a routed
//! commit that fails mid-fan-out may leave some shards committed and
//! others not, and the router's delta buffer drained. The error is
//! surfaced as `shard_unavailable`; recovery is operational (retry the
//! whole load, or re-run maintenance). DESIGN.md §16 spells out the
//! trade-off.

use crate::client::{Client, ClientError};
use crate::proto::{Mutation, Op, Query, Response};
use ss_core::TilingMap;
use ss_maintain::{DeltaBuffer, FlushMode};
use ss_obs::trace;
use ss_obs::{Counter, Histogram};
use ss_storage::ShardMap;
use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Where each shard's replicas listen: the [`ShardMap`] partition plus
/// one address list per shard (all lists `map.replicas()` long).
#[derive(Clone, Debug)]
pub struct RouterTopology {
    map: ShardMap,
    replicas: Vec<Vec<SocketAddr>>,
}

impl RouterTopology {
    /// Pairs a shard map with replica addresses. `replicas` must hold
    /// one list per shard, each exactly `map.replicas()` long.
    pub fn new(map: ShardMap, replicas: Vec<Vec<SocketAddr>>) -> Result<RouterTopology, String> {
        if replicas.len() != map.shards() {
            return Err(format!(
                "topology has {} address lists for {} shards",
                replicas.len(),
                map.shards()
            ));
        }
        for (shard, addrs) in replicas.iter().enumerate() {
            if addrs.len() != map.replicas() {
                return Err(format!(
                    "shard {shard} has {} replica addresses, expected {}",
                    addrs.len(),
                    map.replicas()
                ));
            }
        }
        Ok(RouterTopology { map, replicas })
    }

    /// The tile-range partition.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The replica addresses of `shard`.
    pub fn replica_addrs(&self, shard: usize) -> &[SocketAddr] {
        &self.replicas[shard]
    }
}

/// Router-side observability (`router.*` namespace).
pub(crate) struct RouterMetrics {
    /// Sub-requests fanned out to shard replicas (reads and writes).
    subrequests: Counter,
    /// Failed replica exchanges that moved on to another replica.
    replica_retries: Counter,
    /// Requests refused because every replica of a needed shard failed.
    shard_unavailable: Counter,
    /// Shards touched per routed read batch.
    fanout_shards: Histogram,
    /// Sub-requests routed to each shard (`router.shard_requests.N`),
    /// the per-shard line of the `stats --watch` topology section.
    shard_subrequests: Vec<Counter>,
}

/// Shared router state: the topology, per-replica in-flight exchange
/// counters (the read load-balancing signal), and `router.*` metrics.
/// Connections are deliberately **not** here — each executor worker
/// keeps its own connection cache so the fan-out path takes no lock.
pub(crate) struct RouterCore {
    pub(crate) topo: RouterTopology,
    in_flight: Vec<Vec<AtomicUsize>>,
    metrics: RouterMetrics,
}

/// One routed request's outcome: the exact merged value plus the
/// per-tile partials (forwarded upstream when the request itself was a
/// `partial` sub-plan), or a typed protocol error.
pub(crate) type RoutedOutcome = Result<(f64, Vec<(usize, f64)>), (String, String)>;

/// A worker-local cache of open shard connections, keyed by
/// `(shard, replica)`. Dropped entries reconnect on next use.
pub(crate) type ConnCache = HashMap<(usize, usize), Client>;

/// One request's routed job: its contribution plan (`(position, weight)`
/// terms) plus the trace id to forward to the owning shards.
pub(crate) type RoutedJob = (Vec<(Vec<usize>, f64)>, Option<u64>);

impl RouterCore {
    pub(crate) fn new(topo: RouterTopology) -> RouterCore {
        let r = ss_obs::global();
        r.gauge("router.shards").set(topo.map.shards() as u64);
        r.gauge("router.replicas").set(topo.map.replicas() as u64);
        let shards = topo.map.shards();
        let in_flight = (0..shards)
            .map(|_| {
                (0..topo.map.replicas())
                    .map(|_| AtomicUsize::new(0))
                    .collect()
            })
            .collect();
        let metrics = RouterMetrics {
            subrequests: r.counter("router.subrequests"),
            replica_retries: r.counter("router.replica_retries"),
            shard_unavailable: r.counter("router.shard_unavailable"),
            fanout_shards: r.histogram("router.fanout_shards"),
            shard_subrequests: (0..shards)
                .map(|s| r.counter(&format!("router.shard_requests.{s}")))
                .collect(),
        };
        RouterCore {
            topo,
            in_flight,
            metrics,
        }
    }

    /// The untried replica of `shard` with the fewest in-flight
    /// exchanges (ties to the lowest index).
    fn pick_replica(&self, shard: usize, tried: &[bool]) -> Option<usize> {
        (0..self.topo.map.replicas())
            .filter(|&r| !tried[r])
            .min_by_key(|&r| self.in_flight[shard][r].load(Ordering::Relaxed))
    }

    /// Connects (or reuses a cached connection) and sends one pipelined
    /// exchange to `(shard, replica)`. On success the replica's
    /// in-flight counter is incremented until the matching
    /// [`finish_recv`](RouterCore::finish_recv).
    fn start_send(
        &self,
        conns: &mut ConnCache,
        shard: usize,
        replica: usize,
        items: &[(Op, Option<u64>)],
    ) -> Result<i128, String> {
        let key = (shard, replica);
        let client = match conns.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let addr = self.topo.replicas[shard][replica];
                let client = Client::connect(addr)
                    .map_err(|err| format!("replica {replica} ({addr}): connect: {err}"))?;
                e.insert(client)
            }
        };
        match client.send_ops(items) {
            Ok(first_id) => {
                self.in_flight[shard][replica].fetch_add(1, Ordering::Relaxed);
                Ok(first_id)
            }
            Err(e) => {
                conns.remove(&key);
                Err(format!("replica {replica}: send: {e}"))
            }
        }
    }

    /// Reads the responses of an exchange started by
    /// [`start_send`](RouterCore::start_send), releasing the in-flight
    /// slot either way. A failed read poisons the pipelined connection,
    /// so it is dropped from the cache.
    fn finish_recv(
        &self,
        conns: &mut ConnCache,
        shard: usize,
        replica: usize,
        first_id: i128,
        count: usize,
    ) -> Result<Vec<Response>, String> {
        let key = (shard, replica);
        let result = conns
            .get_mut(&key)
            .expect("exchange in flight on a cached connection")
            .recv_responses(first_id, count);
        self.in_flight[shard][replica].fetch_sub(1, Ordering::Relaxed);
        result.map_err(|e: ClientError| {
            conns.remove(&key);
            format!("replica {replica}: recv: {e}")
        })
    }

    /// One full send+recv exchange against `shard`, failing over across
    /// replicas marked untried in `tried`. Returns the last error once
    /// every replica has been tried.
    fn exchange_sync(
        &self,
        conns: &mut ConnCache,
        shard: usize,
        items: &[(Op, Option<u64>)],
        tried: &mut [bool],
        mut last_err: String,
    ) -> Result<Vec<Response>, String> {
        while let Some(replica) = self.pick_replica(shard, tried) {
            tried[replica] = true;
            match self
                .start_send(conns, shard, replica, items)
                .and_then(|first_id| self.finish_recv(conns, shard, replica, first_id, items.len()))
            {
                Ok(responses) => return Ok(responses),
                Err(e) => {
                    self.metrics.replica_retries.inc();
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }
}

/// A shard's slice of one routed batch: the `partial` sub-requests to
/// send plus the batch-local index of the job each one answers.
#[derive(Default)]
struct ShardBatch {
    items: Vec<(Op, Option<u64>)>,
    jobs: Vec<usize>,
}

/// An exchange whose requests are on the wire but whose responses have
/// not been read yet (the scatter/gather split that overlaps shard
/// round trips).
struct Pending {
    replica: usize,
    first_id: i128,
    tried: Vec<bool>,
}

/// Executes one batch of planned requests by scatter-gather: split each
/// plan by owning shard, fan `partial` sub-requests out (all sends
/// before any read), fail over across replicas, and merge the per-tile
/// partials back in ascending tile order. `jobs` carries each request's
/// contribution plan plus the trace id to forward (so shard-side spans
/// land under the originating request's trace).
pub(crate) fn execute_routed<M: TilingMap>(
    core: &RouterCore,
    tiling: &M,
    conns: &mut ConnCache,
    jobs: &[RoutedJob],
) -> Vec<RoutedOutcome> {
    // --- Split every plan by owning shard. BTreeMaps keep both the
    // per-job shard lists and the fan-out itself in ascending shard
    // order, which the exact merge below relies on.
    let map = &core.topo.map;
    let mut sub: BTreeMap<usize, ShardBatch> = BTreeMap::new();
    let mut touched: Vec<Vec<usize>> = vec![Vec::new(); jobs.len()];
    for (j, (plan, fwd_trace)) in jobs.iter().enumerate() {
        let mut by_shard: BTreeMap<usize, Vec<(Vec<usize>, f64)>> = BTreeMap::new();
        for (idx, w) in plan {
            let shard = map.owner(tiling.locate(idx).tile);
            by_shard.entry(shard).or_default().push((idx.clone(), *w));
        }
        for (shard, terms) in by_shard {
            touched[j].push(shard);
            let batch = sub.entry(shard).or_default();
            batch
                .items
                .push((Op::Query(Query::Partial { terms }), *fwd_trace));
            batch.jobs.push(j);
        }
    }
    if !sub.is_empty() {
        core.metrics.fanout_shards.record(sub.len() as u64);
    }

    // --- Scatter: put every shard's sub-requests on the wire before
    // reading any response, so shard round trips overlap.
    let mut pending: BTreeMap<usize, Pending> = BTreeMap::new();
    let mut failures: HashMap<usize, String> = HashMap::new();
    for (&shard, batch) in &sub {
        core.metrics.subrequests.add(batch.items.len() as u64);
        core.metrics.shard_subrequests[shard].add(batch.items.len() as u64);
        let mut tried = vec![false; map.replicas()];
        let mut last_err = String::from("no replicas configured");
        let mut started = None;
        while let Some(replica) = core.pick_replica(shard, &tried) {
            tried[replica] = true;
            match core.start_send(conns, shard, replica, &batch.items) {
                Ok(first_id) => {
                    started = Some(Pending {
                        replica,
                        first_id,
                        tried,
                    });
                    break;
                }
                Err(e) => {
                    core.metrics.replica_retries.inc();
                    last_err = e;
                }
            }
        }
        match started {
            Some(p) => {
                pending.insert(shard, p);
            }
            None => {
                failures.insert(shard, last_err);
            }
        }
    }

    // --- Gather in ascending shard order. A replica that fails at read
    // time falls back to a synchronous exchange against the replicas it
    // has not tried yet; only when all fail is the shard marked down.
    let mut answered: HashMap<(usize, usize), Response> = HashMap::new();
    for (&shard, batch) in &sub {
        let Some(p) = pending.remove(&shard) else {
            continue;
        };
        let responses =
            match core.finish_recv(conns, shard, p.replica, p.first_id, batch.items.len()) {
                Ok(responses) => Ok(responses),
                Err(e) => {
                    core.metrics.replica_retries.inc();
                    let mut tried = p.tried;
                    core.exchange_sync(conns, shard, &batch.items, &mut tried, e)
                }
            };
        match responses {
            Ok(responses) => {
                for (&j, resp) in batch.jobs.iter().zip(responses) {
                    answered.insert((shard, j), resp);
                }
            }
            Err(e) => {
                failures.insert(shard, e);
            }
        }
    }
    if !failures.is_empty() {
        core.metrics.shard_unavailable.add(failures.len() as u64);
    }

    // --- Merge: concatenate each job's per-tile partials in ascending
    // shard order (globally ascending tile order, since shard ranges
    // are contiguous) and fold them left from 0.0 — the same addition
    // tree `execute_plans_tiled` builds on a single store, hence
    // bit-identical for every shard count.
    let mut out: Vec<RoutedOutcome> = Vec::with_capacity(jobs.len());
    for (j, shards) in touched.iter().enumerate() {
        let mut value = 0.0f64;
        let mut tiles: Vec<(usize, f64)> = Vec::new();
        let mut error: Option<(String, String)> = None;
        for &shard in shards {
            if let Some(msg) = failures.get(&shard) {
                error = Some((
                    "shard_unavailable".to_string(),
                    format!("shard {shard}: {msg}"),
                ));
                break;
            }
            let resp = answered
                .remove(&(shard, j))
                .expect("every non-failed touched shard answered");
            match resp.result {
                Err((kind, msg)) => {
                    error = Some((kind, format!("shard {shard}: {msg}")));
                    break;
                }
                Ok(_) => match resp.tiles {
                    None => {
                        error = Some((
                            "io".to_string(),
                            format!("shard {shard} answered without per-tile partials"),
                        ));
                        break;
                    }
                    Some(parts) => {
                        for (tile, partial) in parts {
                            value += partial;
                            tiles.push((tile, partial));
                        }
                    }
                },
            }
        }
        out.push(match error {
            Some(e) => Err(e),
            None => Ok((value, tiles)),
        });
    }
    out
}

/// The router's write path: boxes are decomposed **once** at the router
/// into a local [`DeltaBuffer`]; `commit` drains it, scatters the
/// dirty-tile op lists to the owning shards as `apply` sub-requests,
/// and fans a `commit` to every replica of every shard. One mutex over
/// `{buffer, connections}` serialises commits against updates, exactly
/// like the single-store writable backend.
pub(crate) struct RouterBackend<M: TilingMap> {
    core: Arc<RouterCore>,
    tiling: Arc<M>,
    levels: Vec<u32>,
    write: Mutex<WriteState>,
}

struct WriteState {
    buffer: DeltaBuffer,
    conns: ConnCache,
}

impl<M: TilingMap> RouterBackend<M> {
    pub(crate) fn new(
        core: Arc<RouterCore>,
        tiling: Arc<M>,
        levels: Vec<u32>,
        flush_mode: FlushMode,
    ) -> RouterBackend<M> {
        let buffer = DeltaBuffer::for_map(&*tiling, flush_mode);
        RouterBackend {
            core,
            tiling,
            levels,
            write: Mutex::new(WriteState {
                buffer,
                conns: ConnCache::new(),
            }),
        }
    }

    /// Fans `[apply?, commit]` to every replica of every shard —
    /// scatter first, then gather — and counts acknowledgements. Any
    /// failure aborts with the offending replica's error; the caller
    /// drops all write connections (pipelines may hold unread bytes).
    fn scatter_commit(
        &self,
        conns: &mut ConnCache,
        per_shard: &[Vec<(usize, usize, f64)>],
        fwd_trace: Option<u64>,
    ) -> Result<u64, String> {
        let shards = self.core.topo.map.shards();
        let replicas = self.core.topo.map.replicas();
        let mut items_by_shard: Vec<Vec<(Op, Option<u64>)>> = Vec::with_capacity(shards);
        for ops in per_shard {
            let mut items = Vec::with_capacity(2);
            if !ops.is_empty() {
                items.push((
                    Op::Mutation(Mutation::Apply { ops: ops.clone() }),
                    fwd_trace,
                ));
            }
            items.push((Op::Mutation(Mutation::Commit), fwd_trace));
            items_by_shard.push(items);
        }
        let mut sent: Vec<(usize, usize, i128)> = Vec::with_capacity(shards * replicas);
        for (shard, items) in items_by_shard.iter().enumerate() {
            for replica in 0..replicas {
                self.core.metrics.subrequests.add(items.len() as u64);
                self.core.metrics.shard_subrequests[shard].add(items.len() as u64);
                let first_id = self
                    .core
                    .start_send(conns, shard, replica, items)
                    .map_err(|e| format!("shard {shard}: {e}"))?;
                sent.push((shard, replica, first_id));
            }
        }
        let mut acks = 0u64;
        for (shard, replica, first_id) in sent {
            let responses = self
                .core
                .finish_recv(conns, shard, replica, first_id, items_by_shard[shard].len())
                .map_err(|e| format!("shard {shard}: {e}"))?;
            for resp in responses {
                resp.result.map_err(|(kind, msg)| {
                    format!("shard {shard} replica {replica}: {kind}: {msg}")
                })?;
            }
            acks += 1;
        }
        Ok(acks)
    }
}

impl<M> crate::server::Mutator for RouterBackend<M>
where
    M: TilingMap + Send + Sync,
{
    fn update(
        &self,
        at: &[usize],
        dims: &[usize],
        data: Vec<f64>,
    ) -> Result<f64, crate::server::MutErr> {
        let delta = ss_array::NdArray::from_vec(ss_array::Shape::new(dims), data);
        let mut w = self.write.lock().unwrap();
        let buffer = &mut w.buffer;
        buffer.begin_box();
        let report =
            ss_transform::for_each_box_delta_standard(&self.levels, at, &delta, |idx, d| {
                buffer.add_at(&*self.tiling, idx, d);
            });
        Ok(report.coeffs_touched as f64)
    }

    fn apply(&self, ops: &[(usize, usize, f64)]) -> Result<f64, crate::server::MutErr> {
        let (tiles, capacity) = (self.tiling.num_tiles(), self.tiling.block_capacity());
        for &(tile, slot, _) in ops {
            if tile >= tiles || slot >= capacity {
                return Err((
                    "bad_request",
                    format!(
                        "op ({tile}, {slot}) outside store geometry \
                         ({tiles} tiles x {capacity} slots)"
                    ),
                ));
            }
        }
        let mut w = self.write.lock().unwrap();
        w.buffer.begin_box();
        for &(tile, slot, delta) in ops {
            w.buffer.add(tile, slot, delta);
        }
        Ok(ops.len() as f64)
    }

    fn commit(&self) -> Result<f64, crate::server::MutErr> {
        let fwd_trace = {
            let (t, _) = trace::current();
            (t != 0).then_some(t)
        };
        let mut w = self.write.lock().unwrap();
        let w = &mut *w;
        let (entries, _report) = w.buffer.drain_ops();
        let map = &self.core.topo.map;
        let mut per_shard: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); map.shards()];
        for (tile, ops) in entries {
            per_shard[map.owner(tile)]
                .extend(ops.into_iter().map(|(slot, delta)| (tile, slot, delta)));
        }
        let _span = trace::scoped("router.commit_fanout");
        match self.scatter_commit(&mut w.conns, &per_shard, fwd_trace) {
            // Acks stay far below 2^53, so the f64 is exact.
            Ok(acks) => Ok(acks as f64),
            Err(msg) => {
                // A failed pipelined exchange may leave unread bytes on
                // other connections of this cache; reconnect fresh.
                w.conns.clear();
                self.core.metrics.shard_unavailable.inc();
                Err(("shard_unavailable", msg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_validates_shape() {
        let map = ShardMap::even(16, 2, 2).unwrap();
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(RouterTopology::new(map.clone(), vec![vec![addr; 2]; 2]).is_ok());
        assert!(RouterTopology::new(map.clone(), vec![vec![addr; 2]]).is_err());
        assert!(RouterTopology::new(map, vec![vec![addr; 1]; 2]).is_err());
    }
}
