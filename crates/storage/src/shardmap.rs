//! Tile-range sharding: a contiguous partition of the tile ordinal space.
//!
//! One process over one `.ws` file is a throughput ceiling — a single
//! device's read latency gates the whole serving stack. The SHIFT-SPLIT
//! observation that makes horizontal scale-out *exact* is associativity:
//! both `range_sum` partial aggregates and SPLIT contributions decompose
//! over disjoint tile sets, so a query answered by merging per-shard
//! partial sums is bit-identical to the single-store answer provided the
//! merge preserves the single-store accumulation order (see
//! `DESIGN.md` §16 for the argument).
//!
//! [`ShardMap`] partitions the tile ordinals `0..num_tiles` (tiles are
//! already laid out in Morton/z-order by the tiling maps) into
//! `shards` **contiguous** ranges. Contiguity is load-bearing twice
//! over:
//!
//! * the single-store executor visits `(tile, slot)` keys in ascending
//!   order, so evaluating each contiguous range locally and adding the
//!   per-shard partials in ascending range order replays the exact same
//!   f64 addition sequence — the merge is bit-identical, not just
//!   mathematically equal;
//! * z-order locality means a spatial query touches few ranges, keeping
//!   fan-out narrow.
//!
//! Each range is additionally assigned `replicas` interchangeable
//! backends (N-way replication for hot ranges); replica *selection* is a
//! router concern — the map only records the count so topology survives
//! a round-trip through `stats` / the rebalancer.

use crate::error::StorageError;

/// A contiguous partition of the tile ordinal space into shard ranges,
/// with an N-way replica count per range.
///
/// Invariants (enforced by every constructor):
/// * `bounds[0] == 0`, `bounds[len-1] == num_tiles`, strictly
///   increasing — every tile has exactly one owner, no empty shard;
/// * `replicas >= 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `shards + 1` split points over the tile ordinal space.
    bounds: Vec<usize>,
    replicas: usize,
}

impl ShardMap {
    /// An even partition of `num_tiles` tiles into `shards` contiguous
    /// ranges (the first `num_tiles % shards` ranges get one extra
    /// tile), each served by `replicas` backends.
    pub fn even(num_tiles: usize, shards: usize, replicas: usize) -> Result<Self, StorageError> {
        if shards == 0 || shards > num_tiles {
            return Err(StorageError::Topology(format!(
                "shard count {shards} must be in 1..={num_tiles} (tile count)"
            )));
        }
        let base = num_tiles / shards;
        let extra = num_tiles % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut at = 0;
        bounds.push(at);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            bounds.push(at);
        }
        Self::from_bounds(bounds, replicas)
    }

    /// A partition from explicit split points: `bounds[s]..bounds[s+1]`
    /// is shard `s`'s tile range. Validates the invariants listed on
    /// [`ShardMap`].
    pub fn from_bounds(bounds: Vec<usize>, replicas: usize) -> Result<Self, StorageError> {
        if replicas == 0 {
            return Err(StorageError::Topology(
                "replica count must be at least 1".into(),
            ));
        }
        if bounds.len() < 2 || bounds[0] != 0 {
            return Err(StorageError::Topology(format!(
                "shard bounds must start at 0 and list at least one range, got {bounds:?}"
            )));
        }
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StorageError::Topology(format!(
                "shard bounds must be strictly increasing, got {bounds:?}"
            )));
        }
        Ok(ShardMap { bounds, replicas })
    }

    /// Number of shard ranges.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Replica count per range.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total number of tiles partitioned (`bounds.last()`).
    pub fn num_tiles(&self) -> usize {
        *self.bounds.last().expect("non-empty bounds")
    }

    /// The split points (`shards() + 1` entries, first 0, last
    /// [`num_tiles`](Self::num_tiles)).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The shard owning `tile` (binary search over the split points).
    ///
    /// # Panics
    /// If `tile >= num_tiles()` — ownership of a tile outside the
    /// partitioned space is a logic error upstream.
    pub fn owner(&self, tile: usize) -> usize {
        assert!(
            tile < self.num_tiles(),
            "tile {tile} outside partitioned space of {} tiles",
            self.num_tiles()
        );
        // partition_point returns the count of bounds <= tile; bounds[0]
        // is 0 so the count is >= 1 and the owner is that count - 1.
        self.bounds.partition_point(|&b| b <= tile) - 1
    }

    /// Shard `s`'s tile range.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Recomputes split points so each of `shards` ranges carries an
    /// approximately equal share of `weight` (one entry per tile — e.g.
    /// observed read counts, or non-empty coefficient counts), keeping
    /// ranges contiguous. Tiles with zero recorded weight still count a
    /// minimal unit so every shard keeps at least one tile. This is the
    /// offline `shard-split` rebalancer's core.
    pub fn rebalanced(&self, weight: &[u64], shards: usize) -> Result<Self, StorageError> {
        let n = self.num_tiles();
        if weight.len() != n {
            return Err(StorageError::Topology(format!(
                "weight vector has {} entries for {n} tiles",
                weight.len()
            )));
        }
        if shards == 0 || shards > n {
            return Err(StorageError::Topology(format!(
                "shard count {shards} must be in 1..={n} (tile count)"
            )));
        }
        // Every tile weighs at least 1 so empty-looking tails still
        // split into non-empty ranges.
        let total: u64 = weight.iter().map(|&w| w.max(1)).sum();
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0);
        let mut acc = 0u64;
        let mut next_tile = 0usize;
        for s in 1..shards {
            let target = total * s as u64 / shards as u64;
            while acc < target && next_tile < n {
                acc += weight[next_tile].max(1);
                next_tile += 1;
            }
            // Leave room: each remaining shard still needs >= 1 tile.
            let cap = n - (shards - s);
            let floor = bounds[s - 1] + 1;
            bounds.push(next_tile.clamp(floor, cap));
            next_tile = bounds[s];
            acc = weight[..next_tile].iter().map(|&w| w.max(1)).sum();
        }
        bounds.push(n);
        Self::from_bounds(bounds, self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_covers_every_tile_exactly_once() {
        for num_tiles in [1usize, 7, 16, 100] {
            for shards in 1..=num_tiles.min(9) {
                let m = ShardMap::even(num_tiles, shards, 1).unwrap();
                assert_eq!(m.shards(), shards);
                assert_eq!(m.num_tiles(), num_tiles);
                // Ranges tile the space without gap or overlap.
                let mut covered = 0;
                for s in 0..shards {
                    let r = m.range(s);
                    assert_eq!(r.start, covered);
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, num_tiles);
                // owner() agrees with a linear scan.
                for t in 0..num_tiles {
                    let s = m.owner(t);
                    assert!(m.range(s).contains(&t), "tile {t} not in its owner range");
                }
            }
        }
    }

    #[test]
    fn even_split_sizes_differ_by_at_most_one() {
        let m = ShardMap::even(10, 3, 2).unwrap();
        let sizes: Vec<usize> = (0..3).map(|s| m.range(s).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(m.replicas(), 2);
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(ShardMap::even(4, 0, 1).is_err());
        assert!(ShardMap::even(4, 5, 1).is_err());
        assert!(ShardMap::even(4, 2, 0).is_err());
        assert!(ShardMap::from_bounds(vec![1, 4], 1).is_err());
        assert!(ShardMap::from_bounds(vec![0, 2, 2, 4], 1).is_err());
        assert!(ShardMap::from_bounds(vec![0], 1).is_err());
    }

    #[test]
    fn rebalanced_equalizes_skewed_weight() {
        // All the heat on the first quarter of the tile space.
        let m = ShardMap::even(16, 4, 1).unwrap();
        let mut w = vec![1u64; 16];
        for entry in w.iter_mut().take(4) {
            *entry = 100;
        }
        let r = m.rebalanced(&w, 4).unwrap();
        assert_eq!(r.num_tiles(), 16);
        assert_eq!(r.shards(), 4);
        // The hot prefix is spread over multiple shards: the first
        // shard no longer owns all four hot tiles.
        assert!(
            r.range(0).len() < 4,
            "hot range not split: {:?}",
            r.bounds()
        );
        // Every tile still has exactly one owner.
        for t in 0..16 {
            assert!(r.range(r.owner(t)).contains(&t));
        }
    }

    #[test]
    fn rebalanced_keeps_every_shard_nonempty_under_degenerate_weight() {
        let m = ShardMap::even(8, 2, 3).unwrap();
        // All weight on tile 0: naive splitting would empty the tail.
        let mut w = vec![0u64; 8];
        w[0] = 1_000_000;
        let r = m.rebalanced(&w, 4).unwrap();
        assert_eq!(r.shards(), 4);
        assert_eq!(r.replicas(), 3); // replica count carried over
        for s in 0..4 {
            assert!(!r.range(s).is_empty());
        }
    }
}
