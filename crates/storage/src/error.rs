//! Typed storage errors and the scrub report.
//!
//! Every fallible operation in this crate reports a [`StorageError`]
//! instead of a bare `String`, so callers can distinguish *transient*
//! faults (worth retrying — see [`RetryingBlockStore`](crate::RetryingBlockStore))
//! from *persistent* corruption (checksum mismatches, bad geometry) and
//! *usage* errors (writing a read-only v1 store). The legacy
//! `Result<_, String>` surfaces keep working through the
//! `From<StorageError> for String` impl.

use std::fmt;

/// Everything that can go wrong in the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O error, with the operation that hit it.
    Io {
        /// What the store was doing (`"read block 7"`, `"fsync meta"`, …).
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A block's stored CRC32 does not match its contents.
    Checksum {
        /// The corrupt block's ordinal.
        block: usize,
        /// CRC recorded in the checksum sidecar.
        stored: u32,
        /// CRC computed from the block bytes just read.
        computed: u32,
    },
    /// The blocks (or sidecar) file is smaller than the geometry needs.
    Geometry {
        /// Bytes the declared geometry requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The `.meta` header failed to parse.
    Meta(String),
    /// A shard topology is malformed (bad split points, zero replicas,
    /// more shards than tiles) — see [`ShardMap`](crate::ShardMap).
    Topology(String),
    /// The `.meta` header declares a format version this build cannot
    /// write (newer than [`FORMAT_VERSION`](crate::wsfile::FORMAT_VERSION)).
    UnsupportedVersion(u32),
    /// A write was attempted on a store opened read-only (legacy v1
    /// files, which carry no checksums, always open read-only).
    ReadOnly,
    /// A deterministic fault injected by a
    /// [`FaultInjectingBlockStore`](crate::FaultInjectingBlockStore).
    Injected {
        /// `"read"` or `"write"`.
        op: &'static str,
        /// The block the faulted operation targeted.
        block: usize,
    },
    /// A [`RetryingBlockStore`](crate::RetryingBlockStore) exhausted its
    /// retry budget.
    RetriesExhausted {
        /// `"read"` or `"write"`.
        op: &'static str,
        /// The block the operation targeted.
        block: usize,
        /// Attempts made (initial try plus retries).
        attempts: u32,
        /// The error the final attempt returned.
        source: Box<StorageError>,
    },
}

impl StorageError {
    /// Convenience constructor for [`StorageError::Io`].
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        StorageError::Io {
            context: context.into(),
            source,
        }
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Transient: injected faults and OS I/O errors (a flaky disk path
    /// may recover). Persistent: checksum mismatches, geometry damage,
    /// read-only violations, unsupported versions — retrying those only
    /// burns the budget, so [`RetryingBlockStore`](crate::RetryingBlockStore)
    /// gives up on them immediately.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StorageError::Io { .. } | StorageError::Injected { .. }
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, source } => write!(f, "i/o error ({context}): {source}"),
            StorageError::Checksum {
                block,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in block {block}: sidecar has {stored:#010x}, \
                 contents hash to {computed:#010x}"
            ),
            StorageError::Geometry { expected, actual } => {
                write!(f, "store holds {actual} bytes, geometry needs {expected}")
            }
            StorageError::Meta(msg) => write!(f, "bad meta header: {msg}"),
            StorageError::Topology(msg) => write!(f, "bad shard topology: {msg}"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            StorageError::ReadOnly => write!(
                f,
                "store is read-only (v1 files carry no checksums; re-ingest into a v2 store)"
            ),
            StorageError::Injected { op, block } => {
                write!(f, "injected {op} fault on block {block}")
            }
            StorageError::RetriesExhausted {
                op,
                block,
                attempts,
                source,
            } => write!(
                f,
                "{op} of block {block} still failing after {attempts} attempts: {source}"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::RetriesExhausted { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<StorageError> for String {
    fn from(e: StorageError) -> String {
        e.to_string()
    }
}

/// The result of a full-file scrub ([`WsFile::verify`](crate::WsFile::verify)
/// or [`FileBlockStore::scrub`](crate::FileBlockStore::scrub)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Blocks scanned.
    pub blocks: usize,
    /// Ordinals of blocks whose contents no longer match their CRC.
    pub corrupt: Vec<usize>,
    /// Whether the store carries checksums at all. A legacy v1 store
    /// scrubs geometry only: `corrupt` stays empty and this is `false`.
    pub checksummed: bool,
}

impl ScrubReport {
    /// Whether the scan found the store fully intact.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.checksummed {
            write!(
                f,
                "{} blocks, no checksums (v1) — geometry only",
                self.blocks
            )
        } else if self.corrupt.is_empty() {
            write!(f, "{} blocks, all checksums match", self.blocks)
        } else {
            write!(
                f,
                "{} blocks, {} CORRUPT: {:?}",
                self.blocks,
                self.corrupt.len(),
                self.corrupt
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::Checksum {
            block: 5,
            stored: 0xdeadbeef,
            computed: 0x12345678,
        };
        let s = e.to_string();
        assert!(s.contains("block 5") && s.contains("0xdeadbeef"), "{s}");
        let s: String = StorageError::ReadOnly.into();
        assert!(s.contains("read-only"));
    }

    #[test]
    fn transience_classification() {
        assert!(StorageError::io("x", std::io::Error::other("y")).is_transient());
        assert!(StorageError::Injected {
            op: "read",
            block: 0
        }
        .is_transient());
        assert!(!StorageError::ReadOnly.is_transient());
        assert!(!StorageError::Checksum {
            block: 0,
            stored: 0,
            computed: 1
        }
        .is_transient());
    }

    #[test]
    fn scrub_report_display() {
        let clean = ScrubReport {
            blocks: 4,
            corrupt: vec![],
            checksummed: true,
        };
        assert!(clean.is_clean());
        assert!(clean.to_string().contains("all checksums match"));
        let bad = ScrubReport {
            blocks: 4,
            corrupt: vec![2],
            checksummed: true,
        };
        assert!(!bad.is_clean());
        assert!(bad.to_string().contains("CORRUPT"));
    }

    #[test]
    fn error_chain_reaches_the_root_cause() {
        use std::error::Error as _;
        let e = StorageError::RetriesExhausted {
            op: "read",
            block: 3,
            attempts: 4,
            source: Box::new(StorageError::Injected {
                op: "read",
                block: 3,
            }),
        };
        assert!(e.source().unwrap().to_string().contains("injected"));
    }
}
