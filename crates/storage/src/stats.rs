//! Shared I/O counters.
//!
//! The experiments report costs in two units, matching the paper: raw
//! *coefficients* touched (Figure 11) and *disk blocks* transferred
//! (Figures 12–13). [`IoStats`] counts both; it is cheaply clonable and
//! thread-safe so a single instance can be threaded through a block store,
//! a buffer pool and a coefficient store at once.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cheaply clonable handle to a set of atomic I/O counters.
#[derive(Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    block_reads: AtomicU64,
    block_writes: AtomicU64,
    coeff_reads: AtomicU64,
    coeff_writes: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    pool_evictions: AtomicU64,
    pool_writebacks: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Blocks read from the underlying store.
    pub block_reads: u64,
    /// Blocks written to the underlying store.
    pub block_writes: u64,
    /// Individual coefficients read through a [`CoeffStore`](crate::CoeffStore).
    pub coeff_reads: u64,
    /// Individual coefficients written/updated through a `CoeffStore`.
    pub coeff_writes: u64,
    /// Buffer-pool accesses served from a cached frame.
    pub pool_hits: u64,
    /// Buffer-pool accesses that had to read the backing store.
    pub pool_misses: u64,
    /// Frames evicted to stay within the pool budget.
    pub pool_evictions: u64,
    /// Dirty frames written back to the store (on eviction or flush).
    pub pool_writebacks: u64,
}

impl IoSnapshot {
    /// Total block transfers (reads + writes).
    pub fn blocks(&self) -> u64 {
        self.block_reads + self.block_writes
    }

    /// Total coefficient accesses (reads + writes).
    pub fn coeffs(&self) -> u64 {
        self.coeff_reads + self.coeff_writes
    }

    /// Total buffer-pool accesses (hits + misses).
    pub fn pool_accesses(&self) -> u64 {
        self.pool_hits + self.pool_misses
    }

    /// Counter-wise difference `self − earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            block_reads: self.block_reads.saturating_sub(earlier.block_reads),
            block_writes: self.block_writes.saturating_sub(earlier.block_writes),
            coeff_reads: self.coeff_reads.saturating_sub(earlier.coeff_reads),
            coeff_writes: self.coeff_writes.saturating_sub(earlier.coeff_writes),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            pool_evictions: self.pool_evictions.saturating_sub(earlier.pool_evictions),
            pool_writebacks: self.pool_writebacks.saturating_sub(earlier.pool_writebacks),
        }
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blocks: {}r/{}w, coeffs: {}r/{}w, pool: {}h/{}m/{}e/{}wb",
            self.block_reads,
            self.block_writes,
            self.coeff_reads,
            self.coeff_writes,
            self.pool_hits,
            self.pool_misses,
            self.pool_evictions,
            self.pool_writebacks
        )
    }
}

impl IoStats {
    /// Fresh counters at zero.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Records `n` block reads.
    #[inline]
    pub fn add_block_reads(&self, n: u64) {
        self.inner.block_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` block writes.
    #[inline]
    pub fn add_block_writes(&self, n: u64) {
        self.inner.block_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` coefficient reads.
    #[inline]
    pub fn add_coeff_reads(&self, n: u64) {
        self.inner.coeff_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` coefficient writes.
    #[inline]
    pub fn add_coeff_writes(&self, n: u64) {
        self.inner.coeff_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` buffer-pool cache hits.
    #[inline]
    pub fn add_pool_hits(&self, n: u64) {
        self.inner.pool_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` buffer-pool cache misses.
    #[inline]
    pub fn add_pool_misses(&self, n: u64) {
        self.inner.pool_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` buffer-pool frame evictions.
    #[inline]
    pub fn add_pool_evictions(&self, n: u64) {
        self.inner.pool_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` dirty write-backs (eviction of a dirty frame, or flush).
    #[inline]
    pub fn add_pool_writebacks(&self, n: u64) {
        self.inner.pool_writebacks.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            block_reads: self.inner.block_reads.load(Ordering::Relaxed),
            block_writes: self.inner.block_writes.load(Ordering::Relaxed),
            coeff_reads: self.inner.coeff_reads.load(Ordering::Relaxed),
            coeff_writes: self.inner.coeff_writes.load(Ordering::Relaxed),
            pool_hits: self.inner.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.inner.pool_misses.load(Ordering::Relaxed),
            pool_evictions: self.inner.pool_evictions.load(Ordering::Relaxed),
            pool_writebacks: self.inner.pool_writebacks.load(Ordering::Relaxed),
        }
    }

    /// Atomically drains every counter to zero, returning the drained
    /// values.
    ///
    /// Unlike a `store(0)` sweep, each counter is `swap`ped, so no
    /// concurrent increment is ever lost: every recorded event appears in
    /// exactly one `take()` result (or in the counters afterwards). A
    /// concurrent [`snapshot`](IoStats::snapshot) may still interleave
    /// between two swaps — snapshots are only a consistent cut of the
    /// *whole* set when no reset races them — but conservation per counter
    /// now holds unconditionally.
    pub fn take(&self) -> IoSnapshot {
        IoSnapshot {
            block_reads: self.inner.block_reads.swap(0, Ordering::Relaxed),
            block_writes: self.inner.block_writes.swap(0, Ordering::Relaxed),
            coeff_reads: self.inner.coeff_reads.swap(0, Ordering::Relaxed),
            coeff_writes: self.inner.coeff_writes.swap(0, Ordering::Relaxed),
            pool_hits: self.inner.pool_hits.swap(0, Ordering::Relaxed),
            pool_misses: self.inner.pool_misses.swap(0, Ordering::Relaxed),
            pool_evictions: self.inner.pool_evictions.swap(0, Ordering::Relaxed),
            pool_writebacks: self.inner.pool_writebacks.swap(0, Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (a [`take`](IoStats::take) whose
    /// result is dropped, so the same loss-free guarantee applies).
    pub fn reset(&self) {
        let _ = self.take();
    }

    /// Folds the current counter values into `registry` as `io.*`
    /// counters — the bridge from the paper's I/O accounting into the
    /// common metrics snapshot every surface exports.
    pub fn publish(&self, registry: &ss_obs::Registry) {
        self.snapshot().publish(registry);
    }
}

impl IoSnapshot {
    /// Stores this snapshot's values as `io.*` counters in `registry`.
    pub fn publish(&self, registry: &ss_obs::Registry) {
        registry.counter("io.block_reads").store(self.block_reads);
        registry.counter("io.block_writes").store(self.block_writes);
        registry.counter("io.coeff_reads").store(self.coeff_reads);
        registry.counter("io.coeff_writes").store(self.coeff_writes);
        registry.counter("io.pool_hits").store(self.pool_hits);
        registry.counter("io.pool_misses").store(self.pool_misses);
        registry
            .counter("io.pool_evictions")
            .store(self.pool_evictions);
        registry
            .counter("io.pool_writebacks")
            .store(self.pool_writebacks);
    }
}

impl fmt::Debug for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IoStats({})", self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = IoStats::new();
        stats.add_block_reads(3);
        stats.add_block_writes(2);
        stats.add_coeff_reads(10);
        stats.add_coeff_writes(7);
        let snap = stats.snapshot();
        assert_eq!(snap.block_reads, 3);
        assert_eq!(snap.block_writes, 2);
        assert_eq!(snap.blocks(), 5);
        assert_eq!(snap.coeffs(), 17);
    }

    #[test]
    fn clones_share_counters() {
        let a = IoStats::new();
        let b = a.clone();
        b.add_block_reads(4);
        assert_eq!(a.snapshot().block_reads, 4);
    }

    #[test]
    fn since_subtracts() {
        let stats = IoStats::new();
        stats.add_block_reads(5);
        let before = stats.snapshot();
        stats.add_block_reads(3);
        stats.add_coeff_writes(2);
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.block_reads, 3);
        assert_eq!(delta.coeff_writes, 2);
        assert_eq!(delta.block_writes, 0);
    }

    #[test]
    fn reset_zeroes() {
        let stats = IoStats::new();
        stats.add_coeff_reads(9);
        stats.add_pool_misses(4);
        stats.reset();
        assert_eq!(stats.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn take_drains_and_returns_the_delta() {
        let stats = IoStats::new();
        stats.add_block_reads(7);
        stats.add_pool_writebacks(2);
        let taken = stats.take();
        assert_eq!(taken.block_reads, 7);
        assert_eq!(taken.pool_writebacks, 2);
        assert_eq!(stats.snapshot(), IoSnapshot::default());
        stats.add_block_reads(1);
        assert_eq!(stats.take().block_reads, 1);
    }

    #[test]
    fn concurrent_takes_conserve_every_increment() {
        // Regression test for the old store(0) reset: with adders and a
        // taker racing, the sum of everything taken plus the residue must
        // equal exactly what was added — no increment vanishes.
        let stats = IoStats::new();
        let threads = 4u64;
        let per_thread = 50_000u64;
        let taken_total = std::thread::scope(|scope| {
            for _ in 0..threads {
                let stats = stats.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        stats.add_block_reads(1);
                    }
                });
            }
            let taker = {
                let stats = stats.clone();
                scope.spawn(move || {
                    let mut total = 0u64;
                    for _ in 0..1_000 {
                        total += stats.take().block_reads;
                    }
                    total
                })
            };
            taker.join().unwrap()
        });
        let residue = stats.take().block_reads;
        assert_eq!(
            taken_total + residue,
            threads * per_thread,
            "increments lost across concurrent take()s"
        );
    }

    #[test]
    fn publish_folds_counters_into_a_registry() {
        let stats = IoStats::new();
        stats.add_block_reads(3);
        stats.add_pool_hits(9);
        let registry = ss_obs::Registry::new();
        stats.publish(&registry);
        assert_eq!(registry.counter("io.block_reads").get(), 3);
        assert_eq!(registry.counter("io.pool_hits").get(), 9);
        assert_eq!(registry.counter("io.coeff_reads").get(), 0);
        // Re-publishing reflects the latest values, not an accumulation.
        stats.add_block_reads(1);
        stats.publish(&registry);
        assert_eq!(registry.counter("io.block_reads").get(), 4);
    }

    #[test]
    fn pool_counters_accumulate_and_diff() {
        let stats = IoStats::new();
        stats.add_pool_hits(6);
        stats.add_pool_misses(2);
        let before = stats.snapshot();
        assert_eq!(before.pool_accesses(), 8);
        stats.add_pool_hits(1);
        stats.add_pool_evictions(3);
        stats.add_pool_writebacks(2);
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.pool_hits, 1);
        assert_eq!(delta.pool_misses, 0);
        assert_eq!(delta.pool_evictions, 3);
        assert_eq!(delta.pool_writebacks, 2);
    }
}
