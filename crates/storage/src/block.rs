//! The block-device abstraction.

use crate::error::StorageError;

/// A store of fixed-capacity blocks of `f64` coefficients.
///
/// Blocks are addressed by ordinal; every read/write transfers a whole
/// block, mirroring disk-sector granularity. Implementations count their
/// transfers in a shared [`IoStats`](crate::IoStats).
///
/// Transfers come in two flavours: the fallible `try_*` methods return a
/// typed [`StorageError`] (what the retry and fault-injection wrappers
/// compose over), while the infallible `read_block`/`write_block` the
/// buffer pools call panic on failure — with the `StorageError` itself as
/// the panic payload, so a driver can still recover the typed error with
/// [`downcast_storage_error`] after catching the unwind.
pub trait BlockStore {
    /// Coefficients per block.
    fn block_capacity(&self) -> usize;

    /// Current number of blocks.
    fn num_blocks(&self) -> usize;

    /// Reads block `id` into `buf` (`buf.len() == block_capacity`),
    /// returning a typed error on failure.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range or `buf` has the wrong length —
    /// those are caller bugs, not storage faults.
    fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError>;

    /// Writes `buf` to block `id`, returning a typed error on failure.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range or `buf` has the wrong length.
    fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError>;

    /// Grows the store to at least `blocks` blocks, zero-filled. Growing is
    /// not an I/O-counted operation (allocation, not transfer).
    fn grow(&mut self, blocks: usize);

    /// Durability barrier: after `try_sync` returns, every previously
    /// written block survives a crash. File-backed stores fsync here;
    /// memory stores (and wrappers over them) have nothing to do, hence
    /// the no-op default. The WAL commit protocol relies on this barrier
    /// before truncating the log (see `docs/FORMAT.md` §7).
    fn try_sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Reads block `id` into `buf` through a **shared** reference, for
    /// stores whose reads need no exclusive state (immutable memory,
    /// positional file reads). Returns `None` when the store cannot read
    /// without `&mut self`; callers must then fall back to
    /// [`try_read_block`](BlockStore::try_read_block) under exclusive
    /// access.
    ///
    /// The sharded buffer pool uses this to overlap miss latency across
    /// worker threads: shared reads run under a read lock, so two misses
    /// on different shards wait on the device concurrently instead of
    /// serialising behind one store mutex.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range or `buf` has the wrong length.
    fn try_read_block_shared(
        &self,
        id: usize,
        buf: &mut [f64],
    ) -> Option<Result<(), StorageError>> {
        let _ = (id, buf);
        None
    }

    /// Reads block `id` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range, `buf` has the wrong length, or
    /// the transfer fails; the panic payload is the [`StorageError`].
    fn read_block(&mut self, id: usize, buf: &mut [f64]) {
        if let Err(e) = self.try_read_block(id, buf) {
            std::panic::panic_any(e);
        }
    }

    /// Writes `buf` to block `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range, `buf` has the wrong length, or
    /// the transfer fails; the panic payload is the [`StorageError`].
    fn write_block(&mut self, id: usize, buf: &[f64]) {
        if let Err(e) = self.try_write_block(id, buf) {
            std::panic::panic_any(e);
        }
    }
}

/// Recovers the typed [`StorageError`] from a caught panic payload (as
/// produced by the infallible [`BlockStore`] methods), or resumes the
/// unwind when the panic was something else entirely.
pub fn downcast_storage_error(payload: Box<dyn std::any::Any + Send + 'static>) -> StorageError {
    match payload.downcast::<StorageError>() {
        Ok(e) => *e,
        Err(other) => std::panic::resume_unwind(other),
    }
}

#[cfg(test)]
pub(crate) mod testsuite {
    //! Behavioural test suite shared by every [`BlockStore`] implementation.
    use super::*;
    use crate::IoStats;

    pub fn roundtrip(store: &mut dyn BlockStore) {
        let cap = store.block_capacity();
        let data: Vec<f64> = (0..cap).map(|i| i as f64 * 1.5 - 3.0).collect();
        store.write_block(2, &data);
        let mut buf = vec![0.0; cap];
        store.read_block(2, &mut buf);
        assert_eq!(buf, data);
        // Other blocks remain zero.
        store.read_block(0, &mut buf);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    pub fn grow_preserves(store: &mut dyn BlockStore) {
        let cap = store.block_capacity();
        let data: Vec<f64> = (0..cap).map(|i| (i * i) as f64).collect();
        store.write_block(1, &data);
        let old = store.num_blocks();
        store.grow(old * 2);
        assert!(store.num_blocks() >= old * 2);
        let mut buf = vec![1.0; cap];
        store.read_block(1, &mut buf);
        assert_eq!(buf, data);
        store.read_block(old * 2 - 1, &mut buf);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    pub fn counts_io(store: &mut dyn BlockStore, stats: &IoStats) {
        let cap = store.block_capacity();
        stats.reset();
        let buf = vec![0.5; cap];
        store.write_block(0, &buf);
        store.write_block(1, &buf);
        let mut out = vec![0.0; cap];
        store.read_block(0, &mut out);
        let snap = stats.snapshot();
        assert_eq!(snap.block_writes, 2);
        assert_eq!(snap.block_reads, 1);
    }
}
