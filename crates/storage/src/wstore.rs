//! Tiled coefficient storage: wavelet coefficients on disk blocks.
//!
//! [`CoeffStore`] glues a [`TilingMap`] (which decides
//! *where* a coefficient lives) to a [`BufferPool`] over a [`BlockStore`]
//! (which decides *what a touch costs*). Every out-of-core algorithm and
//! every disk query in the workspace runs against this type, so its
//! counters are the experiments' measurements.

use crate::block::BlockStore;
use crate::pool::BufferPool;
use crate::stats::IoStats;
use ss_core::TilingMap;

/// Wavelet coefficients stored in blocks laid out by a tiling map.
pub struct CoeffStore<M: TilingMap, S: BlockStore> {
    map: M,
    pool: BufferPool<S>,
    stats: IoStats,
}

impl<M: TilingMap, S: BlockStore> CoeffStore<M, S> {
    /// Builds a store over `store` with layout `map` and a cache of
    /// `pool_budget` blocks.
    ///
    /// # Panics
    ///
    /// Panics when the block store's capacity differs from the map's, or
    /// when the store has fewer blocks than the map needs.
    pub fn new(map: M, store: S, pool_budget: usize, stats: IoStats) -> Self {
        assert_eq!(
            store.block_capacity(),
            map.block_capacity(),
            "block capacity mismatch between store and tiling map"
        );
        assert!(
            store.num_blocks() >= map.num_tiles(),
            "store has {} blocks, map needs {}",
            store.num_blocks(),
            map.num_tiles()
        );
        CoeffStore {
            map,
            pool: BufferPool::new(store, pool_budget, stats.clone()),
            stats,
        }
    }

    /// The tiling map.
    pub fn map(&self) -> &M {
        &self.map
    }

    /// The shared counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Reads the coefficient at tuple index `idx`.
    pub fn read(&mut self, idx: &[usize]) -> f64 {
        let loc = self.map.locate(idx);
        self.stats.add_coeff_reads(1);
        self.pool.read(loc.tile, loc.slot)
    }

    /// Overwrites the coefficient at `idx`.
    pub fn write(&mut self, idx: &[usize], value: f64) {
        let loc = self.map.locate(idx);
        self.stats.add_coeff_writes(1);
        self.pool.write(loc.tile, loc.slot, value);
    }

    /// Adds `delta` to the coefficient at `idx` (the SHIFT-SPLIT fold
    /// target).
    pub fn add(&mut self, idx: &[usize], delta: f64) {
        let loc = self.map.locate(idx);
        self.stats.add_coeff_writes(1);
        self.pool.add(loc.tile, loc.slot, delta);
    }

    /// Reads a raw `(tile, slot)` location — used by query plans that
    /// resolve locations up front to reason about block access patterns.
    pub fn read_at(&mut self, tile: usize, slot: usize) -> f64 {
        self.stats.add_coeff_reads(1);
        self.pool.read(tile, slot)
    }

    /// Writes every dirty cached block back.
    pub fn flush(&mut self) {
        self.pool.flush();
    }

    /// Flushes and empties the cache (cold-cache reset between phases).
    pub fn clear_cache(&mut self) {
        self.pool.clear();
    }

    /// Direct access to the underlying pool (for bulk tile operations).
    pub fn pool(&mut self) -> &mut BufferPool<S> {
        &mut self.pool
    }

    /// Decomposes into map and (flushed) store.
    pub fn into_parts(self) -> (M, S) {
        let CoeffStore { map, pool, .. } = self;
        (map, pool.into_store())
    }
}

/// Convenience: an in-memory tiled store sized for `map`.
pub fn mem_store<M: TilingMap>(
    map: M,
    pool_budget: usize,
    stats: IoStats,
) -> CoeffStore<M, crate::mem::MemBlockStore> {
    let store =
        crate::mem::MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
    CoeffStore::new(map, store, pool_budget, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::{StandardTiling, Tiling1d, TilingMap};

    #[test]
    fn read_write_roundtrip_1d() {
        let stats = IoStats::new();
        let mut cs = mem_store(Tiling1d::new(4, 2), 4, stats);
        for i in 0..16usize {
            cs.write(&[i], i as f64 * 2.0);
        }
        for i in 0..16usize {
            assert_eq!(cs.read(&[i]), i as f64 * 2.0);
        }
    }

    #[test]
    fn add_accumulates_and_flushes() {
        let stats = IoStats::new();
        let mut cs = mem_store(Tiling1d::new(3, 1), 2, stats.clone());
        cs.add(&[5], 1.0);
        cs.add(&[5], 2.5);
        cs.flush();
        cs.clear_cache();
        assert_eq!(cs.read(&[5]), 3.5);
    }

    #[test]
    fn coefficient_counters_track_accesses() {
        let stats = IoStats::new();
        let mut cs = mem_store(StandardTiling::cube(2, 3, 1), 8, stats.clone());
        cs.write(&[1, 1], 4.0);
        cs.read(&[1, 1]);
        cs.read(&[0, 0]);
        let snap = stats.snapshot();
        assert_eq!(snap.coeff_writes, 1);
        assert_eq!(snap.coeff_reads, 2);
    }

    #[test]
    fn block_reads_reflect_tiling_locality() {
        // Root-path coefficients share tiles; scattered level-1 details
        // do not.
        let stats = IoStats::new();
        let map = Tiling1d::new(6, 2);
        let mut cs = mem_store(map, 64, stats.clone());
        stats.reset();
        // Touch a root path (indices 0,1,2,4,8,16,32 for pos 0).
        for idx in [0usize, 1, 2, 4, 8, 16, 32] {
            cs.read(&[idx]);
        }
        let path_blocks = stats.snapshot().block_reads;
        assert!(
            path_blocks <= 3,
            "path should touch ≤ ceil(6/2) tiles, got {path_blocks}"
        );
    }

    #[test]
    fn values_survive_store_roundtrip() {
        let stats = IoStats::new();
        let map = Tiling1d::new(4, 2);
        let n_tiles = map.num_tiles();
        let mut cs = mem_store(map, 2, stats.clone());
        for i in 0..16usize {
            cs.write(&[i], (i * i) as f64);
        }
        let (map, store) = cs.into_parts();
        assert_eq!(store.num_blocks(), n_tiles);
        let mut cs2 = CoeffStore::new(map, store, 2, stats);
        for i in 0..16usize {
            assert_eq!(cs2.read(&[i]), (i * i) as f64);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_capacity_mismatch() {
        let stats = IoStats::new();
        let map = Tiling1d::new(4, 2);
        let store = crate::mem::MemBlockStore::new(2, 100, stats.clone());
        let _ = CoeffStore::new(map, store, 2, stats);
    }
}
