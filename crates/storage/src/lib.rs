//! Disk-block storage substrate with exact I/O accounting and durability.
//!
//! The paper measures every algorithm in *disk-block I/Os* under the optimal
//! coefficient-to-block allocation of its Section 3. This crate provides the
//! machinery to reproduce those measurements faithfully:
//!
//! * [`BlockStore`] — a fixed-capacity block device abstraction, with an
//!   in-memory implementation ([`MemBlockStore`]) and a real file-backed one
//!   ([`FileBlockStore`]) that issues actual positioned reads and writes,
//!   CRC-verified on every read,
//! * [`StorageError`] — the typed fault vocabulary (I/O, checksum mismatch,
//!   geometry, read-only, injected, retries-exhausted) every fallible path
//!   speaks,
//! * [`FaultInjectingBlockStore`] / [`RetryingBlockStore`] — composable
//!   wrappers for deterministic seeded fault injection and bounded-backoff
//!   retries,
//! * [`IoStats`] — shared atomic counters of block reads/writes and
//!   coefficient accesses,
//! * [`BufferPool`] — an LRU cache over a block store with a configurable
//!   budget in blocks, modelling the paper's "available memory `M^d`",
//! * [`ShardedBufferPool`] / [`SharedCoeffStore`] — the thread-safe
//!   counterparts used by the parallel transform drivers: the block-id
//!   space is sharded over independently locked LRU caches with per-shard
//!   hit/miss/eviction/write-back counters,
//! * [`ShardMap`] — a contiguous partition of the tile ordinal space into
//!   shard ranges with an N-way replica count, the topology object behind
//!   the scatter-gather query router in `ss-serve`,
//! * [`CoeffStore`] — wavelet coefficients mapped onto blocks through any
//!   [`TilingMap`](ss_core::TilingMap) (subtree tiles or the naive row-major
//!   baseline), the object every out-of-core algorithm in `ss-transform`
//!   and every query in `ss-query` runs against,
//! * [`WsFile`] — the persistent `.ws` store format (blocks file, `.crc`
//!   checksum sidecar, `.meta` text header — see `docs/FORMAT.md`), with
//!   crash-safe metadata updates and a full-file scrub
//!   ([`WsFile::verify`]).
//!
//! # Example
//!
//! Create a checksummed store, write a coefficient, reopen and scrub it:
//!
//! ```
//! use ss_storage::{Meta, WsFile};
//!
//! let dir = std::env::temp_dir().join(format!("ss_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("demo.ws");
//!
//! // 8×8 domain, 2×2 tiles, appending along axis 1.
//! let meta = Meta::new(vec![3, 3], vec![1, 1], 0, 1);
//! let mut ws = WsFile::create(&path, meta).unwrap();
//! ws.store.write(&[2, 5], 42.5);
//! ws.sync().unwrap();
//! drop(ws);
//!
//! let mut ws = WsFile::open(&path).unwrap();
//! assert_eq!(ws.store.read(&[2, 5]), 42.5);
//! let report = ws.verify().unwrap();           // CRC-scrub every block
//! assert!(report.is_clean());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod crc;
pub mod error;
pub mod fault;
pub mod file;
pub mod mem;
pub mod pool;
pub mod read;
pub mod retry;
pub mod shard;
pub mod shardmap;
pub mod sparse;
pub mod stats;
pub mod throttle;
pub mod wsfile;
pub mod wstore;

pub use block::{downcast_storage_error, BlockStore};
pub use error::{ScrubReport, StorageError};
pub use fault::{FaultConfig, FaultInjectingBlockStore};
pub use file::FileBlockStore;
pub use mem::MemBlockStore;
pub use pool::BufferPool;
pub use read::CoeffRead;
pub use retry::{RetryPolicy, RetryingBlockStore};
pub use shard::{mem_shared_store, ShardCounters, ShardedBufferPool, SharedCoeffStore};
pub use shardmap::ShardMap;
pub use stats::{IoSnapshot, IoStats};
pub use throttle::ThrottledBlockStore;
pub use wsfile::{convert_to_v3, Meta, V3ConvertReport, WsFile, FORMAT_VERSION, V3_FORMAT_VERSION};
pub use wstore::CoeffStore;
