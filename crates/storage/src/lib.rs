//! Disk-block storage substrate with exact I/O accounting.
//!
//! The paper measures every algorithm in *disk-block I/Os* under the optimal
//! coefficient-to-block allocation of its Section 3. This crate provides the
//! machinery to reproduce those measurements faithfully:
//!
//! * [`BlockStore`] — a fixed-capacity block device abstraction, with an
//!   in-memory implementation ([`MemBlockStore`]) and a real file-backed one
//!   ([`FileBlockStore`]) that issues actual positioned reads and writes,
//! * [`IoStats`] — shared atomic counters of block reads/writes and
//!   coefficient accesses,
//! * [`BufferPool`] — an LRU cache over a block store with a configurable
//!   budget in blocks, modelling the paper's "available memory `M^d`",
//! * [`ShardedBufferPool`] / [`SharedCoeffStore`] — the thread-safe
//!   counterparts used by the parallel transform drivers: the block-id
//!   space is sharded over independently locked LRU caches with per-shard
//!   hit/miss/eviction/write-back counters,
//! * [`CoeffStore`] — wavelet coefficients mapped onto blocks through any
//!   [`TilingMap`](ss_core::TilingMap) (subtree tiles or the naive row-major
//!   baseline), the object every out-of-core algorithm in `ss-transform`
//!   and every query in `ss-query` runs against,
//! * [`WsFile`] — the persistent `.ws` store format (blocks file plus a
//!   `.meta` text header), openable by any library user, not just the CLI.

pub mod block;
pub mod file;
pub mod mem;
pub mod pool;
pub mod shard;
pub mod stats;
pub mod wsfile;
pub mod wstore;

pub use block::BlockStore;
pub use file::FileBlockStore;
pub use mem::MemBlockStore;
pub use pool::BufferPool;
pub use shard::{mem_shared_store, ShardCounters, ShardedBufferPool, SharedCoeffStore};
pub use stats::{IoSnapshot, IoStats};
pub use wsfile::{Meta, WsFile};
pub use wstore::CoeffStore;
