//! Deterministic fault injection for storage testing.
//!
//! [`FaultInjectingBlockStore`] wraps any [`BlockStore`] and makes a
//! seeded pseudo-random fraction of its operations fail — the test double
//! behind the durability story: retries are exercised against *transient*
//! read/write errors, and torn-write / bit-flip modes model the
//! corruption classes the checksum layer does and does not cover (the
//! full matrix is in DESIGN.md §9).
//!
//! Determinism: all randomness comes from one SplitMix64 stream seeded by
//! [`FaultConfig::seed`], advanced once per decision, so a given seed and
//! operation sequence always faults the same operations — failures
//! reproduce exactly across runs and machines. A retried operation rolls
//! again, so transient faults clear with the probability the rates imply.

use crate::block::BlockStore;
use crate::error::StorageError;
use ss_obs::Counter;

/// Fault rates and the seed driving them. Rates are probabilities in
/// `[0, 1]` applied independently per operation.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a read fails with [`StorageError::Injected`] before
    /// touching the inner store.
    pub read_error_rate: f64,
    /// Probability a write fails with [`StorageError::Injected`] before
    /// touching the inner store.
    pub write_error_rate: f64,
    /// Probability a write persists only the first half of the block
    /// (tail zeroed) and then reports failure — a torn multi-sector
    /// write observed *above* the inner store's checksum layer.
    pub torn_write_rate: f64,
    /// Probability a successful read has one random bit of one
    /// coefficient flipped after checksum verification — silent
    /// memory/bus corruption that checksums cannot catch.
    pub bit_flip_rate: f64,
    /// Probability a sync fails with [`StorageError::Injected`] before
    /// reaching the inner store — the transient-fsync hiccup the retry
    /// wrapper must absorb.
    pub sync_error_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0x5EED_F417,
            read_error_rate: 0.0,
            write_error_rate: 0.0,
            torn_write_rate: 0.0,
            bit_flip_rate: 0.0,
            sync_error_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// A config injecting only transient read errors at `rate`.
    pub fn read_errors(rate: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_rate: rate,
            ..FaultConfig::default()
        }
    }
}

/// A [`BlockStore`] wrapper that injects deterministic, seeded faults.
pub struct FaultInjectingBlockStore<S: BlockStore> {
    inner: S,
    config: FaultConfig,
    state: u64,
    injected_reads: Counter,
    injected_writes: Counter,
    injected_syncs: Counter,
    torn_writes: Counter,
    bit_flips: Counter,
}

impl<S: BlockStore> FaultInjectingBlockStore<S> {
    /// Wraps `inner` under `config`.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        let registry = ss_obs::global();
        FaultInjectingBlockStore {
            inner,
            state: config.seed,
            config,
            injected_reads: registry.counter("storage.faults_injected_read"),
            injected_writes: registry.counter("storage.faults_injected_write"),
            injected_syncs: registry.counter("storage.faults_injected_sync"),
            torn_writes: registry.counter("storage.faults_torn_writes"),
            bit_flips: registry.counter("storage.faults_bit_flips"),
        }
    }

    /// The active fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// SplitMix64 step — the sole entropy source.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One Bernoulli roll at probability `rate`.
    fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }
}

impl<S: BlockStore> BlockStore for FaultInjectingBlockStore<S> {
    fn block_capacity(&self) -> usize {
        self.inner.block_capacity()
    }

    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }

    fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
        if self.roll(self.config.read_error_rate) {
            self.injected_reads.inc();
            return Err(StorageError::Injected {
                op: "read",
                block: id,
            });
        }
        self.inner.try_read_block(id, buf)?;
        if self.roll(self.config.bit_flip_rate) {
            let slot = (self.next_u64() % buf.len() as u64) as usize;
            let bit = self.next_u64() % 64;
            buf[slot] = f64::from_bits(buf[slot].to_bits() ^ (1u64 << bit));
            self.bit_flips.inc();
        }
        Ok(())
    }

    fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
        if self.roll(self.config.write_error_rate) {
            self.injected_writes.inc();
            return Err(StorageError::Injected {
                op: "write",
                block: id,
            });
        }
        if self.roll(self.config.torn_write_rate) {
            // Persist only the first half of the block, then fail: the
            // caller believes the write did not happen, the device holds
            // torn contents. A retry that later succeeds heals it.
            let mut torn = buf.to_vec();
            for v in torn.iter_mut().skip(buf.len() / 2) {
                *v = 0.0;
            }
            self.inner.try_write_block(id, &torn)?;
            self.torn_writes.inc();
            return Err(StorageError::Injected {
                op: "write",
                block: id,
            });
        }
        self.inner.try_write_block(id, buf)
    }

    fn try_sync(&mut self) -> Result<(), StorageError> {
        if self.roll(self.config.sync_error_rate) {
            self.injected_syncs.inc();
            return Err(StorageError::Injected {
                op: "sync",
                block: 0,
            });
        }
        self.inner.try_sync()
    }

    fn grow(&mut self, blocks: usize) {
        self.inner.grow(blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBlockStore;
    use crate::stats::IoStats;

    fn mem(blocks: usize) -> MemBlockStore {
        MemBlockStore::new(4, blocks, IoStats::new())
    }

    #[test]
    fn zero_rates_are_transparent() {
        let mut s = FaultInjectingBlockStore::new(mem(4), FaultConfig::default());
        let mut buf = [0.0; 4];
        s.try_write_block(1, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        s.try_read_block(1, &mut buf).unwrap();
        assert_eq!(buf, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fault_sequence_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = FaultInjectingBlockStore::new(mem(4), FaultConfig::read_errors(0.5, seed));
            let mut buf = [0.0; 4];
            (0..64)
                .map(|i| s.try_read_block(i % 4, &mut buf).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds fault differently");
        assert!(run(42).iter().any(|&f| f) && run(42).iter().any(|&f| !f));
    }

    #[test]
    fn injected_read_errors_are_transient_and_typed() {
        let mut s = FaultInjectingBlockStore::new(mem(2), FaultConfig::read_errors(1.0, 7));
        let mut buf = [0.0; 4];
        match s.try_read_block(0, &mut buf) {
            Err(e @ StorageError::Injected { op: "read", .. }) => assert!(e.is_transient()),
            other => panic!("expected injected fault, got {other:?}"),
        }
    }

    #[test]
    fn torn_write_persists_half_a_block_then_fails() {
        let cfg = FaultConfig {
            torn_write_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut s = FaultInjectingBlockStore::new(mem(2), cfg);
        assert!(s.try_write_block(0, &[1.0, 2.0, 3.0, 4.0]).is_err());
        let mut inner = s.into_inner();
        let mut buf = [9.0; 4];
        inner.try_read_block(0, &mut buf).unwrap();
        assert_eq!(buf, [1.0, 2.0, 0.0, 0.0], "tail must be torn off");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let cfg = FaultConfig {
            bit_flip_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut s = FaultInjectingBlockStore::new(mem(2), cfg);
        let orig = [1.0, 2.0, 3.0, 4.0];
        s.try_write_block(0, &orig).unwrap();
        let mut buf = [0.0; 4];
        s.try_read_block(0, &mut buf).unwrap();
        let flipped_bits: u32 = orig
            .iter()
            .zip(&buf)
            .map(|(a, b)| (a.to_bits() ^ b.to_bits()).count_ones())
            .sum();
        assert_eq!(flipped_bits, 1);
    }
}
