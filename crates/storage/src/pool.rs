//! An LRU buffer pool over a block store.
//!
//! The paper's algorithms assume a bounded working memory of `M^d`
//! coefficients; the pool models that budget in *blocks*. Repeated touches
//! of a cached block cost nothing; a miss reads one block, and evicting a
//! dirty block writes one. Flushing at the end of an operation writes the
//! remaining dirty blocks — exactly the accounting the paper's per-chunk
//! analyses use.

use crate::block::BlockStore;
use crate::stats::IoStats;
use std::collections::HashMap;

/// LRU cache of blocks with write-back semantics.
pub struct BufferPool<S: BlockStore> {
    store: S,
    budget: usize,
    frames: HashMap<usize, Frame>,
    clock: u64,
    stats: IoStats,
}

pub(crate) struct Frame {
    pub(crate) data: Vec<f64>,
    pub(crate) dirty: bool,
    pub(crate) last_used: u64,
}

impl<S: BlockStore> BufferPool<S> {
    /// Wraps `store` with a cache of at most `budget` blocks (`budget ≥ 1`).
    /// Cache hits/misses/evictions/write-backs are recorded in `stats`.
    pub fn new(store: S, budget: usize, stats: IoStats) -> Self {
        assert!(budget >= 1, "buffer pool needs at least one frame");
        BufferPool {
            store,
            budget,
            frames: HashMap::new(),
            clock: 0,
            stats,
        }
    }

    /// Cache budget in blocks.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Blocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.frames.len()
    }

    /// Immutable access to the wrapped store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the wrapped store — for maintenance operations
    /// (scrub, fsync) that bypass the cache. Flush first if dirty frames
    /// must be visible to the store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Reads one coefficient of block `id`.
    pub fn read(&mut self, id: usize, slot: usize) -> f64 {
        self.touch(id);
        self.frames[&id].data[slot]
    }

    /// Overwrites one coefficient of block `id`.
    pub fn write(&mut self, id: usize, slot: usize, value: f64) {
        self.touch(id);
        let frame = self.frames.get_mut(&id).expect("frame just touched");
        frame.data[slot] = value;
        frame.dirty = true;
    }

    /// Adds `delta` to one coefficient of block `id`.
    pub fn add(&mut self, id: usize, slot: usize, delta: f64) {
        self.touch(id);
        let frame = self.frames.get_mut(&id).expect("frame just touched");
        frame.data[slot] += delta;
        frame.dirty = true;
    }

    /// Runs `f` over the whole cached block `id` (marking it dirty when
    /// `mutate` is true).
    pub fn with_block<R>(&mut self, id: usize, mutate: bool, f: impl FnOnce(&mut [f64]) -> R) -> R {
        self.touch(id);
        let frame = self.frames.get_mut(&id).expect("frame just touched");
        if mutate {
            frame.dirty = true;
        }
        f(&mut frame.data)
    }

    /// Writes every dirty block back to the store, keeping the cache warm.
    pub fn flush(&mut self) {
        let mut ids: Vec<usize> = self
            .frames
            .iter()
            .filter(|(_, fr)| fr.dirty)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let frame = self.frames.get_mut(&id).expect("dirty frame");
            self.store.write_block(id, &frame.data);
            frame.dirty = false;
            self.stats.add_pool_writebacks(1);
        }
    }

    /// Flushes and drops every cached block (a "cold cache" reset between
    /// experiment phases).
    pub fn clear(&mut self) {
        self.flush();
        self.frames.clear();
    }

    /// Flushes and returns the wrapped store.
    pub fn into_store(mut self) -> S {
        self.flush();
        self.store
    }

    /// Grows the underlying store (see [`BlockStore::grow`]).
    pub fn grow(&mut self, blocks: usize) {
        self.store.grow(blocks);
    }

    /// Number of blocks in the underlying store.
    pub fn num_blocks(&self) -> usize {
        self.store.num_blocks()
    }

    /// Coefficients per block.
    pub fn block_capacity(&self) -> usize {
        self.store.block_capacity()
    }

    fn touch(&mut self, id: usize) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(frame) = self.frames.get_mut(&id) {
            frame.last_used = clock;
            self.stats.add_pool_hits(1);
            return;
        }
        self.stats.add_pool_misses(1);
        if self.frames.len() >= self.budget {
            self.evict_lru();
        }
        let mut data = vec![0.0; self.store.block_capacity()];
        self.store.read_block(id, &mut data);
        self.frames.insert(
            id,
            Frame {
                data,
                dirty: false,
                last_used: clock,
            },
        );
    }

    fn evict_lru(&mut self) {
        let victim = self
            .frames
            .iter()
            .min_by_key(|(_, fr)| fr.last_used)
            .map(|(&id, _)| id)
            .expect("evict on empty pool");
        let frame = self.frames.remove(&victim).expect("victim exists");
        self.stats.add_pool_evictions(1);
        if frame.dirty {
            self.store.write_block(victim, &frame.data);
            self.stats.add_pool_writebacks(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBlockStore;
    use crate::stats::IoStats;

    fn pool(blocks: usize, budget: usize) -> (BufferPool<MemBlockStore>, IoStats) {
        let stats = IoStats::new();
        let store = MemBlockStore::new(4, blocks, stats.clone());
        (BufferPool::new(store, budget, stats.clone()), stats)
    }

    #[test]
    fn cached_reads_cost_one_block_read() {
        let (mut p, stats) = pool(8, 2);
        for _ in 0..10 {
            p.read(3, 1);
        }
        assert_eq!(stats.snapshot().block_reads, 1);
    }

    #[test]
    fn write_back_on_flush() {
        let (mut p, stats) = pool(8, 2);
        p.write(0, 0, 9.0);
        p.write(0, 1, 8.0);
        assert_eq!(stats.snapshot().block_writes, 0, "write-back, not through");
        p.flush();
        assert_eq!(stats.snapshot().block_writes, 1);
        // Flushing twice does not rewrite clean blocks.
        p.flush();
        assert_eq!(stats.snapshot().block_writes, 1);
    }

    #[test]
    fn eviction_respects_budget_and_writes_dirty() {
        let (mut p, stats) = pool(8, 2);
        p.write(0, 0, 1.0);
        p.read(1, 0);
        p.read(2, 0); // evicts block 0 (LRU, dirty)
        assert_eq!(p.cached_blocks(), 2);
        assert_eq!(stats.snapshot().block_writes, 1);
        // Block 0 re-read returns the evicted value.
        assert_eq!(p.read(0, 0), 1.0);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let (mut p, stats) = pool(8, 2);
        p.read(0, 0);
        p.read(1, 0);
        p.read(0, 0); // 0 is now more recent than 1
        p.read(2, 0); // must evict 1
        stats.reset();
        p.read(0, 0); // still cached
        assert_eq!(stats.snapshot().block_reads, 0);
        p.read(1, 0); // was evicted
        assert_eq!(stats.snapshot().block_reads, 1);
    }

    #[test]
    fn add_accumulates() {
        let (mut p, _) = pool(4, 2);
        p.add(0, 2, 1.5);
        p.add(0, 2, 2.5);
        assert_eq!(p.read(0, 2), 4.0);
    }

    #[test]
    fn into_store_flushes() {
        let (mut p, stats) = pool(4, 2);
        p.write(1, 3, 7.0);
        let mut store = p.into_store();
        assert_eq!(stats.snapshot().block_writes, 1);
        let mut buf = vec![0.0; 4];
        store.read_block(1, &mut buf);
        assert_eq!(buf[3], 7.0);
    }

    #[test]
    fn pool_counters_track_hits_misses_evictions() {
        let (mut p, stats) = pool(8, 2);
        p.read(0, 0); // miss
        p.read(0, 1); // hit
        p.write(1, 0, 2.0); // miss
        p.read(2, 0); // miss, evicts clean block 0
        p.read(3, 0); // miss, evicts dirty block 1 (write-back)
        let s = stats.snapshot();
        assert_eq!(s.pool_hits, 1);
        assert_eq!(s.pool_misses, 4);
        assert_eq!(s.pool_accesses(), 5);
        assert_eq!(s.pool_evictions, 2);
        assert_eq!(s.pool_writebacks, 1);
        // Every block write the store saw was a pool write-back.
        assert_eq!(s.block_writes, s.pool_writebacks);
    }

    #[test]
    fn with_block_bulk_access() {
        let (mut p, _) = pool(4, 2);
        p.with_block(2, true, |blk| {
            for (i, v) in blk.iter_mut().enumerate() {
                *v = i as f64;
            }
        });
        assert_eq!(p.read(2, 3), 3.0);
    }
}
