//! Bounded-backoff retries over a fallible block store.
//!
//! [`RetryingBlockStore`] wraps any [`BlockStore`] and re-attempts
//! operations that fail with a *transient* error
//! ([`StorageError::is_transient`]), sleeping a capped exponential
//! backoff between attempts. Persistent errors — checksum mismatches,
//! read-only violations, bad geometry — pass straight through: retrying
//! those cannot succeed and would only hide corruption behind latency.
//!
//! The wrapper composes freely: a production stack is
//! `ShardedBufferPool<RetryingBlockStore<FileBlockStore>>`, a test stack
//! inserts a [`FaultInjectingBlockStore`](crate::FaultInjectingBlockStore)
//! in the middle. Retry activity is visible in the global metrics
//! registry (`storage.retries`, `storage.retries_exhausted`,
//! `storage.retry_backoff_ns`).

use crate::block::BlockStore;
use crate::error::StorageError;
use ss_obs::{Counter, Histogram};
use std::time::Duration;

/// How many times to re-attempt, and how long to wait in between.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Re-attempts after the first try (so `max_retries = 3` means up to
    /// four attempts total).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` re-attempts and the default backoffs.
    pub fn with_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `retry` (0-based), capped
    /// exponential: `base · 2^retry`, at most `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// A [`BlockStore`] wrapper retrying transient failures with bounded
/// exponential backoff.
pub struct RetryingBlockStore<S: BlockStore> {
    inner: S,
    policy: RetryPolicy,
    retries: Counter,
    exhausted: Counter,
    backoff_ns: Histogram,
}

impl<S: BlockStore> RetryingBlockStore<S> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        let registry = ss_obs::global();
        RetryingBlockStore {
            inner,
            policy,
            retries: registry.counter("storage.retries"),
            exhausted: registry.counter("storage.retries_exhausted"),
            backoff_ns: registry.histogram("storage.retry_backoff_ns"),
        }
    }

    /// The active retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Runs `op` up to `1 + max_retries` times, backing off between
    /// transient failures.
    fn with_retries(
        &mut self,
        op_name: &'static str,
        block: usize,
        mut op: impl FnMut(&mut S) -> Result<(), StorageError>,
    ) -> Result<(), StorageError> {
        let RetryingBlockStore {
            inner,
            policy,
            retries,
            exhausted,
            backoff_ns,
        } = self;
        run_with_retries(
            policy,
            retries,
            exhausted,
            backoff_ns,
            op_name,
            block,
            || op(inner),
        )
    }
}

/// The one retry/backoff loop both the `&mut self` and `&self` operation
/// paths share: runs `op` up to `1 + max_retries` times, sleeping a capped
/// exponential backoff between transient failures, and wraps the final
/// transient error in [`StorageError::RetriesExhausted`].
fn run_with_retries(
    policy: &RetryPolicy,
    retries: &Counter,
    exhausted: &Counter,
    backoff_ns: &Histogram,
    op_name: &'static str,
    block: usize,
    mut op: impl FnMut() -> Result<(), StorageError>,
) -> Result<(), StorageError> {
    let mut retry = 0u32;
    loop {
        match op() {
            Ok(()) => return Ok(()),
            Err(e) if !e.is_transient() => return Err(e),
            Err(e) => {
                if retry >= policy.max_retries {
                    exhausted.inc();
                    return Err(StorageError::RetriesExhausted {
                        op: op_name,
                        block,
                        attempts: retry + 1,
                        source: Box::new(e),
                    });
                }
                let backoff = policy.backoff(retry);
                backoff_ns.record(backoff.as_nanos() as u64);
                retries.inc();
                ss_obs::trace::event(ss_obs::TraceEventKind::Retry {
                    block: block as u64,
                    attempt: (retry + 1) as u64,
                });
                std::thread::sleep(backoff);
                retry += 1;
            }
        }
    }
}

impl<S: BlockStore> BlockStore for RetryingBlockStore<S> {
    fn block_capacity(&self) -> usize {
        self.inner.block_capacity()
    }

    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }

    fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
        self.with_retries("read", id, |inner| inner.try_read_block(id, buf))
    }

    fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
        self.with_retries("write", id, |inner| inner.try_write_block(id, buf))
    }

    fn try_sync(&mut self) -> Result<(), StorageError> {
        // A failed fsync on a transient error (EINTR-style hiccups, an
        // injected fault) is as retryable as a failed block transfer —
        // passing it through silently would surface a spurious durability
        // failure. `block` has no meaning for a whole-store sync; we
        // report the conventional 0.
        self.with_retries("sync", 0, |inner| inner.try_sync())
    }

    fn grow(&mut self, blocks: usize) {
        self.inner.grow(blocks);
    }

    fn try_read_block_shared(
        &self,
        id: usize,
        buf: &mut [f64],
    ) -> Option<Result<(), StorageError>> {
        // Same bounded backoff as the exclusive path (one shared loop, see
        // `run_with_retries`), but through `&self` so the sharded pool
        // keeps it under the store *read* lock: backoff sleeps then stall
        // neither other shards' reads nor any shard's cached hits.
        let mut supported = true;
        let result = run_with_retries(
            &self.policy,
            &self.retries,
            &self.exhausted,
            &self.backoff_ns,
            "read",
            id,
            || match self.inner.try_read_block_shared(id, buf) {
                Some(r) => r,
                None => {
                    // The inner store has no shared-read path; exit the
                    // loop successfully and report "unsupported" below.
                    supported = false;
                    Ok(())
                }
            },
        );
        if supported {
            Some(result)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultInjectingBlockStore};
    use crate::mem::MemBlockStore;
    use crate::stats::IoStats;

    fn flaky(read_rate: f64, seed: u64) -> FaultInjectingBlockStore<MemBlockStore> {
        FaultInjectingBlockStore::new(
            MemBlockStore::new(4, 8, IoStats::new()),
            FaultConfig::read_errors(read_rate, seed),
        )
    }

    fn fast_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
        }
    }

    #[test]
    fn transient_faults_are_absorbed() {
        // 50% read-error rate, 8 retries: chance of 9 consecutive faults
        // on any single op is < 0.2%, and the seed below avoids it.
        let mut s = RetryingBlockStore::new(flaky(0.5, 1234), fast_policy(8));
        let mut buf = [0.0; 4];
        for round in 0..50 {
            s.try_write_block(round % 8, &[round as f64; 4]).unwrap();
            s.try_read_block(round % 8, &mut buf).unwrap();
            assert_eq!(buf, [round as f64; 4]);
        }
    }

    #[test]
    fn budget_exhaustion_is_typed_and_counted() {
        let before = ss_obs::global().counter("storage.retries_exhausted").get();
        let mut s = RetryingBlockStore::new(flaky(1.0, 9), fast_policy(2));
        let mut buf = [0.0; 4];
        match s.try_read_block(3, &mut buf) {
            Err(StorageError::RetriesExhausted {
                op: "read",
                block: 3,
                attempts: 3,
                source,
            }) => assert!(matches!(*source, StorageError::Injected { .. })),
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert!(ss_obs::global().counter("storage.retries_exhausted").get() > before);
    }

    #[test]
    fn persistent_errors_skip_the_retry_budget() {
        let before = ss_obs::global().counter("storage.retries").get();
        // A v1-style read-only inner: writes fail persistently.
        struct ReadOnly(MemBlockStore);
        impl BlockStore for ReadOnly {
            fn block_capacity(&self) -> usize {
                self.0.block_capacity()
            }
            fn num_blocks(&self) -> usize {
                self.0.num_blocks()
            }
            fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
                self.0.try_read_block(id, buf)
            }
            fn try_write_block(&mut self, _: usize, _: &[f64]) -> Result<(), StorageError> {
                Err(StorageError::ReadOnly)
            }
            fn grow(&mut self, blocks: usize) {
                self.0.grow(blocks);
            }
        }
        let inner = ReadOnly(MemBlockStore::new(4, 2, IoStats::new()));
        let mut s = RetryingBlockStore::new(inner, fast_policy(5));
        assert!(matches!(
            s.try_write_block(0, &[0.0; 4]),
            Err(StorageError::ReadOnly)
        ));
        assert_eq!(
            ss_obs::global().counter("storage.retries").get(),
            before,
            "no retry may be spent on a persistent error"
        );
    }

    #[test]
    fn transient_sync_faults_are_retried() {
        // Regression: `try_sync` used to pass straight through with no
        // retry, so a single transient fsync hiccup surfaced as a
        // durability failure. 50% injected sync faults with an 8-retry
        // budget must always converge on this seed.
        let cfg = FaultConfig {
            sync_error_rate: 0.5,
            ..FaultConfig::read_errors(0.0, 4321)
        };
        let inner = FaultInjectingBlockStore::new(MemBlockStore::new(4, 8, IoStats::new()), cfg);
        let mut s = RetryingBlockStore::new(inner, fast_policy(8));
        for _ in 0..50 {
            s.try_sync().unwrap();
        }
    }

    #[test]
    fn sync_retry_budget_exhaustion_is_typed() {
        let cfg = FaultConfig {
            sync_error_rate: 1.0,
            ..FaultConfig::read_errors(0.0, 7)
        };
        let inner = FaultInjectingBlockStore::new(MemBlockStore::new(4, 8, IoStats::new()), cfg);
        let mut s = RetryingBlockStore::new(inner, fast_policy(2));
        match s.try_sync() {
            Err(StorageError::RetriesExhausted {
                op: "sync",
                attempts: 3,
                source,
                ..
            }) => assert!(matches!(*source, StorageError::Injected { op: "sync", .. })),
            other => panic!("expected sync exhaustion, got {other:?}"),
        }
    }

    /// A store whose *shared* reads fail transiently a fixed number of
    /// times before succeeding (interior-mutable: the fault-injection
    /// wrapper cannot roll its RNG through `&self`).
    struct FlakyShared {
        inner: MemBlockStore,
        failures_left: std::sync::atomic::AtomicU32,
    }

    impl BlockStore for FlakyShared {
        fn block_capacity(&self) -> usize {
            self.inner.block_capacity()
        }
        fn num_blocks(&self) -> usize {
            self.inner.num_blocks()
        }
        fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
            self.inner.try_read_block(id, buf)
        }
        fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
            self.inner.try_write_block(id, buf)
        }
        fn grow(&mut self, blocks: usize) {
            self.inner.grow(blocks);
        }
        fn try_read_block_shared(
            &self,
            id: usize,
            buf: &mut [f64],
        ) -> Option<Result<(), StorageError>> {
            use std::sync::atomic::Ordering;
            let left = self.failures_left.load(Ordering::Relaxed);
            if left > 0 {
                self.failures_left.store(left - 1, Ordering::Relaxed);
                return Some(Err(StorageError::Injected {
                    op: "read",
                    block: id,
                }));
            }
            self.inner.try_read_block_shared(id, buf)
        }
    }

    fn flaky_shared(failures: u32) -> FlakyShared {
        let mut inner = MemBlockStore::new(4, 8, IoStats::new());
        inner.try_write_block(2, &[9.0, 8.0, 7.0, 6.0]).unwrap();
        FlakyShared {
            inner,
            failures_left: std::sync::atomic::AtomicU32::new(failures),
        }
    }

    #[test]
    fn shared_read_retries_through_the_shared_loop() {
        // The `&self` path retries transient faults exactly like the
        // exclusive path (both run through `run_with_retries`)…
        let s = RetryingBlockStore::new(flaky_shared(3), fast_policy(5));
        let mut buf = [0.0; 4];
        s.try_read_block_shared(2, &mut buf)
            .expect("store supports shared reads")
            .unwrap();
        assert_eq!(buf, [9.0, 8.0, 7.0, 6.0]);
        // …and its budget exhaustion carries the same typed error.
        let s = RetryingBlockStore::new(flaky_shared(u32::MAX), fast_policy(1));
        match s.try_read_block_shared(2, &mut buf) {
            Some(Err(StorageError::RetriesExhausted {
                op: "read",
                block: 2,
                attempts: 2,
                ..
            })) => {}
            other => panic!("expected shared-read exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn shared_read_unsupported_store_reports_none() {
        // A store without a shared-read path must surface `None`, not an
        // error, so the pool falls back to the exclusive path.
        struct NoShared(MemBlockStore);
        impl BlockStore for NoShared {
            fn block_capacity(&self) -> usize {
                self.0.block_capacity()
            }
            fn num_blocks(&self) -> usize {
                self.0.num_blocks()
            }
            fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
                self.0.try_read_block(id, buf)
            }
            fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
                self.0.try_write_block(id, buf)
            }
            fn grow(&mut self, blocks: usize) {
                self.0.grow(blocks);
            }
        }
        let s = RetryingBlockStore::new(
            NoShared(MemBlockStore::new(4, 2, IoStats::new())),
            fast_policy(3),
        );
        let mut buf = [0.0; 4];
        assert!(s.try_read_block_shared(0, &mut buf).is_none());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(2));
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(9), "capped");
        assert_eq!(p.backoff(40), Duration::from_millis(9), "no overflow");
    }

    #[test]
    fn composes_under_the_sharded_pool() {
        // The acceptance stack: pool over retries over faults over a real
        // store shape (memory here; the CLI wires the file store).
        use crate::shard::ShardedBufferPool;
        let stats = IoStats::new();
        let inner = MemBlockStore::new(4, 16, stats.clone());
        let faulty = FaultInjectingBlockStore::new(inner, FaultConfig::read_errors(0.3, 77));
        let retrying = RetryingBlockStore::new(faulty, fast_policy(10));
        let pool = ShardedBufferPool::new(retrying, 4, 2, stats);
        for id in 0..16 {
            pool.add(id, id % 4, id as f64 + 1.0);
        }
        pool.flush();
        let mut store = pool.into_store().into_inner().into_inner();
        let mut buf = [0.0; 4];
        for id in 0..16 {
            store.try_read_block(id, &mut buf).unwrap();
            assert_eq!(buf[id % 4], id as f64 + 1.0);
        }
    }
}
