//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! This is the checksum guarding every v2 `.ws` block (see
//! `docs/FORMAT.md`). Implemented locally because the build environment is
//! offline; the algorithm matches zlib's `crc32()` bit-for-bit, so
//! sidecars can be cross-checked with any standard tool.

/// The 256-entry lookup table for reflected polynomial `0xEDB88320`.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (initial value `0xFFFFFFFF`, final XOR `0xFFFFFFFF` —
/// the standard whole-message convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_single_bit() {
        let base = vec![0u8; 64];
        let clean = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "byte {byte} bit {bit}");
            }
        }
    }
}
