//! In-memory block store.

use crate::block::BlockStore;
use crate::error::StorageError;
use crate::stats::IoStats;

/// A [`BlockStore`] backed by a `Vec<f64>`; transfers are still counted, so
/// experiments run at full speed with exact I/O accounting.
pub struct MemBlockStore {
    capacity: usize,
    data: Vec<f64>,
    stats: IoStats,
}

impl MemBlockStore {
    /// A zero-filled store of `blocks` blocks of `capacity` coefficients.
    pub fn new(capacity: usize, blocks: usize, stats: IoStats) -> Self {
        assert!(capacity >= 1);
        MemBlockStore {
            capacity,
            data: vec![0.0; capacity * blocks],
            stats,
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }
}

impl BlockStore for MemBlockStore {
    fn block_capacity(&self) -> usize {
        self.capacity
    }

    fn num_blocks(&self) -> usize {
        self.data.len() / self.capacity
    }

    fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
        assert_eq!(buf.len(), self.capacity, "buffer/block size mismatch");
        let start = id * self.capacity;
        buf.copy_from_slice(&self.data[start..start + self.capacity]);
        self.stats.add_block_reads(1);
        Ok(())
    }

    fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
        assert_eq!(buf.len(), self.capacity, "buffer/block size mismatch");
        let start = id * self.capacity;
        self.data[start..start + self.capacity].copy_from_slice(buf);
        self.stats.add_block_writes(1);
        Ok(())
    }

    fn grow(&mut self, blocks: usize) {
        if blocks > self.num_blocks() {
            self.data.resize(blocks * self.capacity, 0.0);
        }
    }

    fn try_read_block_shared(
        &self,
        id: usize,
        buf: &mut [f64],
    ) -> Option<Result<(), StorageError>> {
        assert_eq!(buf.len(), self.capacity, "buffer/block size mismatch");
        let start = id * self.capacity;
        buf.copy_from_slice(&self.data[start..start + self.capacity]);
        self.stats.add_block_reads(1);
        Some(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testsuite;

    #[test]
    fn roundtrip() {
        let stats = IoStats::new();
        let mut store = MemBlockStore::new(8, 4, stats);
        testsuite::roundtrip(&mut store);
    }

    #[test]
    fn grow_preserves() {
        let stats = IoStats::new();
        let mut store = MemBlockStore::new(8, 4, stats);
        testsuite::grow_preserves(&mut store);
    }

    #[test]
    fn counts_io() {
        let stats = IoStats::new();
        let mut store = MemBlockStore::new(8, 4, stats.clone());
        testsuite::counts_io(&mut store, &stats);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_block() {
        let mut store = MemBlockStore::new(4, 2, IoStats::new());
        let mut buf = vec![0.0; 4];
        store.read_block(2, &mut buf);
    }
}
