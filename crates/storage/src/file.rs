//! File-backed block store issuing real positioned disk I/O.
//!
//! Each block occupies `capacity × 8` contiguous bytes; coefficients are
//! little-endian `f64`s. The paper's experiments are "accurate
//! implementations of the operations on real disks with real disk blocks" —
//! this store is what makes the repository's experiments comparable.

use crate::block::BlockStore;
use crate::stats::IoStats;
use ss_obs::Histogram;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

/// A [`BlockStore`] over a file on disk.
pub struct FileBlockStore {
    file: File,
    capacity: usize,
    blocks: usize,
    byte_buf: Vec<u8>,
    stats: IoStats,
    // Handles into the global metrics registry, resolved once here so the
    // per-op record is a lock-free fetch_add, not a name lookup.
    read_ns: Histogram,
    write_ns: Histogram,
}

impl FileBlockStore {
    /// Creates (truncating) a zero-filled store at `path` with `blocks`
    /// blocks of `capacity` coefficients.
    pub fn create(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> std::io::Result<Self> {
        assert!(capacity >= 1);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len((capacity * blocks * 8) as u64)?;
        Ok(FileBlockStore {
            file,
            capacity,
            blocks,
            byte_buf: vec![0u8; capacity * 8],
            stats,
            read_ns: ss_obs::global().histogram("storage.block_read_ns"),
            write_ns: ss_obs::global().histogram("storage.block_write_ns"),
        })
    }

    /// Opens an existing store created earlier with [`FileBlockStore::create`].
    ///
    /// # Errors
    ///
    /// Fails when the file is missing or smaller than the declared geometry.
    pub fn open(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> std::io::Result<Self> {
        assert!(capacity >= 1);
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let expected = (capacity * blocks * 8) as u64;
        let actual = file.metadata()?.len();
        if actual < expected {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("store holds {actual} bytes, geometry needs {expected}"),
            ));
        }
        Ok(FileBlockStore {
            file,
            capacity,
            blocks,
            byte_buf: vec![0u8; capacity * 8],
            stats,
            read_ns: ss_obs::global().histogram("storage.block_read_ns"),
            write_ns: ss_obs::global().histogram("storage.block_write_ns"),
        })
    }

    /// The shared counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn block_bytes(&self) -> usize {
        self.capacity * 8
    }
}

impl BlockStore for FileBlockStore {
    fn block_capacity(&self) -> usize {
        self.capacity
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn read_block(&mut self, id: usize, buf: &mut [f64]) {
        assert!(id < self.blocks, "block {id} out of range");
        assert_eq!(buf.len(), self.capacity);
        let t0 = Instant::now();
        let nbytes = self.block_bytes();
        self.file
            .seek(SeekFrom::Start((id * nbytes) as u64))
            .expect("seek failed");
        self.file
            .read_exact(&mut self.byte_buf)
            .expect("block read failed");
        for (i, v) in buf.iter_mut().enumerate() {
            let mut le = [0u8; 8];
            le.copy_from_slice(&self.byte_buf[i * 8..i * 8 + 8]);
            *v = f64::from_le_bytes(le);
        }
        self.read_ns.record(t0.elapsed().as_nanos() as u64);
        self.stats.add_block_reads(1);
    }

    fn write_block(&mut self, id: usize, buf: &[f64]) {
        assert!(id < self.blocks, "block {id} out of range");
        assert_eq!(buf.len(), self.capacity);
        let t0 = Instant::now();
        for (i, &v) in buf.iter().enumerate() {
            self.byte_buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        let nbytes = self.block_bytes();
        self.file
            .seek(SeekFrom::Start((id * nbytes) as u64))
            .expect("seek failed");
        self.file
            .write_all(&self.byte_buf)
            .expect("block write failed");
        self.write_ns.record(t0.elapsed().as_nanos() as u64);
        self.stats.add_block_writes(1);
    }

    fn grow(&mut self, blocks: usize) {
        if blocks > self.blocks {
            self.file
                .set_len((self.capacity * blocks * 8) as u64)
                .expect("grow failed");
            self.blocks = blocks;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testsuite;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ss_fileblock_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let mut store = FileBlockStore::create(&path, 8, 4, IoStats::new()).unwrap();
        testsuite::roundtrip(&mut store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn grow_preserves() {
        let path = tmp("grow");
        let mut store = FileBlockStore::create(&path, 8, 4, IoStats::new()).unwrap();
        testsuite::grow_preserves(&mut store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn counts_io() {
        let path = tmp("counts");
        let stats = IoStats::new();
        let mut store = FileBlockStore::create(&path, 8, 4, stats.clone()).unwrap();
        testsuite::counts_io(&mut store, &stats);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_block_io_latency_in_global_registry() {
        // The global registry is process-wide, so assert growth, not
        // absolute counts.
        let reads = ss_obs::global().histogram("storage.block_read_ns");
        let writes = ss_obs::global().histogram("storage.block_write_ns");
        let (r0, w0) = (reads.count(), writes.count());
        let path = tmp("latency");
        let mut store = FileBlockStore::create(&path, 8, 2, IoStats::new()).unwrap();
        let mut buf = [0.0; 8];
        store.write_block(0, &[1.0; 8]);
        store.read_block(0, &mut buf);
        assert_eq!(reads.count(), r0 + 1);
        assert_eq!(writes.count(), w0 + 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persists_across_reopen_of_same_handle() {
        let path = tmp("persist");
        let stats = IoStats::new();
        {
            let mut store = FileBlockStore::create(&path, 4, 2, stats.clone()).unwrap();
            store.write_block(1, &[1.0, 2.0, 3.0, 4.0]);
        }
        // Bytes are on disk: read them back raw.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 4 * 2 * 8);
        let mut le = [0u8; 8];
        le.copy_from_slice(&bytes[4 * 8..4 * 8 + 8]);
        assert_eq!(f64::from_le_bytes(le), 1.0);
        let _ = std::fs::remove_file(&path);
    }
}
