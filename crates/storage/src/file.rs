//! File-backed block store issuing real positioned disk I/O.
//!
//! Each block occupies `capacity × 8` contiguous bytes; coefficients are
//! little-endian `f64`s. The paper's experiments are "accurate
//! implementations of the operations on real disks with real disk blocks" —
//! this store is what makes the repository's experiments comparable.
//!
//! # Durability (format v2)
//!
//! A v2 store carries a *checksum sidecar* (`<name>.crc`, see
//! `docs/FORMAT.md`): one CRC-32 per block, verified on every read and
//! refreshed on every write. Bit rot, torn writes and crash windows all
//! surface as a typed [`StorageError::Checksum`] instead of silently
//! corrupting every later query. Legacy v1 stores (no sidecar) still open
//! through [`FileBlockStore::open_v1`], but only read-only. Writeback
//! ordering is *block first, CRC second*: a crash between the two leaves a
//! detectable mismatch, never a silently wrong block.
//!
//! # Sparse layout (format v3)
//!
//! A v3 store ([`FileBlockStore::create_v3`] / [`FileBlockStore::open_v3`])
//! keeps the same [`BlockStore`] surface — dense `f64` images in, dense
//! images out — but stores each block as a bucket-bitmap-compressed
//! payload in a heap behind a per-block directory (`docs/FORMAT.md` §8).
//! All-zero blocks occupy no heap bytes at all. The sidecar CRC covers
//! the *encoded payload*, with the normative write ordering *payload,
//! then directory, then CRC*. `grow` is unsupported on v3 (§8.6).

use crate::block::BlockStore;
use crate::crc::crc32;
use crate::error::{ScrubReport, StorageError};
use crate::sparse::{
    self as sp, V3_ALLOC_QUANTUM, V3_DIR_ENTRY_LEN, V3_HEADER_LEN, V3_MAGIC, V3_VERSION,
};
use crate::stats::IoStats;
use ss_core::SparseTile;
use ss_obs::{Counter, Histogram};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Magic bytes opening a checksum sidecar file.
const SIDECAR_MAGIC: &[u8; 8] = b"SSWSCRC\x01";
/// Sidecar header size in bytes (the magic).
const SIDECAR_HEADER: u64 = 8;

/// Path of the checksum sidecar belonging to the blocks file at `path`
/// (`<path>.crc`). Exposed so callers that move or rewrite a blocks file
/// (e.g. domain expansion) can move its sidecar alongside it.
pub fn sidecar_path(path: &Path) -> PathBuf {
    Sidecar::path_for(path)
}

/// The checksum sidecar: `SIDECAR_MAGIC` followed by one little-endian
/// CRC-32 per block, in block order.
struct Sidecar {
    file: File,
}

impl Sidecar {
    /// Path of the sidecar belonging to the blocks file at `path`.
    fn path_for(path: &Path) -> PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".crc");
        PathBuf::from(p)
    }

    /// Creates (truncating) a sidecar covering `blocks` zero-filled blocks.
    fn create(path: &Path, blocks: usize, zero_crc: u32) -> Result<Sidecar, StorageError> {
        let sc_path = Sidecar::path_for(path);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&sc_path)
            .map_err(|e| StorageError::io(format!("create {}", sc_path.display()), e))?;
        let mut bytes = Vec::with_capacity(SIDECAR_HEADER as usize + blocks * 4);
        bytes.extend_from_slice(SIDECAR_MAGIC);
        for _ in 0..blocks {
            bytes.extend_from_slice(&zero_crc.to_le_bytes());
        }
        file.write_all(&bytes)
            .map_err(|e| StorageError::io("write checksum sidecar", e))?;
        Ok(Sidecar { file })
    }

    /// Opens an existing sidecar, validating magic and length for
    /// `blocks` blocks.
    fn open(path: &Path, blocks: usize) -> Result<Sidecar, StorageError> {
        let sc_path = Sidecar::path_for(path);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&sc_path)
            .map_err(|e| StorageError::io(format!("open {}", sc_path.display()), e))?;
        let mut magic = [0u8; SIDECAR_HEADER as usize];
        file.read_exact(&mut magic)
            .map_err(|e| StorageError::io("read sidecar magic", e))?;
        if &magic != SIDECAR_MAGIC {
            return Err(StorageError::Meta("bad checksum-sidecar magic".into()));
        }
        let expected = SIDECAR_HEADER + blocks as u64 * 4;
        let actual = file
            .metadata()
            .map_err(|e| StorageError::io("stat checksum sidecar", e))?
            .len();
        if actual < expected {
            return Err(StorageError::Geometry { expected, actual });
        }
        Ok(Sidecar { file })
    }

    /// The recorded CRC of block `id`.
    fn read(&mut self, id: usize) -> Result<u32, StorageError> {
        let mut le = [0u8; 4];
        self.file
            .seek(SeekFrom::Start(SIDECAR_HEADER + id as u64 * 4))
            .and_then(|_| self.file.read_exact(&mut le))
            .map_err(|e| StorageError::io(format!("read crc of block {id}"), e))?;
        Ok(u32::from_le_bytes(le))
    }

    /// Records `crc` as block `id`'s checksum.
    fn write(&mut self, id: usize, crc: u32) -> Result<(), StorageError> {
        self.file
            .seek(SeekFrom::Start(SIDECAR_HEADER + id as u64 * 4))
            .and_then(|_| self.file.write_all(&crc.to_le_bytes()))
            .map_err(|e| StorageError::io(format!("write crc of block {id}"), e))
    }

    /// Appends zero-block CRCs for blocks `from..to`.
    fn grow(&mut self, from: usize, to: usize, zero_crc: u32) -> Result<(), StorageError> {
        let mut bytes = Vec::with_capacity((to - from) * 4);
        for _ in from..to {
            bytes.extend_from_slice(&zero_crc.to_le_bytes());
        }
        self.file
            .seek(SeekFrom::Start(SIDECAR_HEADER + from as u64 * 4))
            .and_then(|_| self.file.write_all(&bytes))
            .map_err(|e| StorageError::io("grow checksum sidecar", e))
    }
}

/// One v3 directory entry: where a block's payload lives in the heap
/// (`docs/FORMAT.md` §8.2). The all-zero default denotes an all-zero
/// block.
#[derive(Clone, Copy, Default, PartialEq)]
struct DirEntry {
    offset: u64,
    len: u32,
    alloc: u32,
}

/// How blocks are laid out on disk: the headerless dense array of
/// formats v1/v2, or the v3 sparse heap with its in-memory directory
/// mirror.
enum Layout {
    Dense,
    Sparse { dir: Vec<DirEntry>, heap_end: u64 },
}

/// A [`BlockStore`] over a file on disk, with optional per-block CRC-32
/// verification (format v2) and an optional sparse bucketed layout
/// (format v3).
pub struct FileBlockStore {
    file: File,
    capacity: usize,
    blocks: usize,
    byte_buf: Vec<u8>,
    stats: IoStats,
    /// `Some` for v2/v3 stores; `None` for legacy v1 stores (which are
    /// then read-only).
    sidecar: Option<Sidecar>,
    read_only: bool,
    /// CRC of an all-zero block of this capacity (v3: of the empty
    /// payload, i.e. 0), memoised for `grow`.
    zero_crc: u32,
    layout: Layout,
    // Handles into the global metrics registry, resolved once here so the
    // per-op record is a lock-free fetch_add, not a name lookup.
    read_ns: Histogram,
    write_ns: Histogram,
    checksum_failures: Counter,
    sparse_blocks_written: Counter,
    sparse_bytes_written: Counter,
    sparse_bytes_saved: Counter,
    sparse_relocations: Counter,
}

impl FileBlockStore {
    /// Creates (truncating) a zero-filled v2 store at `path` with `blocks`
    /// blocks of `capacity` coefficients, plus its `.crc` checksum sidecar.
    pub fn create(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> Result<Self, StorageError> {
        assert!(capacity >= 1);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("create {}", path.display()), e))?;
        file.set_len((capacity * blocks * 8) as u64)
            .map_err(|e| StorageError::io("size blocks file", e))?;
        let zero_crc = crc32(&vec![0u8; capacity * 8]);
        let sidecar = Sidecar::create(path, blocks, zero_crc)?;
        Ok(Self::assemble(
            file,
            capacity,
            blocks,
            stats,
            Some(sidecar),
            false,
            zero_crc,
            Layout::Dense,
        ))
    }

    /// Creates (truncating) a sparse v3 store at `path` — header plus a
    /// zeroed directory, no heap (`docs/FORMAT.md` §8.2) — and its `.crc`
    /// sidecar with the zero-payload CRC (`0`) for every block.
    pub fn create_v3(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> Result<Self, StorageError> {
        assert!(capacity >= 1);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("create {}", path.display()), e))?;
        let dir_bytes = blocks * V3_DIR_ENTRY_LEN as usize;
        let mut bytes = Vec::with_capacity(V3_HEADER_LEN as usize + dir_bytes);
        bytes.extend_from_slice(V3_MAGIC);
        bytes.extend_from_slice(&V3_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(sp::bucket_for(capacity) as u32).to_le_bytes());
        bytes.extend_from_slice(&(capacity as u64).to_le_bytes());
        bytes.extend_from_slice(&(blocks as u64).to_le_bytes());
        bytes.resize(V3_HEADER_LEN as usize + dir_bytes, 0);
        file.write_all(&bytes)
            .map_err(|e| StorageError::io("write v3 header and directory", e))?;
        let sidecar = Sidecar::create(path, blocks, 0)?;
        let heap_end = V3_HEADER_LEN + blocks as u64 * V3_DIR_ENTRY_LEN;
        Ok(Self::assemble(
            file,
            capacity,
            blocks,
            stats,
            Some(sidecar),
            false,
            0,
            Layout::Sparse {
                dir: vec![DirEntry::default(); blocks],
                heap_end,
            },
        ))
    }

    /// Opens an existing sparse v3 store created with
    /// [`FileBlockStore::create_v3`], validating the header against the
    /// declared geometry and every directory entry against the file
    /// length (`docs/FORMAT.md` §8.2).
    pub fn open_v3(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> Result<Self, StorageError> {
        assert!(capacity >= 1);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("open {}", path.display()), e))?;
        let file_len = file
            .metadata()
            .map_err(|e| StorageError::io("stat blocks file", e))?
            .len();
        let dir_end = V3_HEADER_LEN + blocks as u64 * V3_DIR_ENTRY_LEN;
        if file_len < dir_end {
            return Err(StorageError::Geometry {
                expected: dir_end,
                actual: file_len,
            });
        }
        let mut header = [0u8; V3_HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|e| StorageError::io("read v3 header", e))?;
        if &header[0..8] != V3_MAGIC {
            return Err(StorageError::Meta("bad v3 blocks-file magic".into()));
        }
        let h_version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if h_version != V3_VERSION {
            return Err(StorageError::UnsupportedVersion(h_version));
        }
        let h_bucket = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        let h_capacity = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let h_blocks = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if h_bucket != sp::bucket_for(capacity)
            || h_capacity != capacity as u64
            || h_blocks != blocks as u64
        {
            return Err(StorageError::Meta(format!(
                "v3 header (bucket {h_bucket}, capacity {h_capacity}, blocks {h_blocks}) \
                 disagrees with meta geometry (bucket {}, capacity {capacity}, blocks {blocks})",
                sp::bucket_for(capacity)
            )));
        }
        let mut dir_bytes = vec![0u8; blocks * V3_DIR_ENTRY_LEN as usize];
        file.read_exact(&mut dir_bytes)
            .map_err(|e| StorageError::io("read v3 directory", e))?;
        let mut dir = Vec::with_capacity(blocks);
        let mut heap_end = dir_end;
        for (id, e) in dir_bytes
            .chunks_exact(V3_DIR_ENTRY_LEN as usize)
            .enumerate()
        {
            let entry = DirEntry {
                offset: u64::from_le_bytes(e[0..8].try_into().unwrap()),
                len: u32::from_le_bytes(e[8..12].try_into().unwrap()),
                alloc: u32::from_le_bytes(e[12..16].try_into().unwrap()),
            };
            if entry.offset == 0 {
                if entry.len != 0 || entry.alloc != 0 {
                    return Err(StorageError::Meta(format!(
                        "v3 directory entry {id}: all-zero block with len {} / alloc {}",
                        entry.len, entry.alloc
                    )));
                }
            } else {
                if entry.offset < dir_end {
                    return Err(StorageError::Meta(format!(
                        "v3 directory entry {id}: payload offset {} inside header/directory",
                        entry.offset
                    )));
                }
                if entry.len > entry.alloc {
                    return Err(StorageError::Geometry {
                        expected: entry.alloc as u64,
                        actual: entry.len as u64,
                    });
                }
                if entry.offset + entry.alloc as u64 > file_len {
                    return Err(StorageError::Geometry {
                        expected: entry.offset + entry.alloc as u64,
                        actual: file_len,
                    });
                }
            }
            heap_end = heap_end.max(entry.offset + entry.alloc as u64);
            dir.push(entry);
        }
        let sidecar = Sidecar::open(path, blocks)?;
        Ok(Self::assemble(
            file,
            capacity,
            blocks,
            stats,
            Some(sidecar),
            false,
            0,
            Layout::Sparse { dir, heap_end },
        ))
    }

    /// Opens an existing v2 store created earlier with
    /// [`FileBlockStore::create`]; the `.crc` sidecar must be present.
    ///
    /// # Errors
    ///
    /// Fails when the blocks file or sidecar is missing, the sidecar magic
    /// is wrong, or either file is smaller than the declared geometry.
    pub fn open(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> Result<Self, StorageError> {
        let file = Self::open_blocks_file(path, capacity, blocks)?;
        let sidecar = Sidecar::open(path, blocks)?;
        let zero_crc = crc32(&vec![0u8; capacity * 8]);
        Ok(Self::assemble(
            file,
            capacity,
            blocks,
            stats,
            Some(sidecar),
            false,
            zero_crc,
            Layout::Dense,
        ))
    }

    /// Opens a legacy v1 store (no checksum sidecar), **read-only**: every
    /// write returns [`StorageError::ReadOnly`]. Queries still work;
    /// maintenance requires re-ingesting into a v2 store.
    pub fn open_v1(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> Result<Self, StorageError> {
        let file = Self::open_blocks_file(path, capacity, blocks)?;
        let zero_crc = crc32(&vec![0u8; capacity * 8]);
        Ok(Self::assemble(
            file,
            capacity,
            blocks,
            stats,
            None,
            true,
            zero_crc,
            Layout::Dense,
        ))
    }

    fn open_blocks_file(path: &Path, capacity: usize, blocks: usize) -> Result<File, StorageError> {
        assert!(capacity >= 1);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("open {}", path.display()), e))?;
        let expected = (capacity * blocks * 8) as u64;
        let actual = file
            .metadata()
            .map_err(|e| StorageError::io("stat blocks file", e))?
            .len();
        if actual < expected {
            return Err(StorageError::Geometry { expected, actual });
        }
        Ok(file)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        file: File,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
        sidecar: Option<Sidecar>,
        read_only: bool,
        zero_crc: u32,
        layout: Layout,
    ) -> Self {
        FileBlockStore {
            file,
            capacity,
            blocks,
            byte_buf: vec![0u8; capacity * 8],
            stats,
            sidecar,
            read_only,
            zero_crc,
            layout,
            read_ns: ss_obs::global().histogram("storage.block_read_ns"),
            write_ns: ss_obs::global().histogram("storage.block_write_ns"),
            checksum_failures: ss_obs::global().counter("storage.checksum_failures"),
            sparse_blocks_written: ss_obs::global().counter("storage.sparse_blocks_written"),
            sparse_bytes_written: ss_obs::global().counter("storage.sparse_bytes_written"),
            sparse_bytes_saved: ss_obs::global().counter("storage.sparse_bytes_saved"),
            sparse_relocations: ss_obs::global().counter("storage.sparse_relocations"),
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Whether reads are CRC-verified (false only for legacy v1 stores).
    pub fn checksummed(&self) -> bool {
        self.sidecar.is_some()
    }

    /// Whether writes are rejected (legacy v1 stores open read-only).
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Whether the store uses the v3 sparse bucketed layout.
    pub fn sparse(&self) -> bool {
        matches!(self.layout, Layout::Sparse { .. })
    }

    /// Current size of the blocks file in bytes (v3: header + directory
    /// + heap including relocation garbage; v1/v2: `capacity × blocks ×
    /// 8`).
    pub fn disk_bytes(&self) -> Result<u64, StorageError> {
        Ok(self
            .file
            .metadata()
            .map_err(|e| StorageError::io("stat blocks file", e))?
            .len())
    }

    /// Total bytes of *live* encoded payloads in a v3 store (the sum of
    /// directory `len`s); `None` for dense stores. The gap between this
    /// and [`FileBlockStore::disk_bytes`] is relocation garbage
    /// (`docs/FORMAT.md` §8.5).
    pub fn sparse_live_bytes(&self) -> Option<u64> {
        match &self.layout {
            Layout::Sparse { dir, .. } => Some(dir.iter().map(|e| e.len as u64).sum()),
            Layout::Dense => None,
        }
    }

    /// The v3 directory entry of block `id`, if this is a sparse store.
    fn sparse_entry(&self, id: usize) -> Option<DirEntry> {
        match &self.layout {
            Layout::Sparse { dir, .. } => Some(dir[id]),
            Layout::Dense => None,
        }
    }

    /// Persists `entry` as block `id`'s directory slot (16 bytes at its
    /// fixed offset) and mirrors it in memory — step 3 of the §8.5 write
    /// protocol.
    fn write_dir_entry(&mut self, id: usize, entry: DirEntry) -> Result<(), StorageError> {
        let mut bytes = [0u8; V3_DIR_ENTRY_LEN as usize];
        bytes[0..8].copy_from_slice(&entry.offset.to_le_bytes());
        bytes[8..12].copy_from_slice(&entry.len.to_le_bytes());
        bytes[12..16].copy_from_slice(&entry.alloc.to_le_bytes());
        self.file
            .seek(SeekFrom::Start(
                V3_HEADER_LEN + id as u64 * V3_DIR_ENTRY_LEN,
            ))
            .and_then(|_| self.file.write_all(&bytes))
            .map_err(|e| StorageError::io(format!("write v3 directory entry {id}"), e))?;
        if let Layout::Sparse { dir, .. } = &mut self.layout {
            dir[id] = entry;
        }
        Ok(())
    }

    /// Reads and CRC-verifies the encoded payload of sparse block `id`.
    /// An all-zero entry returns an empty payload after checking its
    /// sidecar slot holds the empty-string CRC (`0`).
    fn read_sparse_payload(&mut self, id: usize, entry: DirEntry) -> Result<Vec<u8>, StorageError> {
        let mut payload = vec![0u8; entry.len as usize];
        if entry.offset != 0 {
            self.file
                .seek(SeekFrom::Start(entry.offset))
                .and_then(|_| self.file.read_exact(&mut payload))
                .map_err(|e| StorageError::io(format!("read sparse block {id}"), e))?;
        }
        if let Some(sc) = &mut self.sidecar {
            let stored = sc.read(id)?;
            let computed = if entry.offset == 0 {
                0
            } else {
                crc32(&payload)
            };
            if stored != computed {
                self.checksum_failures.inc();
                return Err(StorageError::Checksum {
                    block: id,
                    stored,
                    computed,
                });
            }
        }
        Ok(payload)
    }

    /// The §8.5 write protocol for one sparse block: encode, place
    /// (in-place or relocate to end of heap), then directory, then CRC.
    fn write_sparse_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
        let payload = sp::encode(&SparseTile::from_dense(buf));
        let dense_bytes = self.block_bytes() as u64;
        let old = self.sparse_entry(id).expect("sparse layout");
        if payload.is_empty() {
            // All-zero image: zero directory entry, empty-string CRC.
            if old != DirEntry::default() {
                self.write_dir_entry(id, DirEntry::default())?;
            }
            if let Some(sc) = &mut self.sidecar {
                sc.write(id, 0)?;
            }
            self.sparse_blocks_written.inc();
            self.sparse_bytes_saved.add(dense_bytes);
            return Ok(());
        }
        let len = payload.len() as u32;
        let entry = if old.offset != 0 && len <= old.alloc {
            DirEntry { len, ..old }
        } else {
            // Relocate: append at end of heap with quantised headroom.
            let alloc = len.div_ceil(V3_ALLOC_QUANTUM) * V3_ALLOC_QUANTUM;
            let offset = match &self.layout {
                Layout::Sparse { heap_end, .. } => *heap_end,
                Layout::Dense => unreachable!(),
            };
            if old.offset != 0 {
                self.sparse_relocations.inc();
            }
            DirEntry { offset, len, alloc }
        };
        // Step 2: payload first. On relocation also extend the file to
        // the full allocation so `offset + alloc <= file length` holds
        // for the next open.
        self.file
            .seek(SeekFrom::Start(entry.offset))
            .and_then(|_| self.file.write_all(&payload))
            .map_err(|e| StorageError::io(format!("write sparse block {id}"), e))?;
        if entry.offset != old.offset {
            let new_heap_end = entry.offset + entry.alloc as u64;
            self.file
                .set_len(new_heap_end)
                .map_err(|e| StorageError::io("extend sparse heap", e))?;
            if let Layout::Sparse { heap_end, .. } = &mut self.layout {
                *heap_end = new_heap_end;
            }
        }
        // Step 3: directory. Step 4: CRC over the encoded payload.
        self.write_dir_entry(id, entry)?;
        if let Some(sc) = &mut self.sidecar {
            sc.write(id, crc32(&payload))?;
        }
        self.sparse_blocks_written.inc();
        self.sparse_bytes_written.add(payload.len() as u64);
        self.sparse_bytes_saved
            .add(dense_bytes.saturating_sub(payload.len() as u64));
        Ok(())
    }

    /// Flushes OS buffers of the blocks file and sidecar to stable
    /// storage (`fsync`).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("fsync blocks file", e))?;
        if let Some(sc) = &mut self.sidecar {
            sc.file
                .sync_data()
                .map_err(|e| StorageError::io("fsync checksum sidecar", e))?;
        }
        Ok(())
    }

    /// Scans every block, recomputing its CRC-32 and comparing it to the
    /// sidecar — the full-file scrub behind `shiftsplit scrub` and
    /// [`WsFile::verify`](crate::WsFile::verify).
    ///
    /// Scrub traffic is maintenance, not experiment workload, so it does
    /// **not** count into [`IoStats`]; progress appears in the global
    /// metrics registry as `scrub.blocks_scanned` / `scrub.corruptions`.
    /// Corruption is reported in the [`ScrubReport`]; only environmental
    /// failures (unreadable file, bad geometry) are `Err`.
    pub fn scrub(&mut self) -> Result<ScrubReport, StorageError> {
        if self.sparse() {
            return self.scrub_sparse();
        }
        let expected = (self.capacity * self.blocks * 8) as u64;
        let actual = self
            .file
            .metadata()
            .map_err(|e| StorageError::io("stat blocks file", e))?
            .len();
        if actual < expected {
            return Err(StorageError::Geometry { expected, actual });
        }
        let scanned = ss_obs::global().counter("scrub.blocks_scanned");
        let corruptions = ss_obs::global().counter("scrub.corruptions");
        let mut report = ScrubReport {
            blocks: self.blocks,
            corrupt: Vec::new(),
            checksummed: self.sidecar.is_some(),
        };
        let nbytes = self.capacity * 8;
        for id in 0..self.blocks {
            self.file
                .seek(SeekFrom::Start((id * nbytes) as u64))
                .and_then(|_| self.file.read_exact(&mut self.byte_buf))
                .map_err(|e| StorageError::io(format!("scrub read of block {id}"), e))?;
            if let Some(sc) = &mut self.sidecar {
                let stored = sc.read(id)?;
                if stored != crc32(&self.byte_buf) {
                    report.corrupt.push(id);
                    corruptions.inc();
                    self.checksum_failures.inc();
                }
            }
            scanned.inc();
        }
        Ok(report)
    }

    /// The v3 scrub: walks the directory, checking every entry's
    /// geometry against the file length, every payload's CRC against the
    /// sidecar, and every payload's length against its own bitmap
    /// (`docs/FORMAT.md` §8.4). Per-block inconsistencies are reported
    /// as corrupt blocks; only environmental failures are `Err`.
    fn scrub_sparse(&mut self) -> Result<ScrubReport, StorageError> {
        let file_len = self.disk_bytes()?;
        let dir_end = V3_HEADER_LEN + self.blocks as u64 * V3_DIR_ENTRY_LEN;
        if file_len < dir_end {
            return Err(StorageError::Geometry {
                expected: dir_end,
                actual: file_len,
            });
        }
        let scanned = ss_obs::global().counter("scrub.blocks_scanned");
        let corruptions = ss_obs::global().counter("scrub.corruptions");
        let mut report = ScrubReport {
            blocks: self.blocks,
            corrupt: Vec::new(),
            checksummed: true,
        };
        for id in 0..self.blocks {
            let entry = self.sparse_entry(id).expect("sparse layout");
            let geometry_ok = if entry.offset == 0 {
                entry.len == 0 && entry.alloc == 0
            } else {
                entry.offset >= dir_end
                    && entry.len <= entry.alloc
                    && entry.offset + entry.alloc as u64 <= file_len
            };
            let clean = geometry_ok
                && match self.read_sparse_payload(id, entry) {
                    Ok(payload) => entry.offset == 0 || sp::decode(&payload, self.capacity).is_ok(),
                    Err(StorageError::Checksum { .. }) => false,
                    Err(e) => return Err(e),
                };
            if !clean {
                report.corrupt.push(id);
                corruptions.inc();
            }
            scanned.inc();
        }
        Ok(report)
    }

    fn block_bytes(&self) -> usize {
        self.capacity * 8
    }
}

impl BlockStore for FileBlockStore {
    fn block_capacity(&self) -> usize {
        self.capacity
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
        assert!(id < self.blocks, "block {id} out of range");
        assert_eq!(buf.len(), self.capacity);
        let t0 = Instant::now();
        if let Some(entry) = self.sparse_entry(id) {
            let payload = self.read_sparse_payload(id, entry)?;
            if entry.offset == 0 {
                buf.fill(0.0);
            } else {
                sp::decode(&payload, self.capacity)?.to_dense(buf);
            }
            self.read_ns.record(t0.elapsed().as_nanos() as u64);
            self.stats.add_block_reads(1);
            return Ok(());
        }
        let nbytes = self.block_bytes();
        self.file
            .seek(SeekFrom::Start((id * nbytes) as u64))
            .and_then(|_| self.file.read_exact(&mut self.byte_buf))
            .map_err(|e| StorageError::io(format!("read block {id}"), e))?;
        if let Some(sc) = &mut self.sidecar {
            let stored = sc.read(id)?;
            let computed = crc32(&self.byte_buf);
            if stored != computed {
                self.checksum_failures.inc();
                return Err(StorageError::Checksum {
                    block: id,
                    stored,
                    computed,
                });
            }
        }
        for (i, v) in buf.iter_mut().enumerate() {
            let mut le = [0u8; 8];
            le.copy_from_slice(&self.byte_buf[i * 8..i * 8 + 8]);
            *v = f64::from_le_bytes(le);
        }
        self.read_ns.record(t0.elapsed().as_nanos() as u64);
        self.stats.add_block_reads(1);
        Ok(())
    }

    fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
        assert!(id < self.blocks, "block {id} out of range");
        assert_eq!(buf.len(), self.capacity);
        if self.read_only {
            return Err(StorageError::ReadOnly);
        }
        let t0 = Instant::now();
        if self.sparse() {
            self.write_sparse_block(id, buf)?;
            self.write_ns.record(t0.elapsed().as_nanos() as u64);
            self.stats.add_block_writes(1);
            return Ok(());
        }
        for (i, &v) in buf.iter().enumerate() {
            self.byte_buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        let nbytes = self.block_bytes();
        // Ordering: block contents first, CRC second. A crash in between
        // leaves a mismatch the next read (or scrub) detects — never a
        // silently wrong block (see DESIGN.md §9).
        self.file
            .seek(SeekFrom::Start((id * nbytes) as u64))
            .and_then(|_| self.file.write_all(&self.byte_buf))
            .map_err(|e| StorageError::io(format!("write block {id}"), e))?;
        if let Some(sc) = &mut self.sidecar {
            sc.write(id, crc32(&self.byte_buf))?;
        }
        self.write_ns.record(t0.elapsed().as_nanos() as u64);
        self.stats.add_block_writes(1);
        Ok(())
    }

    fn try_sync(&mut self) -> Result<(), StorageError> {
        FileBlockStore::sync(self)
    }

    fn grow(&mut self, blocks: usize) {
        if blocks > self.blocks {
            assert!(
                !self.sparse(),
                "grow is unsupported on format v3 stores (docs/FORMAT.md §8.6); \
                 re-ingest into a fresh store to expand the domain"
            );
            self.file
                .set_len((self.capacity * blocks * 8) as u64)
                .expect("grow failed");
            if let Some(sc) = &mut self.sidecar {
                sc.grow(self.blocks, blocks, self.zero_crc)
                    .expect("grow sidecar failed");
            }
            self.blocks = blocks;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testsuite;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ss_fileblock_{name}_{}", std::process::id()));
        p
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(Sidecar::path_for(path));
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let mut store = FileBlockStore::create(&path, 8, 4, IoStats::new()).unwrap();
        testsuite::roundtrip(&mut store);
        cleanup(&path);
    }

    #[test]
    fn grow_preserves() {
        let path = tmp("grow");
        let mut store = FileBlockStore::create(&path, 8, 4, IoStats::new()).unwrap();
        testsuite::grow_preserves(&mut store);
        cleanup(&path);
    }

    #[test]
    fn counts_io() {
        let path = tmp("counts");
        let stats = IoStats::new();
        let mut store = FileBlockStore::create(&path, 8, 4, stats.clone()).unwrap();
        testsuite::counts_io(&mut store, &stats);
        cleanup(&path);
    }

    #[test]
    fn records_block_io_latency_in_global_registry() {
        // The global registry is process-wide, so assert growth, not
        // absolute counts.
        let reads = ss_obs::global().histogram("storage.block_read_ns");
        let writes = ss_obs::global().histogram("storage.block_write_ns");
        let (r0, w0) = (reads.count(), writes.count());
        let path = tmp("latency");
        let mut store = FileBlockStore::create(&path, 8, 2, IoStats::new()).unwrap();
        let mut buf = [0.0; 8];
        store.write_block(0, &[1.0; 8]);
        store.read_block(0, &mut buf);
        assert_eq!(reads.count(), r0 + 1);
        assert_eq!(writes.count(), w0 + 1);
        cleanup(&path);
    }

    #[test]
    fn persists_across_reopen_of_same_handle() {
        let path = tmp("persist");
        let stats = IoStats::new();
        {
            let mut store = FileBlockStore::create(&path, 4, 2, stats.clone()).unwrap();
            store.write_block(1, &[1.0, 2.0, 3.0, 4.0]);
        }
        // Bytes are on disk: read them back raw.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 4 * 2 * 8);
        let mut le = [0u8; 8];
        le.copy_from_slice(&bytes[4 * 8..4 * 8 + 8]);
        assert_eq!(f64::from_le_bytes(le), 1.0);
        cleanup(&path);
    }

    #[test]
    fn checksums_catch_on_disk_bit_rot() {
        let path = tmp("bitrot");
        let mut store = FileBlockStore::create(&path, 4, 3, IoStats::new()).unwrap();
        store.write_block(1, &[1.0, 2.0, 3.0, 4.0]);
        drop(store);
        // Flip one bit of block 1 behind the store's back.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4 * 8 + 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = FileBlockStore::open(&path, 4, 3, IoStats::new()).unwrap();
        let mut buf = [0.0; 4];
        // Untouched blocks still read fine.
        store.try_read_block(0, &mut buf).unwrap();
        match store.try_read_block(1, &mut buf) {
            Err(StorageError::Checksum { block: 1, .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
        // The scrub sees exactly the one corrupt block.
        let report = store.scrub().unwrap();
        assert_eq!(report.corrupt, vec![1]);
        assert!(report.checksummed);
        cleanup(&path);
    }

    #[test]
    fn stale_crc_after_out_of_band_rewrite_is_detected() {
        // Models the crash window between "block written" and "CRC
        // updated": the sidecar entry is stale, so the read must fail.
        let path = tmp("stalecrc");
        let mut store = FileBlockStore::create(&path, 4, 2, IoStats::new()).unwrap();
        store.write_block(0, &[5.0; 4]);
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0..8].copy_from_slice(&7.0f64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut store = FileBlockStore::open(&path, 4, 2, IoStats::new()).unwrap();
        let mut buf = [0.0; 4];
        assert!(matches!(
            store.try_read_block(0, &mut buf),
            Err(StorageError::Checksum { block: 0, .. })
        ));
        cleanup(&path);
    }

    #[test]
    fn open_requires_sidecar_but_open_v1_does_not() {
        let path = tmp("v1compat");
        // A bare v1 blocks file: raw f64s, no sidecar.
        std::fs::write(&path, vec![0u8; 4 * 2 * 8]).unwrap();
        assert!(FileBlockStore::open(&path, 4, 2, IoStats::new()).is_err());
        let mut store = FileBlockStore::open_v1(&path, 4, 2, IoStats::new()).unwrap();
        assert!(!store.checksummed());
        assert!(store.read_only());
        let mut buf = [0.0; 4];
        store.try_read_block(0, &mut buf).unwrap();
        assert!(matches!(
            store.try_write_block(0, &buf),
            Err(StorageError::ReadOnly)
        ));
        // Scrubbing a v1 store checks geometry/readability only.
        let report = store.scrub().unwrap();
        assert!(!report.checksummed && report.is_clean());
        cleanup(&path);
    }

    #[test]
    fn grow_extends_sidecar_consistently() {
        let path = tmp("growcrc");
        let mut store = FileBlockStore::create(&path, 4, 2, IoStats::new()).unwrap();
        store.write_block(1, &[9.0; 4]);
        store.grow(6);
        let mut buf = [0.0; 4];
        // New blocks read back as zeros with valid CRCs.
        for id in 2..6 {
            store.try_read_block(id, &mut buf).unwrap();
            assert!(buf.iter().all(|&v| v == 0.0));
        }
        assert!(store.scrub().unwrap().is_clean());
        cleanup(&path);
    }

    #[test]
    fn corrupt_sidecar_magic_is_rejected() {
        let path = tmp("badmagic");
        let store = FileBlockStore::create(&path, 4, 2, IoStats::new()).unwrap();
        drop(store);
        let sc = Sidecar::path_for(&path);
        let mut bytes = std::fs::read(&sc).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&sc, &bytes).unwrap();
        assert!(FileBlockStore::open(&path, 4, 2, IoStats::new()).is_err());
        cleanup(&path);
    }

    #[test]
    fn v3_roundtrip() {
        let path = tmp("v3roundtrip");
        let mut store = FileBlockStore::create_v3(&path, 8, 4, IoStats::new()).unwrap();
        assert!(store.sparse());
        testsuite::roundtrip(&mut store);
        cleanup(&path);
    }

    #[test]
    fn v3_zero_blocks_use_no_heap() {
        let path = tmp("v3zero");
        let store = FileBlockStore::create_v3(&path, 64, 8, IoStats::new()).unwrap();
        // Freshly created: header + directory only, no heap.
        let expected = V3_HEADER_LEN + 8 * V3_DIR_ENTRY_LEN;
        assert_eq!(store.disk_bytes().unwrap(), expected);
        assert_eq!(store.sparse_live_bytes(), Some(0));
        drop(store);
        let mut store = FileBlockStore::open_v3(&path, 64, 8, IoStats::new()).unwrap();
        let mut buf = [7.0; 64];
        store.try_read_block(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&v| v == 0.0));
        cleanup(&path);
    }

    #[test]
    fn v3_persists_and_is_much_smaller_than_dense() {
        let path = tmp("v3persist");
        let mut image = [0.0; 256];
        image[0] = 1.5;
        image[100] = -2.0;
        {
            let mut store = FileBlockStore::create_v3(&path, 256, 16, IoStats::new()).unwrap();
            store.write_block(5, &image);
            store.sync().unwrap();
        }
        let mut store = FileBlockStore::open_v3(&path, 256, 16, IoStats::new()).unwrap();
        let mut buf = [9.0; 256];
        store.try_read_block(5, &mut buf).unwrap();
        assert_eq!(buf, image);
        // Two present buckets of one block vs 16 dense blocks of 2 KiB.
        let dense_bytes: u64 = 256 * 16 * 8;
        assert!(store.disk_bytes().unwrap() < dense_bytes / 4);
        assert!(store.scrub().unwrap().is_clean());
        cleanup(&path);
    }

    #[test]
    fn v3_rewrite_in_place_and_relocate() {
        let path = tmp("v3reloc");
        let mut store = FileBlockStore::create_v3(&path, 64, 2, IoStats::new()).unwrap();
        let mut image = [0.0; 64];
        image[0] = 1.0;
        store.write_block(0, &image);
        let len_after_first = store.disk_bytes().unwrap();
        // Growing within the same bucket stays within the 128-byte
        // allocation quantum: no relocation, file length unchanged.
        image[1] = 2.0;
        store.write_block(0, &image);
        assert_eq!(store.disk_bytes().unwrap(), len_after_first);
        // Touching all four buckets outgrows the allocation: relocate.
        for slot in [16, 32, 48] {
            image[slot] = 3.0;
        }
        store.write_block(0, &image);
        assert!(store.disk_bytes().unwrap() > len_after_first);
        let live = store.sparse_live_bytes().unwrap();
        assert!(live < store.disk_bytes().unwrap()); // old region is garbage
        let mut buf = [0.0; 64];
        store.try_read_block(0, &mut buf).unwrap();
        assert_eq!(buf, image);
        // Writing the block back to all-zero frees its directory entry.
        store.write_block(0, &[0.0; 64]);
        assert_eq!(store.sparse_live_bytes(), Some(0));
        store.try_read_block(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&v| v == 0.0));
        assert!(store.scrub().unwrap().is_clean());
        cleanup(&path);
    }

    #[test]
    fn v3_scrub_catches_bit_flipped_payload() {
        let path = tmp("v3bitrot");
        let mut image = [0.0; 64];
        image[20] = 4.25;
        {
            let mut store = FileBlockStore::create_v3(&path, 64, 4, IoStats::new()).unwrap();
            store.write_block(2, &image);
            store.sync().unwrap();
        }
        // Flip one bit inside the heap (past header + directory).
        let heap_start = (V3_HEADER_LEN + 4 * V3_DIR_ENTRY_LEN) as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[heap_start + 5] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = FileBlockStore::open_v3(&path, 64, 4, IoStats::new()).unwrap();
        let mut buf = [0.0; 64];
        assert!(matches!(
            store.try_read_block(2, &mut buf),
            Err(StorageError::Checksum { block: 2, .. })
        ));
        store.try_read_block(0, &mut buf).unwrap(); // others unaffected
        let report = store.scrub().unwrap();
        assert_eq!(report.corrupt, vec![2]);
        assert!(report.checksummed);
        cleanup(&path);
    }

    #[test]
    fn v3_rejects_bad_magic_and_geometry() {
        let path = tmp("v3badmagic");
        drop(FileBlockStore::create_v3(&path, 8, 2, IoStats::new()).unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileBlockStore::open_v3(&path, 8, 2, IoStats::new()),
            Err(StorageError::Meta(_))
        ));
        bytes[0] ^= 0xFF; // restore magic, corrupt a directory entry instead
        let dir0 = V3_HEADER_LEN as usize;
        bytes[dir0..dir0 + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileBlockStore::open_v3(&path, 8, 2, IoStats::new()),
            Err(StorageError::Meta(_)) | Err(StorageError::Geometry { .. })
        ));
        cleanup(&path);
    }

    #[test]
    fn v3_grow_panics() {
        let path = tmp("v3grow");
        let mut store = FileBlockStore::create_v3(&path, 8, 2, IoStats::new()).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.grow(4)))
            .expect_err("grow on v3 must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("unsupported on format v3"), "got: {msg}");
        cleanup(&path);
    }

    #[test]
    fn infallible_read_panics_with_typed_payload() {
        let path = tmp("panicpayload");
        let mut store = FileBlockStore::create(&path, 4, 2, IoStats::new()).unwrap();
        store.write_block(0, &[3.0; 4]);
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = FileBlockStore::open(&path, 4, 2, IoStats::new()).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut buf = [0.0; 4];
            store.read_block(0, &mut buf);
        }))
        .expect_err("read of a corrupt block must panic");
        let typed = crate::block::downcast_storage_error(err);
        assert!(matches!(typed, StorageError::Checksum { block: 0, .. }));
        cleanup(&path);
    }
}
