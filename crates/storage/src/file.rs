//! File-backed block store issuing real positioned disk I/O.
//!
//! Each block occupies `capacity × 8` contiguous bytes; coefficients are
//! little-endian `f64`s. The paper's experiments are "accurate
//! implementations of the operations on real disks with real disk blocks" —
//! this store is what makes the repository's experiments comparable.
//!
//! # Durability (format v2)
//!
//! A v2 store carries a *checksum sidecar* (`<name>.crc`, see
//! `docs/FORMAT.md`): one CRC-32 per block, verified on every read and
//! refreshed on every write. Bit rot, torn writes and crash windows all
//! surface as a typed [`StorageError::Checksum`] instead of silently
//! corrupting every later query. Legacy v1 stores (no sidecar) still open
//! through [`FileBlockStore::open_v1`], but only read-only. Writeback
//! ordering is *block first, CRC second*: a crash between the two leaves a
//! detectable mismatch, never a silently wrong block.

use crate::block::BlockStore;
use crate::crc::crc32;
use crate::error::{ScrubReport, StorageError};
use crate::stats::IoStats;
use ss_obs::{Counter, Histogram};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Magic bytes opening a checksum sidecar file.
const SIDECAR_MAGIC: &[u8; 8] = b"SSWSCRC\x01";
/// Sidecar header size in bytes (the magic).
const SIDECAR_HEADER: u64 = 8;

/// Path of the checksum sidecar belonging to the blocks file at `path`
/// (`<path>.crc`). Exposed so callers that move or rewrite a blocks file
/// (e.g. domain expansion) can move its sidecar alongside it.
pub fn sidecar_path(path: &Path) -> PathBuf {
    Sidecar::path_for(path)
}

/// The checksum sidecar: `SIDECAR_MAGIC` followed by one little-endian
/// CRC-32 per block, in block order.
struct Sidecar {
    file: File,
}

impl Sidecar {
    /// Path of the sidecar belonging to the blocks file at `path`.
    fn path_for(path: &Path) -> PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".crc");
        PathBuf::from(p)
    }

    /// Creates (truncating) a sidecar covering `blocks` zero-filled blocks.
    fn create(path: &Path, blocks: usize, zero_crc: u32) -> Result<Sidecar, StorageError> {
        let sc_path = Sidecar::path_for(path);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&sc_path)
            .map_err(|e| StorageError::io(format!("create {}", sc_path.display()), e))?;
        let mut bytes = Vec::with_capacity(SIDECAR_HEADER as usize + blocks * 4);
        bytes.extend_from_slice(SIDECAR_MAGIC);
        for _ in 0..blocks {
            bytes.extend_from_slice(&zero_crc.to_le_bytes());
        }
        file.write_all(&bytes)
            .map_err(|e| StorageError::io("write checksum sidecar", e))?;
        Ok(Sidecar { file })
    }

    /// Opens an existing sidecar, validating magic and length for
    /// `blocks` blocks.
    fn open(path: &Path, blocks: usize) -> Result<Sidecar, StorageError> {
        let sc_path = Sidecar::path_for(path);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&sc_path)
            .map_err(|e| StorageError::io(format!("open {}", sc_path.display()), e))?;
        let mut magic = [0u8; SIDECAR_HEADER as usize];
        file.read_exact(&mut magic)
            .map_err(|e| StorageError::io("read sidecar magic", e))?;
        if &magic != SIDECAR_MAGIC {
            return Err(StorageError::Meta("bad checksum-sidecar magic".into()));
        }
        let expected = SIDECAR_HEADER + blocks as u64 * 4;
        let actual = file
            .metadata()
            .map_err(|e| StorageError::io("stat checksum sidecar", e))?
            .len();
        if actual < expected {
            return Err(StorageError::Geometry { expected, actual });
        }
        Ok(Sidecar { file })
    }

    /// The recorded CRC of block `id`.
    fn read(&mut self, id: usize) -> Result<u32, StorageError> {
        let mut le = [0u8; 4];
        self.file
            .seek(SeekFrom::Start(SIDECAR_HEADER + id as u64 * 4))
            .and_then(|_| self.file.read_exact(&mut le))
            .map_err(|e| StorageError::io(format!("read crc of block {id}"), e))?;
        Ok(u32::from_le_bytes(le))
    }

    /// Records `crc` as block `id`'s checksum.
    fn write(&mut self, id: usize, crc: u32) -> Result<(), StorageError> {
        self.file
            .seek(SeekFrom::Start(SIDECAR_HEADER + id as u64 * 4))
            .and_then(|_| self.file.write_all(&crc.to_le_bytes()))
            .map_err(|e| StorageError::io(format!("write crc of block {id}"), e))
    }

    /// Appends zero-block CRCs for blocks `from..to`.
    fn grow(&mut self, from: usize, to: usize, zero_crc: u32) -> Result<(), StorageError> {
        let mut bytes = Vec::with_capacity((to - from) * 4);
        for _ in from..to {
            bytes.extend_from_slice(&zero_crc.to_le_bytes());
        }
        self.file
            .seek(SeekFrom::Start(SIDECAR_HEADER + from as u64 * 4))
            .and_then(|_| self.file.write_all(&bytes))
            .map_err(|e| StorageError::io("grow checksum sidecar", e))
    }
}

/// A [`BlockStore`] over a file on disk, with optional per-block CRC-32
/// verification (format v2).
pub struct FileBlockStore {
    file: File,
    capacity: usize,
    blocks: usize,
    byte_buf: Vec<u8>,
    stats: IoStats,
    /// `Some` for v2 stores; `None` for legacy v1 stores (which are then
    /// read-only).
    sidecar: Option<Sidecar>,
    read_only: bool,
    /// CRC of an all-zero block of this capacity, memoised for `grow`.
    zero_crc: u32,
    // Handles into the global metrics registry, resolved once here so the
    // per-op record is a lock-free fetch_add, not a name lookup.
    read_ns: Histogram,
    write_ns: Histogram,
    checksum_failures: Counter,
}

impl FileBlockStore {
    /// Creates (truncating) a zero-filled v2 store at `path` with `blocks`
    /// blocks of `capacity` coefficients, plus its `.crc` checksum sidecar.
    pub fn create(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> Result<Self, StorageError> {
        assert!(capacity >= 1);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("create {}", path.display()), e))?;
        file.set_len((capacity * blocks * 8) as u64)
            .map_err(|e| StorageError::io("size blocks file", e))?;
        let zero_crc = crc32(&vec![0u8; capacity * 8]);
        let sidecar = Sidecar::create(path, blocks, zero_crc)?;
        Ok(Self::assemble(
            file,
            capacity,
            blocks,
            stats,
            Some(sidecar),
            false,
            zero_crc,
        ))
    }

    /// Opens an existing v2 store created earlier with
    /// [`FileBlockStore::create`]; the `.crc` sidecar must be present.
    ///
    /// # Errors
    ///
    /// Fails when the blocks file or sidecar is missing, the sidecar magic
    /// is wrong, or either file is smaller than the declared geometry.
    pub fn open(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> Result<Self, StorageError> {
        let file = Self::open_blocks_file(path, capacity, blocks)?;
        let sidecar = Sidecar::open(path, blocks)?;
        let zero_crc = crc32(&vec![0u8; capacity * 8]);
        Ok(Self::assemble(
            file,
            capacity,
            blocks,
            stats,
            Some(sidecar),
            false,
            zero_crc,
        ))
    }

    /// Opens a legacy v1 store (no checksum sidecar), **read-only**: every
    /// write returns [`StorageError::ReadOnly`]. Queries still work;
    /// maintenance requires re-ingesting into a v2 store.
    pub fn open_v1(
        path: &Path,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
    ) -> Result<Self, StorageError> {
        let file = Self::open_blocks_file(path, capacity, blocks)?;
        let zero_crc = crc32(&vec![0u8; capacity * 8]);
        Ok(Self::assemble(
            file, capacity, blocks, stats, None, true, zero_crc,
        ))
    }

    fn open_blocks_file(path: &Path, capacity: usize, blocks: usize) -> Result<File, StorageError> {
        assert!(capacity >= 1);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io(format!("open {}", path.display()), e))?;
        let expected = (capacity * blocks * 8) as u64;
        let actual = file
            .metadata()
            .map_err(|e| StorageError::io("stat blocks file", e))?
            .len();
        if actual < expected {
            return Err(StorageError::Geometry { expected, actual });
        }
        Ok(file)
    }

    fn assemble(
        file: File,
        capacity: usize,
        blocks: usize,
        stats: IoStats,
        sidecar: Option<Sidecar>,
        read_only: bool,
        zero_crc: u32,
    ) -> Self {
        FileBlockStore {
            file,
            capacity,
            blocks,
            byte_buf: vec![0u8; capacity * 8],
            stats,
            sidecar,
            read_only,
            zero_crc,
            read_ns: ss_obs::global().histogram("storage.block_read_ns"),
            write_ns: ss_obs::global().histogram("storage.block_write_ns"),
            checksum_failures: ss_obs::global().counter("storage.checksum_failures"),
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Whether reads are CRC-verified (false only for legacy v1 stores).
    pub fn checksummed(&self) -> bool {
        self.sidecar.is_some()
    }

    /// Whether writes are rejected (legacy v1 stores open read-only).
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Flushes OS buffers of the blocks file and sidecar to stable
    /// storage (`fsync`).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("fsync blocks file", e))?;
        if let Some(sc) = &mut self.sidecar {
            sc.file
                .sync_data()
                .map_err(|e| StorageError::io("fsync checksum sidecar", e))?;
        }
        Ok(())
    }

    /// Scans every block, recomputing its CRC-32 and comparing it to the
    /// sidecar — the full-file scrub behind `shiftsplit scrub` and
    /// [`WsFile::verify`](crate::WsFile::verify).
    ///
    /// Scrub traffic is maintenance, not experiment workload, so it does
    /// **not** count into [`IoStats`]; progress appears in the global
    /// metrics registry as `scrub.blocks_scanned` / `scrub.corruptions`.
    /// Corruption is reported in the [`ScrubReport`]; only environmental
    /// failures (unreadable file, bad geometry) are `Err`.
    pub fn scrub(&mut self) -> Result<ScrubReport, StorageError> {
        let expected = (self.capacity * self.blocks * 8) as u64;
        let actual = self
            .file
            .metadata()
            .map_err(|e| StorageError::io("stat blocks file", e))?
            .len();
        if actual < expected {
            return Err(StorageError::Geometry { expected, actual });
        }
        let scanned = ss_obs::global().counter("scrub.blocks_scanned");
        let corruptions = ss_obs::global().counter("scrub.corruptions");
        let mut report = ScrubReport {
            blocks: self.blocks,
            corrupt: Vec::new(),
            checksummed: self.sidecar.is_some(),
        };
        let nbytes = self.capacity * 8;
        for id in 0..self.blocks {
            self.file
                .seek(SeekFrom::Start((id * nbytes) as u64))
                .and_then(|_| self.file.read_exact(&mut self.byte_buf))
                .map_err(|e| StorageError::io(format!("scrub read of block {id}"), e))?;
            if let Some(sc) = &mut self.sidecar {
                let stored = sc.read(id)?;
                if stored != crc32(&self.byte_buf) {
                    report.corrupt.push(id);
                    corruptions.inc();
                    self.checksum_failures.inc();
                }
            }
            scanned.inc();
        }
        Ok(report)
    }

    fn block_bytes(&self) -> usize {
        self.capacity * 8
    }
}

impl BlockStore for FileBlockStore {
    fn block_capacity(&self) -> usize {
        self.capacity
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
        assert!(id < self.blocks, "block {id} out of range");
        assert_eq!(buf.len(), self.capacity);
        let t0 = Instant::now();
        let nbytes = self.block_bytes();
        self.file
            .seek(SeekFrom::Start((id * nbytes) as u64))
            .and_then(|_| self.file.read_exact(&mut self.byte_buf))
            .map_err(|e| StorageError::io(format!("read block {id}"), e))?;
        if let Some(sc) = &mut self.sidecar {
            let stored = sc.read(id)?;
            let computed = crc32(&self.byte_buf);
            if stored != computed {
                self.checksum_failures.inc();
                return Err(StorageError::Checksum {
                    block: id,
                    stored,
                    computed,
                });
            }
        }
        for (i, v) in buf.iter_mut().enumerate() {
            let mut le = [0u8; 8];
            le.copy_from_slice(&self.byte_buf[i * 8..i * 8 + 8]);
            *v = f64::from_le_bytes(le);
        }
        self.read_ns.record(t0.elapsed().as_nanos() as u64);
        self.stats.add_block_reads(1);
        Ok(())
    }

    fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
        assert!(id < self.blocks, "block {id} out of range");
        assert_eq!(buf.len(), self.capacity);
        if self.read_only {
            return Err(StorageError::ReadOnly);
        }
        let t0 = Instant::now();
        for (i, &v) in buf.iter().enumerate() {
            self.byte_buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        let nbytes = self.block_bytes();
        // Ordering: block contents first, CRC second. A crash in between
        // leaves a mismatch the next read (or scrub) detects — never a
        // silently wrong block (see DESIGN.md §9).
        self.file
            .seek(SeekFrom::Start((id * nbytes) as u64))
            .and_then(|_| self.file.write_all(&self.byte_buf))
            .map_err(|e| StorageError::io(format!("write block {id}"), e))?;
        if let Some(sc) = &mut self.sidecar {
            sc.write(id, crc32(&self.byte_buf))?;
        }
        self.write_ns.record(t0.elapsed().as_nanos() as u64);
        self.stats.add_block_writes(1);
        Ok(())
    }

    fn try_sync(&mut self) -> Result<(), StorageError> {
        FileBlockStore::sync(self)
    }

    fn grow(&mut self, blocks: usize) {
        if blocks > self.blocks {
            self.file
                .set_len((self.capacity * blocks * 8) as u64)
                .expect("grow failed");
            if let Some(sc) = &mut self.sidecar {
                sc.grow(self.blocks, blocks, self.zero_crc)
                    .expect("grow sidecar failed");
            }
            self.blocks = blocks;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testsuite;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ss_fileblock_{name}_{}", std::process::id()));
        p
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(Sidecar::path_for(path));
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let mut store = FileBlockStore::create(&path, 8, 4, IoStats::new()).unwrap();
        testsuite::roundtrip(&mut store);
        cleanup(&path);
    }

    #[test]
    fn grow_preserves() {
        let path = tmp("grow");
        let mut store = FileBlockStore::create(&path, 8, 4, IoStats::new()).unwrap();
        testsuite::grow_preserves(&mut store);
        cleanup(&path);
    }

    #[test]
    fn counts_io() {
        let path = tmp("counts");
        let stats = IoStats::new();
        let mut store = FileBlockStore::create(&path, 8, 4, stats.clone()).unwrap();
        testsuite::counts_io(&mut store, &stats);
        cleanup(&path);
    }

    #[test]
    fn records_block_io_latency_in_global_registry() {
        // The global registry is process-wide, so assert growth, not
        // absolute counts.
        let reads = ss_obs::global().histogram("storage.block_read_ns");
        let writes = ss_obs::global().histogram("storage.block_write_ns");
        let (r0, w0) = (reads.count(), writes.count());
        let path = tmp("latency");
        let mut store = FileBlockStore::create(&path, 8, 2, IoStats::new()).unwrap();
        let mut buf = [0.0; 8];
        store.write_block(0, &[1.0; 8]);
        store.read_block(0, &mut buf);
        assert_eq!(reads.count(), r0 + 1);
        assert_eq!(writes.count(), w0 + 1);
        cleanup(&path);
    }

    #[test]
    fn persists_across_reopen_of_same_handle() {
        let path = tmp("persist");
        let stats = IoStats::new();
        {
            let mut store = FileBlockStore::create(&path, 4, 2, stats.clone()).unwrap();
            store.write_block(1, &[1.0, 2.0, 3.0, 4.0]);
        }
        // Bytes are on disk: read them back raw.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 4 * 2 * 8);
        let mut le = [0u8; 8];
        le.copy_from_slice(&bytes[4 * 8..4 * 8 + 8]);
        assert_eq!(f64::from_le_bytes(le), 1.0);
        cleanup(&path);
    }

    #[test]
    fn checksums_catch_on_disk_bit_rot() {
        let path = tmp("bitrot");
        let mut store = FileBlockStore::create(&path, 4, 3, IoStats::new()).unwrap();
        store.write_block(1, &[1.0, 2.0, 3.0, 4.0]);
        drop(store);
        // Flip one bit of block 1 behind the store's back.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4 * 8 + 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = FileBlockStore::open(&path, 4, 3, IoStats::new()).unwrap();
        let mut buf = [0.0; 4];
        // Untouched blocks still read fine.
        store.try_read_block(0, &mut buf).unwrap();
        match store.try_read_block(1, &mut buf) {
            Err(StorageError::Checksum { block: 1, .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
        // The scrub sees exactly the one corrupt block.
        let report = store.scrub().unwrap();
        assert_eq!(report.corrupt, vec![1]);
        assert!(report.checksummed);
        cleanup(&path);
    }

    #[test]
    fn stale_crc_after_out_of_band_rewrite_is_detected() {
        // Models the crash window between "block written" and "CRC
        // updated": the sidecar entry is stale, so the read must fail.
        let path = tmp("stalecrc");
        let mut store = FileBlockStore::create(&path, 4, 2, IoStats::new()).unwrap();
        store.write_block(0, &[5.0; 4]);
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0..8].copy_from_slice(&7.0f64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut store = FileBlockStore::open(&path, 4, 2, IoStats::new()).unwrap();
        let mut buf = [0.0; 4];
        assert!(matches!(
            store.try_read_block(0, &mut buf),
            Err(StorageError::Checksum { block: 0, .. })
        ));
        cleanup(&path);
    }

    #[test]
    fn open_requires_sidecar_but_open_v1_does_not() {
        let path = tmp("v1compat");
        // A bare v1 blocks file: raw f64s, no sidecar.
        std::fs::write(&path, vec![0u8; 4 * 2 * 8]).unwrap();
        assert!(FileBlockStore::open(&path, 4, 2, IoStats::new()).is_err());
        let mut store = FileBlockStore::open_v1(&path, 4, 2, IoStats::new()).unwrap();
        assert!(!store.checksummed());
        assert!(store.read_only());
        let mut buf = [0.0; 4];
        store.try_read_block(0, &mut buf).unwrap();
        assert!(matches!(
            store.try_write_block(0, &buf),
            Err(StorageError::ReadOnly)
        ));
        // Scrubbing a v1 store checks geometry/readability only.
        let report = store.scrub().unwrap();
        assert!(!report.checksummed && report.is_clean());
        cleanup(&path);
    }

    #[test]
    fn grow_extends_sidecar_consistently() {
        let path = tmp("growcrc");
        let mut store = FileBlockStore::create(&path, 4, 2, IoStats::new()).unwrap();
        store.write_block(1, &[9.0; 4]);
        store.grow(6);
        let mut buf = [0.0; 4];
        // New blocks read back as zeros with valid CRCs.
        for id in 2..6 {
            store.try_read_block(id, &mut buf).unwrap();
            assert!(buf.iter().all(|&v| v == 0.0));
        }
        assert!(store.scrub().unwrap().is_clean());
        cleanup(&path);
    }

    #[test]
    fn corrupt_sidecar_magic_is_rejected() {
        let path = tmp("badmagic");
        let store = FileBlockStore::create(&path, 4, 2, IoStats::new()).unwrap();
        drop(store);
        let sc = Sidecar::path_for(&path);
        let mut bytes = std::fs::read(&sc).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&sc, &bytes).unwrap();
        assert!(FileBlockStore::open(&path, 4, 2, IoStats::new()).is_err());
        cleanup(&path);
    }

    #[test]
    fn infallible_read_panics_with_typed_payload() {
        let path = tmp("panicpayload");
        let mut store = FileBlockStore::create(&path, 4, 2, IoStats::new()).unwrap();
        store.write_block(0, &[3.0; 4]);
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = FileBlockStore::open(&path, 4, 2, IoStats::new()).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut buf = [0.0; 4];
            store.read_block(0, &mut buf);
        }))
        .expect_err("read of a corrupt block must panic");
        let typed = crate::block::downcast_storage_error(err);
        assert!(matches!(typed, StorageError::Checksum { block: 0, .. }));
        cleanup(&path);
    }
}
