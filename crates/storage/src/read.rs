//! The read-only coefficient source abstraction queries run against.
//!
//! Every query in `ss-query` (Lemma 1 point lookups, Lemma 2 range sums,
//! reconstruction, tile-major batches, progressive refinement) only ever
//! *reads* coefficients. [`CoeffRead`] captures exactly that capability, so
//! the same query code serves both the serial [`CoeffStore`] (one caller,
//! `&mut self` cache) and the thread-safe [`SharedCoeffStore`] (many
//! concurrent callers over a [`ShardedBufferPool`](crate::ShardedBufferPool)).
//!
//! The trait keeps `&mut self` receivers so the serial store implements it
//! directly; for concurrent serving, `CoeffRead` is *also* implemented for
//! `&SharedCoeffStore` — each worker thread holds its own `&` reference and
//! passes `&mut (&shared)` into the query functions, the same pattern as
//! `io::Read for &TcpStream`. No query code changes between the two.

use crate::block::BlockStore;
use crate::shard::SharedCoeffStore;
use crate::wstore::CoeffStore;
use ss_core::TilingMap;

/// A read-only source of wavelet coefficients laid out by a [`TilingMap`].
///
/// Implemented by [`CoeffStore`] (exclusive access), [`SharedCoeffStore`]
/// (owned), and `&SharedCoeffStore` (per-thread handle for concurrent
/// query serving).
pub trait CoeffRead {
    /// The tiling map describing the coefficient layout.
    type Map: TilingMap;

    /// The tiling map.
    fn map(&self) -> &Self::Map;

    /// Reads the coefficient at tuple index `idx`.
    fn read(&mut self, idx: &[usize]) -> f64;

    /// Reads a raw `(tile, slot)` location — used by query plans that
    /// resolve locations up front to reason about block access patterns.
    fn read_at(&mut self, tile: usize, slot: usize) -> f64;
}

impl<M: TilingMap, S: BlockStore> CoeffRead for CoeffStore<M, S> {
    type Map = M;

    fn map(&self) -> &M {
        CoeffStore::map(self)
    }

    fn read(&mut self, idx: &[usize]) -> f64 {
        CoeffStore::read(self, idx)
    }

    fn read_at(&mut self, tile: usize, slot: usize) -> f64 {
        CoeffStore::read_at(self, tile, slot)
    }
}

impl<M: TilingMap, S: BlockStore> CoeffRead for SharedCoeffStore<M, S> {
    type Map = M;

    fn map(&self) -> &M {
        SharedCoeffStore::map(self)
    }

    fn read(&mut self, idx: &[usize]) -> f64 {
        SharedCoeffStore::read(self, idx)
    }

    fn read_at(&mut self, tile: usize, slot: usize) -> f64 {
        self.stats().add_coeff_reads(1);
        self.pool().read(tile, slot)
    }
}

impl<M: TilingMap, S: BlockStore> CoeffRead for &SharedCoeffStore<M, S> {
    type Map = M;

    fn map(&self) -> &M {
        SharedCoeffStore::map(self)
    }

    fn read(&mut self, idx: &[usize]) -> f64 {
        SharedCoeffStore::read(self, idx)
    }

    fn read_at(&mut self, tile: usize, slot: usize) -> f64 {
        self.stats().add_coeff_reads(1);
        self.pool().read(tile, slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::mem_shared_store;
    use crate::stats::IoStats;
    use crate::wstore::mem_store;
    use ss_core::Tiling1d;

    fn sum_first<C: CoeffRead>(cs: &mut C, n: usize) -> f64 {
        (0..n).map(|i| cs.read(&[i])).sum()
    }

    #[test]
    fn serial_and_shared_agree_through_the_trait() {
        let mut serial = mem_store(Tiling1d::new(4, 2), 8, IoStats::new());
        let shared = mem_shared_store(Tiling1d::new(4, 2), 8, 4, IoStats::new());
        for i in 0..16usize {
            serial.write(&[i], (i * 7) as f64);
            shared.write(&[i], (i * 7) as f64);
        }
        let a = sum_first(&mut serial, 16);
        let b = sum_first(&mut { &shared }, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn borrowed_shared_store_reads_concurrently() {
        let shared = mem_shared_store(Tiling1d::new(4, 2), 8, 4, IoStats::new());
        for i in 0..16usize {
            shared.write(&[i], i as f64);
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    let mut handle = shared;
                    for i in 0..16usize {
                        assert_eq!(CoeffRead::read(&mut handle, &[i]), i as f64);
                    }
                });
            }
        });
    }

    #[test]
    fn read_at_counts_coefficient_reads() {
        let stats = IoStats::new();
        let shared = mem_shared_store(Tiling1d::new(4, 2), 8, 4, stats.clone());
        shared.write(&[0], 2.5);
        stats.reset();
        let loc = TilingMap::locate(shared.map(), &[0]);
        let mut handle = &shared;
        assert_eq!(handle.read_at(loc.tile, loc.slot), 2.5);
        assert_eq!(stats.snapshot().coeff_reads, 1);
    }
}
