//! Payload codec for the sparse bucketed blocks file (format v3).
//!
//! Implements the normative encoding of `docs/FORMAT.md` §8.3: a block
//! payload is an LSB-first *bucket bitmap* of `ceil(nbuckets / 8)` bytes
//! followed by the present buckets in ascending order, each serialised
//! as `bucket_len × 8` little-endian `f64` bytes. The encoding is
//! canonical — a given coefficient image has exactly one valid payload —
//! so the sidecar CRC (computed over payload bytes) doubles as a
//! content hash.
//!
//! The container around payloads (header, directory, heap, write
//! ordering) lives in [`file`](crate::file); this module is purely the
//! per-block bytes.

use crate::error::StorageError;
use ss_core::sparse::{SparseTile, BUCKET};

/// Magic bytes opening a v3 sparse blocks file (`docs/FORMAT.md` §8.2).
pub const V3_MAGIC: &[u8; 8] = b"SSWS3BLK";
/// The format version recorded in the v3 blocks-file header.
pub const V3_VERSION: u32 = 3;
/// Size of the v3 blocks-file header in bytes.
pub const V3_HEADER_LEN: u64 = 32;
/// Size of one v3 directory entry (`u64` offset, `u32` len, `u32` alloc).
pub const V3_DIR_ENTRY_LEN: u64 = 16;
/// Heap allocations are rounded up to a multiple of this many bytes so
/// small growth after a rewrite stays in place (`docs/FORMAT.md` §8.5).
pub const V3_ALLOC_QUANTUM: u32 = 128;

/// The bucket size recorded in a v3 header for a store of `capacity`
/// coefficients per block: `min(16, capacity)` (§8.1). For
/// `capacity >= 16` this equals the in-memory [`BUCKET`]; below 16 the
/// single short bucket spans the whole block, which is byte-identical
/// to how [`SparseTile`] lays out a short tail bucket.
pub fn bucket_for(capacity: usize) -> usize {
    capacity.min(BUCKET)
}

/// Number of buckets in a block of `capacity` coefficients.
pub fn num_buckets(capacity: usize) -> usize {
    capacity.div_ceil(bucket_for(capacity))
}

/// Byte length of the bucket bitmap for a block of `capacity`
/// coefficients.
pub fn bitmap_len(capacity: usize) -> usize {
    num_buckets(capacity).div_ceil(8)
}

/// Exact encoded payload length of `tile` in bytes: the bitmap plus
/// `8 × bucket_len` for every present bucket.
pub fn encoded_len(tile: &SparseTile) -> usize {
    let mut len = bitmap_len(tile.capacity());
    for b in 0..tile.num_buckets() {
        if tile.bucket_present(b) {
            len += tile.bucket_len(b) * 8;
        }
    }
    len
}

/// Encodes `tile` into its canonical v3 payload (§8.3). The all-zero
/// tile encodes to an empty vector by convention — callers represent it
/// as a zero directory entry, never as a stored payload.
pub fn encode(tile: &SparseTile) -> Vec<u8> {
    if tile.is_zero() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(encoded_len(tile));
    let mut bitmap = vec![0u8; bitmap_len(tile.capacity())];
    for b in 0..tile.num_buckets() {
        if tile.bucket_present(b) {
            bitmap[b / 8] |= 1 << (b % 8);
        }
    }
    out.extend_from_slice(&bitmap);
    for b in 0..tile.num_buckets() {
        if let Some(slots) = tile.bucket(b) {
            for &v in slots {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes a v3 payload back into a [`SparseTile`] of `capacity`
/// coefficients, rejecting any payload whose length disagrees with its
/// own bitmap (§8.3: the encoding is canonical, so a length mismatch is
/// corruption, reported as [`StorageError::Geometry`]).
pub fn decode(payload: &[u8], capacity: usize) -> Result<SparseTile, StorageError> {
    let bm_len = bitmap_len(capacity);
    let nbuckets = num_buckets(capacity);
    if payload.len() < bm_len {
        return Err(StorageError::Geometry {
            expected: bm_len as u64,
            actual: payload.len() as u64,
        });
    }
    let (bitmap, mut rest) = payload.split_at(bm_len);
    // Bits past the last bucket must be zero (canonical form).
    for b in nbuckets..bm_len * 8 {
        if bitmap[b / 8] & (1 << (b % 8)) != 0 {
            return Err(StorageError::Meta(format!(
                "sparse payload sets bitmap bit {b} past bucket count {nbuckets}"
            )));
        }
    }
    let mut tile = SparseTile::new(capacity);
    for b in 0..nbuckets {
        if bitmap[b / 8] & (1 << (b % 8)) == 0 {
            continue;
        }
        let blen = (capacity - b * bucket_for(capacity)).min(bucket_for(capacity));
        let nbytes = blen * 8;
        if rest.len() < nbytes {
            return Err(StorageError::Geometry {
                expected: (payload.len() + nbytes - rest.len()) as u64,
                actual: payload.len() as u64,
            });
        }
        let (bytes, tail) = rest.split_at(nbytes);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut le = [0u8; 8];
            le.copy_from_slice(chunk);
            tile.set(b * bucket_for(capacity) + i, f64::from_le_bytes(le));
        }
        rest = tail;
    }
    if !rest.is_empty() {
        return Err(StorageError::Geometry {
            expected: (payload.len() - rest.len()) as u64,
            actual: payload.len() as u64,
        });
    }
    Ok(tile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_matches_spec() {
        assert_eq!(bucket_for(64), 16);
        assert_eq!(bucket_for(16), 16);
        assert_eq!(bucket_for(4), 4);
        assert_eq!(num_buckets(64), 4);
        assert_eq!(num_buckets(40), 3); // 16 + 16 + 8
        assert_eq!(num_buckets(4), 1);
        assert_eq!(bitmap_len(64), 1);
        assert_eq!(bitmap_len(256), 2); // 16 buckets
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let mut dense = vec![0.0; 40];
        dense[0] = 1.5;
        dense[20] = -2.25;
        dense[39] = 1e-300;
        let tile = SparseTile::from_dense(&dense);
        let payload = encode(&tile);
        assert_eq!(payload.len(), encoded_len(&tile));
        // bitmap (1 byte) + bucket0 (16×8) + bucket1 (16×8) + tail bucket (8×8)
        assert_eq!(payload.len(), 1 + 128 + 128 + 64);
        assert_eq!(payload[0], 0b111);
        let back = decode(&payload, 40).unwrap();
        assert_eq!(back, tile);
        let mut out = vec![0.0; 40];
        back.to_dense(&mut out);
        for (a, b) in dense.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zero_tile_encodes_empty() {
        let tile = SparseTile::new(64);
        assert!(encode(&tile).is_empty());
    }

    #[test]
    fn sparse_payload_is_smaller_than_dense() {
        let mut dense = vec![0.0; 256];
        dense[0] = 9.0;
        let tile = SparseTile::from_dense(&dense);
        let payload = encode(&tile);
        assert_eq!(payload.len(), 2 + 128); // bitmap + one bucket
        assert!(payload.len() * 8 < 256 * 8);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let mut dense = vec![0.0; 64];
        dense[5] = 1.0;
        let payload = encode(&SparseTile::from_dense(&dense));
        let err = decode(&payload[..payload.len() - 1], 64);
        assert!(matches!(err, Err(StorageError::Geometry { .. })));
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let mut dense = vec![0.0; 64];
        dense[5] = 1.0;
        let mut payload = encode(&SparseTile::from_dense(&dense));
        payload.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode(&payload, 64),
            Err(StorageError::Geometry { .. })
        ));
    }

    #[test]
    fn stray_bitmap_bits_are_rejected() {
        // capacity 40 → 3 buckets, bitmap bits 3..8 must be clear.
        let mut dense = vec![0.0; 40];
        dense[0] = 1.0;
        let mut payload = encode(&SparseTile::from_dense(&dense));
        payload[0] |= 1 << 5;
        assert!(matches!(decode(&payload, 40), Err(StorageError::Meta(_))));
    }
}
