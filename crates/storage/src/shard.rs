//! A thread-safe, sharded buffer pool and the shared coefficient store
//! built on it.
//!
//! The serial [`BufferPool`](crate::BufferPool) is `&mut self` throughout:
//! one caller, one cache. The parallel transform drivers in `ss-transform`
//! instead want many workers applying coefficient deltas *concurrently*
//! against one bounded cache. [`ShardedBufferPool`] provides that: the
//! block-id space is partitioned across `num_shards` independently locked
//! LRU shards, so two workers touching different shards never contend.
//! The backing [`BlockStore`] sits behind its own reader-writer lock and
//! is only locked on a miss, an eviction of a dirty frame, or a flush.
//! Stores that support [`BlockStore::try_read_block_shared`] serve misses
//! under the *read* half of that lock, so misses on different shards wait
//! on the device concurrently — the mechanism that lets a pool of query
//! workers overlap per-block device latency instead of serialising every
//! cold read behind one mutex. Writes (write-backs, flushes) and reads on
//! stores without shared-read support take the write half, which behaves
//! exactly like the old mutex.
//!
//! **Store I/O never runs under a shard lock.** A miss (or an eviction of
//! a dirty frame, or a flush) marks the affected block ids *busy* in the
//! shard, releases the shard mutex, performs the device transfer, then
//! re-acquires the mutex to install the frame and wake waiters on the
//! shard's condvar. Threads that need a busy block wait on the condvar
//! instead of duplicating the load. This matters most when the backing
//! store is a [`RetryingBlockStore`](crate::RetryingBlockStore): its
//! capped exponential backoff can sleep for many milliseconds, and under
//! the old held-lock discipline that sleep stalled every reader hashed to
//! the same shard. Lock ordering remains *shard → store* in the sense
//! that no operation acquires a shard lock while holding the store lock,
//! and no operation holds two shard locks at once, so the pool is
//! deadlock-free by construction.
//!
//! Every shard keeps local hit/miss/eviction/write-back counters (read
//! them with [`ShardedBufferPool::shard_counters`]) and mirrors each event
//! into the shared [`IoStats`], where the totals appear in
//! [`IoSnapshot`](crate::IoSnapshot) next to the block/coefficient
//! counters the experiments report.

use crate::block::BlockStore;
use crate::error::StorageError;
use crate::pool::Frame;
use crate::stats::IoStats;
use ss_core::TilingMap;
use ss_obs::Histogram;
use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockWriteGuard};
use std::time::Instant;

/// Per-shard cache event counters (a copy; see
/// [`ShardedBufferPool::shard_counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Accesses served from a cached frame.
    pub hits: u64,
    /// Accesses that read the backing store.
    pub misses: u64,
    /// Frames evicted to respect the shard budget.
    pub evictions: u64,
    /// Dirty frames written back (eviction or flush).
    pub writebacks: u64,
}

struct Shard {
    frames: HashMap<usize, Frame>,
    /// Block ids with store I/O in flight (miss load or eviction
    /// write-back). A block in `busy` is never in `frames`; threads that
    /// need it wait on the slot's condvar instead of loading it twice.
    busy: HashSet<usize>,
    clock: u64,
    counters: ShardCounters,
}

/// One independently locked shard plus the condvar busy-block waiters
/// sleep on while another thread performs that block's store I/O.
struct ShardSlot {
    state: Mutex<Shard>,
    ready: Condvar,
}

/// Clears busy marks and wakes waiters even if the marking thread
/// panics mid-I/O (e.g. a store read fault), so waiters never hang.
struct BusyGuard<'a> {
    slot: &'a ShardSlot,
    ids: Vec<usize>,
}

impl BusyGuard<'_> {
    /// Success path: clears the marks under an already-held shard lock,
    /// so the caller keeps the lock continuously from frame install to
    /// frame use (dropping it in between would let a concurrent miss
    /// evict the just-installed frame). `Drop` stays as the panic path.
    fn clear(mut self, shard: &mut Shard) {
        for id in std::mem::take(&mut self.ids) {
            shard.busy.remove(&id);
        }
        std::mem::forget(self); // ids already taken: nothing to leak
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        let mut shard = self
            .slot
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        for id in &self.ids {
            shard.busy.remove(id);
        }
        drop(shard);
        self.slot.ready.notify_all();
    }
}

/// A write-back LRU block cache usable from many threads at once.
pub struct ShardedBufferPool<S: BlockStore> {
    shards: Vec<ShardSlot>,
    store: RwLock<S>,
    /// Serialises whole-pool flushes (see [`flush`](Self::flush)).
    flush_lock: Mutex<()>,
    shard_budget: usize,
    block_capacity: usize,
    num_blocks: usize,
    stats: IoStats,
    // Global-registry handles resolved once: per-acquisition wait time on
    // the shard locks and on the backing-store lock. Under the parallel
    // drivers these are the contention signal the workers report.
    shard_wait_ns: Histogram,
    store_wait_ns: Histogram,
}

impl<S: BlockStore> ShardedBufferPool<S> {
    /// Wraps `store` with `num_shards` LRU shards sharing a total cache
    /// budget of `budget` blocks (each shard gets `max(1, budget /
    /// num_shards)` frames). Cache events are recorded in `stats`.
    pub fn new(store: S, budget: usize, num_shards: usize, stats: IoStats) -> Self {
        assert!(num_shards >= 1, "sharded pool needs at least one shard");
        assert!(budget >= 1, "buffer pool needs at least one frame");
        let shard_budget = (budget / num_shards).max(1);
        let shards = (0..num_shards)
            .map(|_| ShardSlot {
                state: Mutex::new(Shard {
                    frames: HashMap::new(),
                    busy: HashSet::new(),
                    clock: 0,
                    counters: ShardCounters::default(),
                }),
                ready: Condvar::new(),
            })
            .collect();
        ShardedBufferPool {
            shards,
            flush_lock: Mutex::new(()),
            shard_budget,
            block_capacity: store.block_capacity(),
            num_blocks: store.num_blocks(),
            store: RwLock::new(store),
            stats,
            shard_wait_ns: ss_obs::global().histogram("pool.shard_lock_wait_ns"),
            store_wait_ns: ss_obs::global().histogram("pool.store_lock_wait_ns"),
        }
    }

    /// Locks a shard slot, recording how long the acquisition waited.
    fn lock_slot<'a>(&self, slot: &'a ShardSlot) -> MutexGuard<'a, Shard> {
        let t0 = Instant::now();
        let guard = slot.state.lock().unwrap();
        self.shard_wait_ns.record(t0.elapsed().as_nanos() as u64);
        guard
    }

    /// Locks the backing store exclusively, recording how long the
    /// acquisition waited.
    fn lock_store(&self) -> RwLockWriteGuard<'_, S> {
        let t0 = Instant::now();
        let guard = self.store.write().unwrap();
        self.store_wait_ns.record(t0.elapsed().as_nanos() as u64);
        guard
    }

    /// Number of independently locked shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Cache budget per shard, in blocks.
    pub fn shard_budget(&self) -> usize {
        self.shard_budget
    }

    /// Total cache budget, in blocks.
    pub fn budget(&self) -> usize {
        self.shard_budget * self.shards.len()
    }

    /// Blocks currently cached across all shards.
    pub fn cached_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().unwrap().frames.len())
            .sum()
    }

    /// Coefficients per block.
    pub fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    /// Number of blocks in the underlying store.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// A copy of each shard's local counters, indexed by shard.
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.shards
            .iter()
            .map(|s| s.state.lock().unwrap().counters)
            .collect()
    }

    fn shard_of(&self, id: usize) -> usize {
        // Adjacent tile ids round-robin across shards, so the contiguous
        // tile ranges a chunk touches spread over many locks.
        id % self.shards.len()
    }

    /// Reads one coefficient of block `id`.
    pub fn read(&self, id: usize, slot: usize) -> f64 {
        self.with_block(id, false, |blk| blk[slot])
    }

    /// Overwrites one coefficient of block `id`.
    pub fn write(&self, id: usize, slot: usize, value: f64) {
        self.with_block(id, true, |blk| blk[slot] = value)
    }

    /// Adds `delta` to one coefficient of block `id`.
    pub fn add(&self, id: usize, slot: usize, delta: f64) {
        self.with_block(id, true, |blk| blk[slot] += delta)
    }

    /// Runs `f` over the whole cached block `id` under a single shard
    /// lock (marking it dirty when `mutate` is true). This is how the
    /// parallel drivers apply a chunk's per-tile delta batches: one lock
    /// acquisition per tile, not per coefficient. Store I/O for a miss or
    /// an eviction write-back happens *outside* the shard lock (see the
    /// module docs); only the in-memory closure runs under it.
    pub fn with_block<R>(&self, id: usize, mutate: bool, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let slot_ref = &self.shards[self.shard_of(id)];
        let mut shard = self.lock_slot(slot_ref);
        loop {
            if shard.frames.contains_key(&id) {
                shard.counters.hits += 1;
                self.stats.add_pool_hits(1);
                ss_obs::trace::event(ss_obs::TraceEventKind::TileFetch {
                    tile: id as u64,
                    hit: true,
                });
                break;
            }
            if shard.busy.contains(&id) {
                // Another thread is loading or writing back this block;
                // wait for its I/O to finish instead of duplicating it.
                shard = slot_ref.ready.wait(shard).unwrap();
                continue;
            }
            // Miss: this thread owns the load. Pick eviction victims and
            // mark every id with in-flight I/O busy, then drop the lock.
            shard.counters.misses += 1;
            self.stats.add_pool_misses(1);
            ss_obs::trace::event(ss_obs::TraceEventKind::TileFetch {
                tile: id as u64,
                hit: false,
            });
            let mut victims: Vec<(usize, Frame)> = Vec::new();
            while shard.frames.len() + 1 > self.shard_budget && !shard.frames.is_empty() {
                let vid = shard
                    .frames
                    .iter()
                    .min_by_key(|(_, fr)| fr.last_used)
                    .map(|(&vid, _)| vid)
                    .expect("evict on empty shard");
                let frame = shard.frames.remove(&vid).expect("victim exists");
                shard.counters.evictions += 1;
                self.stats.add_pool_evictions(1);
                victims.push((vid, frame));
            }
            shard.busy.insert(id);
            let mut busy_ids = vec![id];
            for (vid, frame) in &victims {
                if frame.dirty {
                    shard.busy.insert(*vid);
                    busy_ids.push(*vid);
                }
            }
            drop(shard);
            let busy = BusyGuard {
                slot: slot_ref,
                ids: busy_ids,
            };
            let mut wrote_back = 0u64;
            for (vid, frame) in &victims {
                if frame.dirty {
                    self.lock_store().write_block(*vid, &frame.data);
                    wrote_back += 1;
                }
            }
            let mut data = vec![0.0; self.block_capacity];
            // Miss read: under the read half of the store lock when the
            // store can read through a shared reference (misses on other
            // shards then overlap their device wait), under the write
            // half otherwise.
            let shared = {
                let t0 = Instant::now();
                let guard = self.store.read().unwrap();
                self.store_wait_ns.record(t0.elapsed().as_nanos() as u64);
                guard.try_read_block_shared(id, &mut data)
            };
            match shared {
                Some(Ok(())) => {}
                Some(Err(e)) => std::panic::panic_any(e),
                None => self.lock_store().read_block(id, &mut data),
            }
            shard = self.lock_slot(slot_ref);
            shard.counters.writebacks += wrote_back;
            self.stats.add_pool_writebacks(wrote_back);
            shard.frames.insert(
                id,
                Frame {
                    data,
                    dirty: false,
                    last_used: 0,
                },
            );
            // Clear the busy marks under this same lock and keep holding
            // it: releasing between install and use would let a
            // concurrent miss evict the frame (or a clear() drop it) and
            // force a second, double-counted load for this one access.
            busy.clear(&mut shard);
            slot_ref.ready.notify_all();
            break;
        }
        shard.clock += 1;
        let clock = shard.clock;
        let frame = shard.frames.get_mut(&id).expect("frame present");
        frame.last_used = clock;
        if mutate {
            frame.dirty = true;
        }
        f(&mut frame.data)
    }

    /// Writes every dirty block back to the store, keeping the cache warm.
    ///
    /// Dirty frames are *copied* under the shard lock and written to the
    /// store after it is released, so slow store writes (throttled
    /// devices, retry backoff) never stall readers of the shard. A frame
    /// mutated between the copy and the store write is simply dirty again
    /// and caught by the next flush.
    pub fn flush(&self) {
        // Serialise whole-pool flushes so two concurrent flushes cannot
        // write the same block in opposite orders (copy-then-write makes
        // that reordering possible without this).
        let _flush = self.flush_lock.lock().unwrap();
        for slot in &self.shards {
            let mut dirty: Vec<(usize, Vec<f64>)> = Vec::new();
            {
                let mut shard = slot.state.lock().unwrap();
                let mut ids: Vec<usize> = shard
                    .frames
                    .iter()
                    .filter(|(_, fr)| fr.dirty)
                    .map(|(&id, _)| id)
                    .collect();
                ids.sort_unstable();
                for id in ids {
                    let frame = shard.frames.get_mut(&id).expect("dirty frame");
                    dirty.push((id, frame.data.clone()));
                    frame.dirty = false;
                    shard.counters.writebacks += 1;
                    self.stats.add_pool_writebacks(1);
                }
            }
            if dirty.is_empty() {
                continue;
            }
            let mut store = self.lock_store();
            for (id, data) in &dirty {
                store.write_block(*id, data);
            }
        }
    }

    /// Durability barrier on the backing store (fsync for file-backed
    /// stores, a no-op for memory). Call after [`flush`](Self::flush) to
    /// make previously written blocks survive a crash.
    pub fn sync(&self) -> Result<(), StorageError> {
        self.lock_store().try_sync()
    }

    /// Flushes and drops every cached block.
    pub fn clear(&self) {
        self.flush();
        for slot in &self.shards {
            slot.state.lock().unwrap().frames.clear();
        }
    }

    /// Flushes and returns the wrapped store.
    pub fn into_store(self) -> S {
        self.flush();
        self.store.into_inner().unwrap()
    }
}

/// Wavelet coefficients mapped onto a [`ShardedBufferPool`] through a
/// [`TilingMap`] — the `&self` counterpart of
/// [`CoeffStore`](crate::CoeffStore), shared by reference across the
/// worker threads of the parallel transform drivers.
pub struct SharedCoeffStore<M: TilingMap, S: BlockStore> {
    map: M,
    pool: ShardedBufferPool<S>,
    stats: IoStats,
}

impl<M: TilingMap, S: BlockStore> SharedCoeffStore<M, S> {
    /// Builds a shared store over `store` with layout `map`, a total cache
    /// budget of `pool_budget` blocks split over `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when the block store's capacity differs from the map's, or
    /// when the store has fewer blocks than the map needs.
    pub fn new(map: M, store: S, pool_budget: usize, num_shards: usize, stats: IoStats) -> Self {
        assert_eq!(
            store.block_capacity(),
            map.block_capacity(),
            "block capacity mismatch between store and tiling map"
        );
        assert!(
            store.num_blocks() >= map.num_tiles(),
            "store has {} blocks, map needs {}",
            store.num_blocks(),
            map.num_tiles()
        );
        SharedCoeffStore {
            map,
            pool: ShardedBufferPool::new(store, pool_budget, num_shards, stats.clone()),
            stats,
        }
    }

    /// The tiling map.
    pub fn map(&self) -> &M {
        &self.map
    }

    /// The shared counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Reads the coefficient at tuple index `idx`.
    pub fn read(&self, idx: &[usize]) -> f64 {
        let loc = self.map.locate(idx);
        self.stats.add_coeff_reads(1);
        self.pool.read(loc.tile, loc.slot)
    }

    /// Overwrites the coefficient at `idx`.
    pub fn write(&self, idx: &[usize], value: f64) {
        let loc = self.map.locate(idx);
        self.stats.add_coeff_writes(1);
        self.pool.write(loc.tile, loc.slot, value);
    }

    /// Adds `delta` to the coefficient at `idx`.
    pub fn add(&self, idx: &[usize], delta: f64) {
        let loc = self.map.locate(idx);
        self.stats.add_coeff_writes(1);
        self.pool.add(loc.tile, loc.slot, delta);
    }

    /// Adds a batch of `(slot, delta)` updates to one tile under a single
    /// shard lock. The parallel drivers group each chunk's deltas by tile
    /// and apply them through this.
    pub fn apply_tile(&self, tile: usize, updates: &[(usize, f64)]) {
        if updates.is_empty() {
            return;
        }
        self.stats.add_coeff_writes(updates.len() as u64);
        self.pool.with_block(tile, true, |blk| {
            for &(slot, delta) in updates {
                blk[slot] += delta;
            }
        });
    }

    /// Adds a dense per-slot delta vector to one tile under a single
    /// shard lock, skipping zero-delta slots (the [`ss_core::kernel`]
    /// masked add, vectorised in SIMD builds). `touched` is the caller's
    /// count of non-zero slots, charged as coefficient writes — the same
    /// accounting a sparse [`apply_tile`](Self::apply_tile) of those
    /// slots would record.
    pub fn apply_tile_dense(&self, tile: usize, deltas: &[f64], touched: u64) {
        if touched == 0 {
            return;
        }
        self.stats.add_coeff_writes(touched);
        self.pool.with_block(tile, true, |blk| {
            ss_core::kernel::masked_add(blk, deltas);
        });
    }

    /// Applies a `(tile, slot, delta)` batch: sorted by tile so each
    /// affected tile is locked (and, on a miss, loaded) at most once per
    /// batch — the per-chunk access discipline of the serial drivers,
    /// preserved under concurrency. Clears `deltas`.
    pub fn apply_batch(&self, deltas: &mut Vec<(usize, usize, f64)>) {
        deltas.sort_unstable_by_key(|&(tile, slot, _)| (tile, slot));
        let mut i = 0;
        while i < deltas.len() {
            let tile = deltas[i].0;
            let mut j = i;
            while j < deltas.len() && deltas[j].0 == tile {
                j += 1;
            }
            self.stats.add_coeff_writes((j - i) as u64);
            self.pool.with_block(tile, true, |blk| {
                for &(_, slot, delta) in &deltas[i..j] {
                    blk[slot] += delta;
                }
            });
            i = j;
        }
        deltas.clear();
    }

    /// Reads a whole tile as an owned vector — the snapshot layer's
    /// copy-on-write hook: it copies a tile out of the base store before
    /// applying an epoch's deltas to the copy.
    pub fn read_tile(&self, tile: usize) -> Vec<f64> {
        self.pool.with_block(tile, false, |blk| blk.to_vec())
    }

    /// Overwrites a whole tile — the snapshot layer's fold-back hook: a
    /// retired epoch's published tile images are written into the base
    /// store verbatim (and WAL replay restores post-images the same way).
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the block capacity.
    pub fn overwrite_tile(&self, tile: usize, data: &[f64]) {
        assert_eq!(data.len(), self.pool.block_capacity());
        self.stats.add_coeff_writes(data.len() as u64);
        self.pool
            .with_block(tile, true, |blk| blk.copy_from_slice(data));
    }

    /// Writes every dirty cached block back.
    pub fn flush(&self) {
        self.pool.flush();
    }

    /// Durability barrier on the backing store (fsync for file-backed
    /// stores). Call after [`flush`](Self::flush).
    pub fn sync(&self) -> Result<(), crate::StorageError> {
        self.pool.sync()
    }

    /// Direct access to the underlying sharded pool.
    pub fn pool(&self) -> &ShardedBufferPool<S> {
        &self.pool
    }

    /// Decomposes into map and (flushed) store.
    pub fn into_parts(self) -> (M, S) {
        let SharedCoeffStore { map, pool, .. } = self;
        (map, pool.into_store())
    }
}

/// Convenience: an in-memory shared tiled store sized for `map`.
pub fn mem_shared_store<M: TilingMap>(
    map: M,
    pool_budget: usize,
    num_shards: usize,
    stats: IoStats,
) -> SharedCoeffStore<M, crate::mem::MemBlockStore> {
    let store =
        crate::mem::MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
    SharedCoeffStore::new(map, store, pool_budget, num_shards, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBlockStore;
    use ss_core::Tiling1d;

    fn pool(
        blocks: usize,
        budget: usize,
        shards: usize,
    ) -> (ShardedBufferPool<MemBlockStore>, IoStats) {
        let stats = IoStats::new();
        let store = MemBlockStore::new(4, blocks, stats.clone());
        (
            ShardedBufferPool::new(store, budget, shards, stats.clone()),
            stats,
        )
    }

    #[test]
    fn read_write_roundtrip_through_shards() {
        let (p, _) = pool(16, 8, 4);
        for id in 0..16 {
            p.write(id, id % 4, id as f64 + 0.5);
        }
        for id in 0..16 {
            assert_eq!(p.read(id, id % 4), id as f64 + 0.5);
        }
    }

    #[test]
    fn values_survive_eviction_pressure() {
        // Budget of 1 frame per shard forces constant eviction traffic.
        let (p, _) = pool(16, 4, 4);
        for id in 0..16 {
            p.add(id, 0, id as f64);
            p.add(id, 0, 1.0);
        }
        let mut store = p.into_store();
        let mut buf = vec![0.0; 4];
        for id in 0..16 {
            store.read_block(id, &mut buf);
            assert_eq!(buf[0], id as f64 + 1.0);
        }
    }

    #[test]
    fn shard_counters_reconcile_with_global_stats() {
        let (p, stats) = pool(16, 4, 4);
        for id in 0..16 {
            p.write(id, 0, 1.0); // 16 misses, evictions past each shard's 1-frame budget
        }
        for id in 0..4 {
            p.read(id + 12, 0); // 4 hits (last resident per shard)
        }
        p.flush();
        let per_shard = p.shard_counters();
        let snap = stats.snapshot();
        assert_eq!(
            per_shard.iter().map(|c| c.hits).sum::<u64>(),
            snap.pool_hits
        );
        assert_eq!(
            per_shard.iter().map(|c| c.misses).sum::<u64>(),
            snap.pool_misses
        );
        assert_eq!(
            per_shard.iter().map(|c| c.evictions).sum::<u64>(),
            snap.pool_evictions
        );
        assert_eq!(
            per_shard.iter().map(|c| c.writebacks).sum::<u64>(),
            snap.pool_writebacks
        );
        // All 16 dirty frames reached the store exactly once each.
        assert_eq!(snap.block_writes, 16);
        assert_eq!(snap.pool_writebacks, 16);
    }

    #[test]
    fn concurrent_adds_accumulate_exactly() {
        use std::sync::Arc;
        let (p, _) = pool(8, 4, 4);
        let p = Arc::new(p);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    for round in 0..100 {
                        for id in 0..8 {
                            p.add(id, round % 4, 1.0);
                        }
                    }
                });
            }
        });
        let p = Arc::try_unwrap(p).ok().expect("threads joined");
        let mut store = p.into_store();
        let mut buf = vec![0.0; 4];
        for id in 0..8 {
            store.read_block(id, &mut buf);
            assert_eq!(buf.iter().sum::<f64>(), 400.0, "block {id}");
        }
    }

    #[test]
    fn retry_backoff_does_not_stall_same_shard_readers() {
        use crate::retry::{RetryPolicy, RetryingBlockStore};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        use std::time::Duration;

        // Block 0 always fails with a transient error (after signalling
        // that the faulty load has started); every other block succeeds.
        struct OneBadBlock {
            inner: MemBlockStore,
            started: Arc<AtomicBool>,
        }
        impl BlockStore for OneBadBlock {
            fn block_capacity(&self) -> usize {
                self.inner.block_capacity()
            }
            fn num_blocks(&self) -> usize {
                self.inner.num_blocks()
            }
            fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
                if id == 0 {
                    self.started.store(true, Ordering::Release);
                    return Err(StorageError::Injected {
                        op: "read",
                        block: 0,
                    });
                }
                self.inner.try_read_block(id, buf)
            }
            fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
                self.inner.try_write_block(id, buf)
            }
            fn grow(&mut self, blocks: usize) {
                self.inner.grow(blocks);
            }
        }

        let started = Arc::new(AtomicBool::new(false));
        let policy = RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(40),
            max_backoff: Duration::from_millis(400),
        };
        // Backoff budget: 40+80+160+320 = 600 ms before exhaustion.
        let stats = IoStats::new();
        let store = RetryingBlockStore::new(
            OneBadBlock {
                inner: MemBlockStore::new(4, 8, stats.clone()),
                started: Arc::clone(&started),
            },
            policy,
        );
        // One shard: the faulty load and the probe reads share its lock.
        let p = ShardedBufferPool::new(store, 4, 1, stats);
        p.write(1, 0, 42.0); // warm block 1 into the cache
        std::thread::scope(|scope| {
            let faulty = scope
                .spawn(|| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.read(0, 0))));
            while !started.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            // The faulty load is now sleeping its backoff. A cached read
            // on the same shard must complete far inside the 600 ms
            // retry budget — under the old held-lock discipline it
            // waited the whole budget out.
            let t0 = Instant::now();
            assert_eq!(p.read(1, 0), 42.0);
            let waited = t0.elapsed();
            assert!(
                waited < Duration::from_millis(200),
                "same-shard cached read stalled {waited:?} behind retry backoff"
            );
            let err = crate::block::downcast_storage_error(
                faulty
                    .join()
                    .expect("thread itself must not die")
                    .unwrap_err(),
            );
            assert!(matches!(
                err,
                StorageError::RetriesExhausted { block: 0, .. }
            ));
        });
    }

    #[test]
    fn waiters_share_one_in_flight_load() {
        use std::sync::Arc;
        use std::time::Duration;

        // A slow store: every miss costs 30 ms.
        let stats = IoStats::new();
        let slow = crate::throttle::ThrottledBlockStore::new(
            MemBlockStore::new(4, 8, stats.clone()),
            Duration::from_millis(30),
            Duration::ZERO,
        );
        let p = Arc::new(ShardedBufferPool::new(slow, 4, 1, stats.clone()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                scope.spawn(move || assert_eq!(p.read(3, 0), 0.0));
            }
        });
        // All four threads raced for the same cold block: exactly one
        // loaded it from the store, the rest waited on the busy mark.
        assert_eq!(stats.snapshot().block_reads, 1);
    }

    #[test]
    fn shared_store_matches_serial_store() {
        let stats = IoStats::new();
        let shared = mem_shared_store(Tiling1d::new(4, 2), 8, 4, stats);
        let serial_stats = IoStats::new();
        let mut serial = crate::wstore::mem_store(Tiling1d::new(4, 2), 8, serial_stats);
        for i in 0..16usize {
            shared.write(&[i], (i * 3) as f64);
            serial.write(&[i], (i * 3) as f64);
        }
        shared.apply_tile(0, &[(0, 1.25), (1, -0.5)]);
        serial.pool().with_block(0, true, |blk| {
            blk[0] += 1.25;
            blk[1] += -0.5;
        });
        for i in 0..16usize {
            assert_eq!(shared.read(&[i]), serial.read(&[i]), "index {i}");
        }
    }
}
