//! A thread-safe, sharded buffer pool and the shared coefficient store
//! built on it.
//!
//! The serial [`BufferPool`](crate::BufferPool) is `&mut self` throughout:
//! one caller, one cache. The parallel transform drivers in `ss-transform`
//! instead want many workers applying coefficient deltas *concurrently*
//! against one bounded cache. [`ShardedBufferPool`] provides that: the
//! block-id space is partitioned across `num_shards` independently locked
//! LRU shards, so two workers touching different shards never contend.
//! The backing [`BlockStore`] sits behind its own reader-writer lock and
//! is only locked on a miss, an eviction of a dirty frame, or a flush.
//! Stores that support [`BlockStore::try_read_block_shared`] serve misses
//! under the *read* half of that lock, so misses on different shards wait
//! on the device concurrently — the mechanism that lets a pool of query
//! workers overlap per-block device latency instead of serialising every
//! cold read behind one mutex. Writes (write-backs, flushes) and reads on
//! stores without shared-read support take the write half, which behaves
//! exactly like the old mutex.
//!
//! Lock ordering is strictly *shard → store* (a shard lock may be held
//! while the store lock is taken, never the reverse, and no operation
//! holds two shard locks at once), so the pool is deadlock-free by
//! construction.
//!
//! Every shard keeps local hit/miss/eviction/write-back counters (read
//! them with [`ShardedBufferPool::shard_counters`]) and mirrors each event
//! into the shared [`IoStats`], where the totals appear in
//! [`IoSnapshot`](crate::IoSnapshot) next to the block/coefficient
//! counters the experiments report.

use crate::block::BlockStore;
use crate::pool::Frame;
use crate::stats::IoStats;
use ss_core::TilingMap;
use ss_obs::Histogram;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, RwLock, RwLockWriteGuard};
use std::time::Instant;

/// Per-shard cache event counters (a copy; see
/// [`ShardedBufferPool::shard_counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Accesses served from a cached frame.
    pub hits: u64,
    /// Accesses that read the backing store.
    pub misses: u64,
    /// Frames evicted to respect the shard budget.
    pub evictions: u64,
    /// Dirty frames written back (eviction or flush).
    pub writebacks: u64,
}

struct Shard {
    frames: HashMap<usize, Frame>,
    clock: u64,
    counters: ShardCounters,
}

/// A write-back LRU block cache usable from many threads at once.
pub struct ShardedBufferPool<S: BlockStore> {
    shards: Vec<Mutex<Shard>>,
    store: RwLock<S>,
    shard_budget: usize,
    block_capacity: usize,
    num_blocks: usize,
    stats: IoStats,
    // Global-registry handles resolved once: per-acquisition wait time on
    // the shard locks and on the backing-store lock. Under the parallel
    // drivers these are the contention signal the workers report.
    shard_wait_ns: Histogram,
    store_wait_ns: Histogram,
}

impl<S: BlockStore> ShardedBufferPool<S> {
    /// Wraps `store` with `num_shards` LRU shards sharing a total cache
    /// budget of `budget` blocks (each shard gets `max(1, budget /
    /// num_shards)` frames). Cache events are recorded in `stats`.
    pub fn new(store: S, budget: usize, num_shards: usize, stats: IoStats) -> Self {
        assert!(num_shards >= 1, "sharded pool needs at least one shard");
        assert!(budget >= 1, "buffer pool needs at least one frame");
        let shard_budget = (budget / num_shards).max(1);
        let shards = (0..num_shards)
            .map(|_| {
                Mutex::new(Shard {
                    frames: HashMap::new(),
                    clock: 0,
                    counters: ShardCounters::default(),
                })
            })
            .collect();
        ShardedBufferPool {
            shards,
            shard_budget,
            block_capacity: store.block_capacity(),
            num_blocks: store.num_blocks(),
            store: RwLock::new(store),
            stats,
            shard_wait_ns: ss_obs::global().histogram("pool.shard_lock_wait_ns"),
            store_wait_ns: ss_obs::global().histogram("pool.store_lock_wait_ns"),
        }
    }

    /// Locks `id`'s shard, recording how long the acquisition waited.
    fn lock_shard(&self, id: usize) -> MutexGuard<'_, Shard> {
        let t0 = Instant::now();
        let guard = self.shards[self.shard_of(id)].lock().unwrap();
        self.shard_wait_ns.record(t0.elapsed().as_nanos() as u64);
        guard
    }

    /// Locks the backing store exclusively, recording how long the
    /// acquisition waited.
    fn lock_store(&self) -> RwLockWriteGuard<'_, S> {
        let t0 = Instant::now();
        let guard = self.store.write().unwrap();
        self.store_wait_ns.record(t0.elapsed().as_nanos() as u64);
        guard
    }

    /// Number of independently locked shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Cache budget per shard, in blocks.
    pub fn shard_budget(&self) -> usize {
        self.shard_budget
    }

    /// Total cache budget, in blocks.
    pub fn budget(&self) -> usize {
        self.shard_budget * self.shards.len()
    }

    /// Blocks currently cached across all shards.
    pub fn cached_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().frames.len())
            .sum()
    }

    /// Coefficients per block.
    pub fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    /// Number of blocks in the underlying store.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// A copy of each shard's local counters, indexed by shard.
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().counters)
            .collect()
    }

    fn shard_of(&self, id: usize) -> usize {
        // Adjacent tile ids round-robin across shards, so the contiguous
        // tile ranges a chunk touches spread over many locks.
        id % self.shards.len()
    }

    /// Reads one coefficient of block `id`.
    pub fn read(&self, id: usize, slot: usize) -> f64 {
        let mut shard = self.lock_shard(id);
        self.frame_mut(&mut shard, id).data[slot]
    }

    /// Overwrites one coefficient of block `id`.
    pub fn write(&self, id: usize, slot: usize, value: f64) {
        let mut shard = self.lock_shard(id);
        let frame = self.frame_mut(&mut shard, id);
        frame.data[slot] = value;
        frame.dirty = true;
    }

    /// Adds `delta` to one coefficient of block `id`.
    pub fn add(&self, id: usize, slot: usize, delta: f64) {
        let mut shard = self.lock_shard(id);
        let frame = self.frame_mut(&mut shard, id);
        frame.data[slot] += delta;
        frame.dirty = true;
    }

    /// Runs `f` over the whole cached block `id` under a single shard
    /// lock (marking it dirty when `mutate` is true). This is how the
    /// parallel drivers apply a chunk's per-tile delta batches: one lock
    /// acquisition per tile, not per coefficient.
    pub fn with_block<R>(&self, id: usize, mutate: bool, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let mut shard = self.lock_shard(id);
        let frame = self.frame_mut(&mut shard, id);
        if mutate {
            frame.dirty = true;
        }
        f(&mut frame.data)
    }

    /// Writes every dirty block back to the store, keeping the cache warm.
    pub fn flush(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let mut ids: Vec<usize> = shard
                .frames
                .iter()
                .filter(|(_, fr)| fr.dirty)
                .map(|(&id, _)| id)
                .collect();
            ids.sort_unstable();
            if ids.is_empty() {
                continue;
            }
            let mut store = self.lock_store();
            for id in ids {
                let frame = shard.frames.get_mut(&id).expect("dirty frame");
                store.write_block(id, &frame.data);
                frame.dirty = false;
                shard.counters.writebacks += 1;
                self.stats.add_pool_writebacks(1);
            }
        }
    }

    /// Flushes and drops every cached block.
    pub fn clear(&self) {
        self.flush();
        for shard in &self.shards {
            shard.lock().unwrap().frames.clear();
        }
    }

    /// Flushes and returns the wrapped store.
    pub fn into_store(self) -> S {
        self.flush();
        self.store.into_inner().unwrap()
    }

    /// Locates (loading on miss, evicting as needed) the frame for `id`
    /// within its already-locked shard. Lock order: the caller holds the
    /// shard lock; the store lock is taken strictly inside it.
    fn frame_mut<'a>(&self, shard: &'a mut Shard, id: usize) -> &'a mut Frame {
        shard.clock += 1;
        let clock = shard.clock;
        if shard.frames.contains_key(&id) {
            shard.counters.hits += 1;
            self.stats.add_pool_hits(1);
            let frame = shard.frames.get_mut(&id).expect("frame just found");
            frame.last_used = clock;
            return frame;
        }
        shard.counters.misses += 1;
        self.stats.add_pool_misses(1);
        if shard.frames.len() >= self.shard_budget {
            let victim = shard
                .frames
                .iter()
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(&vid, _)| vid)
                .expect("evict on empty shard");
            let frame = shard.frames.remove(&victim).expect("victim exists");
            shard.counters.evictions += 1;
            self.stats.add_pool_evictions(1);
            if frame.dirty {
                self.lock_store().write_block(victim, &frame.data);
                shard.counters.writebacks += 1;
                self.stats.add_pool_writebacks(1);
            }
        }
        let mut data = vec![0.0; self.block_capacity];
        // Miss read: under the read half of the store lock when the store
        // can read through a shared reference (misses on other shards then
        // overlap their device wait), under the write half otherwise.
        let shared = {
            let t0 = Instant::now();
            let guard = self.store.read().unwrap();
            self.store_wait_ns.record(t0.elapsed().as_nanos() as u64);
            guard.try_read_block_shared(id, &mut data)
        };
        match shared {
            Some(Ok(())) => {}
            Some(Err(e)) => std::panic::panic_any(e),
            None => self.lock_store().read_block(id, &mut data),
        }
        shard.frames.insert(
            id,
            Frame {
                data,
                dirty: false,
                last_used: clock,
            },
        );
        shard.frames.get_mut(&id).expect("frame just inserted")
    }
}

/// Wavelet coefficients mapped onto a [`ShardedBufferPool`] through a
/// [`TilingMap`] — the `&self` counterpart of
/// [`CoeffStore`](crate::CoeffStore), shared by reference across the
/// worker threads of the parallel transform drivers.
pub struct SharedCoeffStore<M: TilingMap, S: BlockStore> {
    map: M,
    pool: ShardedBufferPool<S>,
    stats: IoStats,
}

impl<M: TilingMap, S: BlockStore> SharedCoeffStore<M, S> {
    /// Builds a shared store over `store` with layout `map`, a total cache
    /// budget of `pool_budget` blocks split over `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when the block store's capacity differs from the map's, or
    /// when the store has fewer blocks than the map needs.
    pub fn new(map: M, store: S, pool_budget: usize, num_shards: usize, stats: IoStats) -> Self {
        assert_eq!(
            store.block_capacity(),
            map.block_capacity(),
            "block capacity mismatch between store and tiling map"
        );
        assert!(
            store.num_blocks() >= map.num_tiles(),
            "store has {} blocks, map needs {}",
            store.num_blocks(),
            map.num_tiles()
        );
        SharedCoeffStore {
            map,
            pool: ShardedBufferPool::new(store, pool_budget, num_shards, stats.clone()),
            stats,
        }
    }

    /// The tiling map.
    pub fn map(&self) -> &M {
        &self.map
    }

    /// The shared counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Reads the coefficient at tuple index `idx`.
    pub fn read(&self, idx: &[usize]) -> f64 {
        let loc = self.map.locate(idx);
        self.stats.add_coeff_reads(1);
        self.pool.read(loc.tile, loc.slot)
    }

    /// Overwrites the coefficient at `idx`.
    pub fn write(&self, idx: &[usize], value: f64) {
        let loc = self.map.locate(idx);
        self.stats.add_coeff_writes(1);
        self.pool.write(loc.tile, loc.slot, value);
    }

    /// Adds `delta` to the coefficient at `idx`.
    pub fn add(&self, idx: &[usize], delta: f64) {
        let loc = self.map.locate(idx);
        self.stats.add_coeff_writes(1);
        self.pool.add(loc.tile, loc.slot, delta);
    }

    /// Adds a batch of `(slot, delta)` updates to one tile under a single
    /// shard lock. The parallel drivers group each chunk's deltas by tile
    /// and apply them through this.
    pub fn apply_tile(&self, tile: usize, updates: &[(usize, f64)]) {
        if updates.is_empty() {
            return;
        }
        self.stats.add_coeff_writes(updates.len() as u64);
        self.pool.with_block(tile, true, |blk| {
            for &(slot, delta) in updates {
                blk[slot] += delta;
            }
        });
    }

    /// Applies a `(tile, slot, delta)` batch: sorted by tile so each
    /// affected tile is locked (and, on a miss, loaded) at most once per
    /// batch — the per-chunk access discipline of the serial drivers,
    /// preserved under concurrency. Clears `deltas`.
    pub fn apply_batch(&self, deltas: &mut Vec<(usize, usize, f64)>) {
        deltas.sort_unstable_by_key(|&(tile, slot, _)| (tile, slot));
        let mut i = 0;
        while i < deltas.len() {
            let tile = deltas[i].0;
            let mut j = i;
            while j < deltas.len() && deltas[j].0 == tile {
                j += 1;
            }
            self.stats.add_coeff_writes((j - i) as u64);
            self.pool.with_block(tile, true, |blk| {
                for &(_, slot, delta) in &deltas[i..j] {
                    blk[slot] += delta;
                }
            });
            i = j;
        }
        deltas.clear();
    }

    /// Writes every dirty cached block back.
    pub fn flush(&self) {
        self.pool.flush();
    }

    /// Direct access to the underlying sharded pool.
    pub fn pool(&self) -> &ShardedBufferPool<S> {
        &self.pool
    }

    /// Decomposes into map and (flushed) store.
    pub fn into_parts(self) -> (M, S) {
        let SharedCoeffStore { map, pool, .. } = self;
        (map, pool.into_store())
    }
}

/// Convenience: an in-memory shared tiled store sized for `map`.
pub fn mem_shared_store<M: TilingMap>(
    map: M,
    pool_budget: usize,
    num_shards: usize,
    stats: IoStats,
) -> SharedCoeffStore<M, crate::mem::MemBlockStore> {
    let store =
        crate::mem::MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
    SharedCoeffStore::new(map, store, pool_budget, num_shards, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBlockStore;
    use ss_core::Tiling1d;

    fn pool(
        blocks: usize,
        budget: usize,
        shards: usize,
    ) -> (ShardedBufferPool<MemBlockStore>, IoStats) {
        let stats = IoStats::new();
        let store = MemBlockStore::new(4, blocks, stats.clone());
        (
            ShardedBufferPool::new(store, budget, shards, stats.clone()),
            stats,
        )
    }

    #[test]
    fn read_write_roundtrip_through_shards() {
        let (p, _) = pool(16, 8, 4);
        for id in 0..16 {
            p.write(id, id % 4, id as f64 + 0.5);
        }
        for id in 0..16 {
            assert_eq!(p.read(id, id % 4), id as f64 + 0.5);
        }
    }

    #[test]
    fn values_survive_eviction_pressure() {
        // Budget of 1 frame per shard forces constant eviction traffic.
        let (p, _) = pool(16, 4, 4);
        for id in 0..16 {
            p.add(id, 0, id as f64);
            p.add(id, 0, 1.0);
        }
        let mut store = p.into_store();
        let mut buf = vec![0.0; 4];
        for id in 0..16 {
            store.read_block(id, &mut buf);
            assert_eq!(buf[0], id as f64 + 1.0);
        }
    }

    #[test]
    fn shard_counters_reconcile_with_global_stats() {
        let (p, stats) = pool(16, 4, 4);
        for id in 0..16 {
            p.write(id, 0, 1.0); // 16 misses, evictions past each shard's 1-frame budget
        }
        for id in 0..4 {
            p.read(id + 12, 0); // 4 hits (last resident per shard)
        }
        p.flush();
        let per_shard = p.shard_counters();
        let snap = stats.snapshot();
        assert_eq!(
            per_shard.iter().map(|c| c.hits).sum::<u64>(),
            snap.pool_hits
        );
        assert_eq!(
            per_shard.iter().map(|c| c.misses).sum::<u64>(),
            snap.pool_misses
        );
        assert_eq!(
            per_shard.iter().map(|c| c.evictions).sum::<u64>(),
            snap.pool_evictions
        );
        assert_eq!(
            per_shard.iter().map(|c| c.writebacks).sum::<u64>(),
            snap.pool_writebacks
        );
        // All 16 dirty frames reached the store exactly once each.
        assert_eq!(snap.block_writes, 16);
        assert_eq!(snap.pool_writebacks, 16);
    }

    #[test]
    fn concurrent_adds_accumulate_exactly() {
        use std::sync::Arc;
        let (p, _) = pool(8, 4, 4);
        let p = Arc::new(p);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    for round in 0..100 {
                        for id in 0..8 {
                            p.add(id, round % 4, 1.0);
                        }
                    }
                });
            }
        });
        let p = Arc::try_unwrap(p).ok().expect("threads joined");
        let mut store = p.into_store();
        let mut buf = vec![0.0; 4];
        for id in 0..8 {
            store.read_block(id, &mut buf);
            assert_eq!(buf.iter().sum::<f64>(), 400.0, "block {id}");
        }
    }

    #[test]
    fn shared_store_matches_serial_store() {
        let stats = IoStats::new();
        let shared = mem_shared_store(Tiling1d::new(4, 2), 8, 4, stats);
        let serial_stats = IoStats::new();
        let mut serial = crate::wstore::mem_store(Tiling1d::new(4, 2), 8, serial_stats);
        for i in 0..16usize {
            shared.write(&[i], (i * 3) as f64);
            serial.write(&[i], (i * 3) as f64);
        }
        shared.apply_tile(0, &[(0, 1.25), (1, -0.5)]);
        serial.pool().with_block(0, true, |blk| {
            blk[0] += 1.25;
            blk[1] += -0.5;
        });
        for i in 0..16usize {
            assert_eq!(shared.read(&[i]), serial.read(&[i]), "index {i}");
        }
    }
}
