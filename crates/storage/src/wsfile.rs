//! Persistent wavelet-store files.
//!
//! A store is a pair of files: `<name>` holds the tiled coefficient blocks
//! (via [`FileBlockStore`]), `<name>.meta` a small `key = value` text header
//! describing the geometry, so a store can be reopened across process runs:
//!
//! ```text
//! format  = shiftsplit-ws
//! version = 1
//! levels  = 3,3,5        # per-axis log2 domain sizes
//! tiles   = 2,2,2        # per-axis log2 tile sides
//! filled  = 96           # cells filled along the append axis
//! axis    = 2            # append axis
//! ```

use crate::{CoeffStore, FileBlockStore, IoStats};
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Geometry and bookkeeping persisted in the `.meta` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Meta {
    /// Per-axis `log2` domain sizes.
    pub levels: Vec<u32>,
    /// Per-axis `log2` tile sides.
    pub tiles: Vec<u32>,
    /// Cells filled along the append axis.
    pub filled: usize,
    /// The append axis.
    pub axis: usize,
}

impl Meta {
    /// Serialises to the textual header format.
    pub fn to_text(&self) -> String {
        let join = |v: &[u32]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut s = String::new();
        let _ = writeln!(s, "format  = shiftsplit-ws");
        let _ = writeln!(s, "version = 1");
        let _ = writeln!(s, "levels  = {}", join(&self.levels));
        let _ = writeln!(s, "tiles   = {}", join(&self.tiles));
        let _ = writeln!(s, "filled  = {}", self.filled);
        let _ = writeln!(s, "axis    = {}", self.axis);
        s
    }

    /// Parses the textual header format.
    pub fn from_text(text: &str) -> Result<Meta, String> {
        let mut levels = None;
        let mut tiles = None;
        let mut filled = None;
        let mut axis = None;
        let mut format_ok = false;
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed meta line: {line}"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "format" => format_ok = value == "shiftsplit-ws",
                "version" => {
                    if value != "1" {
                        return Err(format!("unsupported version {value}"));
                    }
                }
                "levels" => levels = Some(parse_u32_list(value)?),
                "tiles" => tiles = Some(parse_u32_list(value)?),
                "filled" => filled = Some(value.parse::<usize>().map_err(|e| e.to_string())?),
                "axis" => axis = Some(value.parse::<usize>().map_err(|e| e.to_string())?),
                other => return Err(format!("unknown meta key: {other}")),
            }
        }
        if !format_ok {
            return Err("not a shiftsplit-ws meta file".into());
        }
        let levels = levels.ok_or("missing levels")?;
        let tiles = tiles.ok_or("missing tiles")?;
        if levels.len() != tiles.len() {
            return Err("levels/tiles rank mismatch".into());
        }
        Ok(Meta {
            levels,
            tiles,
            filled: filled.ok_or("missing filled")?,
            axis: axis.ok_or("missing axis")?,
        })
    }

    /// Per-axis domain sizes.
    pub fn dims(&self) -> Vec<usize> {
        self.levels.iter().map(|&n| 1usize << n).collect()
    }

    /// The tiling map this geometry implies.
    pub fn tiling(&self) -> StandardTiling {
        StandardTiling::new(&self.levels, &self.tiles)
    }
}

fn parse_u32_list(s: &str) -> Result<Vec<u32>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<u32>().map_err(|e| e.to_string()))
        .collect()
}

fn meta_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".meta");
    PathBuf::from(p)
}

/// An opened persistent store.
pub struct WsFile {
    /// Store geometry.
    pub meta: Meta,
    /// The tiled coefficient store over the blocks file.
    pub store: CoeffStore<StandardTiling, FileBlockStore>,
    /// Shared I/O counters (also threaded through `store`).
    pub stats: IoStats,
    path: PathBuf,
}

impl WsFile {
    /// Creates a fresh, zeroed store (truncates existing files).
    pub fn create(path: &Path, meta: Meta) -> Result<WsFile, String> {
        let map = meta.tiling();
        let stats = IoStats::new();
        let blocks =
            FileBlockStore::create(path, map.block_capacity(), map.num_tiles(), stats.clone())
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        std::fs::write(meta_path(path), meta.to_text())
            .map_err(|e| format!("cannot write meta: {e}"))?;
        Ok(WsFile {
            store: CoeffStore::new(map, blocks, 1 << 10, stats.clone()),
            meta,
            stats,
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing store.
    pub fn open(path: &Path) -> Result<WsFile, String> {
        let text = std::fs::read_to_string(meta_path(path))
            .map_err(|e| format!("cannot read {}.meta: {e}", path.display()))?;
        let meta = Meta::from_text(&text)?;
        let map = meta.tiling();
        let stats = IoStats::new();
        let blocks =
            FileBlockStore::open(path, map.block_capacity(), map.num_tiles(), stats.clone())
                .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        Ok(WsFile {
            store: CoeffStore::new(map, blocks, 1 << 10, stats.clone()),
            meta,
            stats,
            path: path.to_path_buf(),
        })
    }

    /// Assembles a `WsFile` from already-opened parts (used by the CLI when
    /// it needs the block store bound to a caller-provided `IoStats`).
    pub fn from_parts(
        meta: Meta,
        map: StandardTiling,
        blocks: FileBlockStore,
        stats: IoStats,
        path: &Path,
    ) -> WsFile {
        WsFile {
            store: CoeffStore::new(map, blocks, 1 << 10, stats.clone()),
            meta,
            stats,
            path: path.to_path_buf(),
        }
    }

    /// Persists updated metadata (after appends/expansions).
    pub fn save_meta(&self) -> Result<(), String> {
        std::fs::write(meta_path(&self.path), self.meta.to_text())
            .map_err(|e| format!("cannot write meta: {e}"))
    }

    /// The blocks-file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ss_wsfile_{name}_{}", std::process::id()))
    }

    #[test]
    fn meta_roundtrip() {
        let m = Meta {
            levels: vec![3, 3, 5],
            tiles: vec![2, 2, 2],
            filled: 96,
            axis: 2,
        };
        let parsed = Meta::from_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(Meta::from_text("hello").is_err());
        assert!(
            Meta::from_text("format = other\nlevels = 1\ntiles = 1\nfilled = 0\naxis = 0").is_err()
        );
        assert!(Meta::from_text("format = shiftsplit-ws\nversion = 9").is_err());
    }

    #[test]
    fn corrupt_meta_header_is_rejected_on_open() {
        // A store whose .meta was damaged after creation (truncated write,
        // editor mangling, bit rot) must fail to open with a parse error
        // rather than reinterpreting the blocks file under bogus geometry.
        let path = tmp("corrupt_header");
        let meta = Meta {
            levels: vec![3, 3],
            tiles: vec![1, 1],
            filled: 0,
            axis: 1,
        };
        {
            let mut ws = WsFile::create(&path, meta).unwrap();
            ws.store.write(&[1, 2], 5.0);
            ws.store.flush();
        }
        for bad in [
            "format  = shiftsplit-ws\nversion = 1\nlevels  = 3,3",       // missing keys
            "format  = shiftsplit-ws\nversion = 1\nlevels  = 3,x\ntiles   = 1,1\nfilled  = 0\naxis    = 1", // non-numeric
            "format  = shiftsplit-ws\nversion = 1\nlevels  = 3,3\ntiles   = 1\nfilled  = 0\naxis    = 1",   // rank mismatch
            "",                                                           // emptied file
        ] {
            std::fs::write(meta_path(&path), bad).unwrap();
            assert!(WsFile::open(&path).is_err(), "accepted header: {bad:?}");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(meta_path(&path)).ok();
    }

    #[test]
    fn truncated_blocks_file_is_rejected_on_open() {
        // Simulates a crash mid-resize: the meta promises more blocks than
        // the file holds. Open must fail loudly instead of serving zeros.
        let path = tmp("truncated");
        let meta = Meta {
            levels: vec![3, 3],
            tiles: vec![1, 1],
            filled: 0,
            axis: 1,
        };
        {
            let mut ws = WsFile::create(&path, meta).unwrap();
            ws.store.write(&[1, 1], 3.0);
            ws.store.flush();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len / 2)
            .unwrap();
        let err = match WsFile::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("open must fail on a truncated store"),
        };
        assert!(err.contains("bytes"), "unexpected error: {err}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(meta_path(&path)).ok();
    }

    #[test]
    fn missing_meta_is_rejected() {
        let path = tmp("nometa");
        std::fs::write(&path, vec![0u8; 64]).unwrap();
        assert!(WsFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_write_reopen_read() {
        let path = tmp("roundtrip");
        let meta = Meta {
            levels: vec![3, 3],
            tiles: vec![1, 1],
            filled: 8,
            axis: 1,
        };
        {
            let mut ws = WsFile::create(&path, meta.clone()).unwrap();
            ws.store.write(&[2, 5], 42.5);
            ws.store.flush();
        }
        {
            let mut ws = WsFile::open(&path).unwrap();
            assert_eq!(ws.meta, meta);
            assert_eq!(ws.store.read(&[2, 5]), 42.5);
            assert_eq!(ws.store.read(&[0, 0]), 0.0);
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(meta_path(&path)).ok();
    }
}
