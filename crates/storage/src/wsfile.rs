//! Persistent wavelet-store files.
//!
//! A store is a trio of files: `<name>` holds the tiled coefficient blocks
//! (via [`FileBlockStore`]), `<name>.crc` one CRC-32 per block (format v2;
//! see `docs/FORMAT.md` for the normative spec), and `<name>.meta` a small
//! `key = value` text header describing the geometry, so a store can be
//! reopened across process runs:
//!
//! ```text
//! format  = shiftsplit-ws
//! version = 2
//! levels  = 3,3,5        # per-axis log2 domain sizes
//! tiles   = 2,2,2        # per-axis log2 tile sides
//! filled  = 96           # cells filled along the append axis
//! axis    = 2            # append axis
//! ```
//!
//! Version history: v1 had no checksum sidecar. v1 stores still open —
//! read-only — through [`WsFile::open`]; every newly created store is v2
//! unless the sparse v3 layout is requested ([`WsFile::create_v3`],
//! `docs/FORMAT.md` §8), in which case the blocks file is a bucket-
//! bitmap-compressed heap and `version = 3`. Metadata updates are
//! crash-safe: [`WsFile::save_meta`] writes a temp file, fsyncs it, and
//! atomically renames it over the old header, so a crash at any instant
//! leaves either the old meta or the new one intact, never a torn
//! mixture.

use crate::error::{ScrubReport, StorageError};
use crate::file::sidecar_path;
use crate::{BlockStore, CoeffStore, FileBlockStore, IoStats};
use ss_core::sparse::{RetentionPolicy, RetentionReport};
use ss_core::tiling::StandardTiling;
use ss_core::TilingMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The `.ws` format version this build writes by default (dense,
/// checksummed). The sparse layout is opt-in; see [`V3_FORMAT_VERSION`].
pub const FORMAT_VERSION: u32 = 2;

/// The opt-in sparse bucketed format version (`docs/FORMAT.md` §8),
/// written by [`WsFile::create_v3`] / `shiftsplit ingest --format v3`.
pub const V3_FORMAT_VERSION: u32 = 3;

/// Geometry and bookkeeping persisted in the `.meta` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Meta {
    /// On-disk format version (1 = legacy, no checksums; 2 = current
    /// dense default; 3 = sparse bucketed).
    pub version: u32,
    /// Per-axis `log2` domain sizes.
    pub levels: Vec<u32>,
    /// Per-axis `log2` tile sides.
    pub tiles: Vec<u32>,
    /// Cells filled along the append axis.
    pub filled: usize,
    /// The append axis.
    pub axis: usize,
}

impl Meta {
    /// A current-version ([`FORMAT_VERSION`]) meta with the given geometry.
    pub fn new(levels: Vec<u32>, tiles: Vec<u32>, filled: usize, axis: usize) -> Meta {
        Meta {
            version: FORMAT_VERSION,
            levels,
            tiles,
            filled,
            axis,
        }
    }

    /// Serialises to the textual header format.
    pub fn to_text(&self) -> String {
        let join = |v: &[u32]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut s = String::new();
        let _ = writeln!(s, "format  = shiftsplit-ws");
        let _ = writeln!(s, "version = {}", self.version);
        let _ = writeln!(s, "levels  = {}", join(&self.levels));
        let _ = writeln!(s, "tiles   = {}", join(&self.tiles));
        let _ = writeln!(s, "filled  = {}", self.filled);
        let _ = writeln!(s, "axis    = {}", self.axis);
        s
    }

    /// Parses the textual header format. Accepts versions 1 through
    /// [`V3_FORMAT_VERSION`]; a missing `version` line means 1 (the line
    /// was optional before it existed).
    pub fn from_text(text: &str) -> Result<Meta, StorageError> {
        let bad = |msg: String| StorageError::Meta(msg);
        let mut version = 1u32;
        let mut levels = None;
        let mut tiles = None;
        let mut filled = None;
        let mut axis = None;
        let mut format_ok = false;
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("malformed meta line: {line}")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "format" => format_ok = value == "shiftsplit-ws",
                "version" => {
                    version = value
                        .parse::<u32>()
                        .map_err(|e| bad(format!("bad version: {e}")))?;
                    if version == 0 || version > V3_FORMAT_VERSION {
                        return Err(StorageError::UnsupportedVersion(version));
                    }
                }
                "levels" => levels = Some(parse_u32_list(value)?),
                "tiles" => tiles = Some(parse_u32_list(value)?),
                "filled" => {
                    filled = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| bad(format!("bad filled: {e}")))?,
                    )
                }
                "axis" => {
                    axis = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| bad(format!("bad axis: {e}")))?,
                    )
                }
                other => return Err(bad(format!("unknown meta key: {other}"))),
            }
        }
        if !format_ok {
            return Err(bad("not a shiftsplit-ws meta file".into()));
        }
        let levels = levels.ok_or_else(|| bad("missing levels".into()))?;
        let tiles = tiles.ok_or_else(|| bad("missing tiles".into()))?;
        if levels.len() != tiles.len() {
            return Err(bad("levels/tiles rank mismatch".into()));
        }
        Ok(Meta {
            version,
            levels,
            tiles,
            filled: filled.ok_or_else(|| bad("missing filled".into()))?,
            axis: axis.ok_or_else(|| bad("missing axis".into()))?,
        })
    }

    /// Per-axis domain sizes.
    pub fn dims(&self) -> Vec<usize> {
        self.levels.iter().map(|&n| 1usize << n).collect()
    }

    /// The tiling map this geometry implies.
    pub fn tiling(&self) -> StandardTiling {
        StandardTiling::new(&self.levels, &self.tiles)
    }
}

fn parse_u32_list(s: &str) -> Result<Vec<u32>, StorageError> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<u32>()
                .map_err(|e| StorageError::Meta(format!("bad number {p:?}: {e}")))
        })
        .collect()
}

fn meta_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".meta");
    PathBuf::from(p)
}

/// Writes `text` to `path` crash-safely: temp file → fsync → atomic
/// rename. A crash at any instant leaves either the previous file or the
/// complete new one.
fn atomic_write(path: &Path, text: &str) -> Result<(), StorageError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| StorageError::io(format!("create {}", tmp.display()), e))?;
    f.write_all(text.as_bytes())
        .map_err(|e| StorageError::io("write temp meta", e))?;
    f.sync_all()
        .map_err(|e| StorageError::io("fsync temp meta", e))?;
    drop(f);
    std::fs::rename(&tmp, path)
        .map_err(|e| StorageError::io(format!("rename over {}", path.display()), e))
}

/// An opened persistent store.
pub struct WsFile {
    /// Store geometry.
    pub meta: Meta,
    /// The tiled coefficient store over the blocks file.
    pub store: CoeffStore<StandardTiling, FileBlockStore>,
    /// Shared I/O counters (also threaded through `store`).
    pub stats: IoStats,
    path: PathBuf,
}

impl WsFile {
    /// Creates a fresh, zeroed store (truncates existing files). The
    /// store is always written at the current [`FORMAT_VERSION`],
    /// whatever `meta.version` says.
    pub fn create(path: &Path, mut meta: Meta) -> Result<WsFile, StorageError> {
        meta.version = FORMAT_VERSION;
        let map = meta.tiling();
        let stats = IoStats::new();
        let blocks =
            FileBlockStore::create(path, map.block_capacity(), map.num_tiles(), stats.clone())?;
        atomic_write(&meta_path(path), &meta.to_text())?;
        Ok(WsFile {
            store: CoeffStore::new(map, blocks, 1 << 10, stats.clone()),
            meta,
            stats,
            path: path.to_path_buf(),
        })
    }

    /// Creates a fresh, zeroed **sparse v3** store (truncates existing
    /// files): bucket-bitmap-compressed blocks file plus payload-CRC
    /// sidecar, `version = 3` in the meta (`docs/FORMAT.md` §8).
    pub fn create_v3(path: &Path, mut meta: Meta) -> Result<WsFile, StorageError> {
        meta.version = V3_FORMAT_VERSION;
        let map = meta.tiling();
        let stats = IoStats::new();
        let blocks =
            FileBlockStore::create_v3(path, map.block_capacity(), map.num_tiles(), stats.clone())?;
        atomic_write(&meta_path(path), &meta.to_text())?;
        Ok(WsFile {
            store: CoeffStore::new(map, blocks, 1 << 10, stats.clone()),
            meta,
            stats,
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing store. Current (v2) and sparse (v3) stores open
    /// read-write with CRC-verified reads; legacy v1 stores open
    /// **read-only** without checksums. The meta `version` line
    /// dispatches the blocks-file layout.
    pub fn open(path: &Path) -> Result<WsFile, StorageError> {
        let mp = meta_path(path);
        let text = std::fs::read_to_string(&mp)
            .map_err(|e| StorageError::io(format!("read {}", mp.display()), e))?;
        let meta = Meta::from_text(&text)?;
        let map = meta.tiling();
        let stats = IoStats::new();
        let blocks = match meta.version {
            V3_FORMAT_VERSION => {
                FileBlockStore::open_v3(path, map.block_capacity(), map.num_tiles(), stats.clone())?
            }
            2 => FileBlockStore::open(path, map.block_capacity(), map.num_tiles(), stats.clone())?,
            _ => {
                FileBlockStore::open_v1(path, map.block_capacity(), map.num_tiles(), stats.clone())?
            }
        };
        Ok(WsFile {
            store: CoeffStore::new(map, blocks, 1 << 10, stats.clone()),
            meta,
            stats,
            path: path.to_path_buf(),
        })
    }

    /// Assembles a `WsFile` from already-opened parts (used by the CLI when
    /// it needs the block store bound to a caller-provided `IoStats`).
    pub fn from_parts(
        meta: Meta,
        map: StandardTiling,
        blocks: FileBlockStore,
        stats: IoStats,
        path: &Path,
    ) -> WsFile {
        WsFile {
            store: CoeffStore::new(map, blocks, 1 << 10, stats.clone()),
            meta,
            stats,
            path: path.to_path_buf(),
        }
    }

    /// Persists updated metadata (after appends/expansions) crash-safely:
    /// temp file → fsync → atomic rename.
    pub fn save_meta(&self) -> Result<(), StorageError> {
        if self.read_only() {
            return Err(StorageError::ReadOnly);
        }
        atomic_write(&meta_path(&self.path), &self.meta.to_text())
    }

    /// Whether this store rejects writes (legacy v1 files always do).
    pub fn read_only(&self) -> bool {
        self.meta.version < 2
    }

    /// Flushes dirty cached blocks, then scrubs the whole blocks file
    /// against the checksum sidecar — the library face of
    /// `shiftsplit scrub`. On a v1 store only geometry and readability
    /// are checked (`report.checksummed == false`).
    pub fn verify(&mut self) -> Result<ScrubReport, StorageError> {
        if !self.read_only() {
            self.store.flush();
        }
        self.store.pool().store_mut().scrub()
    }

    /// Flushes dirty cached blocks and fsyncs the blocks file and
    /// checksum sidecar to stable storage.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.store.flush();
        self.store.pool().store_mut().sync()
    }

    /// The blocks-file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the blocks file uses the sparse v3 layout.
    pub fn sparse(&self) -> bool {
        self.meta.version == V3_FORMAT_VERSION
    }
}

/// What [`convert_to_v3`] did: the retention outcome plus the on-disk
/// byte counts before and after.
#[derive(Clone, Copy, Debug, Default)]
pub struct V3ConvertReport {
    /// Coefficients kept/dropped and the error introduced by the
    /// retention policy (all zeros for [`RetentionPolicy::Keep`] /
    /// `Threshold(0)`).
    pub retention: RetentionReport,
    /// Blocks-file bytes of the dense source (`capacity × blocks × 8`).
    pub dense_bytes: u64,
    /// Blocks-file bytes of the sparse result (header + directory +
    /// heap).
    pub sparse_bytes: u64,
}

/// Rewrites the dense store at `path` into a sparse v3 store **in
/// place**, applying `policy` to every tile on the way through
/// (`shiftsplit ingest --format v3` runs this after a normal dense
/// ingest).
///
/// Crash safety follows the §5.4 rename discipline: the v3 blocks file
/// and sidecar are fully written and fsynced at temp paths, then renamed
/// over the originals (blocks first, sidecar second), and the meta is
/// rewritten (`version = 3`) atomically last. A crash mid-sequence
/// leaves either the old dense store intact or a mixture the next
/// `open` rejects with a typed geometry/checksum error — never a
/// silently wrong store.
pub fn convert_to_v3(
    path: &Path,
    policy: RetentionPolicy,
) -> Result<V3ConvertReport, StorageError> {
    let mp = meta_path(path);
    let text = std::fs::read_to_string(&mp)
        .map_err(|e| StorageError::io(format!("read {}", mp.display()), e))?;
    let mut meta = Meta::from_text(&text)?;
    if meta.version == V3_FORMAT_VERSION {
        return Err(StorageError::Meta(format!(
            "{} is already a sparse v3 store",
            path.display()
        )));
    }
    let map = meta.tiling();
    let (capacity, blocks) = (map.block_capacity(), map.num_tiles());
    let stats = IoStats::new();
    let mut src = if meta.version >= 2 {
        FileBlockStore::open(path, capacity, blocks, stats.clone())?
    } else {
        FileBlockStore::open_v1(path, capacity, blocks, stats.clone())?
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".v3tmp");
    let tmp = PathBuf::from(tmp);
    let mut dst = FileBlockStore::create_v3(&tmp, capacity, blocks, stats)?;
    let mut report = V3ConvertReport {
        dense_bytes: (capacity * blocks * 8) as u64,
        ..Default::default()
    };
    let mut buf = vec![0.0; capacity];
    for id in 0..blocks {
        src.try_read_block(id, &mut buf)?;
        report.retention.merge(&policy.apply(&mut buf));
        dst.try_write_block(id, &buf)?;
    }
    dst.sync()?;
    report.sparse_bytes = dst.disk_bytes()?;
    drop(dst);
    drop(src);
    std::fs::rename(&tmp, path)
        .map_err(|e| StorageError::io(format!("rename v3 blocks over {}", path.display()), e))?;
    std::fs::rename(sidecar_path(&tmp), sidecar_path(path))
        .map_err(|e| StorageError::io("rename v3 sidecar", e))?;
    meta.version = V3_FORMAT_VERSION;
    atomic_write(&mp, &meta.to_text())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ss_wsfile_{name}_{}", std::process::id()))
    }

    fn cleanup(path: &Path) {
        for ext in ["", ".meta", ".crc", ".meta.tmp"] {
            let mut p = path.as_os_str().to_owned();
            p.push(ext);
            let _ = std::fs::remove_file(PathBuf::from(p));
        }
    }

    #[test]
    fn meta_roundtrip() {
        let m = Meta::new(vec![3, 3, 5], vec![2, 2, 2], 96, 2);
        assert_eq!(m.version, FORMAT_VERSION);
        let parsed = Meta::from_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn meta_version_compat() {
        // No version line → v1 (the line predates the field).
        let v1 =
            Meta::from_text("format = shiftsplit-ws\nlevels = 2\ntiles = 1\nfilled = 0\naxis = 0")
                .unwrap();
        assert_eq!(v1.version, 1);
        // Explicit v1 parses; future versions are refused with a typed error.
        assert_eq!(
            Meta::from_text(
                "format = shiftsplit-ws\nversion = 1\nlevels = 2\ntiles = 1\nfilled = 0\naxis = 0"
            )
            .unwrap()
            .version,
            1
        );
        assert!(matches!(
            Meta::from_text("format = shiftsplit-ws\nversion = 9"),
            Err(StorageError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(Meta::from_text("hello").is_err());
        assert!(
            Meta::from_text("format = other\nlevels = 1\ntiles = 1\nfilled = 0\naxis = 0").is_err()
        );
        assert!(Meta::from_text("format = shiftsplit-ws\nversion = 9").is_err());
    }

    #[test]
    fn corrupt_meta_header_is_rejected_on_open() {
        // A store whose .meta was damaged after creation (truncated write,
        // editor mangling, bit rot) must fail to open with a parse error
        // rather than reinterpreting the blocks file under bogus geometry.
        let path = tmp("corrupt_header");
        let meta = Meta::new(vec![3, 3], vec![1, 1], 0, 1);
        {
            let mut ws = WsFile::create(&path, meta).unwrap();
            ws.store.write(&[1, 2], 5.0);
            ws.store.flush();
        }
        for bad in [
            "format  = shiftsplit-ws\nversion = 2\nlevels  = 3,3",       // missing keys
            "format  = shiftsplit-ws\nversion = 2\nlevels  = 3,x\ntiles   = 1,1\nfilled  = 0\naxis    = 1", // non-numeric
            "format  = shiftsplit-ws\nversion = 2\nlevels  = 3,3\ntiles   = 1\nfilled  = 0\naxis    = 1",   // rank mismatch
            "",                                                           // emptied file
        ] {
            std::fs::write(meta_path(&path), bad).unwrap();
            assert!(WsFile::open(&path).is_err(), "accepted header: {bad:?}");
        }
        cleanup(&path);
    }

    #[test]
    fn truncated_blocks_file_is_rejected_on_open() {
        // Simulates a crash mid-resize: the meta promises more blocks than
        // the file holds. Open must fail loudly instead of serving zeros.
        let path = tmp("truncated");
        let meta = Meta::new(vec![3, 3], vec![1, 1], 0, 1);
        {
            let mut ws = WsFile::create(&path, meta).unwrap();
            ws.store.write(&[1, 1], 3.0);
            ws.store.flush();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len / 2)
            .unwrap();
        let err = match WsFile::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("open must fail on a truncated store"),
        };
        assert!(matches!(err, StorageError::Geometry { .. }), "{err}");
        cleanup(&path);
    }

    #[test]
    fn missing_meta_is_rejected() {
        let path = tmp("nometa");
        std::fs::write(&path, vec![0u8; 64]).unwrap();
        assert!(WsFile::open(&path).is_err());
        cleanup(&path);
    }

    #[test]
    fn create_write_reopen_read() {
        let path = tmp("roundtrip");
        let meta = Meta::new(vec![3, 3], vec![1, 1], 8, 1);
        {
            let mut ws = WsFile::create(&path, meta.clone()).unwrap();
            ws.store.write(&[2, 5], 42.5);
            ws.store.flush();
        }
        {
            let mut ws = WsFile::open(&path).unwrap();
            assert_eq!(ws.meta, meta);
            assert!(!ws.read_only());
            assert_eq!(ws.store.read(&[2, 5]), 42.5);
            assert_eq!(ws.store.read(&[0, 0]), 0.0);
        }
        cleanup(&path);
    }

    #[test]
    fn verify_clean_then_detects_bit_rot() {
        let path = tmp("verify");
        let meta = Meta::new(vec![2, 2], vec![1, 1], 4, 1);
        let mut ws = WsFile::create(&path, meta).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                ws.store.write(&[i, j], (i * 4 + j) as f64);
            }
        }
        let report = ws.verify().unwrap();
        assert!(report.is_clean() && report.checksummed);
        drop(ws);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut ws = WsFile::open(&path).unwrap();
        let report = ws.verify().unwrap();
        assert_eq!(report.corrupt.len(), 1, "{report}");
        cleanup(&path);
    }

    #[test]
    fn v1_store_opens_read_only() {
        // Handcraft a v1 store: raw blocks file + version-1 meta, no
        // sidecar — exactly what this repo wrote before format v2.
        let path = tmp("v1open");
        let meta = Meta {
            version: 1,
            levels: vec![2, 2],
            tiles: vec![1, 1],
            filled: 0,
            axis: 1,
        };
        let map = meta.tiling();
        std::fs::write(&path, vec![0u8; map.block_capacity() * map.num_tiles() * 8]).unwrap();
        std::fs::write(meta_path(&path), meta.to_text()).unwrap();
        let mut ws = WsFile::open(&path).unwrap();
        assert!(ws.read_only());
        assert_eq!(ws.store.read(&[1, 1]), 0.0, "reads work on v1");
        assert!(matches!(ws.save_meta(), Err(StorageError::ReadOnly)));
        let report = ws.verify().unwrap();
        assert!(!report.checksummed);
        cleanup(&path);
    }

    #[test]
    fn v3_create_write_reopen_read() {
        let path = tmp("v3roundtrip");
        let meta = Meta::new(vec![3, 3], vec![1, 1], 8, 1);
        {
            let mut ws = WsFile::create_v3(&path, meta.clone()).unwrap();
            assert!(ws.sparse());
            assert_eq!(ws.meta.version, V3_FORMAT_VERSION);
            ws.store.write(&[2, 5], 42.5);
            ws.store.flush();
        }
        {
            let mut ws = WsFile::open(&path).unwrap();
            assert!(ws.sparse() && !ws.read_only());
            assert_eq!(ws.store.read(&[2, 5]), 42.5);
            assert_eq!(ws.store.read(&[0, 0]), 0.0);
            assert!(ws.verify().unwrap().is_clean());
        }
        cleanup(&path);
    }

    #[test]
    fn convert_to_v3_lossless_is_bit_identical() {
        let path = tmp("v3convert");
        let meta = Meta::new(vec![3, 3], vec![1, 1], 8, 1);
        let mut dense_image = Vec::new();
        {
            let mut ws = WsFile::create(&path, meta).unwrap();
            ws.store.write(&[2, 5], 42.5);
            ws.store.write(&[7, 7], -1e-12);
            ws.store.flush();
            for i in 0..8 {
                for j in 0..8 {
                    dense_image.push(ws.store.read(&[i, j]));
                }
            }
        }
        let report = convert_to_v3(&path, RetentionPolicy::Threshold(0.0)).unwrap();
        assert_eq!(report.retention.dropped, 0);
        assert_eq!(report.retention.l2_error(), 0.0);
        assert!(report.sparse_bytes < report.dense_bytes);
        let mut ws = WsFile::open(&path).unwrap();
        assert!(ws.sparse());
        let mut k = 0;
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(ws.store.read(&[i, j]).to_bits(), dense_image[k].to_bits());
                k += 1;
            }
        }
        assert!(ws.verify().unwrap().is_clean());
        // A second conversion is refused.
        assert!(convert_to_v3(&path, RetentionPolicy::Keep).is_err());
        cleanup(&path);
    }

    #[test]
    fn convert_to_v3_lossy_reports_achieved_error() {
        let path = tmp("v3lossy");
        let meta = Meta::new(vec![2, 2], vec![1, 1], 4, 1);
        {
            let mut ws = WsFile::create(&path, meta).unwrap();
            ws.store.write(&[1, 1], 8.0);
            ws.store.write(&[3, 3], 0.25);
            ws.store.flush();
        }
        let report = convert_to_v3(&path, RetentionPolicy::Threshold(1.0)).unwrap();
        assert!(report.retention.dropped >= 1);
        assert!(report.retention.l2_error() > 0.0);
        assert!(report.retention.max_dropped <= 1.0, "threshold respected");
        let mut ws = WsFile::open(&path).unwrap();
        assert!(ws.verify().unwrap().is_clean());
        cleanup(&path);
    }

    #[test]
    fn save_meta_is_atomic_against_stray_temp_files() {
        // A crash-simulated writeback: the temp file was written (even
        // truncated/garbled) but the rename never happened. The store
        // must keep opening with the old, intact meta.
        let path = tmp("atomic_meta");
        let meta = Meta::new(vec![2, 2], vec![1, 1], 4, 1);
        let ws = WsFile::create(&path, meta.clone()).unwrap();
        drop(ws);
        let mut tmp_meta = meta_path(&path).into_os_string();
        tmp_meta.push(".tmp");
        std::fs::write(PathBuf::from(&tmp_meta), "format  = shiftsplit-ws\nversio").unwrap();
        let ws = WsFile::open(&path).unwrap();
        assert_eq!(ws.meta, meta, "old meta must remain authoritative");
        // A real save_meta replaces the header and clears nothing else.
        let mut ws = ws;
        ws.meta.filled = 2;
        ws.save_meta().unwrap();
        assert_eq!(WsFile::open(&path).unwrap().meta.filled, 2);
        cleanup(&path);
    }
}
